//! Opcodes of the `exo` mini-ISA and their static classification.

use std::fmt;

/// Functional-unit class an opcode executes on.
///
/// Matches the FU grouping of the paper's Table 4 (ALU, Mul/Div, FP), plus
/// memory and control classes that occupy cache ports / branch units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Simple integer ALU (add/sub/logic/shift/compare, branches).
    Alu,
    /// Integer multiply / divide unit.
    MulDiv,
    /// Floating-point unit (add/mul/div/sqrt/convert).
    Fp,
    /// Load/store pipeline (occupies a data-cache port).
    Mem,
    /// No functional unit (e.g. `nop`, `halt`).
    None,
}

/// Every operation of the mini-ISA.
///
/// Vector (`V*`) and fused (`Fma`) forms are produced by TDG transforms and
/// by the SIMD model; the scalar subset is what workload programs are
/// authored in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // -- Integer ALU ------------------------------------------------------
    /// `dst = src1 + src2`
    Add,
    /// `dst = src1 - src2`
    Sub,
    /// `dst = src1 & src2`
    And,
    /// `dst = src1 | src2`
    Or,
    /// `dst = src1 ^ src2`
    Xor,
    /// `dst = src1 << (src2 & 63)`
    Shl,
    /// `dst = ((u64)src1) >> (src2 & 63)`
    Shr,
    /// `dst = src1 >> (src2 & 63)` (arithmetic)
    Sra,
    /// `dst = (src1 < src2) ? 1 : 0` (signed)
    Slt,
    /// `dst = src1 + imm`
    AddI,
    /// `dst = src1 & imm`
    AndI,
    /// `dst = src1 | imm`
    OrI,
    /// `dst = src1 ^ imm`
    XorI,
    /// `dst = src1 << imm`
    ShlI,
    /// `dst = ((u64)src1) >> imm`
    ShrI,
    /// `dst = src1 >> imm` (arithmetic)
    SraI,
    /// `dst = (src1 < imm) ? 1 : 0` (signed)
    SltI,
    /// `dst = imm`
    Li,
    /// `dst = src1`
    Mov,

    // -- Integer mul/div --------------------------------------------------
    /// `dst = src1 * src2`
    Mul,
    /// `dst = src1 / src2` (signed; x/0 = -1 as on real hardware traps are out of scope)
    Div,
    /// `dst = src1 % src2`
    Rem,

    // -- Floating point ---------------------------------------------------
    /// `dst = src1 + src2`
    FAdd,
    /// `dst = src1 - src2`
    FSub,
    /// `dst = src1 * src2`
    FMul,
    /// `dst = src1 / src2`
    FDiv,
    /// `dst = sqrt(src1)`
    FSqrt,
    /// `dst = min(src1, src2)`
    FMin,
    /// `dst = max(src1, src2)`
    FMax,
    /// `dst = -src1`
    FNeg,
    /// `dst = |src1|`
    FAbs,
    /// `dst(int) = (src1 < src2) ? 1 : 0`
    FLt,
    /// `dst(int) = (src1 <= src2) ? 1 : 0`
    FLe,
    /// `dst(int) = (src1 == src2) ? 1 : 0`
    FEq,
    /// `dst(fp) = (f64) src1(int)`
    CvtIF,
    /// `dst(int) = (i64) src1(fp)` (truncating)
    CvtFI,
    /// `dst(fp) = src1(fp)`
    FMov,
    /// `dst(fp) = imm` (bit pattern of an `f64` in `imm`)
    FLi,
    /// Fused multiply-add `dst = src1 * src2 + src3`; produced only by the
    /// fma TDG transform of the paper's Fig. 4.
    Fma,

    // -- Memory -----------------------------------------------------------
    /// Integer load: `dst = mem[src1 + imm]` (width in [`Inst::width`](crate::Inst)).
    Ld,
    /// Integer store: `mem[src1 + imm] = src2`.
    St,
    /// FP load: `dst(fp) = mem[src1 + imm]` (width 4 or 8).
    FLd,
    /// FP store: `mem[src1 + imm] = src2(fp)`.
    FSt,

    // -- Control ----------------------------------------------------------
    /// Branch to `imm` if `src1 == src2`.
    Beq,
    /// Branch to `imm` if `src1 != src2`.
    Bne,
    /// Branch to `imm` if `src1 < src2` (signed).
    Blt,
    /// Branch to `imm` if `src1 >= src2` (signed).
    Bge,
    /// Unconditional jump to `imm`.
    Jmp,
    /// Call: `dst = return pc`, jump to `imm`.
    Call,
    /// Return: jump to `src1`.
    Ret,
    /// Stop execution.
    Halt,

    // -- Misc / transform-generated ---------------------------------------
    /// No operation.
    Nop,
    /// Vector form of an ALU/FP op (SIMD transform); semantics are modeled,
    /// not executed.
    VOp,
    /// Vector load (contiguous).
    VLd,
    /// Vector store (contiguous).
    VSt,
    /// Lane pack/unpack shuffle inserted for non-contiguous SIMD access.
    VShuffle,
    /// Mask/blend instruction inserted along merging control paths.
    VMask,
    /// Predicate-setting instruction produced by if-conversion.
    SetPred,
    /// Accelerator config-load instruction (DP-CGRA configuration).
    Config,
    /// Core→accelerator operand send.
    CommSend,
    /// Accelerator→core operand receive.
    CommRecv,
    /// Dataflow control-to-data "switch" op (NS-DF).
    Switch,
}

impl Opcode {
    /// Functional-unit class this opcode occupies.
    #[must_use]
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            Add | Sub | And | Or | Xor | Shl | Shr | Sra | Slt | AddI | AndI | OrI | XorI
            | ShlI | ShrI | SraI | SltI | Li | Mov | Beq | Bne | Blt | Bge | Jmp | Call | Ret
            | SetPred | Switch | VMask | VShuffle | CommSend | CommRecv | Config => FuClass::Alu,
            Mul | Div | Rem => FuClass::MulDiv,
            FAdd | FSub | FMul | FDiv | FSqrt | FMin | FMax | FNeg | FAbs | FLt | FLe | FEq
            | CvtIF | CvtFI | FMov | FLi | Fma | VOp => FuClass::Fp,
            Ld | St | FLd | FSt | VLd | VSt => FuClass::Mem,
            Halt | Nop => FuClass::None,
        }
    }

    /// Execute latency in cycles on the general-purpose core.
    ///
    /// Memory ops report their hit latency through the cache model instead;
    /// this is the FU occupancy for non-memory ops.
    #[must_use]
    pub fn latency(self) -> u32 {
        use Opcode::*;
        match self {
            Mul => 3,
            Div | Rem => 18,
            FAdd | FSub | FMin | FMax => 3,
            FMul => 4,
            Fma => 4,
            FDiv => 12,
            FSqrt => 15,
            FLt | FLe | FEq | CvtIF | CvtFI => 2,
            Ld | FLd | VLd => 1, // overridden by observed memory latency
            _ => 1,
        }
    }

    /// Returns `true` for conditional branches.
    #[must_use]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// Returns `true` for any control-transfer instruction.
    #[must_use]
    pub fn is_control(self) -> bool {
        self.is_cond_branch()
            || matches!(
                self,
                Opcode::Jmp | Opcode::Call | Opcode::Ret | Opcode::Halt
            )
    }

    /// Returns `true` for loads (integer, FP, or vector).
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Ld | Opcode::FLd | Opcode::VLd)
    }

    /// Returns `true` for stores (integer, FP, or vector).
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::St | Opcode::FSt | Opcode::VSt)
    }

    /// Returns `true` for any memory operation.
    #[must_use]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns `true` for floating-point arithmetic (used by the fma
    /// analyzer and FU accounting).
    #[must_use]
    pub fn is_fp_arith(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            FAdd | FSub | FMul | FDiv | FSqrt | FMin | FMax | FNeg | FAbs | Fma
        )
    }

    /// Returns `true` if this opcode only exists as the output of a TDG
    /// transform (it can never appear in an authored program).
    #[must_use]
    pub fn is_transform_only(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            Fma | VOp
                | VLd
                | VSt
                | VShuffle
                | VMask
                | SetPred
                | Config
                | CommSend
                | CommRecv
                | Switch
        )
    }

    /// Lower-case mnemonic, as printed in disassembly.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Sra => "sra",
            Slt => "slt",
            AddI => "addi",
            AndI => "andi",
            OrI => "ori",
            XorI => "xori",
            ShlI => "shli",
            ShrI => "shri",
            SraI => "srai",
            SltI => "slti",
            Li => "li",
            Mov => "mov",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FSqrt => "fsqrt",
            FMin => "fmin",
            FMax => "fmax",
            FNeg => "fneg",
            FAbs => "fabs",
            FLt => "flt",
            FLe => "fle",
            FEq => "feq",
            CvtIF => "cvt.i.f",
            CvtFI => "cvt.f.i",
            FMov => "fmov",
            FLi => "fli",
            Fma => "fma",
            Ld => "ld",
            St => "st",
            FLd => "fld",
            FSt => "fst",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Jmp => "jmp",
            Call => "call",
            Ret => "ret",
            Halt => "halt",
            Nop => "nop",
            VOp => "vop",
            VLd => "vld",
            VSt => "vst",
            VShuffle => "vshuffle",
            VMask => "vmask",
            SetPred => "setpred",
            Config => "config",
            CommSend => "comm.send",
            CommRecv => "comm.recv",
            Switch => "switch",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_classification() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(Opcode::Bge.is_cond_branch());
        assert!(!Opcode::Jmp.is_cond_branch());
        assert!(Opcode::Jmp.is_control());
        assert!(Opcode::Ret.is_control());
        assert!(Opcode::Halt.is_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn memory_classification() {
        assert!(Opcode::Ld.is_load());
        assert!(Opcode::FLd.is_load());
        assert!(Opcode::St.is_store());
        assert!(Opcode::FSt.is_store());
        assert!(Opcode::VLd.is_mem());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn fu_classes_match_table4_grouping() {
        assert_eq!(Opcode::Add.fu_class(), FuClass::Alu);
        assert_eq!(Opcode::Mul.fu_class(), FuClass::MulDiv);
        assert_eq!(Opcode::Div.fu_class(), FuClass::MulDiv);
        assert_eq!(Opcode::FAdd.fu_class(), FuClass::Fp);
        assert_eq!(Opcode::Ld.fu_class(), FuClass::Mem);
        assert_eq!(Opcode::Halt.fu_class(), FuClass::None);
    }

    #[test]
    fn latencies_are_sane() {
        // Long-latency ops must be strictly slower than simple ALU ops.
        assert!(Opcode::Div.latency() > Opcode::Mul.latency());
        assert!(Opcode::Mul.latency() > Opcode::Add.latency());
        assert!(Opcode::FSqrt.latency() > Opcode::FMul.latency());
        assert_eq!(Opcode::Add.latency(), 1);
    }

    #[test]
    fn transform_only_ops_flagged() {
        assert!(Opcode::Fma.is_transform_only());
        assert!(Opcode::VLd.is_transform_only());
        assert!(Opcode::Switch.is_transform_only());
        assert!(!Opcode::Add.is_transform_only());
        assert!(!Opcode::Ld.is_transform_only());
    }

    #[test]
    fn mnemonics_are_unique() {
        use std::collections::HashSet;
        let all = [
            Opcode::Add,
            Opcode::Sub,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Shl,
            Opcode::Shr,
            Opcode::Sra,
            Opcode::Slt,
            Opcode::AddI,
            Opcode::AndI,
            Opcode::OrI,
            Opcode::XorI,
            Opcode::ShlI,
            Opcode::ShrI,
            Opcode::SraI,
            Opcode::SltI,
            Opcode::Li,
            Opcode::Mov,
            Opcode::Mul,
            Opcode::Div,
            Opcode::Rem,
            Opcode::FAdd,
            Opcode::FSub,
            Opcode::FMul,
            Opcode::FDiv,
            Opcode::FSqrt,
            Opcode::FMin,
            Opcode::FMax,
            Opcode::FNeg,
            Opcode::FAbs,
            Opcode::FLt,
            Opcode::FLe,
            Opcode::FEq,
            Opcode::CvtIF,
            Opcode::CvtFI,
            Opcode::FMov,
            Opcode::FLi,
            Opcode::Fma,
            Opcode::Ld,
            Opcode::St,
            Opcode::FLd,
            Opcode::FSt,
            Opcode::Beq,
            Opcode::Bne,
            Opcode::Blt,
            Opcode::Bge,
            Opcode::Jmp,
            Opcode::Call,
            Opcode::Ret,
            Opcode::Halt,
            Opcode::Nop,
            Opcode::VOp,
            Opcode::VLd,
            Opcode::VSt,
            Opcode::VShuffle,
            Opcode::VMask,
            Opcode::SetPred,
            Opcode::Config,
            Opcode::CommSend,
            Opcode::CommRecv,
            Opcode::Switch,
        ];
        let set: HashSet<&str> = all.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(set.len(), all.len());
    }
}
