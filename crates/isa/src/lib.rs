//! # prism-isa
//!
//! The `exo` mini-ISA underlying the Prism TDG framework — a Rust
//! reproduction of *Analyzing Behavior Specialized Acceleration*
//! (Nowatzki & Sankaralingam, ASPLOS 2016).
//!
//! The paper models accelerators over dynamic traces of real binaries
//! produced by gem5. This reproduction substitutes a small 64-bit RISC ISA:
//! 32 integer + 32 FP registers, a flat code space where the program counter
//! is a static instruction index, and a label-based
//! [`ProgramBuilder`] used to author the workload kernels.
//!
//! The ISA intentionally contains two strata:
//!
//! * the **authored subset** workload programs are written in, and
//! * **transform-only opcodes** ([`Opcode::Fma`], vector ops, predicates,
//!   accelerator communication ops) that only TDG graph transforms may
//!   introduce — [`Program::validate`] rejects them in authored code.
//!
//! # Examples
//!
//! ```
//! use prism_isa::{ProgramBuilder, Reg};
//!
//! let (i, acc) = (Reg::int(1), Reg::int(2));
//! let mut b = ProgramBuilder::new("triangle");
//! b.init_reg(i, 10);
//! let head = b.bind_new_label();
//! b.add(acc, acc, i);
//! b.addi(i, i, -1);
//! b.bne_label(i, Reg::ZERO, head);
//! b.halt();
//! let program = b.build()?;
//! assert!(program.validate().is_ok());
//! # Ok::<(), prism_isa::ValidateProgramError>(())
//! ```

#![warn(missing_docs)]

mod builder;
mod inst;
mod opcode;
mod program;
mod reg;

pub use builder::{Label, ProgramBuilder};
pub use inst::{Inst, StaticId};
pub use opcode::{FuClass, Opcode};
pub use program::{DataSegment, Program, ValidateProgramError};
pub use reg::{Reg, NUM_FP_REGS, NUM_INT_REGS, NUM_REGS};
