//! Instruction representation.

use std::fmt;

use crate::{FuClass, Opcode, Reg};

/// Index of a static instruction within a [`Program`](crate::Program).
///
/// The mini-ISA has a flat code space: the program counter *is* the static
/// instruction index, and branch targets are encoded directly as `StaticId`
/// values in the immediate field.
pub type StaticId = u32;

/// A single static instruction.
///
/// A compact, uniform three-operand format: `op dst, src1, src2, imm`.
/// Which fields are meaningful depends on [`Opcode`]; unused register
/// operands are `None`. For memory ops `imm` is the address offset and
/// [`width`](Inst::width) the access size in bytes; for branches `imm` is
/// the target [`StaticId`]; for `fli` it is the raw bit pattern of an `f64`.
///
/// # Examples
///
/// ```
/// use prism_isa::{Inst, Opcode, Reg};
///
/// let add = Inst::rrr(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3));
/// assert_eq!(add.to_string(), "add r1, r2, r3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Inst {
    /// Operation.
    pub op: Opcode,
    /// Destination register, if the op writes one.
    pub dst: Option<Reg>,
    /// First source register.
    pub src1: Option<Reg>,
    /// Second source register (for stores, the data operand).
    pub src2: Option<Reg>,
    /// Immediate / branch target / fp bit pattern / memory offset.
    pub imm: i64,
    /// Memory access width in bytes (1, 2, 4, or 8); 0 for non-memory ops.
    pub width: u8,
}

impl Inst {
    /// Three-register instruction `op dst, src1, src2`.
    #[must_use]
    pub fn rrr(op: Opcode, dst: Reg, src1: Reg, src2: Reg) -> Self {
        Inst {
            op,
            dst: Some(dst),
            src1: Some(src1),
            src2: Some(src2),
            imm: 0,
            width: 0,
        }
    }

    /// Register-immediate instruction `op dst, src1, imm`.
    #[must_use]
    pub fn rri(op: Opcode, dst: Reg, src1: Reg, imm: i64) -> Self {
        Inst {
            op,
            dst: Some(dst),
            src1: Some(src1),
            src2: None,
            imm,
            width: 0,
        }
    }

    /// Two-register instruction `op dst, src1`.
    #[must_use]
    pub fn rr(op: Opcode, dst: Reg, src1: Reg) -> Self {
        Inst {
            op,
            dst: Some(dst),
            src1: Some(src1),
            src2: None,
            imm: 0,
            width: 0,
        }
    }

    /// Immediate-only instruction with a destination, e.g. `li dst, imm`.
    #[must_use]
    pub fn ri(op: Opcode, dst: Reg, imm: i64) -> Self {
        Inst {
            op,
            dst: Some(dst),
            src1: None,
            src2: None,
            imm,
            width: 0,
        }
    }

    /// Load `dst = mem[base + offset]` of `width` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8, or `op` is not a load.
    #[must_use]
    pub fn load(op: Opcode, dst: Reg, base: Reg, offset: i64, width: u8) -> Self {
        assert!(op.is_load(), "load() requires a load opcode");
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid memory width");
        Inst {
            op,
            dst: Some(dst),
            src1: Some(base),
            src2: None,
            imm: offset,
            width,
        }
    }

    /// Store `mem[base + offset] = data` of `width` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4, or 8, or `op` is not a store.
    #[must_use]
    pub fn store(op: Opcode, data: Reg, base: Reg, offset: i64, width: u8) -> Self {
        assert!(op.is_store(), "store() requires a store opcode");
        assert!(matches!(width, 1 | 2 | 4 | 8), "invalid memory width");
        Inst {
            op,
            dst: None,
            src1: Some(base),
            src2: Some(data),
            imm: offset,
            width,
        }
    }

    /// Conditional branch `op src1, src2 -> target`.
    #[must_use]
    pub fn branch(op: Opcode, src1: Reg, src2: Reg, target: StaticId) -> Self {
        assert!(
            op.is_cond_branch(),
            "branch() requires a conditional branch opcode"
        );
        Inst {
            op,
            dst: None,
            src1: Some(src1),
            src2: Some(src2),
            imm: i64::from(target),
            width: 0,
        }
    }

    /// Unconditional jump to `target`.
    #[must_use]
    pub fn jmp(target: StaticId) -> Self {
        Inst {
            op: Opcode::Jmp,
            dst: None,
            src1: None,
            src2: None,
            imm: i64::from(target),
            width: 0,
        }
    }

    /// Zero-operand instruction (`nop`, `halt`).
    #[must_use]
    pub fn nullary(op: Opcode) -> Self {
        Inst {
            op,
            dst: None,
            src1: None,
            src2: None,
            imm: 0,
            width: 0,
        }
    }

    /// Branch / jump target, if this is a direct control transfer.
    #[must_use]
    pub fn target(&self) -> Option<StaticId> {
        if self.op.is_cond_branch() || matches!(self.op, Opcode::Jmp | Opcode::Call) {
            Some(self.imm as StaticId)
        } else {
            None
        }
    }

    /// Source registers actually read, excluding the hardwired zero.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        [self.src1, self.src2]
            .into_iter()
            .flatten()
            .filter(|r| !r.is_zero())
    }

    /// Destination register actually written (writes to `r0` are discarded).
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        self.dst.filter(|r| !r.is_zero())
    }

    /// Functional-unit class, delegated to the opcode.
    #[must_use]
    pub fn fu_class(&self) -> FuClass {
        self.op.fu_class()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if self.op.is_mem() {
            if let Some(d) = self.dst {
                sep(f)?;
                write!(f, "{d}")?;
            }
            if let Some(data) = self.src2 {
                sep(f)?;
                write!(f, "{data}")?;
            }
            sep(f)?;
            write!(f, "[{}{:+}]", self.src1.unwrap_or(Reg::ZERO), self.imm)?;
            return Ok(());
        }
        if let Some(d) = self.dst {
            sep(f)?;
            write!(f, "{d}")?;
        }
        if let Some(s) = self.src1 {
            sep(f)?;
            write!(f, "{s}")?;
        }
        if let Some(s) = self.src2 {
            sep(f)?;
            write!(f, "{s}")?;
        }
        if self.op.is_cond_branch() || matches!(self.op, Opcode::Jmp | Opcode::Call) {
            sep(f)?;
            write!(f, "-> {}", self.imm)?;
        } else if matches!(
            self.op,
            Opcode::Li
                | Opcode::AddI
                | Opcode::AndI
                | Opcode::OrI
                | Opcode::XorI
                | Opcode::ShlI
                | Opcode::ShrI
                | Opcode::SraI
                | Opcode::SltI
        ) {
            sep(f)?;
            write!(f, "{}", self.imm)?;
        } else if self.op == Opcode::FLi {
            sep(f)?;
            write!(f, "{}", f64::from_bits(self.imm as u64))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_filtered_from_dataflow() {
        let i = Inst::rrr(Opcode::Add, Reg::ZERO, Reg::ZERO, Reg::int(3));
        assert_eq!(i.dest(), None);
        let srcs: Vec<Reg> = i.sources().collect();
        assert_eq!(srcs, vec![Reg::int(3)]);
    }

    #[test]
    fn store_has_no_dest() {
        let s = Inst::store(Opcode::St, Reg::int(2), Reg::int(1), 8, 8);
        assert_eq!(s.dest(), None);
        let srcs: Vec<Reg> = s.sources().collect();
        assert_eq!(srcs, vec![Reg::int(1), Reg::int(2)]);
    }

    #[test]
    fn branch_target_extraction() {
        let b = Inst::branch(Opcode::Bne, Reg::int(1), Reg::ZERO, 42);
        assert_eq!(b.target(), Some(42));
        let j = Inst::jmp(7);
        assert_eq!(j.target(), Some(7));
        let a = Inst::rrr(Opcode::Add, Reg::int(1), Reg::int(2), Reg::int(3));
        assert_eq!(a.target(), None);
    }

    #[test]
    fn display_formats() {
        let ld = Inst::load(Opcode::Ld, Reg::int(2), Reg::int(1), 16, 8);
        assert_eq!(ld.to_string(), "ld r2, [r1+16]");
        let st = Inst::store(Opcode::St, Reg::int(3), Reg::int(1), -8, 8);
        assert_eq!(st.to_string(), "st r3, [r1-8]");
        let li = Inst::ri(Opcode::Li, Reg::int(5), 100);
        assert_eq!(li.to_string(), "li r5, 100");
        let b = Inst::branch(Opcode::Blt, Reg::int(1), Reg::int(2), 3);
        assert_eq!(b.to_string(), "blt r1, r2, -> 3");
    }

    #[test]
    #[should_panic(expected = "invalid memory width")]
    fn bad_width_panics() {
        let _ = Inst::load(Opcode::Ld, Reg::int(1), Reg::int(2), 0, 3);
    }

    #[test]
    #[should_panic(expected = "requires a load opcode")]
    fn load_ctor_validates_opcode() {
        let _ = Inst::load(Opcode::Add, Reg::int(1), Reg::int(2), 0, 8);
    }
}
