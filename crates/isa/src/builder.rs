//! Label-based assembler API for authoring programs.

use crate::{DataSegment, Inst, Opcode, Program, Reg, StaticId, ValidateProgramError};

/// A forward-referencable code label.
///
/// Created with [`ProgramBuilder::label`], placed with
/// [`ProgramBuilder::bind`], and used as a branch target before or after
/// binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental, label-based program assembler.
///
/// Every workload kernel in `prism-workloads` is authored with this API; it
/// reads like assembly while resolving labels and validating the result.
///
/// # Examples
///
/// A counted loop summing an array of `i64`:
///
/// ```
/// use prism_isa::{ProgramBuilder, Reg};
///
/// let (ptr, n, sum, x) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
/// let mut b = ProgramBuilder::new("sum");
/// b.init_reg(ptr, 0x1000);
/// b.init_reg(n, 8);
/// let head = b.bind_new_label();
/// b.ld(x, ptr, 0);
/// b.add(sum, sum, x);
/// b.addi(ptr, ptr, 8);
/// b.addi(n, n, -1);
/// b.bne_label(n, Reg::ZERO, head);
/// b.halt();
/// let prog = b.build()?;
/// assert_eq!(prog.len(), 6);
/// # Ok::<(), prism_isa::ValidateProgramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    insts: Vec<Inst>,
    labels: Vec<Option<StaticId>>,
    /// (inst index, label) pairs whose `imm` must be patched at build time.
    fixups: Vec<(usize, Label)>,
    reg_init: Vec<(Reg, i64)>,
    data: Vec<DataSegment>,
}

impl ProgramBuilder {
    /// Creates an empty builder for a program named `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            insts: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            reg_init: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Number of instructions emitted so far (== the next instruction's id).
    #[must_use]
    pub fn here(&self) -> StaticId {
        self.insts.len() as StaticId
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Convenience: allocate a label and bind it here.
    pub fn bind_new_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Sets an initial register value applied before execution starts.
    pub fn init_reg(&mut self, reg: Reg, value: i64) {
        self.reg_init.push((reg, value));
    }

    /// Sets an initial FP register value.
    pub fn init_freg(&mut self, reg: Reg, value: f64) {
        assert!(reg.is_fp(), "init_freg requires an fp register");
        self.reg_init.push((reg, value.to_bits() as i64));
    }

    /// Places raw bytes in initial memory.
    pub fn init_data(&mut self, addr: u64, bytes: Vec<u8>) {
        self.data.push(DataSegment { addr, bytes });
    }

    /// Places a slice of `i64` words in initial memory.
    pub fn init_words(&mut self, addr: u64, words: &[i64]) {
        let bytes = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.init_data(addr, bytes);
    }

    /// Places a slice of `f64` values in initial memory.
    pub fn init_f64s(&mut self, addr: u64, values: &[f64]) {
        let bytes = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.init_data(addr, bytes);
    }

    /// Emits a raw instruction and returns its id.
    pub fn emit(&mut self, inst: Inst) -> StaticId {
        self.insts.push(inst);
        self.here() - 1
    }

    fn emit_branch_to(&mut self, mut inst: Inst, label: Label) -> StaticId {
        // Target patched at build() time; store a placeholder.
        inst.imm = 0;
        let id = self.emit(inst);
        self.fixups.push((id as usize, label));
        id
    }

    /// Finalizes the program, resolving labels and validating.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateProgramError`] if structural validation fails.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound.
    pub fn build(mut self) -> Result<Program, ValidateProgramError> {
        for (idx, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0].expect("branch to unbound label");
            self.insts[idx].imm = i64::from(target);
        }
        let prog = Program {
            name: self.name,
            insts: self.insts,
            reg_init: self.reg_init,
            data: self.data,
        };
        prog.validate()?;
        Ok(prog)
    }
}

/// Generates three-register emit helpers.
macro_rules! rrr_ops {
    ($($(#[$doc:meta])* $fn_name:ident => $op:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$doc])*
                pub fn $fn_name(&mut self, dst: Reg, src1: Reg, src2: Reg) -> StaticId {
                    self.emit(Inst::rrr(Opcode::$op, dst, src1, src2))
                }
            )*
        }
    };
}

rrr_ops! {
    /// `dst = src1 + src2`
    add => Add,
    /// `dst = src1 - src2`
    sub => Sub,
    /// `dst = src1 & src2`
    and => And,
    /// `dst = src1 | src2`
    or => Or,
    /// `dst = src1 ^ src2`
    xor => Xor,
    /// `dst = src1 << src2`
    shl => Shl,
    /// `dst = src1 >> src2` (logical)
    shr => Shr,
    /// `dst = src1 >> src2` (arithmetic)
    sra => Sra,
    /// `dst = (src1 < src2) ? 1 : 0`
    slt => Slt,
    /// `dst = src1 * src2`
    mul => Mul,
    /// `dst = src1 / src2`
    div => Div,
    /// `dst = src1 % src2`
    rem => Rem,
    /// `dst = src1 + src2` (fp)
    fadd => FAdd,
    /// `dst = src1 - src2` (fp)
    fsub => FSub,
    /// `dst = src1 * src2` (fp)
    fmul => FMul,
    /// `dst = src1 / src2` (fp)
    fdiv => FDiv,
    /// `dst = min(src1, src2)` (fp)
    fmin => FMin,
    /// `dst = max(src1, src2)` (fp)
    fmax => FMax,
    /// `dst(int) = src1 < src2` (fp compare)
    flt => FLt,
    /// `dst(int) = src1 <= src2` (fp compare)
    fle => FLe,
    /// `dst(int) = src1 == src2` (fp compare)
    feq => FEq,
}

/// Generates register-immediate emit helpers.
macro_rules! rri_ops {
    ($($(#[$doc:meta])* $fn_name:ident => $op:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$doc])*
                pub fn $fn_name(&mut self, dst: Reg, src1: Reg, imm: i64) -> StaticId {
                    self.emit(Inst::rri(Opcode::$op, dst, src1, imm))
                }
            )*
        }
    };
}

rri_ops! {
    /// `dst = src1 + imm`
    addi => AddI,
    /// `dst = src1 & imm`
    andi => AndI,
    /// `dst = src1 | imm`
    ori => OrI,
    /// `dst = src1 ^ imm`
    xori => XorI,
    /// `dst = src1 << imm`
    shli => ShlI,
    /// `dst = src1 >> imm` (logical)
    shri => ShrI,
    /// `dst = src1 >> imm` (arithmetic)
    srai => SraI,
    /// `dst = (src1 < imm) ? 1 : 0`
    slti => SltI,
}

/// Generates conditional-branch emit helpers (label targets).
macro_rules! branch_ops {
    ($($(#[$doc:meta])* $fn_name:ident => $op:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                $(#[$doc])*
                pub fn $fn_name(&mut self, src1: Reg, src2: Reg, target: Label) -> StaticId {
                    self.emit_branch_to(Inst::branch(Opcode::$op, src1, src2, 0), target)
                }
            )*
        }
    };
}

branch_ops! {
    /// Branch to `target` if `src1 == src2`.
    beq_label => Beq,
    /// Branch to `target` if `src1 != src2`.
    bne_label => Bne,
    /// Branch to `target` if `src1 < src2` (signed).
    blt_label => Blt,
    /// Branch to `target` if `src1 >= src2` (signed).
    bge_label => Bge,
}

impl ProgramBuilder {
    /// `dst = imm`
    pub fn li(&mut self, dst: Reg, imm: i64) -> StaticId {
        self.emit(Inst::ri(Opcode::Li, dst, imm))
    }

    /// `dst(fp) = value`
    pub fn fli(&mut self, dst: Reg, value: f64) -> StaticId {
        assert!(dst.is_fp(), "fli requires an fp destination");
        self.emit(Inst::ri(Opcode::FLi, dst, value.to_bits() as i64))
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) -> StaticId {
        self.emit(Inst::rr(Opcode::Mov, dst, src))
    }

    /// `dst(fp) = src(fp)`
    pub fn fmov(&mut self, dst: Reg, src: Reg) -> StaticId {
        self.emit(Inst::rr(Opcode::FMov, dst, src))
    }

    /// `dst = sqrt(src)` (fp)
    pub fn fsqrt(&mut self, dst: Reg, src: Reg) -> StaticId {
        self.emit(Inst::rr(Opcode::FSqrt, dst, src))
    }

    /// `dst = -src` (fp)
    pub fn fneg(&mut self, dst: Reg, src: Reg) -> StaticId {
        self.emit(Inst::rr(Opcode::FNeg, dst, src))
    }

    /// `dst = |src|` (fp)
    pub fn fabs(&mut self, dst: Reg, src: Reg) -> StaticId {
        self.emit(Inst::rr(Opcode::FAbs, dst, src))
    }

    /// `dst(fp) = (f64) src(int)`
    pub fn cvt_i_f(&mut self, dst: Reg, src: Reg) -> StaticId {
        self.emit(Inst::rr(Opcode::CvtIF, dst, src))
    }

    /// `dst(int) = (i64) src(fp)`
    pub fn cvt_f_i(&mut self, dst: Reg, src: Reg) -> StaticId {
        self.emit(Inst::rr(Opcode::CvtFI, dst, src))
    }

    /// Integer load of `width` bytes: `dst = mem[base + offset]`.
    pub fn ld_w(&mut self, dst: Reg, base: Reg, offset: i64, width: u8) -> StaticId {
        self.emit(Inst::load(Opcode::Ld, dst, base, offset, width))
    }

    /// 8-byte integer load.
    pub fn ld(&mut self, dst: Reg, base: Reg, offset: i64) -> StaticId {
        self.ld_w(dst, base, offset, 8)
    }

    /// Integer store of `width` bytes: `mem[base + offset] = data`.
    pub fn st_w(&mut self, data: Reg, base: Reg, offset: i64, width: u8) -> StaticId {
        self.emit(Inst::store(Opcode::St, data, base, offset, width))
    }

    /// 8-byte integer store.
    pub fn st(&mut self, data: Reg, base: Reg, offset: i64) -> StaticId {
        self.st_w(data, base, offset, 8)
    }

    /// 8-byte FP load: `dst(fp) = mem[base + offset]`.
    pub fn fld(&mut self, dst: Reg, base: Reg, offset: i64) -> StaticId {
        self.emit(Inst::load(Opcode::FLd, dst, base, offset, 8))
    }

    /// 8-byte FP store: `mem[base + offset] = data(fp)`.
    pub fn fst(&mut self, data: Reg, base: Reg, offset: i64) -> StaticId {
        self.emit(Inst::store(Opcode::FSt, data, base, offset, 8))
    }

    /// Unconditional jump to a label.
    pub fn jmp_label(&mut self, target: Label) -> StaticId {
        self.emit_branch_to(Inst::jmp(0), target)
    }

    /// Call: saves the return pc in `link` and jumps to `target`.
    pub fn call_label(&mut self, link: Reg, target: Label) -> StaticId {
        let inst = Inst {
            op: Opcode::Call,
            dst: Some(link),
            src1: None,
            src2: None,
            imm: 0,
            width: 0,
        };
        self.emit_branch_to(inst, target)
    }

    /// Return: jumps to the pc held in `link`.
    pub fn ret(&mut self, link: Reg) -> StaticId {
        self.emit(Inst {
            op: Opcode::Ret,
            dst: None,
            src1: Some(link),
            src2: None,
            imm: 0,
            width: 0,
        })
    }

    /// No-op.
    pub fn nop(&mut self) -> StaticId {
        self.emit(Inst::nullary(Opcode::Nop))
    }

    /// Halts execution.
    pub fn halt(&mut self) -> StaticId {
        self.emit(Inst::nullary(Opcode::Halt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_label_resolution() {
        let mut b = ProgramBuilder::new("fwd");
        let end = b.label();
        b.beq_label(Reg::int(1), Reg::ZERO, end);
        b.li(Reg::int(2), 1);
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.inst(0).target(), Some(2));
    }

    #[test]
    fn backward_label_resolution() {
        let mut b = ProgramBuilder::new("bwd");
        let head = b.bind_new_label();
        b.addi(Reg::int(1), Reg::int(1), -1);
        b.bne_label(Reg::int(1), Reg::ZERO, head);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.inst(1).target(), Some(0));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new("bad");
        let nowhere = b.label();
        b.jmp_label(nowhere);
        b.halt();
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new("bad");
        let l = b.bind_new_label();
        b.bind(l);
    }

    #[test]
    fn init_state_recorded() {
        let mut b = ProgramBuilder::new("init");
        b.init_reg(Reg::int(1), 0x1000);
        b.init_freg(Reg::fp(0), 2.5);
        b.init_words(0x1000, &[1, 2, 3]);
        b.init_f64s(0x2000, &[1.5]);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.reg_init.len(), 2);
        assert_eq!(p.reg_init[1].1, 2.5f64.to_bits() as i64);
        assert_eq!(p.data.len(), 2);
        assert_eq!(p.data[0].bytes.len(), 24);
        assert_eq!(p.data[1].bytes, 1.5f64.to_le_bytes().to_vec());
    }

    #[test]
    fn call_ret_shapes() {
        let mut b = ProgramBuilder::new("call");
        let func = b.label();
        b.call_label(Reg::int(31), func);
        b.halt();
        b.bind(func);
        b.ret(Reg::int(31));
        let p = b.build().unwrap();
        assert_eq!(p.inst(0).target(), Some(2));
        assert_eq!(p.inst(0).dest(), Some(Reg::int(31)));
        assert_eq!(p.inst(2).sources().next(), Some(Reg::int(31)));
    }

    #[test]
    fn emits_have_monotonic_ids() {
        let mut b = ProgramBuilder::new("ids");
        let a = b.li(Reg::int(1), 1);
        let c = b.add(Reg::int(1), Reg::int(1), Reg::int(1));
        let h = b.halt();
        assert_eq!((a, c, h), (0, 1, 2));
    }
}
