//! Programs: static instruction sequences plus initial machine state.

use std::fmt;

use crate::{Inst, Opcode, Reg, StaticId};

/// Error returned by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// The program contains no instructions.
    Empty,
    /// A branch or jump targets an instruction index outside the program.
    TargetOutOfRange {
        /// Offending instruction.
        at: StaticId,
        /// The out-of-range target.
        target: StaticId,
    },
    /// An authored program uses an opcode only TDG transforms may produce.
    TransformOnlyOpcode {
        /// Offending instruction.
        at: StaticId,
        /// The illegal opcode.
        op: Opcode,
    },
    /// No `halt` instruction is reachable, so execution cannot terminate.
    NoHalt,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::Empty => write!(f, "program is empty"),
            ValidateProgramError::TargetOutOfRange { at, target } => {
                write!(f, "instruction {at} targets out-of-range index {target}")
            }
            ValidateProgramError::TransformOnlyOpcode { at, op } => {
                write!(f, "instruction {at} uses transform-only opcode {op}")
            }
            ValidateProgramError::NoHalt => write!(f, "program has no halt instruction"),
        }
    }
}

impl std::error::Error for ValidateProgramError {}

/// A region of initial memory contents.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSegment {
    /// Start address.
    pub addr: u64,
    /// Raw bytes placed at `addr`.
    pub bytes: Vec<u8>,
}

/// A complete static program: code, entry point, and initial state.
///
/// Programs are authored through
/// [`ProgramBuilder`](crate::ProgramBuilder) and consumed by the functional
/// simulator in `prism-sim`.
///
/// # Examples
///
/// ```
/// use prism_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new("double");
/// let r1 = Reg::int(1);
/// b.li(r1, 21);
/// b.add(r1, r1, r1);
/// b.halt();
/// let prog = b.build()?;
/// assert_eq!(prog.len(), 3);
/// # Ok::<(), prism_isa::ValidateProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Human-readable name (workload kernel name).
    pub name: String,
    /// Static instructions; the program counter indexes this vector.
    pub insts: Vec<Inst>,
    /// Initial register values, applied before execution.
    pub reg_init: Vec<(Reg, i64)>,
    /// Initial memory image.
    pub data: Vec<DataSegment>,
}

impl Program {
    /// Creates a program from raw parts without validation.
    ///
    /// Prefer [`ProgramBuilder`](crate::ProgramBuilder); this exists for
    /// tests and generated code.
    #[must_use]
    pub fn from_insts(name: impl Into<String>, insts: Vec<Inst>) -> Self {
        Program {
            name: name.into(),
            insts,
            reg_init: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn inst(&self, id: StaticId) -> &Inst {
        &self.insts[id as usize]
    }

    /// Checks structural well-formedness.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateProgramError`] if the program is empty, a branch
    /// target is out of range, an authored instruction uses a
    /// transform-only opcode, or no `halt` exists.
    pub fn validate(&self) -> Result<(), ValidateProgramError> {
        if self.insts.is_empty() {
            return Err(ValidateProgramError::Empty);
        }
        let n = self.insts.len() as StaticId;
        let mut has_halt = false;
        for (i, inst) in self.insts.iter().enumerate() {
            let at = i as StaticId;
            if let Some(t) = inst.target() {
                if t >= n {
                    return Err(ValidateProgramError::TargetOutOfRange { at, target: t });
                }
            }
            if inst.op.is_transform_only() {
                return Err(ValidateProgramError::TransformOnlyOpcode { at, op: inst.op });
            }
            if inst.op == Opcode::Halt {
                has_halt = true;
            }
        }
        if !has_halt {
            return Err(ValidateProgramError::NoHalt);
        }
        Ok(())
    }

    /// Disassembles the whole program, one instruction per line.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{i:5}: {inst}");
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} ({} insts)", self.name, self.insts.len())?;
        f.write_str(&self.disassemble())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Inst;

    fn halt_prog(insts: Vec<Inst>) -> Program {
        Program::from_insts("t", insts)
    }

    #[test]
    fn empty_program_invalid() {
        assert_eq!(
            halt_prog(vec![]).validate(),
            Err(ValidateProgramError::Empty)
        );
    }

    #[test]
    fn missing_halt_invalid() {
        let p = halt_prog(vec![Inst::nullary(Opcode::Nop)]);
        assert_eq!(p.validate(), Err(ValidateProgramError::NoHalt));
    }

    #[test]
    fn out_of_range_target_invalid() {
        let p = halt_prog(vec![Inst::jmp(9), Inst::nullary(Opcode::Halt)]);
        assert_eq!(
            p.validate(),
            Err(ValidateProgramError::TargetOutOfRange { at: 0, target: 9 })
        );
    }

    #[test]
    fn transform_only_opcode_invalid() {
        let p = halt_prog(vec![
            Inst::rrr(Opcode::Fma, Reg::fp(1), Reg::fp(2), Reg::fp(3)),
            Inst::nullary(Opcode::Halt),
        ]);
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::TransformOnlyOpcode {
                at: 0,
                op: Opcode::Fma
            })
        ));
    }

    #[test]
    fn valid_program() {
        let p = halt_prog(vec![
            Inst::ri(Opcode::Li, Reg::int(1), 5),
            Inst::rrr(Opcode::Add, Reg::int(1), Reg::int(1), Reg::int(1)),
            Inst::nullary(Opcode::Halt),
        ]);
        assert!(p.validate().is_ok());
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn disassembly_contains_all_lines() {
        let p = halt_prog(vec![
            Inst::ri(Opcode::Li, Reg::int(1), 5),
            Inst::nullary(Opcode::Halt),
        ]);
        let d = p.disassemble();
        assert!(d.contains("li r1, 5"));
        assert!(d.contains("halt"));
        assert_eq!(d.lines().count(), 2);
    }
}
