//! Architectural registers of the `exo` mini-ISA.
//!
//! The ISA has 32 integer registers (`r0`..`r31`, with `r0` hardwired to
//! zero) and 32 floating-point registers (`f0`..`f31`). Both files share a
//! single flat identifier space so that dataflow analyses can treat any
//! register uniformly: identifiers `0..32` are integer, `32..64` are FP.

use std::fmt;

/// Number of integer registers.
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating-point registers.
pub const NUM_FP_REGS: u8 = 32;
/// Total number of architectural registers across both files.
pub const NUM_REGS: u8 = NUM_INT_REGS + NUM_FP_REGS;

/// An architectural register of either file.
///
/// `Reg` is a flat identifier: values below [`NUM_INT_REGS`] name integer
/// registers, the rest name FP registers. Use [`Reg::int`] / [`Reg::fp`] to
/// construct and [`Reg::is_fp`] to classify.
///
/// # Examples
///
/// ```
/// use prism_isa::Reg;
///
/// let r3 = Reg::int(3);
/// let f1 = Reg::fp(1);
/// assert!(!r3.is_fp());
/// assert!(f1.is_fp());
/// assert_eq!(r3.to_string(), "r3");
/// assert_eq!(f1.to_string(), "f1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The integer zero register `r0`, hardwired to zero.
    pub const ZERO: Reg = Reg(0);

    /// Creates an integer register `r<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub const fn int(n: u8) -> Self {
        assert!(n < NUM_INT_REGS, "integer register index out of range");
        Reg(n)
    }

    /// Creates a floating-point register `f<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub const fn fp(n: u8) -> Self {
        assert!(n < NUM_FP_REGS, "fp register index out of range");
        Reg(NUM_INT_REGS + n)
    }

    /// Returns the flat identifier in `0..64`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a register from a flat identifier.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 64`.
    #[must_use]
    pub const fn from_index(idx: usize) -> Self {
        assert!(idx < NUM_REGS as usize, "register index out of range");
        Reg(idx as u8)
    }

    /// Returns `true` for floating-point registers.
    #[must_use]
    pub const fn is_fp(self) -> bool {
        self.0 >= NUM_INT_REGS
    }

    /// Returns `true` for the hardwired integer zero register.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The register number within its file (e.g. `3` for both `r3` and `f3`).
    #[must_use]
    pub const fn file_index(self) -> u8 {
        if self.is_fp() {
            self.0 - NUM_INT_REGS
        } else {
            self.0
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.file_index())
        } else {
            write!(f, "r{}", self.file_index())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_share_flat_space() {
        assert_eq!(Reg::int(0).index(), 0);
        assert_eq!(Reg::int(31).index(), 31);
        assert_eq!(Reg::fp(0).index(), 32);
        assert_eq!(Reg::fp(31).index(), 63);
    }

    #[test]
    fn classification() {
        assert!(Reg::fp(5).is_fp());
        assert!(!Reg::int(5).is_fp());
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::int(1).is_zero());
        // f0 is not the zero register.
        assert!(!Reg::fp(0).is_zero());
    }

    #[test]
    fn file_index_round_trip() {
        for n in 0..32 {
            assert_eq!(Reg::int(n).file_index(), n);
            assert_eq!(Reg::fp(n).file_index(), n);
        }
    }

    #[test]
    fn from_index_round_trip() {
        for i in 0..64 {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::int(17).to_string(), "r17");
        assert_eq!(Reg::fp(2).to_string(), "f2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_out_of_range_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_out_of_range_panics() {
        let _ = Reg::fp(32);
    }
}
