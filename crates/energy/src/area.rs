//! Area models (mm² at a 22nm-class node).
//!
//! Core areas follow McPAT-style growth with width and window/ROB capacity;
//! accelerator areas use the figures reported in the source publications
//! (DySER \[17\], BERET \[18\], SEED \[36\]), exactly as the paper does for its
//! own area estimation (§4 "Area Estimation").

use crate::CoreEnergyConfig;

/// Area of a general-purpose core (mm², excluding L2).
///
/// Calibrated so the four Table-4 cores land near McPAT-like values:
/// IO2 ≈ 1.6, OOO2 ≈ 2.9, OOO4 ≈ 5.8, OOO6 ≈ 9.0 mm².
#[must_use]
pub fn core_area_mm2(cfg: &CoreEnergyConfig) -> f64 {
    let w = f64::from(cfg.width);
    // Front-end + FUs + L1 caches grow near-linearly with width.
    let base = 0.8 + 0.4 * w;
    if !cfg.out_of_order {
        return base; // no rename/window/ROB, minimal bypass
    }
    // OOO structures: the bypass/issue network grows quadratically with
    // width (McPAT), the window is CAM-like (entries × width ports), the
    // ROB is RAM-like.
    let bypass = 0.13 * w * w;
    let window = 0.012 * f64::from(cfg.window_size) * (1.0 + 0.25 * (w - 1.0));
    let rob = 0.006 * f64::from(cfg.rob_size);
    base + bypass + window + rob
}

/// Areas of the four BSAs (mm²), from their source publications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelAreas {
    /// 256-bit SIMD datapath + vector registers.
    pub simd: f64,
    /// 64-FU DP-CGRA fabric + flexible I/O interface (DySER-like).
    pub dp_cgra: f64,
    /// Non-speculative dataflow: op storage + CFUs + bus (SEED-like).
    pub ns_df: f64,
    /// Trace processor: CFUs + versioned store buffer (BERET-like).
    pub trace_p: f64,
}

impl Default for AccelAreas {
    fn default() -> Self {
        AccelAreas {
            simd: 0.6,
            dp_cgra: 0.9,
            ns_df: 1.7,
            trace_p: 0.6,
        }
    }
}

impl AccelAreas {
    /// The default published-figure areas.
    #[must_use]
    pub fn new() -> Self {
        AccelAreas::default()
    }

    /// Sum of the areas of a subset of accelerators.
    #[must_use]
    pub fn subset_area(&self, simd: bool, dp_cgra: bool, ns_df: bool, trace_p: bool) -> f64 {
        let mut a = 0.0;
        if simd {
            a += self.simd;
        }
        if dp_cgra {
            a += self.dp_cgra;
        }
        if ns_df {
            a += self.ns_df;
        }
        if trace_p {
            a += self.trace_p;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(width: u32, rob: u32, window: u32, ooo: bool) -> CoreEnergyConfig {
        CoreEnergyConfig {
            width,
            rob_size: rob,
            window_size: window,
            out_of_order: ooo,
            dcache_ports: 1,
        }
    }

    #[test]
    fn table4_cores_rank_correctly() {
        let io2 = core_area_mm2(&cfg(2, 0, 0, false));
        let ooo2 = core_area_mm2(&cfg(2, 64, 32, true));
        let ooo4 = core_area_mm2(&cfg(4, 168, 48, true));
        let ooo6 = core_area_mm2(&cfg(6, 192, 52, true));
        assert!(io2 < ooo2 && ooo2 < ooo4 && ooo4 < ooo6);
        // Headline-claim ballpark: OOO2 + all-BSA area must be well under
        // OOO6 + SIMD (paper: "40% lower area").
        let accels = AccelAreas::new();
        let exo2 = ooo2 + accels.subset_area(true, true, true, false);
        let big = ooo6 + accels.simd;
        assert!(
            exo2 < 0.75 * big,
            "OOO2 ExoCore ({exo2:.2}) should be far smaller than OOO6+SIMD ({big:.2})"
        );
    }

    #[test]
    fn areas_are_positive_and_plausible() {
        let io2 = core_area_mm2(&cfg(2, 0, 0, false));
        assert!(io2 > 0.5 && io2 < 3.0);
        let ooo6 = core_area_mm2(&cfg(6, 192, 52, true));
        assert!(ooo6 > 6.0 && ooo6 < 14.0);
    }

    #[test]
    fn subset_area_sums() {
        let a = AccelAreas::new();
        assert_eq!(a.subset_area(false, false, false, false), 0.0);
        let all = a.subset_area(true, true, true, true);
        assert!((all - (a.simd + a.dp_cgra + a.ns_df + a.trace_p)).abs() < 1e-12);
    }
}
