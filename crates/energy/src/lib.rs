//! # prism-energy
//!
//! Analytical energy, power, and area models — this repository's substitute
//! for McPAT \[29\] and CACTI \[34\] in *Analyzing Behavior Specialized
//! Acceleration* (ASPLOS 2016).
//!
//! The TDG associates energy events with graph nodes and edges; those event
//! counts are accumulated into [`EnergyEvents`] and fed to the
//! [`EnergyModel`], which prices each event at 22nm-class constants scaled
//! by structure size (width, window/ROB capacity, ports). Leakage is
//! proportional to modeled [`area`](core_area_mm2) and run length.
//!
//! # Examples
//!
//! ```
//! use prism_energy::{CoreEnergyConfig, EnergyEvents, EnergyModel};
//!
//! let model = EnergyModel::new();
//! let cfg = CoreEnergyConfig {
//!     width: 2, rob_size: 64, window_size: 32, out_of_order: true, dcache_ports: 1,
//! };
//! let mut events = EnergyEvents::new();
//! events.core.fetches = 1_000;
//! events.core.alu_ops = 800;
//! let b = model.breakdown(&events, &cfg, prism_energy::core_area_mm2(&cfg), 2_000);
//! assert!(b.total() > 0.0);
//! ```

#![warn(missing_docs)]

mod area;
mod events;
mod model;

pub use area::{core_area_mm2, AccelAreas};
pub use events::{AccelEvents, CoreEvents, EnergyEvents};
pub use model::{CoreEnergyConfig, EnergyBreakdown, EnergyModel};
