//! The analytical energy model — this repo's substitute for McPAT \[29\] and
//! CACTI \[34\].
//!
//! Per-event dynamic energies are constants at a 22nm-class node, scaled by
//! structure size where McPAT would do the same (wider rename, larger
//! window/ROB, more ports cost more per event). Leakage is proportional to
//! modeled area. Absolute joules are approximate; the *relative* energies
//! between configurations — which every result in the paper is expressed in
//! — follow the same structural trends McPAT produces.

use crate::{AccelEvents, CoreEvents, EnergyEvents};

/// Structural parameters of a general-purpose core that the energy model
/// cares about (a subset of the paper's Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreEnergyConfig {
    /// Pipeline width (fetch/dispatch/issue/writeback).
    pub width: u32,
    /// Reorder-buffer entries (0 for in-order).
    pub rob_size: u32,
    /// Issue-window entries (0 for in-order).
    pub window_size: u32,
    /// Whether the core is out-of-order.
    pub out_of_order: bool,
    /// Number of data-cache ports.
    pub dcache_ports: u32,
}

/// Energy and power figures produced by the model, in joules / watts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core pipeline dynamic energy (J).
    pub core_dynamic: f64,
    /// Accelerator dynamic energy (J).
    pub accel_dynamic: f64,
    /// Leakage energy over the run (J).
    pub leakage: f64,
}

impl EnergyBreakdown {
    /// Total energy (J).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.core_dynamic + self.accel_dynamic + self.leakage
    }
}

/// Per-event energy constants in picojoules and global technology numbers.
///
/// Defaults model a 22nm-class node at 2 GHz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Clock frequency (Hz), used to convert cycles to seconds for leakage.
    pub frequency_hz: f64,
    /// Leakage power density (W per mm² of active area).
    pub leakage_w_per_mm2: f64,
    // -- core events (pJ) --------------------------------------------------
    /// I-cache read + predecode per fetched instruction.
    pub fetch_pj: f64,
    /// Decode per instruction.
    pub decode_pj: f64,
    /// Rename/dispatch per instruction at width 1 (scales with width).
    pub rename_pj: f64,
    /// Issue-window insert+wakeup at 32 entries (scales with size).
    pub window_pj: f64,
    /// Register-file read.
    pub regread_pj: f64,
    /// Register-file write.
    pub regwrite_pj: f64,
    /// Simple ALU op.
    pub alu_pj: f64,
    /// Integer multiply/divide op.
    pub muldiv_pj: f64,
    /// FP op.
    pub fp_pj: f64,
    /// L1 D-cache access.
    pub dcache_pj: f64,
    /// L2 access.
    pub l2_pj: f64,
    /// DRAM access.
    pub dram_pj: f64,
    /// ROB write+read at 64 entries (scales with size).
    pub rob_pj: f64,
    /// Commit bookkeeping per instruction.
    pub commit_pj: f64,
    /// Branch predictor lookup/update.
    pub bp_pj: f64,
    /// Pipeline flush on mispredict.
    pub flush_pj: f64,
    // -- accelerator events (pJ) -------------------------------------------
    /// CGRA FU op incl. fabric routing (DySER-like).
    pub cgra_op_pj: f64,
    /// One CGRA configuration word.
    pub cgra_config_pj: f64,
    /// Core↔accelerator operand transfer.
    pub comm_pj: f64,
    /// Compound-FU op (amortizes fetch/decode over fused subops).
    pub cfu_op_pj: f64,
    /// Dataflow operand-storage access.
    pub op_storage_pj: f64,
    /// Writeback-bus transfer.
    pub bus_pj: f64,
    /// Store-buffer access.
    pub store_buffer_pj: f64,
    /// One SIMD lane-op.
    pub vector_lane_pj: f64,
    /// Mask/shuffle/predicate micro-op.
    pub mask_pj: f64,
    /// Host replay of one diverged trace iteration (fixed overhead on top
    /// of re-executed instructions, which are billed as core events).
    pub replay_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            frequency_hz: 2.0e9,
            leakage_w_per_mm2: 0.025,
            fetch_pj: 9.0,
            decode_pj: 2.0,
            rename_pj: 3.5,
            window_pj: 2.5,
            regread_pj: 1.2,
            regwrite_pj: 1.8,
            alu_pj: 2.0,
            muldiv_pj: 9.0,
            fp_pj: 10.0,
            dcache_pj: 18.0,
            l2_pj: 90.0,
            dram_pj: 2_000.0,
            rob_pj: 3.0,
            commit_pj: 1.0,
            bp_pj: 1.5,
            flush_pj: 40.0,
            cgra_op_pj: 3.0,
            cgra_config_pj: 6.0,
            comm_pj: 2.5,
            cfu_op_pj: 3.5,
            op_storage_pj: 1.5,
            bus_pj: 2.0,
            store_buffer_pj: 3.0,
            vector_lane_pj: 2.2,
            mask_pj: 1.5,
            replay_pj: 30.0,
        }
    }
}

impl EnergyModel {
    /// Creates the default 22nm-class model.
    #[must_use]
    pub fn new() -> Self {
        EnergyModel::default()
    }

    /// Size-scaling factor for CAM/RAM-like structures, normalized to
    /// `reference` entries. Sublinear, like CACTI's capacity curves.
    fn size_scale(entries: u32, reference: f64) -> f64 {
        if entries == 0 {
            0.0
        } else {
            (f64::from(entries) / reference).sqrt()
        }
    }

    /// Width-scaling for multiported structures: each extra port adds ~30%
    /// per-event energy (wiring + mux growth).
    fn port_scale(width: u32) -> f64 {
        1.0 + 0.3 * f64::from(width.saturating_sub(1))
    }

    /// Dynamic energy of the core pipeline (J).
    #[must_use]
    pub fn core_dynamic(&self, ev: &CoreEvents, cfg: &CoreEnergyConfig) -> f64 {
        let w = Self::port_scale(cfg.width);
        let mut pj = 0.0;
        pj += ev.fetches as f64 * self.fetch_pj;
        pj += ev.decodes as f64 * self.decode_pj;
        if cfg.out_of_order {
            pj += ev.renames as f64 * self.rename_pj * w;
            pj += ev.window_ops as f64 * self.window_pj * Self::size_scale(cfg.window_size, 32.0);
            pj += ev.rob_ops as f64 * self.rob_pj * Self::size_scale(cfg.rob_size, 64.0);
        }
        pj += ev.regfile_reads as f64 * self.regread_pj * w;
        pj += ev.regfile_writes as f64 * self.regwrite_pj * w;
        pj += ev.alu_ops as f64 * self.alu_pj;
        pj += ev.muldiv_ops as f64 * self.muldiv_pj;
        pj += ev.fp_ops as f64 * self.fp_pj;
        pj += ev.dcache_accesses as f64 * self.dcache_pj * Self::port_scale(cfg.dcache_ports);
        pj += ev.l2_accesses as f64 * self.l2_pj;
        pj += ev.dram_accesses as f64 * self.dram_pj;
        pj += ev.commits as f64 * self.commit_pj;
        pj += ev.bp_lookups as f64 * self.bp_pj;
        pj += ev.mispredict_flushes as f64 * self.flush_pj * w;
        pj * 1e-12
    }

    /// Dynamic energy of accelerator structures (J).
    #[must_use]
    pub fn accel_dynamic(&self, ev: &AccelEvents) -> f64 {
        let pj = ev.cgra_ops as f64 * self.cgra_op_pj
            + ev.cgra_config_words as f64 * self.cgra_config_pj
            + (ev.comm_sends + ev.comm_recvs) as f64 * self.comm_pj
            + ev.cfu_ops as f64 * self.cfu_op_pj
            + ev.op_storage_accesses as f64 * self.op_storage_pj
            + ev.writeback_bus_ops as f64 * self.bus_pj
            + ev.store_buffer_accesses as f64 * self.store_buffer_pj
            + ev.vector_lane_ops as f64 * self.vector_lane_pj
            + ev.mask_ops as f64 * self.mask_pj
            + ev.trace_replays as f64 * self.replay_pj;
        pj * 1e-12
    }

    /// Leakage energy for `area_mm2` of powered silicon over `cycles` (J).
    #[must_use]
    pub fn leakage(&self, area_mm2: f64, cycles: u64) -> f64 {
        self.leakage_w_per_mm2 * area_mm2 * (cycles as f64 / self.frequency_hz)
    }

    /// Full breakdown for a run: core + accelerator dynamic energy, plus
    /// leakage of `powered_area_mm2` over the run's `cycles`.
    #[must_use]
    pub fn breakdown(
        &self,
        events: &EnergyEvents,
        cfg: &CoreEnergyConfig,
        powered_area_mm2: f64,
        cycles: u64,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            core_dynamic: self.core_dynamic(&events.core, cfg),
            accel_dynamic: self.accel_dynamic(&events.accel),
            leakage: self.leakage(powered_area_mm2, cycles),
        }
    }

    /// Average power (W) given a total energy and cycle count.
    #[must_use]
    pub fn average_power(&self, total_joules: f64, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            total_joules / (cycles as f64 / self.frequency_hz)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_ooo(width: u32, rob: u32, window: u32) -> CoreEnergyConfig {
        CoreEnergyConfig {
            width,
            rob_size: rob,
            window_size: window,
            out_of_order: true,
            dcache_ports: 1,
        }
    }

    fn events_per_inst(n: u64) -> CoreEvents {
        CoreEvents {
            fetches: n,
            decodes: n,
            renames: n,
            window_ops: n,
            regfile_reads: 2 * n,
            regfile_writes: n,
            alu_ops: n,
            commits: n,
            rob_ops: n,
            ..CoreEvents::default()
        }
    }

    #[test]
    fn wider_cores_cost_more_per_instruction() {
        let m = EnergyModel::new();
        let ev = events_per_inst(1000);
        let e2 = m.core_dynamic(&ev, &cfg_ooo(2, 64, 32));
        let e6 = m.core_dynamic(&ev, &cfg_ooo(6, 192, 52));
        assert!(
            e6 > e2 * 1.2,
            "six-wide should cost materially more: {e6} vs {e2}"
        );
    }

    #[test]
    fn inorder_skips_ooo_structures() {
        let m = EnergyModel::new();
        let ev = events_per_inst(1000);
        let io = CoreEnergyConfig {
            width: 2,
            rob_size: 0,
            window_size: 0,
            out_of_order: false,
            dcache_ports: 1,
        };
        let e_io = m.core_dynamic(&ev, &io);
        let e_ooo = m.core_dynamic(&ev, &cfg_ooo(2, 64, 32));
        assert!(e_io < e_ooo, "in-order must be cheaper: {e_io} vs {e_ooo}");
    }

    #[test]
    fn dram_dominates_cache_hits() {
        let m = EnergyModel::new();
        let hit = CoreEvents {
            dcache_accesses: 100,
            ..CoreEvents::default()
        };
        let miss = CoreEvents {
            dram_accesses: 100,
            ..CoreEvents::default()
        };
        let cfg = cfg_ooo(2, 64, 32);
        assert!(m.core_dynamic(&miss, &cfg) > 10.0 * m.core_dynamic(&hit, &cfg));
    }

    #[test]
    fn accel_ops_cheaper_than_core_pipeline() {
        // The entire point of BSAs: executing an op on a CFU/CGRA skips
        // fetch/decode/rename/window energy.
        let m = EnergyModel::new();
        let core = m.core_dynamic(&events_per_inst(1), &cfg_ooo(4, 168, 48));
        let accel = AccelEvents {
            cfu_ops: 1,
            op_storage_accesses: 2,
            ..AccelEvents::default()
        };
        assert!(m.accel_dynamic(&accel) < core / 2.0);
    }

    #[test]
    fn leakage_scales_with_area_and_time() {
        let m = EnergyModel::new();
        let a = m.leakage(1.0, 1_000_000);
        assert!((m.leakage(2.0, 1_000_000) - 2.0 * a).abs() < 1e-15);
        assert!((m.leakage(1.0, 2_000_000) - 2.0 * a).abs() < 1e-15);
    }

    #[test]
    fn breakdown_totals() {
        let m = EnergyModel::new();
        let mut ev = EnergyEvents::new();
        ev.core = events_per_inst(10);
        ev.accel.vector_lane_ops = 40;
        let b = m.breakdown(&ev, &cfg_ooo(2, 64, 32), 3.0, 1000);
        assert!(b.core_dynamic > 0.0 && b.accel_dynamic > 0.0 && b.leakage > 0.0);
        assert!((b.total() - (b.core_dynamic + b.accel_dynamic + b.leakage)).abs() < 1e-18);
    }

    #[test]
    fn average_power_is_energy_over_time() {
        let m = EnergyModel::new();
        // 1 J over 2e9 cycles at 2 GHz = 1 second ⇒ 1 W.
        let p = m.average_power(1.0, 2_000_000_000);
        assert!((p - 1.0).abs() < 1e-12);
        assert_eq!(m.average_power(1.0, 0), 0.0);
    }
}
