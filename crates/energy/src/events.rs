//! Energy event counters accumulated from TDG nodes and edges.
//!
//! The paper (§2.3): "For energy, we associate events with nodes and edges,
//! which can be accumulated and fed to standard energy-modeling tools."
//! This is the accumulator; [`EnergyModel`](crate::EnergyModel) is the
//! McPAT/CACTI-substitute it is fed to.

/// Event counts for the general-purpose core pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreEvents {
    /// Instructions fetched (I-cache reads + predecode).
    pub fetches: u64,
    /// Instructions decoded.
    pub decodes: u64,
    /// Rename/dispatch operations (OOO only).
    pub renames: u64,
    /// Issue-window insertions + wakeups (OOO only).
    pub window_ops: u64,
    /// Register-file reads.
    pub regfile_reads: u64,
    /// Register-file writes.
    pub regfile_writes: u64,
    /// Simple ALU operations.
    pub alu_ops: u64,
    /// Integer multiply/divide operations.
    pub muldiv_ops: u64,
    /// FP operations.
    pub fp_ops: u64,
    /// L1 D-cache accesses.
    pub dcache_accesses: u64,
    /// L2 accesses (L1 misses).
    pub l2_accesses: u64,
    /// DRAM accesses (L2 misses).
    pub dram_accesses: u64,
    /// ROB writes + reads at commit (OOO only).
    pub rob_ops: u64,
    /// Committed instructions.
    pub commits: u64,
    /// Branch-predictor lookups.
    pub bp_lookups: u64,
    /// Pipeline flushes from branch mispredicts.
    pub mispredict_flushes: u64,
}

/// Event counts for accelerator structures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelEvents {
    /// Operations executed on CGRA functional units (DP-CGRA).
    pub cgra_ops: u64,
    /// CGRA configuration words loaded.
    pub cgra_config_words: u64,
    /// Core→accelerator operand transfers.
    pub comm_sends: u64,
    /// Accelerator→core operand transfers.
    pub comm_recvs: u64,
    /// Compound-FU operations (NS-DF / Trace-P).
    pub cfu_ops: u64,
    /// Dataflow operand-storage reads/writes (NS-DF / Trace-P).
    pub op_storage_accesses: u64,
    /// Writeback-bus transfers (NS-DF / Trace-P).
    pub writeback_bus_ops: u64,
    /// Store-buffer accesses (Trace-P iteration-versioned buffer).
    pub store_buffer_accesses: u64,
    /// SIMD lane-operations (one per active lane).
    pub vector_lane_ops: u64,
    /// Mask/shuffle/predicate micro-ops inserted by vectorization.
    pub mask_ops: u64,
    /// Iterations replayed on the host after a trace mispeculation.
    pub trace_replays: u64,
}

/// Full event record: core + accelerator activity for one modeled run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnergyEvents {
    /// General-purpose-core pipeline events.
    pub core: CoreEvents,
    /// Accelerator-structure events.
    pub accel: AccelEvents,
}

macro_rules! add_fields {
    ($dst:expr, $src:expr, $($f:ident),+ $(,)?) => {
        $( $dst.$f += $src.$f; )+
    };
}

macro_rules! sub_fields {
    ($out:expr, $a:expr, $b:expr, $($f:ident),+ $(,)?) => {
        $( $out.$f = $a.$f - $b.$f; )+
    };
}

impl CoreEvents {
    /// Adds another record's counts into this one.
    pub fn merge(&mut self, other: &CoreEvents) {
        add_fields!(
            self,
            other,
            fetches,
            decodes,
            renames,
            window_ops,
            regfile_reads,
            regfile_writes,
            alu_ops,
            muldiv_ops,
            fp_ops,
            dcache_accesses,
            l2_accesses,
            dram_accesses,
            rob_ops,
            commits,
            bp_lookups,
            mispredict_flushes
        );
    }

    /// Field-wise difference `self - earlier`.
    #[must_use]
    pub fn since(&self, earlier: &CoreEvents) -> CoreEvents {
        let mut out = CoreEvents::default();
        sub_fields!(
            out,
            self,
            earlier,
            fetches,
            decodes,
            renames,
            window_ops,
            regfile_reads,
            regfile_writes,
            alu_ops,
            muldiv_ops,
            fp_ops,
            dcache_accesses,
            l2_accesses,
            dram_accesses,
            rob_ops,
            commits,
            bp_lookups,
            mispredict_flushes
        );
        out
    }
}

impl AccelEvents {
    /// Adds another record's counts into this one.
    pub fn merge(&mut self, other: &AccelEvents) {
        add_fields!(
            self,
            other,
            cgra_ops,
            cgra_config_words,
            comm_sends,
            comm_recvs,
            cfu_ops,
            op_storage_accesses,
            writeback_bus_ops,
            store_buffer_accesses,
            vector_lane_ops,
            mask_ops,
            trace_replays
        );
    }

    /// Field-wise difference `self - earlier` (used to attribute a region's
    /// events to a unit by snapshotting around it).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds `self`'s.
    #[must_use]
    pub fn since(&self, earlier: &AccelEvents) -> AccelEvents {
        let mut out = AccelEvents::default();
        sub_fields!(
            out,
            self,
            earlier,
            cgra_ops,
            cgra_config_words,
            comm_sends,
            comm_recvs,
            cfu_ops,
            op_storage_accesses,
            writeback_bus_ops,
            store_buffer_accesses,
            vector_lane_ops,
            mask_ops,
            trace_replays
        );
        out
    }
}

impl EnergyEvents {
    /// Creates an empty record.
    #[must_use]
    pub fn new() -> Self {
        EnergyEvents::default()
    }

    /// Adds another record's counts into this one.
    pub fn merge(&mut self, other: &EnergyEvents) {
        self.core.merge(&other.core);
        self.accel.merge(&other.accel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_core_fields() {
        let mut a = EnergyEvents::new();
        a.core.fetches = 10;
        a.core.mispredict_flushes = 1;
        let mut b = EnergyEvents::new();
        b.core.fetches = 5;
        b.core.commits = 7;
        a.merge(&b);
        assert_eq!(a.core.fetches, 15);
        assert_eq!(a.core.commits, 7);
        assert_eq!(a.core.mispredict_flushes, 1);
    }

    #[test]
    fn merge_sums_accel_fields() {
        let mut a = EnergyEvents::new();
        a.accel.cgra_ops = 100;
        let mut b = EnergyEvents::new();
        b.accel.cgra_ops = 50;
        b.accel.trace_replays = 2;
        a.merge(&b);
        assert_eq!(a.accel.cgra_ops, 150);
        assert_eq!(a.accel.trace_replays, 2);
    }

    #[test]
    fn default_is_zeroed() {
        let e = EnergyEvents::new();
        assert_eq!(e.core.fetches, 0);
        assert_eq!(e.accel.cfu_ops, 0);
    }
}
