//! JSON encoding/decoding for cached [`DesignResult`] artifacts and
//! (schema v2) length-prefixed [`TraceChunk`] artifacts.
//!
//! Decoding is strict: any missing or mistyped field yields `None`, which
//! the session treats as a cache miss (recompute and overwrite) rather than
//! an error. Trace chunks additionally carry an explicit `len` prefix that
//! must match the instruction array — a truncated or padded array decodes
//! to `None` even if every element parses.

use prism_energy::{AccelEvents, CoreEvents, EnergyEvents};
use prism_exocore::{DesignResult, WorkloadMetrics};
use prism_sim::{BranchRecord, DynInst, MemLevel, MemRecord, TraceChunk, TraceStats};
use prism_tdg::{ExecUnit, ExoTiming, TimelineSample};

use crate::error::PipelineError;
use crate::json::Json;

/// Encodes one design result as a JSON payload.
#[must_use]
pub fn encode_design_result(r: &DesignResult) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::Str(r.label.clone())),
        ("core".into(), Json::Str(r.core.clone())),
        ("bsas".into(), Json::Str(r.bsas.clone())),
        ("area_mm2".into(), Json::F64(r.area_mm2)),
        (
            "per_workload".into(),
            Json::Arr(r.per_workload.iter().map(encode_metrics).collect()),
        ),
    ])
}

fn encode_metrics(m: &WorkloadMetrics) -> Json {
    Json::Obj(vec![
        ("workload".into(), Json::Str(m.workload.clone())),
        ("cycles".into(), Json::U64(m.cycles)),
        ("energy".into(), Json::F64(m.energy)),
        ("unaccelerated".into(), Json::F64(m.unaccelerated)),
        (
            "unit_cycles".into(),
            Json::Arr(m.unit_cycles.iter().map(|&c| Json::U64(c)).collect()),
        ),
        (
            "unit_energy".into(),
            Json::Arr(m.unit_energy.iter().map(|&e| Json::F64(e)).collect()),
        ),
    ])
}

/// Decodes a design result payload; `None` on any shape mismatch.
#[must_use]
pub fn decode_design_result(json: &Json) -> Option<DesignResult> {
    let per_workload = json
        .get("per_workload")?
        .as_arr()?
        .iter()
        .map(decode_metrics)
        .collect::<Option<_>>()?;
    Some(DesignResult {
        label: json.get("label")?.as_str()?.to_string(),
        core: json.get("core")?.as_str()?.to_string(),
        bsas: json.get("bsas")?.as_str()?.to_string(),
        area_mm2: json.get("area_mm2")?.as_f64()?,
        per_workload,
    })
}

fn decode_metrics(json: &Json) -> Option<WorkloadMetrics> {
    let unit_cycles: Vec<u64> = json
        .get("unit_cycles")?
        .as_arr()?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<_>>()?;
    let unit_energy: Vec<f64> = json
        .get("unit_energy")?
        .as_arr()?
        .iter()
        .map(Json::as_f64)
        .collect::<Option<_>>()?;
    Some(WorkloadMetrics {
        workload: json.get("workload")?.as_str()?.to_string(),
        cycles: json.get("cycles")?.as_u64()?,
        energy: json.get("energy")?.as_f64()?,
        unaccelerated: json.get("unaccelerated")?.as_f64()?,
        unit_cycles: unit_cycles.try_into().ok()?,
        unit_energy: unit_energy.try_into().ok()?,
    })
}

/// Encodes a pipeline error for wire formats and the sweep journal.
/// Stage and kind use their stable [`Display`](std::fmt::Display) text,
/// which [`FromStr`](std::str::FromStr) inverts exactly.
#[must_use]
pub fn encode_pipeline_error(e: &PipelineError) -> Json {
    Json::Obj(vec![
        ("workload".into(), Json::Str(e.workload.clone())),
        ("stage".into(), Json::Str(e.stage.to_string())),
        ("kind".into(), Json::Str(e.kind.to_string())),
        ("message".into(), Json::Str(e.message.clone())),
    ])
}

/// Decodes a pipeline error; `None` on any shape mismatch or an unknown
/// stage/kind name (e.g. a record written by a newer build).
#[must_use]
pub fn decode_pipeline_error(json: &Json) -> Option<PipelineError> {
    Some(PipelineError {
        workload: json.get("workload")?.as_str()?.to_string(),
        stage: json.get("stage")?.as_str()?.parse().ok()?,
        kind: json.get("kind")?.as_str()?.parse().ok()?,
        message: json.get("message")?.as_str()?.to_string(),
    })
}

/// Encodes one trace chunk as a length-prefixed JSON payload (schema v2).
///
/// Every `DynInst` field is an integer, so the round trip through the
/// store's JSON envelope is lossless. `seq` values are implicit
/// (`first_seq + position`), and the explicit `len` prefix lets the
/// decoder reject truncated instruction arrays outright.
#[must_use]
pub fn encode_trace_chunk(c: &TraceChunk) -> Json {
    Json::Obj(vec![
        ("index".into(), Json::U64(c.index)),
        ("first_seq".into(), Json::U64(c.first_seq)),
        ("last".into(), Json::Bool(c.last)),
        ("len".into(), Json::U64(c.insts.len() as u64)),
        ("stats".into(), encode_trace_stats(&c.stats)),
        (
            "insts".into(),
            Json::Arr(c.insts.iter().map(encode_dyn_inst).collect()),
        ),
    ])
}

fn encode_trace_stats(s: &TraceStats) -> Json {
    Json::Obj(vec![
        ("insts".into(), Json::U64(s.insts)),
        ("loads".into(), Json::U64(s.loads)),
        ("stores".into(), Json::U64(s.stores)),
        ("cond_branches".into(), Json::U64(s.cond_branches)),
        ("mispredicts".into(), Json::U64(s.mispredicts)),
        ("l1_hits".into(), Json::U64(s.l1_hits)),
        ("l2_hits".into(), Json::U64(s.l2_hits)),
        ("dram_accesses".into(), Json::U64(s.dram_accesses)),
    ])
}

/// One instruction is a positional array: `[sid, mem, branch]` where
/// `mem` is `null` or `[addr, width, is_store, latency, level]` and
/// `branch` is `null` or `[taken, target, mispredicted]`.
fn encode_dyn_inst(d: &DynInst) -> Json {
    let mem = match &d.mem {
        None => Json::Null,
        Some(m) => Json::Arr(vec![
            Json::U64(m.addr),
            Json::U64(u64::from(m.width)),
            Json::U64(u64::from(m.is_store)),
            Json::U64(u64::from(m.latency)),
            Json::U64(match m.level {
                MemLevel::L1 => 0,
                MemLevel::L2 => 1,
                MemLevel::Dram => 2,
            }),
        ]),
    };
    let branch = match &d.branch {
        None => Json::Null,
        Some(b) => Json::Arr(vec![
            Json::U64(u64::from(b.taken)),
            Json::U64(u64::from(b.target)),
            Json::U64(u64::from(b.mispredicted)),
        ]),
    };
    Json::Arr(vec![Json::U64(u64::from(d.sid)), mem, branch])
}

/// Decodes a trace chunk payload; `None` on any shape mismatch, including
/// a `len` prefix that disagrees with the instruction array.
#[must_use]
pub fn decode_trace_chunk(json: &Json) -> Option<TraceChunk> {
    let first_seq = json.get("first_seq")?.as_u64()?;
    let len = json.get("len")?.as_u64()?;
    let arr = json.get("insts")?.as_arr()?;
    if arr.len() as u64 != len {
        return None;
    }
    let insts = arr
        .iter()
        .enumerate()
        .map(|(i, j)| decode_dyn_inst(j, first_seq + i as u64))
        .collect::<Option<Vec<_>>>()?;
    Some(TraceChunk {
        index: json.get("index")?.as_u64()?,
        first_seq,
        insts,
        stats: decode_trace_stats(json.get("stats")?)?,
        last: json.get("last")?.as_bool()?,
    })
}

fn decode_trace_stats(json: &Json) -> Option<TraceStats> {
    Some(TraceStats {
        insts: json.get("insts")?.as_u64()?,
        loads: json.get("loads")?.as_u64()?,
        stores: json.get("stores")?.as_u64()?,
        cond_branches: json.get("cond_branches")?.as_u64()?,
        mispredicts: json.get("mispredicts")?.as_u64()?,
        l1_hits: json.get("l1_hits")?.as_u64()?,
        l2_hits: json.get("l2_hits")?.as_u64()?,
        dram_accesses: json.get("dram_accesses")?.as_u64()?,
    })
}

fn decode_dyn_inst(json: &Json, seq: u64) -> Option<DynInst> {
    let fields = json.as_arr()?;
    let [sid, mem, branch] = fields else {
        return None;
    };
    let mem = match mem {
        Json::Null => None,
        m => {
            let [addr, width, is_store, latency, level] = m.as_arr()? else {
                return None;
            };
            Some(MemRecord {
                addr: addr.as_u64()?,
                width: u8::try_from(width.as_u64()?).ok()?,
                is_store: is_store.as_u64()? != 0,
                latency: u32::try_from(latency.as_u64()?).ok()?,
                level: match level.as_u64()? {
                    0 => MemLevel::L1,
                    1 => MemLevel::L2,
                    2 => MemLevel::Dram,
                    _ => return None,
                },
            })
        }
    };
    let branch = match branch {
        Json::Null => None,
        b => {
            let [taken, target, mispredicted] = b.as_arr()? else {
                return None;
            };
            Some(BranchRecord {
                taken: taken.as_u64()? != 0,
                target: u32::try_from(target.as_u64()?).ok()?,
                mispredicted: mispredicted.as_u64()? != 0,
            })
        }
    };
    Some(DynInst {
        seq,
        sid: u32::try_from(sid.as_u64()?).ok()?,
        mem,
        branch,
    })
}

/// Encodes one trace-walk timing summary ([`ExoTiming`]) as a JSON
/// payload — the persistent timing artifact the session stores under the
/// µDG shape key.
///
/// Every field is an integer (cycle/instruction counts, event counters,
/// timeline samples), so the round trip through the store's JSON envelope
/// is lossless. Event records are positional arrays in declaration order,
/// and the timeline carries an explicit `len` prefix like trace chunks,
/// so a truncated sample array decodes to `None` outright.
#[must_use]
pub fn encode_exo_timing(t: &ExoTiming) -> Json {
    Json::Obj(vec![
        ("cycles".into(), Json::U64(t.cycles)),
        ("insts".into(), Json::U64(t.insts)),
        ("events".into(), encode_energy_events(&t.events)),
        (
            "unit_cycles".into(),
            Json::Arr(t.unit_cycles.iter().map(|&c| Json::U64(c)).collect()),
        ),
        (
            "unit_insts".into(),
            Json::Arr(t.unit_insts.iter().map(|&c| Json::U64(c)).collect()),
        ),
        (
            "unit_accel".into(),
            Json::Arr(t.unit_accel.iter().map(encode_accel_events).collect()),
        ),
        (
            "unit_core".into(),
            Json::Arr(t.unit_core.iter().map(encode_core_events).collect()),
        ),
        ("timeline_len".into(), Json::U64(t.timeline.len() as u64)),
        (
            "timeline".into(),
            Json::Arr(t.timeline.iter().map(encode_timeline_sample).collect()),
        ),
        ("trace_replays".into(), Json::U64(t.trace_replays)),
    ])
}

fn encode_energy_events(e: &EnergyEvents) -> Json {
    Json::Obj(vec![
        ("core".into(), encode_core_events(&e.core)),
        ("accel".into(), encode_accel_events(&e.accel)),
    ])
}

fn encode_core_events(e: &CoreEvents) -> Json {
    Json::Arr(vec![
        Json::U64(e.fetches),
        Json::U64(e.decodes),
        Json::U64(e.renames),
        Json::U64(e.window_ops),
        Json::U64(e.regfile_reads),
        Json::U64(e.regfile_writes),
        Json::U64(e.alu_ops),
        Json::U64(e.muldiv_ops),
        Json::U64(e.fp_ops),
        Json::U64(e.dcache_accesses),
        Json::U64(e.l2_accesses),
        Json::U64(e.dram_accesses),
        Json::U64(e.rob_ops),
        Json::U64(e.commits),
        Json::U64(e.bp_lookups),
        Json::U64(e.mispredict_flushes),
    ])
}

fn encode_accel_events(e: &AccelEvents) -> Json {
    Json::Arr(vec![
        Json::U64(e.cgra_ops),
        Json::U64(e.cgra_config_words),
        Json::U64(e.comm_sends),
        Json::U64(e.comm_recvs),
        Json::U64(e.cfu_ops),
        Json::U64(e.op_storage_accesses),
        Json::U64(e.writeback_bus_ops),
        Json::U64(e.store_buffer_accesses),
        Json::U64(e.vector_lane_ops),
        Json::U64(e.mask_ops),
        Json::U64(e.trace_replays),
    ])
}

/// One timeline sample is a positional array: `[end_seq, end_cycle, unit]`
/// with the unit as its `ExecUnit` discriminant.
fn encode_timeline_sample(s: &TimelineSample) -> Json {
    Json::Arr(vec![
        Json::U64(s.end_seq),
        Json::U64(s.end_cycle),
        Json::U64(s.unit as u64),
    ])
}

/// Decodes a timing-artifact payload; `None` on any shape mismatch,
/// including wrong event-array arity, an unknown unit discriminant, or a
/// `timeline_len` prefix that disagrees with the sample array.
#[must_use]
pub fn decode_exo_timing(json: &Json) -> Option<ExoTiming> {
    let unit_cycles: Vec<u64> = json
        .get("unit_cycles")?
        .as_arr()?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<_>>()?;
    let unit_insts: Vec<u64> = json
        .get("unit_insts")?
        .as_arr()?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<_>>()?;
    let unit_accel: Vec<AccelEvents> = json
        .get("unit_accel")?
        .as_arr()?
        .iter()
        .map(decode_accel_events)
        .collect::<Option<_>>()?;
    let unit_core: Vec<CoreEvents> = json
        .get("unit_core")?
        .as_arr()?
        .iter()
        .map(decode_core_events)
        .collect::<Option<_>>()?;
    let timeline_len = json.get("timeline_len")?.as_u64()?;
    let samples = json.get("timeline")?.as_arr()?;
    if samples.len() as u64 != timeline_len {
        return None;
    }
    let timeline = samples
        .iter()
        .map(decode_timeline_sample)
        .collect::<Option<Vec<_>>>()?;
    Some(ExoTiming {
        cycles: json.get("cycles")?.as_u64()?,
        insts: json.get("insts")?.as_u64()?,
        events: decode_energy_events(json.get("events")?)?,
        unit_cycles: unit_cycles.try_into().ok()?,
        unit_insts: unit_insts.try_into().ok()?,
        unit_accel: unit_accel.try_into().ok()?,
        unit_core: unit_core.try_into().ok()?,
        timeline,
        trace_replays: json.get("trace_replays")?.as_u64()?,
    })
}

fn decode_energy_events(json: &Json) -> Option<EnergyEvents> {
    Some(EnergyEvents {
        core: decode_core_events(json.get("core")?)?,
        accel: decode_accel_events(json.get("accel")?)?,
    })
}

fn decode_core_events(json: &Json) -> Option<CoreEvents> {
    let [fetches, decodes, renames, window_ops, regfile_reads, regfile_writes, alu_ops, muldiv_ops, fp_ops, dcache_accesses, l2_accesses, dram_accesses, rob_ops, commits, bp_lookups, mispredict_flushes] =
        json.as_arr()?
    else {
        return None;
    };
    Some(CoreEvents {
        fetches: fetches.as_u64()?,
        decodes: decodes.as_u64()?,
        renames: renames.as_u64()?,
        window_ops: window_ops.as_u64()?,
        regfile_reads: regfile_reads.as_u64()?,
        regfile_writes: regfile_writes.as_u64()?,
        alu_ops: alu_ops.as_u64()?,
        muldiv_ops: muldiv_ops.as_u64()?,
        fp_ops: fp_ops.as_u64()?,
        dcache_accesses: dcache_accesses.as_u64()?,
        l2_accesses: l2_accesses.as_u64()?,
        dram_accesses: dram_accesses.as_u64()?,
        rob_ops: rob_ops.as_u64()?,
        commits: commits.as_u64()?,
        bp_lookups: bp_lookups.as_u64()?,
        mispredict_flushes: mispredict_flushes.as_u64()?,
    })
}

fn decode_accel_events(json: &Json) -> Option<AccelEvents> {
    let [cgra_ops, cgra_config_words, comm_sends, comm_recvs, cfu_ops, op_storage_accesses, writeback_bus_ops, store_buffer_accesses, vector_lane_ops, mask_ops, trace_replays] =
        json.as_arr()?
    else {
        return None;
    };
    Some(AccelEvents {
        cgra_ops: cgra_ops.as_u64()?,
        cgra_config_words: cgra_config_words.as_u64()?,
        comm_sends: comm_sends.as_u64()?,
        comm_recvs: comm_recvs.as_u64()?,
        cfu_ops: cfu_ops.as_u64()?,
        op_storage_accesses: op_storage_accesses.as_u64()?,
        writeback_bus_ops: writeback_bus_ops.as_u64()?,
        store_buffer_accesses: store_buffer_accesses.as_u64()?,
        vector_lane_ops: vector_lane_ops.as_u64()?,
        mask_ops: mask_ops.as_u64()?,
        trace_replays: trace_replays.as_u64()?,
    })
}

fn decode_timeline_sample(json: &Json) -> Option<TimelineSample> {
    let [end_seq, end_cycle, unit] = json.as_arr()? else {
        return None;
    };
    Some(TimelineSample {
        end_seq: end_seq.as_u64()?,
        end_cycle: end_cycle.as_u64()?,
        unit: match unit.as_u64()? {
            0 => ExecUnit::Gpp,
            1 => ExecUnit::Simd,
            2 => ExecUnit::DpCgra,
            3 => ExecUnit::NsDf,
            4 => ExecUnit::TraceP,
            _ => return None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DesignResult {
        DesignResult {
            label: "OOO2-SDN".into(),
            core: "OOO2".into(),
            bsas: "SDN".into(),
            area_mm2: 7.25,
            per_workload: vec![WorkloadMetrics {
                workload: "stencil".into(),
                cycles: (1u64 << 53) + 3,
                energy: 1.0 / 3.0,
                unaccelerated: 0.125,
                unit_cycles: [10, 20, 30, 40, 50],
                unit_energy: [0.1, 0.2, 0.3, 0.4, 0.5],
            }],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let r = sample();
        let text = encode_design_result(&r).to_string();
        let back = decode_design_result(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn shape_mismatch_decodes_to_none() {
        let mut json = encode_design_result(&sample());
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "area_mm2");
        }
        assert_eq!(decode_design_result(&json), None);
        assert_eq!(decode_design_result(&Json::Null), None);
    }

    fn sample_chunk() -> TraceChunk {
        TraceChunk {
            index: 3,
            first_seq: 192,
            insts: vec![
                DynInst {
                    seq: 192,
                    sid: 7,
                    mem: None,
                    branch: None,
                },
                DynInst {
                    seq: 193,
                    sid: 8,
                    mem: Some(MemRecord {
                        addr: 0x1008,
                        width: 8,
                        is_store: true,
                        latency: 14,
                        level: MemLevel::L2,
                    }),
                    branch: None,
                },
                DynInst {
                    seq: 194,
                    sid: 9,
                    mem: None,
                    branch: Some(BranchRecord {
                        taken: true,
                        target: 7,
                        mispredicted: false,
                    }),
                },
            ],
            stats: TraceStats {
                insts: 195,
                loads: 40,
                stores: 22,
                cond_branches: 31,
                mispredicts: 2,
                l1_hits: 55,
                l2_hits: 6,
                dram_accesses: 1,
            },
            last: false,
        }
    }

    #[test]
    fn trace_chunk_roundtrip_is_exact() {
        let c = sample_chunk();
        let text = encode_trace_chunk(&c).to_string();
        let back = decode_trace_chunk(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.index, c.index);
        assert_eq!(back.first_seq, c.first_seq);
        assert_eq!(back.last, c.last);
        assert_eq!(back.stats, c.stats);
        assert_eq!(back.insts, c.insts);
    }

    #[test]
    fn pipeline_error_roundtrip_is_exact() {
        let e = PipelineError::store_io("stencil", "disk on fire\nline two");
        let text = encode_pipeline_error(&e).to_string();
        let back = decode_pipeline_error(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn pipeline_error_rejects_unknown_stage() {
        let mut json = encode_pipeline_error(&PipelineError::store_io("x", "y"));
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "stage" {
                    *v = Json::Str("warp".into());
                }
            }
        }
        assert_eq!(decode_pipeline_error(&json), None);
        assert_eq!(decode_pipeline_error(&Json::Null), None);
    }

    fn sample_timing() -> ExoTiming {
        let mut accel = [AccelEvents::default(); 5];
        accel[1].vector_lane_ops = 4096;
        accel[1].mask_ops = 17;
        accel[4].store_buffer_accesses = 9;
        accel[4].trace_replays = 2;
        let mut core = [CoreEvents::default(); 5];
        core[0].fetches = (1u64 << 53) + 11;
        core[0].mispredict_flushes = 3;
        core[2].dcache_accesses = 777;
        ExoTiming {
            cycles: 123_456,
            insts: 20_000,
            events: EnergyEvents {
                core: core[0],
                accel: accel[1],
            },
            unit_cycles: [100, 200, 300, 400, 500],
            unit_insts: [10, 20, 30, 40, 50],
            unit_accel: accel,
            unit_core: core,
            timeline: vec![
                TimelineSample {
                    end_seq: 64,
                    end_cycle: 90,
                    unit: ExecUnit::Gpp,
                },
                TimelineSample {
                    end_seq: 128,
                    end_cycle: 150,
                    unit: ExecUnit::TraceP,
                },
            ],
            trace_replays: 2,
        }
    }

    #[test]
    fn exo_timing_roundtrip_is_exact() {
        let t = sample_timing();
        let text = encode_exo_timing(&t).to_string();
        let back = decode_exo_timing(&Json::parse(&text).unwrap()).unwrap();
        // ExoTiming is all integers/enums, so the Debug forms are a
        // complete field-by-field equality check.
        assert_eq!(format!("{back:?}"), format!("{t:?}"));
    }

    #[test]
    fn exo_timing_rejects_shape_mismatches() {
        let good = encode_exo_timing(&sample_timing());
        assert!(decode_exo_timing(&good).is_some());
        assert!(decode_exo_timing(&Json::Null).is_none());

        // Missing field.
        let mut json = good.clone();
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "events");
        }
        assert!(decode_exo_timing(&json).is_none());

        // Truncated per-unit event array (4 entries instead of 5).
        let mut json = good.clone();
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "unit_accel" {
                    if let Json::Arr(items) = v {
                        items.pop();
                    }
                }
            }
        }
        assert!(decode_exo_timing(&json).is_none());

        // Timeline length prefix disagreeing with the sample array.
        let mut json = good.clone();
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "timeline" {
                    if let Json::Arr(items) = v {
                        items.pop();
                    }
                }
            }
        }
        assert!(decode_exo_timing(&json).is_none());

        // Unknown unit discriminant.
        let mut json = good;
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "timeline" {
                    if let Json::Arr(items) = v {
                        items[0] = Json::Arr(vec![Json::U64(1), Json::U64(2), Json::U64(9)]);
                    }
                }
            }
        }
        assert!(decode_exo_timing(&json).is_none());
    }

    #[test]
    fn trace_chunk_length_prefix_rejects_truncation() {
        let mut json = encode_trace_chunk(&sample_chunk());
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "insts" {
                    if let Json::Arr(items) = v {
                        items.pop();
                    }
                }
            }
        }
        assert_eq!(decode_trace_chunk(&json), None);
        assert_eq!(decode_trace_chunk(&Json::Null), None);
    }
}
