//! JSON encoding/decoding for cached [`DesignResult`] artifacts.
//!
//! Decoding is strict: any missing or mistyped field yields `None`, which
//! the session treats as a cache miss (recompute and overwrite) rather than
//! an error.

use prism_exocore::{DesignResult, WorkloadMetrics};

use crate::json::Json;

/// Encodes one design result as a JSON payload.
#[must_use]
pub fn encode_design_result(r: &DesignResult) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::Str(r.label.clone())),
        ("core".into(), Json::Str(r.core.clone())),
        ("bsas".into(), Json::Str(r.bsas.clone())),
        ("area_mm2".into(), Json::F64(r.area_mm2)),
        (
            "per_workload".into(),
            Json::Arr(r.per_workload.iter().map(encode_metrics).collect()),
        ),
    ])
}

fn encode_metrics(m: &WorkloadMetrics) -> Json {
    Json::Obj(vec![
        ("workload".into(), Json::Str(m.workload.clone())),
        ("cycles".into(), Json::U64(m.cycles)),
        ("energy".into(), Json::F64(m.energy)),
        ("unaccelerated".into(), Json::F64(m.unaccelerated)),
        (
            "unit_cycles".into(),
            Json::Arr(m.unit_cycles.iter().map(|&c| Json::U64(c)).collect()),
        ),
        (
            "unit_energy".into(),
            Json::Arr(m.unit_energy.iter().map(|&e| Json::F64(e)).collect()),
        ),
    ])
}

/// Decodes a design result payload; `None` on any shape mismatch.
#[must_use]
pub fn decode_design_result(json: &Json) -> Option<DesignResult> {
    let per_workload = json
        .get("per_workload")?
        .as_arr()?
        .iter()
        .map(decode_metrics)
        .collect::<Option<_>>()?;
    Some(DesignResult {
        label: json.get("label")?.as_str()?.to_string(),
        core: json.get("core")?.as_str()?.to_string(),
        bsas: json.get("bsas")?.as_str()?.to_string(),
        area_mm2: json.get("area_mm2")?.as_f64()?,
        per_workload,
    })
}

fn decode_metrics(json: &Json) -> Option<WorkloadMetrics> {
    let unit_cycles: Vec<u64> = json
        .get("unit_cycles")?
        .as_arr()?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<_>>()?;
    let unit_energy: Vec<f64> = json
        .get("unit_energy")?
        .as_arr()?
        .iter()
        .map(Json::as_f64)
        .collect::<Option<_>>()?;
    Some(WorkloadMetrics {
        workload: json.get("workload")?.as_str()?.to_string(),
        cycles: json.get("cycles")?.as_u64()?,
        energy: json.get("energy")?.as_f64()?,
        unaccelerated: json.get("unaccelerated")?.as_f64()?,
        unit_cycles: unit_cycles.try_into().ok()?,
        unit_energy: unit_energy.try_into().ok()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DesignResult {
        DesignResult {
            label: "OOO2-SDN".into(),
            core: "OOO2".into(),
            bsas: "SDN".into(),
            area_mm2: 7.25,
            per_workload: vec![WorkloadMetrics {
                workload: "stencil".into(),
                cycles: (1u64 << 53) + 3,
                energy: 1.0 / 3.0,
                unaccelerated: 0.125,
                unit_cycles: [10, 20, 30, 40, 50],
                unit_energy: [0.1, 0.2, 0.3, 0.4, 0.5],
            }],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let r = sample();
        let text = encode_design_result(&r).to_string();
        let back = decode_design_result(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn shape_mismatch_decodes_to_none() {
        let mut json = encode_design_result(&sample());
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "area_mm2");
        }
        assert_eq!(decode_design_result(&json), None);
        assert_eq!(decode_design_result(&Json::Null), None);
    }
}
