//! JSON encoding/decoding for cached [`DesignResult`] artifacts and
//! (schema v2) length-prefixed [`TraceChunk`] artifacts.
//!
//! Decoding is strict: any missing or mistyped field yields `None`, which
//! the session treats as a cache miss (recompute and overwrite) rather than
//! an error. Trace chunks additionally carry an explicit `len` prefix that
//! must match the instruction array — a truncated or padded array decodes
//! to `None` even if every element parses.

use prism_exocore::{DesignResult, WorkloadMetrics};
use prism_sim::{BranchRecord, DynInst, MemLevel, MemRecord, TraceChunk, TraceStats};

use crate::error::PipelineError;
use crate::json::Json;

/// Encodes one design result as a JSON payload.
#[must_use]
pub fn encode_design_result(r: &DesignResult) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::Str(r.label.clone())),
        ("core".into(), Json::Str(r.core.clone())),
        ("bsas".into(), Json::Str(r.bsas.clone())),
        ("area_mm2".into(), Json::F64(r.area_mm2)),
        (
            "per_workload".into(),
            Json::Arr(r.per_workload.iter().map(encode_metrics).collect()),
        ),
    ])
}

fn encode_metrics(m: &WorkloadMetrics) -> Json {
    Json::Obj(vec![
        ("workload".into(), Json::Str(m.workload.clone())),
        ("cycles".into(), Json::U64(m.cycles)),
        ("energy".into(), Json::F64(m.energy)),
        ("unaccelerated".into(), Json::F64(m.unaccelerated)),
        (
            "unit_cycles".into(),
            Json::Arr(m.unit_cycles.iter().map(|&c| Json::U64(c)).collect()),
        ),
        (
            "unit_energy".into(),
            Json::Arr(m.unit_energy.iter().map(|&e| Json::F64(e)).collect()),
        ),
    ])
}

/// Decodes a design result payload; `None` on any shape mismatch.
#[must_use]
pub fn decode_design_result(json: &Json) -> Option<DesignResult> {
    let per_workload = json
        .get("per_workload")?
        .as_arr()?
        .iter()
        .map(decode_metrics)
        .collect::<Option<_>>()?;
    Some(DesignResult {
        label: json.get("label")?.as_str()?.to_string(),
        core: json.get("core")?.as_str()?.to_string(),
        bsas: json.get("bsas")?.as_str()?.to_string(),
        area_mm2: json.get("area_mm2")?.as_f64()?,
        per_workload,
    })
}

fn decode_metrics(json: &Json) -> Option<WorkloadMetrics> {
    let unit_cycles: Vec<u64> = json
        .get("unit_cycles")?
        .as_arr()?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<_>>()?;
    let unit_energy: Vec<f64> = json
        .get("unit_energy")?
        .as_arr()?
        .iter()
        .map(Json::as_f64)
        .collect::<Option<_>>()?;
    Some(WorkloadMetrics {
        workload: json.get("workload")?.as_str()?.to_string(),
        cycles: json.get("cycles")?.as_u64()?,
        energy: json.get("energy")?.as_f64()?,
        unaccelerated: json.get("unaccelerated")?.as_f64()?,
        unit_cycles: unit_cycles.try_into().ok()?,
        unit_energy: unit_energy.try_into().ok()?,
    })
}

/// Encodes a pipeline error for wire formats and the sweep journal.
/// Stage and kind use their stable [`Display`](std::fmt::Display) text,
/// which [`FromStr`](std::str::FromStr) inverts exactly.
#[must_use]
pub fn encode_pipeline_error(e: &PipelineError) -> Json {
    Json::Obj(vec![
        ("workload".into(), Json::Str(e.workload.clone())),
        ("stage".into(), Json::Str(e.stage.to_string())),
        ("kind".into(), Json::Str(e.kind.to_string())),
        ("message".into(), Json::Str(e.message.clone())),
    ])
}

/// Decodes a pipeline error; `None` on any shape mismatch or an unknown
/// stage/kind name (e.g. a record written by a newer build).
#[must_use]
pub fn decode_pipeline_error(json: &Json) -> Option<PipelineError> {
    Some(PipelineError {
        workload: json.get("workload")?.as_str()?.to_string(),
        stage: json.get("stage")?.as_str()?.parse().ok()?,
        kind: json.get("kind")?.as_str()?.parse().ok()?,
        message: json.get("message")?.as_str()?.to_string(),
    })
}

/// Encodes one trace chunk as a length-prefixed JSON payload (schema v2).
///
/// Every `DynInst` field is an integer, so the round trip through the
/// store's JSON envelope is lossless. `seq` values are implicit
/// (`first_seq + position`), and the explicit `len` prefix lets the
/// decoder reject truncated instruction arrays outright.
#[must_use]
pub fn encode_trace_chunk(c: &TraceChunk) -> Json {
    Json::Obj(vec![
        ("index".into(), Json::U64(c.index)),
        ("first_seq".into(), Json::U64(c.first_seq)),
        ("last".into(), Json::Bool(c.last)),
        ("len".into(), Json::U64(c.insts.len() as u64)),
        ("stats".into(), encode_trace_stats(&c.stats)),
        (
            "insts".into(),
            Json::Arr(c.insts.iter().map(encode_dyn_inst).collect()),
        ),
    ])
}

fn encode_trace_stats(s: &TraceStats) -> Json {
    Json::Obj(vec![
        ("insts".into(), Json::U64(s.insts)),
        ("loads".into(), Json::U64(s.loads)),
        ("stores".into(), Json::U64(s.stores)),
        ("cond_branches".into(), Json::U64(s.cond_branches)),
        ("mispredicts".into(), Json::U64(s.mispredicts)),
        ("l1_hits".into(), Json::U64(s.l1_hits)),
        ("l2_hits".into(), Json::U64(s.l2_hits)),
        ("dram_accesses".into(), Json::U64(s.dram_accesses)),
    ])
}

/// One instruction is a positional array: `[sid, mem, branch]` where
/// `mem` is `null` or `[addr, width, is_store, latency, level]` and
/// `branch` is `null` or `[taken, target, mispredicted]`.
fn encode_dyn_inst(d: &DynInst) -> Json {
    let mem = match &d.mem {
        None => Json::Null,
        Some(m) => Json::Arr(vec![
            Json::U64(m.addr),
            Json::U64(u64::from(m.width)),
            Json::U64(u64::from(m.is_store)),
            Json::U64(u64::from(m.latency)),
            Json::U64(match m.level {
                MemLevel::L1 => 0,
                MemLevel::L2 => 1,
                MemLevel::Dram => 2,
            }),
        ]),
    };
    let branch = match &d.branch {
        None => Json::Null,
        Some(b) => Json::Arr(vec![
            Json::U64(u64::from(b.taken)),
            Json::U64(u64::from(b.target)),
            Json::U64(u64::from(b.mispredicted)),
        ]),
    };
    Json::Arr(vec![Json::U64(u64::from(d.sid)), mem, branch])
}

/// Decodes a trace chunk payload; `None` on any shape mismatch, including
/// a `len` prefix that disagrees with the instruction array.
#[must_use]
pub fn decode_trace_chunk(json: &Json) -> Option<TraceChunk> {
    let first_seq = json.get("first_seq")?.as_u64()?;
    let len = json.get("len")?.as_u64()?;
    let arr = json.get("insts")?.as_arr()?;
    if arr.len() as u64 != len {
        return None;
    }
    let insts = arr
        .iter()
        .enumerate()
        .map(|(i, j)| decode_dyn_inst(j, first_seq + i as u64))
        .collect::<Option<Vec<_>>>()?;
    Some(TraceChunk {
        index: json.get("index")?.as_u64()?,
        first_seq,
        insts,
        stats: decode_trace_stats(json.get("stats")?)?,
        last: json.get("last")?.as_bool()?,
    })
}

fn decode_trace_stats(json: &Json) -> Option<TraceStats> {
    Some(TraceStats {
        insts: json.get("insts")?.as_u64()?,
        loads: json.get("loads")?.as_u64()?,
        stores: json.get("stores")?.as_u64()?,
        cond_branches: json.get("cond_branches")?.as_u64()?,
        mispredicts: json.get("mispredicts")?.as_u64()?,
        l1_hits: json.get("l1_hits")?.as_u64()?,
        l2_hits: json.get("l2_hits")?.as_u64()?,
        dram_accesses: json.get("dram_accesses")?.as_u64()?,
    })
}

fn decode_dyn_inst(json: &Json, seq: u64) -> Option<DynInst> {
    let fields = json.as_arr()?;
    let [sid, mem, branch] = fields else {
        return None;
    };
    let mem = match mem {
        Json::Null => None,
        m => {
            let [addr, width, is_store, latency, level] = m.as_arr()? else {
                return None;
            };
            Some(MemRecord {
                addr: addr.as_u64()?,
                width: u8::try_from(width.as_u64()?).ok()?,
                is_store: is_store.as_u64()? != 0,
                latency: u32::try_from(latency.as_u64()?).ok()?,
                level: match level.as_u64()? {
                    0 => MemLevel::L1,
                    1 => MemLevel::L2,
                    2 => MemLevel::Dram,
                    _ => return None,
                },
            })
        }
    };
    let branch = match branch {
        Json::Null => None,
        b => {
            let [taken, target, mispredicted] = b.as_arr()? else {
                return None;
            };
            Some(BranchRecord {
                taken: taken.as_u64()? != 0,
                target: u32::try_from(target.as_u64()?).ok()?,
                mispredicted: mispredicted.as_u64()? != 0,
            })
        }
    };
    Some(DynInst {
        seq,
        sid: u32::try_from(sid.as_u64()?).ok()?,
        mem,
        branch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DesignResult {
        DesignResult {
            label: "OOO2-SDN".into(),
            core: "OOO2".into(),
            bsas: "SDN".into(),
            area_mm2: 7.25,
            per_workload: vec![WorkloadMetrics {
                workload: "stencil".into(),
                cycles: (1u64 << 53) + 3,
                energy: 1.0 / 3.0,
                unaccelerated: 0.125,
                unit_cycles: [10, 20, 30, 40, 50],
                unit_energy: [0.1, 0.2, 0.3, 0.4, 0.5],
            }],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let r = sample();
        let text = encode_design_result(&r).to_string();
        let back = decode_design_result(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn shape_mismatch_decodes_to_none() {
        let mut json = encode_design_result(&sample());
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "area_mm2");
        }
        assert_eq!(decode_design_result(&json), None);
        assert_eq!(decode_design_result(&Json::Null), None);
    }

    fn sample_chunk() -> TraceChunk {
        TraceChunk {
            index: 3,
            first_seq: 192,
            insts: vec![
                DynInst {
                    seq: 192,
                    sid: 7,
                    mem: None,
                    branch: None,
                },
                DynInst {
                    seq: 193,
                    sid: 8,
                    mem: Some(MemRecord {
                        addr: 0x1008,
                        width: 8,
                        is_store: true,
                        latency: 14,
                        level: MemLevel::L2,
                    }),
                    branch: None,
                },
                DynInst {
                    seq: 194,
                    sid: 9,
                    mem: None,
                    branch: Some(BranchRecord {
                        taken: true,
                        target: 7,
                        mispredicted: false,
                    }),
                },
            ],
            stats: TraceStats {
                insts: 195,
                loads: 40,
                stores: 22,
                cond_branches: 31,
                mispredicts: 2,
                l1_hits: 55,
                l2_hits: 6,
                dram_accesses: 1,
            },
            last: false,
        }
    }

    #[test]
    fn trace_chunk_roundtrip_is_exact() {
        let c = sample_chunk();
        let text = encode_trace_chunk(&c).to_string();
        let back = decode_trace_chunk(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.index, c.index);
        assert_eq!(back.first_seq, c.first_seq);
        assert_eq!(back.last, c.last);
        assert_eq!(back.stats, c.stats);
        assert_eq!(back.insts, c.insts);
    }

    #[test]
    fn pipeline_error_roundtrip_is_exact() {
        let e = PipelineError::store_io("stencil", "disk on fire\nline two");
        let text = encode_pipeline_error(&e).to_string();
        let back = decode_pipeline_error(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn pipeline_error_rejects_unknown_stage() {
        let mut json = encode_pipeline_error(&PipelineError::store_io("x", "y"));
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "stage" {
                    *v = Json::Str("warp".into());
                }
            }
        }
        assert_eq!(decode_pipeline_error(&json), None);
        assert_eq!(decode_pipeline_error(&Json::Null), None);
    }

    #[test]
    fn trace_chunk_length_prefix_rejects_truncation() {
        let mut json = encode_trace_chunk(&sample_chunk());
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "insts" {
                    if let Json::Arr(items) = v {
                        items.pop();
                    }
                }
            }
        }
        assert_eq!(decode_trace_chunk(&json), None);
        assert_eq!(decode_trace_chunk(&Json::Null), None);
    }
}
