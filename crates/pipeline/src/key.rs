//! Artifact-key construction: a [`KeyBuilder`] feeds every input that can
//! change a stage's output — workload identity and build params, tracer
//! configuration, core configuration, BSA subset, schema version, and crate
//! version — into a SHA-256 digest, field by labeled field.
//!
//! Any representational change (new field, changed default, new schema)
//! must bump [`KEY_SCHEMA_VERSION`]; old artifacts then miss instead of
//! being silently reused. The on-disk *file* envelope carries its own
//! [`SCHEMA_VERSION`] — see the store — so the envelope can evolve (v2
//! added chunked trace artifacts) without invalidating warm caches whose
//! key derivation is unchanged.

use std::fmt::Display;

use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::CoreConfig;

use crate::hash::{ContentHash, Sha256};

/// Bumped whenever the *key derivation* changes (new field, changed
/// default, changed semantics of an existing artifact payload). Folded
/// into every key; bumping it orphans all previously stored artifacts.
pub const KEY_SCHEMA_VERSION: u32 = 1;

/// The on-disk artifact *envelope* version. v1: single-document payloads.
/// v2: adds length-prefixed chunked trace artifacts; v1 files remain
/// readable (the envelope shape is unchanged for non-chunk payloads).
pub const SCHEMA_VERSION: u32 = 2;

/// The oldest envelope version the store still reads.
pub const MIN_SCHEMA_VERSION: u32 = 1;

/// Incrementally builds a content hash from labeled fields.
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    h: Sha256,
}

impl KeyBuilder {
    /// Starts a key in `domain` (e.g. `"workload"`, `"design-result"`).
    /// The schema version and crate version are always folded in.
    #[must_use]
    pub fn new(domain: &str) -> Self {
        let mut kb = KeyBuilder { h: Sha256::new() };
        kb.field("domain", domain);
        kb.field("schema", KEY_SCHEMA_VERSION);
        kb.field("crate", env!("CARGO_PKG_VERSION"));
        kb
    }

    /// Feeds one labeled field.
    pub fn field(&mut self, name: &str, value: impl Display) {
        self.h.update_str(name);
        self.h.update_str("=");
        self.h.update_str(&value.to_string());
        self.h.update_str("\n");
    }

    /// Feeds a previously computed hash as a field.
    pub fn hash_field(&mut self, name: &str, hash: &ContentHash) {
        self.field(name, hash.hex());
    }

    /// Feeds the full tracer configuration.
    pub fn tracer(&mut self, cfg: &TracerConfig) {
        self.field("tracer.max_insts", cfg.max_insts);
        self.field("tracer.fast_forward", cfg.fast_forward);
        self.field("tracer.l1d.size_bytes", cfg.l1d.size_bytes);
        self.field("tracer.l1d.ways", cfg.l1d.ways);
        self.field("tracer.l1d.line_bytes", cfg.l1d.line_bytes);
        self.field("tracer.l1d.hit_latency", cfg.l1d.hit_latency);
        self.field("tracer.l2.size_bytes", cfg.l2.size_bytes);
        self.field("tracer.l2.ways", cfg.l2.ways);
        self.field("tracer.l2.line_bytes", cfg.l2.line_bytes);
        self.field("tracer.l2.hit_latency", cfg.l2.hit_latency);
        self.field("tracer.dram_latency", cfg.dram_latency);
        self.field("tracer.branch.pht_bits", cfg.branch.pht_bits);
        self.field("tracer.branch.history_bits", cfg.branch.history_bits);
        self.field("tracer.branch.ras_depth", cfg.branch.ras_depth);
    }

    /// Feeds the full core configuration.
    pub fn core(&mut self, core: &CoreConfig) {
        self.field("core.name", &core.name);
        self.field("core.width", core.width);
        self.field("core.rob_size", core.rob_size);
        self.field("core.window_size", core.window_size);
        self.field("core.dcache_ports", core.dcache_ports);
        self.field("core.alus", core.alus);
        self.field("core.muldivs", core.muldivs);
        self.field("core.fpus", core.fpus);
        self.field("core.out_of_order", core.out_of_order);
        self.field("core.frontend_depth", core.frontend_depth);
        self.field("core.mispredict_penalty", core.mispredict_penalty);
        self.field("core.has_simd", core.has_simd);
    }

    /// Feeds only the core parameters that shape a timing walk — the
    /// µDG *timing class* — omitting the display name so core variants
    /// that differ only in priced parameters share one key.
    pub fn core_timing(&mut self, core: &CoreConfig) {
        self.field("core.timing_class", core.timing_class());
    }

    /// Feeds a BSA subset (order-sensitive; callers pass canonical order).
    pub fn bsas(&mut self, bsas: &[BsaKind]) {
        let codes: String = bsas.iter().map(|b| b.code()).collect();
        self.field("bsas", codes);
    }

    /// Finishes the key.
    #[must_use]
    pub fn finish(self) -> ContentHash {
        self.h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_key(tracer: &TracerConfig) -> ContentHash {
        let mut kb = KeyBuilder::new("workload");
        kb.field("name", "stencil");
        kb.field("n", 2200u32);
        kb.tracer(tracer);
        kb.finish()
    }

    #[test]
    fn key_is_stable_for_identical_inputs() {
        assert_eq!(
            base_key(&TracerConfig::default()),
            base_key(&TracerConfig::default())
        );
    }

    #[test]
    fn key_changes_when_tracer_config_changes() {
        let default = base_key(&TracerConfig::default());
        let ff = TracerConfig {
            fast_forward: 1000,
            ..TracerConfig::default()
        };
        assert_ne!(base_key(&ff), default);
        let small_cache = TracerConfig {
            l1d: prism_sim::CacheConfig {
                size_bytes: 4096,
                ..prism_sim::CacheConfig::l1d()
            },
            ..TracerConfig::default()
        };
        assert_ne!(base_key(&small_cache), default);
        assert_ne!(base_key(&small_cache), base_key(&ff));
    }

    #[test]
    fn key_changes_with_core_and_bsas() {
        let mk = |core: &CoreConfig, bsas: &[BsaKind]| {
            let mut kb = KeyBuilder::new("design-result");
            kb.core(core);
            kb.bsas(bsas);
            kb.finish()
        };
        let a = mk(&CoreConfig::ooo2(), &[BsaKind::Simd]);
        assert_ne!(a, mk(&CoreConfig::ooo4(), &[BsaKind::Simd]));
        assert_ne!(a, mk(&CoreConfig::ooo2(), &[BsaKind::Simd, BsaKind::NsDf]));
        assert_eq!(a, mk(&CoreConfig::ooo2(), &[BsaKind::Simd]));
    }

    #[test]
    fn core_timing_ignores_display_name() {
        let mk = |core: &CoreConfig| {
            let mut kb = KeyBuilder::new("exo-timing-shape");
            kb.core_timing(core);
            kb.finish()
        };
        let base = CoreConfig::ooo2();
        let mut renamed = base.clone();
        renamed.name = "OOO2-relabeled".into();
        assert_eq!(mk(&base), mk(&renamed));
        assert_ne!(mk(&base), mk(&CoreConfig::ooo4()));
        assert_ne!(mk(&base), mk(&base.clone().with_simd()));
    }

    #[test]
    fn domains_do_not_collide() {
        let mut a = KeyBuilder::new("workload");
        a.field("x", 1);
        let mut b = KeyBuilder::new("design-result");
        b.field("x", 1);
        assert_ne!(a.finish(), b.finish());
    }
}
