//! Append-only sweep journal: a per-sweep NDJSON write-ahead log that
//! makes design-space sweeps resumable after a process kill.
//!
//! The content-addressed store already makes individual *artifacts*
//! crash-safe (write-then-rename, fsynced), but sweep bookkeeping —
//! which units finished, which quarantined — lived only in process
//! memory. The journal persists exactly that: one file per sweep under
//! `<store>/journal/<sweep>.ndjson`, a versioned header line followed by
//! one record per settled unit. `--resume` replays the journal, skips
//! every recorded unit, and recomputes only the rest, producing output
//! byte-identical to an uninterrupted run.
//!
//! Format (one JSON document per line):
//!
//! ```text
//! {"type":"journal","version":2,"sweep":"<64-hex sweep key>"}
//! {"type":"assigned","unit":"<label>","shard":N,"sum":"<64-hex>"}
//! {"type":"done","unit":"<label>","result":{...},"sum":"<64-hex>"}
//! {"type":"quarantined","unit":"<label>","error":{...},"sum":"<64-hex>"}
//! ```
//!
//! `assigned` records (v2) persist the grid coordinator's per-shard
//! assignment plan: a resumed coordinator prefers each unit's journaled
//! shard instead of re-planning from scratch, so placement — and with it
//! per-shard store warmth — survives a kill. They are advisory: replay
//! correctness never depends on them, and a `done`/`quarantined` record
//! settles a unit regardless of what was assigned.
//!
//! `sum` is the SHA-256 of `"<type>\n<unit>\n<payload JSON>"`, making a
//! torn or bit-flipped record detectable. The reader is
//! **truncated-tail-tolerant**: a crash mid-append leaves a partial last
//! line (no trailing newline, or a record whose sum does not match); the
//! reader replays the longest valid prefix and reports the rest as
//! dropped. Re-opening for resume truncates the torn tail before
//! appending, so the file never accumulates garbage.
//!
//! Appends are flushed and fsynced (unless `PRISM_NO_FSYNC` is set)
//! *after* the unit's result artifact is durable in the store, so a
//! `done` record always refers to a result that can be reloaded — the
//! invariant behind the "zero journaled-done units recomputed" property.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use prism_exocore::DesignResult;
use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::CoreConfig;

use crate::codec::{
    decode_design_result, decode_pipeline_error, encode_design_result, encode_pipeline_error,
};
use crate::crash::{crash_point, SITE_JOURNAL_APPEND};
use crate::error::PipelineError;
use crate::hash::{ContentHash, Sha256};
use crate::json::Json;
use crate::key::KeyBuilder;
use crate::store::fsync_enabled;

/// Journal format version, written into every header line. A reader
/// treats any other version as stale (the journal is ignored and
/// rewritten rather than misread). v2 added `assigned` records, which a
/// v1 reader would misread as a torn tail — hence the bump.
pub const JOURNAL_VERSION: u64 = 2;

/// Subdirectory of the artifact store holding sweep journals.
pub const JOURNAL_SUBDIR: &str = "journal";

/// Identity of a sweep for journaling: every input that changes which
/// units exist or what their results would be. Two runs with the same
/// sweep key write/replay the same journal file; any config change
/// (scale, tracer, core list, subset list, crate version via
/// [`KeyBuilder`]) lands in a different file, so a resume can never
/// splice results across incompatible configurations.
///
/// `workloads` pairs each workload name with its scaled problem size.
#[must_use]
pub fn sweep_key(
    workloads: &[(String, u32)],
    tracer: &TracerConfig,
    cores: &[CoreConfig],
    subsets: &[Vec<BsaKind>],
) -> ContentHash {
    let mut kb = KeyBuilder::new("sweep");
    kb.field("workloads", workloads.len());
    for (name, n) in workloads {
        kb.field("workload.name", name);
        kb.field("workload.n", n);
    }
    kb.tracer(tracer);
    kb.field("cores", cores.len());
    for core in cores {
        kb.core(core);
    }
    kb.field("subsets", subsets.len());
    for subset in subsets {
        kb.bsas(subset);
    }
    kb.finish()
}

/// Path of the journal file for `sweep` under `store_dir`.
#[must_use]
pub fn journal_path(store_dir: &Path, sweep: &ContentHash) -> PathBuf {
    store_dir
        .join(JOURNAL_SUBDIR)
        .join(format!("{}.ndjson", sweep.short()))
}

fn record_sum(kind: &str, unit: &str, payload_text: &str) -> String {
    let mut h = Sha256::new();
    h.update_str(kind);
    h.update_str("\n");
    h.update_str(unit);
    h.update_str("\n");
    h.update_str(payload_text);
    h.finish().hex()
}

fn encode_record(kind: &str, unit: &str, payload_field: &str, payload: Json) -> String {
    let payload_text = payload.to_string();
    let sum = record_sum(kind, unit, &payload_text);
    // Assemble the line textually so the sum covers the exact payload
    // bytes on disk (the JSON writer is deterministic, but being literal
    // here keeps the invariant obvious).
    let mut line = String::with_capacity(payload_text.len() + unit.len() + 128);
    line.push_str("{\"type\":");
    line.push_str(&Json::Str(kind.to_string()).to_string());
    line.push_str(",\"unit\":");
    line.push_str(&Json::Str(unit.to_string()).to_string());
    line.push_str(",\"");
    line.push_str(payload_field);
    line.push_str("\":");
    line.push_str(&payload_text);
    line.push_str(",\"sum\":\"");
    line.push_str(&sum);
    line.push_str("\"}");
    line
}

/// One replayed journal record.
#[derive(Debug, Clone, PartialEq)]
enum Record {
    Done(String, DesignResult),
    Quarantined(String, PipelineError),
    Assigned(String, u64),
}

fn decode_record(line: &str) -> Option<Record> {
    let json = Json::parse(line).ok()?;
    let kind = json.get("type")?.as_str()?;
    let unit = json.get("unit")?.as_str()?;
    let sum = json.get("sum")?.as_str()?;
    match kind {
        "done" => {
            let payload = json.get("result")?;
            if record_sum("done", unit, &payload.to_string()) != sum {
                return None;
            }
            Some(Record::Done(
                unit.to_string(),
                decode_design_result(payload)?,
            ))
        }
        "quarantined" => {
            let payload = json.get("error")?;
            if record_sum("quarantined", unit, &payload.to_string()) != sum {
                return None;
            }
            Some(Record::Quarantined(
                unit.to_string(),
                decode_pipeline_error(payload)?,
            ))
        }
        "assigned" => {
            let payload = json.get("shard")?;
            if record_sum("assigned", unit, &payload.to_string()) != sum {
                return None;
            }
            Some(Record::Assigned(unit.to_string(), payload.as_u64()?))
        }
        _ => None,
    }
}

fn header_line(sweep: &ContentHash) -> String {
    format!(
        "{{\"type\":\"journal\",\"version\":{JOURNAL_VERSION},\"sweep\":\"{}\"}}",
        sweep.hex()
    )
}

fn header_matches(line: &str, sweep: &ContentHash) -> bool {
    let Ok(json) = Json::parse(line) else {
        return false;
    };
    json.get("type").and_then(Json::as_str) == Some("journal")
        && json.get("version").and_then(Json::as_u64) == Some(JOURNAL_VERSION)
        && json.get("sweep").and_then(Json::as_str) == Some(sweep.hex().as_str())
}

/// The replayable content of a sweep journal: settled units keyed by
/// unit label, plus accounting for how much of the file was valid.
#[derive(Debug, Default, Clone)]
pub struct JournalReplay {
    /// Units that completed, with their full results.
    pub done: BTreeMap<String, DesignResult>,
    /// Units that were permanently quarantined, with their errors.
    pub quarantined: BTreeMap<String, PipelineError>,
    /// The coordinator's journaled assignment plan: unit label → shard
    /// it was last dispatched to (last record wins). Advisory — used by
    /// a resumed coordinator as a placement preference, never as truth
    /// about unit state.
    pub assigned: BTreeMap<String, u64>,
    /// Number of valid records replayed.
    pub records: u64,
    /// Torn / corrupt / trailing records that were not replayed.
    pub dropped: u64,
    /// Byte offset of the end of the last valid line — resume truncates
    /// the file here before appending.
    pub valid_bytes: u64,
    /// True when the file exists but is not a readable journal for this
    /// sweep (garbled or missing header, wrong version, wrong sweep key).
    /// A stale journal is never replayed or appended to; a fresh one is
    /// written in its place.
    pub stale: bool,
}

impl JournalReplay {
    /// Reads and validates the journal at `path` for `sweep`.
    /// A missing file yields an empty, non-stale replay.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file not existing.
    pub fn read(path: &Path, sweep: &ContentHash) -> io::Result<JournalReplay> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(JournalReplay::default());
            }
            Err(e) => return Err(e),
        };
        let mut replay = JournalReplay::default();
        let mut lines = text.split_inclusive('\n');
        match lines.next() {
            Some(header) if header.ends_with('\n') && header_matches(header.trim_end(), sweep) => {
                replay.valid_bytes = header.len() as u64;
            }
            // Garbled, foreign, or torn-before-one-record journal: unusable.
            _ => {
                replay.stale = true;
                return Ok(replay);
            }
        }
        for line in lines {
            let torn = !line.ends_with('\n');
            let decoded = if torn {
                None
            } else {
                decode_record(line.trim_end())
            };
            match decoded {
                Some(Record::Done(unit, result)) => {
                    replay.quarantined.remove(&unit);
                    replay.done.insert(unit, result);
                }
                Some(Record::Quarantined(unit, error)) => {
                    // A later `done` for the same unit wins (shard retry
                    // succeeded after a quarantine was journaled), and an
                    // already-done unit is never demoted.
                    if !replay.done.contains_key(&unit) {
                        replay.quarantined.insert(unit, error);
                    }
                }
                Some(Record::Assigned(unit, shard)) => {
                    replay.assigned.insert(unit, shard);
                }
                None => {
                    // First unreadable record: everything from here on is
                    // the torn tail. Count it and stop.
                    replay.dropped = text[replay.valid_bytes as usize..]
                        .split_inclusive('\n')
                        .filter(|l| !l.trim_end().is_empty())
                        .count() as u64;
                    return Ok(replay);
                }
            }
            replay.records += 1;
            replay.valid_bytes += line.len() as u64;
        }
        Ok(replay)
    }
}

/// An open, append-only sweep journal.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    file: Mutex<File>,
    fsync: bool,
}

impl SweepJournal {
    /// Opens the journal for `sweep` under `store_dir`, creating the
    /// journal directory as needed.
    ///
    /// With `resume`, an existing valid journal is replayed, its torn
    /// tail (if any) truncated, and the file opened for append.
    /// Otherwise — or when the existing file is stale — a fresh journal
    /// with a new header is written (the replay is empty).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers degrade to an unjournaled
    /// sweep rather than failing.
    pub fn open(
        store_dir: &Path,
        sweep: &ContentHash,
        resume: bool,
    ) -> io::Result<(SweepJournal, JournalReplay)> {
        std::fs::create_dir_all(store_dir.join(JOURNAL_SUBDIR))?;
        let path = journal_path(store_dir, sweep);
        let fsync = fsync_enabled();
        if resume {
            let replay = JournalReplay::read(&path, sweep)?;
            if !replay.stale && replay.valid_bytes > 0 {
                let file = OpenOptions::new().append(true).open(&path)?;
                file.set_len(replay.valid_bytes)?;
                if fsync {
                    file.sync_all()?;
                }
                return Ok((
                    SweepJournal {
                        path,
                        file: Mutex::new(file),
                        fsync,
                    },
                    replay,
                ));
            }
        }
        let mut file = File::create(&path)?;
        file.write_all(header_line(sweep).as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        if fsync {
            file.sync_all()?;
            sync_dir(store_dir.join(JOURNAL_SUBDIR).as_path());
        }
        Ok((
            SweepJournal {
                path,
                file: Mutex::new(file),
                fsync,
            },
            JournalReplay::default(),
        ))
    }

    /// Appends a `done` record for `unit`.
    ///
    /// # Errors
    ///
    /// Propagates write errors; the caller logs and continues (the sweep
    /// result is unaffected, only resumability degrades).
    pub fn append_done(&self, unit: &str, result: &DesignResult) -> io::Result<()> {
        self.append(encode_record(
            "done",
            unit,
            "result",
            encode_design_result(result),
        ))
    }

    /// Appends a `quarantined` record for `unit`.
    ///
    /// # Errors
    ///
    /// Propagates write errors; the caller logs and continues.
    pub fn append_quarantined(&self, unit: &str, error: &PipelineError) -> io::Result<()> {
        self.append(encode_record(
            "quarantined",
            unit,
            "error",
            encode_pipeline_error(error),
        ))
    }

    /// Appends an `assigned` record: `unit` was dispatched to `shard`.
    /// Advisory placement data — see [`JournalReplay::assigned`].
    ///
    /// # Errors
    ///
    /// Propagates write errors; the caller logs and continues.
    pub fn append_assigned(&self, unit: &str, shard: u64) -> io::Result<()> {
        self.append(encode_record("assigned", unit, "shard", Json::U64(shard)))
    }

    fn append(&self, line: String) -> io::Result<()> {
        crash_point(SITE_JOURNAL_APPEND);
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        if self.fsync {
            file.sync_all()?;
        }
        Ok(())
    }

    /// Deletes the journal file — called when a sweep finishes with no
    /// quarantined units, so nothing remains to resume. (A journal with
    /// quarantines is kept: a later `--resume` replays the identical
    /// errors instead of re-running known-bad units.)
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn remove(self) -> io::Result<()> {
        drop(self.file);
        std::fs::remove_file(&self.path)
    }

    /// The journal file path (for logs and tests).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Fsyncs a directory so a just-created/renamed entry survives power
/// loss. Directory fsync is a unix concept; elsewhere this is a no-op.
/// Errors are swallowed: some filesystems reject directory fsync, and a
/// failed dir sync only widens the crash window, never corrupts.
pub(crate) fn sync_dir(dir: &Path) {
    #[cfg(unix)]
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    #[cfg(not(unix))]
    let _ = dir;
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_exocore::WorkloadMetrics;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "prism-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_result(label: &str) -> DesignResult {
        DesignResult {
            label: label.into(),
            core: "OOO2".into(),
            bsas: "SDN".into(),
            area_mm2: 7.25,
            per_workload: vec![WorkloadMetrics {
                workload: "stencil".into(),
                cycles: (1u64 << 53) + 3,
                energy: 1.0 / 3.0,
                unaccelerated: 0.125,
                unit_cycles: [10, 20, 30, 40, 50],
                unit_energy: [0.1, 0.2, 0.3, 0.4, 0.5],
            }],
        }
    }

    fn sample_error() -> PipelineError {
        PipelineError::store_io("fft", "disk on fire\nwhile writing")
    }

    fn sweep(tag: &str) -> ContentHash {
        let mut kb = KeyBuilder::new("test-sweep");
        kb.field("tag", tag);
        kb.finish()
    }

    #[test]
    fn append_then_replay_roundtrips() {
        let dir = scratch("roundtrip");
        let sw = sweep("roundtrip");
        let (j, replay) = SweepJournal::open(&dir, &sw, false).unwrap();
        assert_eq!(replay.records, 0);
        j.append_done("OOO2-S", &sample_result("OOO2-S")).unwrap();
        j.append_quarantined("IO2-", &sample_error()).unwrap();
        j.append_done("OOO2-SD", &sample_result("OOO2-SD")).unwrap();
        drop(j);

        let replay = JournalReplay::read(&journal_path(&dir, &sw), &sw).unwrap();
        assert!(!replay.stale);
        assert_eq!(replay.records, 3);
        assert_eq!(replay.dropped, 0);
        assert_eq!(replay.done.len(), 2);
        assert_eq!(replay.done["OOO2-S"], sample_result("OOO2-S"));
        assert_eq!(replay.quarantined["IO2-"], sample_error());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn done_wins_over_quarantined_for_same_unit() {
        let dir = scratch("promote");
        let sw = sweep("promote");
        let (j, _) = SweepJournal::open(&dir, &sw, false).unwrap();
        j.append_quarantined("OOO2-S", &sample_error()).unwrap();
        j.append_done("OOO2-S", &sample_result("OOO2-S")).unwrap();
        drop(j);
        let replay = JournalReplay::read(&journal_path(&dir, &sw), &sw).unwrap();
        assert_eq!(replay.quarantined.len(), 0);
        assert_eq!(replay.done.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn assigned_records_replay_last_wins_and_are_advisory() {
        let dir = scratch("assigned");
        let sw = sweep("assigned");
        let (j, _) = SweepJournal::open(&dir, &sw, false).unwrap();
        j.append_assigned("u0", 0).unwrap();
        j.append_assigned("u1", 1).unwrap();
        // u0 reassigned after a worker death: the later record wins.
        j.append_assigned("u0", 2).unwrap();
        j.append_done("u0", &sample_result("u0")).unwrap();
        drop(j);

        let replay = JournalReplay::read(&journal_path(&dir, &sw), &sw).unwrap();
        assert!(!replay.stale);
        assert_eq!(replay.records, 4);
        assert_eq!(replay.dropped, 0);
        assert_eq!(replay.assigned["u0"], 2);
        assert_eq!(replay.assigned["u1"], 1);
        // Assignments never settle a unit: only u0's `done` counts.
        assert_eq!(replay.done.len(), 1);
        assert!(replay.quarantined.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_assigned_record_is_a_torn_tail() {
        let dir = scratch("assigned-corrupt");
        let sw = sweep("assigned-corrupt");
        let (j, _) = SweepJournal::open(&dir, &sw, false).unwrap();
        j.append_done("u0", &sample_result("u0")).unwrap();
        j.append_assigned("u1", 1).unwrap();
        drop(j);
        let path = journal_path(&dir, &sw);
        // Flip the shard digit: the record's sum no longer matches.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"shard\":1", "\"shard\":3")).unwrap();
        let replay = JournalReplay::read(&path, &sw).unwrap();
        assert_eq!(replay.records, 1);
        assert_eq!(replay.dropped, 1);
        assert!(replay.assigned.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_replays_longest_valid_prefix() {
        // Property: for EVERY byte-length prefix of a valid journal, the
        // reader never panics and replays exactly the records whose full
        // lines survive.
        let dir = scratch("tail");
        let sw = sweep("tail");
        let (j, _) = SweepJournal::open(&dir, &sw, false).unwrap();
        j.append_done("u0", &sample_result("u0")).unwrap();
        j.append_quarantined("u1", &sample_error()).unwrap();
        j.append_done("u2", &sample_result("u2")).unwrap();
        drop(j);
        let path = journal_path(&dir, &sw);
        let full = std::fs::read(&path).unwrap();

        // Line boundaries: records become visible exactly at these offsets.
        let mut boundaries = vec![];
        for (i, &b) in full.iter().enumerate() {
            if b == b'\n' {
                boundaries.push(i + 1);
            }
        }
        assert_eq!(boundaries.len(), 4); // header + 3 records

        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = JournalReplay::read(&path, &sw).unwrap();
            if cut < boundaries[0] {
                assert!(replay.stale, "cut={cut}: header incomplete");
                continue;
            }
            assert!(!replay.stale, "cut={cut}");
            let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replay.records, complete as u64, "cut={cut}");
            assert_eq!(
                replay.done.len() + replay.quarantined.len(),
                complete,
                "cut={cut}"
            );
            // A torn partial line is reported as dropped.
            let torn = cut > *boundaries.iter().filter(|&&b| b <= cut).max().unwrap();
            assert_eq!(replay.dropped, u64::from(torn), "cut={cut}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_stops_replay_at_last_valid_line() {
        let dir = scratch("corrupt");
        let sw = sweep("corrupt");
        let (j, _) = SweepJournal::open(&dir, &sw, false).unwrap();
        j.append_done("u0", &sample_result("u0")).unwrap();
        j.append_done("u1", &sample_result("u1")).unwrap();
        drop(j);
        let path = journal_path(&dir, &sw);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte inside the *second* record.
        let second_start = {
            let mut nl = bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i);
            let _header = nl.next().unwrap();
            nl.next().unwrap() + 1
        };
        bytes[second_start + 40] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let replay = JournalReplay::read(&path, &sw).unwrap();
        assert!(!replay.stale);
        assert_eq!(replay.records, 1);
        assert_eq!(replay.dropped, 1);
        assert!(replay.done.contains_key("u0"));
        assert!(!replay.done.contains_key("u1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_sweep_or_version_is_stale() {
        let dir = scratch("stale");
        let sw = sweep("stale-a");
        let (j, _) = SweepJournal::open(&dir, &sw, false).unwrap();
        j.append_done("u0", &sample_result("u0")).unwrap();
        drop(j);
        let path = journal_path(&dir, &sw);

        let other = sweep("stale-b");
        assert!(JournalReplay::read(&path, &other).unwrap().stale);

        let bumped = std::fs::read_to_string(&path)
            .unwrap()
            .replace(&format!("\"version\":{JOURNAL_VERSION}"), "\"version\":999");
        std::fs::write(&path, bumped).unwrap();
        assert!(JournalReplay::read(&path, &sw).unwrap().stale);

        std::fs::write(&path, "not json at all\n").unwrap();
        assert!(JournalReplay::read(&path, &sw).unwrap().stale);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_open_truncates_torn_tail_then_appends() {
        let dir = scratch("resume");
        let sw = sweep("resume");
        let (j, _) = SweepJournal::open(&dir, &sw, false).unwrap();
        j.append_done("u0", &sample_result("u0")).unwrap();
        j.append_done("u1", &sample_result("u1")).unwrap();
        drop(j);
        let path = journal_path(&dir, &sw);
        // Tear the last record mid-line.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();

        let (j, replay) = SweepJournal::open(&dir, &sw, true).unwrap();
        assert_eq!(replay.records, 1);
        assert!(replay.done.contains_key("u0"));
        j.append_done("u2", &sample_result("u2")).unwrap();
        drop(j);

        let replay = JournalReplay::read(&path, &sw).unwrap();
        assert_eq!(replay.records, 2);
        assert_eq!(replay.dropped, 0);
        assert!(replay.done.contains_key("u0") && replay.done.contains_key("u2"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_open_ignores_existing_journal_without_resume() {
        let dir = scratch("fresh");
        let sw = sweep("fresh");
        let (j, _) = SweepJournal::open(&dir, &sw, false).unwrap();
        j.append_done("u0", &sample_result("u0")).unwrap();
        drop(j);
        let (_j, replay) = SweepJournal::open(&dir, &sw, false).unwrap();
        assert_eq!(replay.records, 0);
        assert!(replay.done.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_the_file() {
        let dir = scratch("remove");
        let sw = sweep("remove");
        let (j, _) = SweepJournal::open(&dir, &sw, false).unwrap();
        let path = j.path().to_path_buf();
        assert!(path.exists());
        j.remove().unwrap();
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_key_separates_configurations() {
        let wl = vec![("stencil".to_string(), 2200u32)];
        let tracer = TracerConfig::default();
        let cores = vec![prism_udg::CoreConfig::ooo2()];
        let subsets = vec![vec![], vec![BsaKind::Simd]];
        let a = sweep_key(&wl, &tracer, &cores, &subsets);
        assert_eq!(a, sweep_key(&wl, &tracer, &cores, &subsets));
        let wl2 = vec![("stencil".to_string(), 4400u32)];
        assert_ne!(a, sweep_key(&wl2, &tracer, &cores, &subsets));
        let subsets2 = vec![vec![], vec![BsaKind::NsDf]];
        assert_ne!(a, sweep_key(&wl, &tracer, &cores, &subsets2));
    }
}
