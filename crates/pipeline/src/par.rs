//! Deterministic fork–join parallelism on `std::thread` (rayon is not
//! available in this build environment).
//!
//! [`parallel_map`] distributes items over a worker pool via an atomic
//! work-stealing cursor, but every result is written back into the slot of
//! its *input index* — so the output order is canonical and independent of
//! scheduling, and a `--jobs 1` run is bit-identical to a `--jobs N` run as
//! long as the mapped function is pure.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves the worker count: explicit override > `PRISM_JOBS` env var >
/// available hardware parallelism.
#[must_use]
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var("PRISM_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
        .max(1)
}

/// Extracts a `--jobs N` (or `--jobs=N`) override from a command line.
#[must_use]
pub fn jobs_from_args<S: AsRef<str>>(args: &[S]) -> Option<usize> {
    let mut it = args.iter().map(AsRef::as_ref);
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            return it.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = arg.strip_prefix("--jobs=") {
            return v.parse().ok();
        }
    }
    None
}

/// Whether a boolean flag (e.g. `--stats`) appears in a command line.
#[must_use]
pub fn flag_from_args<S: AsRef<str>>(args: &[S], flag: &str) -> bool {
    args.iter().any(|a| a.as_ref() == flag)
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning results
/// in input order. `f` receives `(index, item)`.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn parallel_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = jobs.min(items.len()).max(1);
    if workers == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                // A slot holds plain data; recover rather than cascade a
                // panic from another worker that died holding a lock.
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_regardless_of_jobs() {
        let items: Vec<u64> = (0..257).collect();
        let seq = parallel_map(&items, 1, |_, &x| x * x);
        for jobs in [2, 3, 8] {
            assert_eq!(parallel_map(&items, jobs, |_, &x| x * x), seq);
        }
    }

    #[test]
    fn passes_the_input_index() {
        let items = vec!["a", "b", "c"];
        let out = parallel_map(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn boolean_flag_detection() {
        assert!(flag_from_args(&["explore", "--stats"], "--stats"));
        assert!(!flag_from_args(&["explore", "--statsy"], "--stats"));
        assert!(!flag_from_args::<&str>(&[], "--stats"));
    }

    #[test]
    fn jobs_flag_parsing() {
        assert_eq!(jobs_from_args(&["--jobs", "4"]), Some(4));
        assert_eq!(jobs_from_args(&["x", "--jobs=2", "y"]), Some(2));
        assert_eq!(jobs_from_args(&["--jobs"]), None);
        assert_eq!(jobs_from_args(&["--jobs", "zero?"]), None);
        assert_eq!(jobs_from_args(&["-j", "4"]), None);
    }
}
