//! Deterministic fault injection for pipeline robustness testing.
//!
//! A [`FaultPlan`] describes which faults to inject and how often, seeded
//! so a failing run can be replayed exactly. Plans parse from the
//! `PRISM_FAULTS` environment variable (or any string with the same
//! grammar):
//!
//! ```text
//! PRISM_FAULTS=store-io:0.05,artifact-corrupt:0.02,stage-panic:trace:1@seed=42
//! ```
//!
//! Comma-separated fault specs, then optional `@`-separated options
//! (currently only `seed=N`). Specs:
//!
//! * `store-io:P` — artifact-store reads/writes fail with probability `P`,
//! * `artifact-corrupt:P` — loaded artifact bytes are corrupted with
//!   probability `P` (exercises the validate-and-discard path),
//! * `trace-truncate:P` — the tracer stage reports a truncated trace with
//!   probability `P`,
//! * `stage-panic:<stage>:<count>` — the named stage (`build`, `trace`,
//!   `analyze`, `plan`, `evaluate`, `store`) panics on its first `count`
//!   entries, then behaves normally.
//!
//! Probability rolls are a pure function of `(seed, site)` — the *site*
//! string names the decision point (e.g. `load:3fa92c1b:try0`) — so
//! outcomes do not depend on thread interleaving and a parallel sweep
//! injects the same faults as a sequential one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::Stage;

/// Environment variable holding the fault plan for [`FaultPlan::from_env`].
pub const FAULTS_ENV: &str = "PRISM_FAULTS";

/// Message prefix for every injected panic, so caught panics are
/// attributable to the plan rather than to a real bug.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// A malformed `PRISM_FAULTS` spec: names the offending spec fragment and
/// why it was rejected. Returned (never panicked) by [`FaultPlan::parse`]
/// so front-ends can surface the problem with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The spec fragment (or option) that failed to parse.
    pub spec: String,
    /// Why it was rejected.
    pub reason: String,
}

impl FaultSpecError {
    fn new(spec: impl Into<String>, reason: impl Into<String>) -> Self {
        FaultSpecError {
            spec: spec.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec `{}`: {}", self.spec, self.reason)
    }
}

impl std::error::Error for FaultSpecError {}

/// A seeded, deterministic fault-injection plan.
///
/// Shared across a session via `Arc` (panic counters are atomics, so the
/// plan itself is not `Clone`).
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    store_io: f64,
    artifact_corrupt: f64,
    trace_truncate: f64,
    stage_panics: Vec<StagePanic>,
}

#[derive(Debug)]
struct StagePanic {
    stage: Stage,
    remaining: AtomicU64,
}

/// splitmix64: tiny, high-quality 64-bit mixer (public-domain algorithm).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site string: cheap, stable site identity.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultPlan {
    /// Parses a plan from the [`FAULTS_ENV`] environment variable.
    /// Returns `None` when the variable is unset or empty. A malformed
    /// value is a hard error: silently ignoring a typoed fault plan would
    /// make a chaos run look suspiciously healthy.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but does not parse.
    #[must_use]
    pub fn from_env() -> Option<Arc<FaultPlan>> {
        let raw = std::env::var(FAULTS_ENV).ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&raw) {
            Ok(plan) => Some(Arc::new(plan)),
            Err(e) => panic!("bad {FAULTS_ENV} value `{raw}`: {e}"),
        }
    }

    /// Parses a plan from its textual form (the `PRISM_FAULTS` grammar).
    ///
    /// # Errors
    ///
    /// Returns a typed [`FaultSpecError`] naming the first malformed spec:
    /// out-of-range or non-numeric probabilities, unknown fault kinds,
    /// malformed options, and specs with no faults at all are rejected
    /// rather than silently producing an empty plan.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        let (specs, opts) = match text.split_once('@') {
            Some((s, o)) => (s, Some(o)),
            None => (text, None),
        };
        if let Some(opts) = opts {
            for opt in opts.split('@').filter(|s| !s.trim().is_empty()) {
                match opt.trim().split_once('=') {
                    Some(("seed", v)) => {
                        plan.seed = v.trim().parse::<u64>().map_err(|e| {
                            FaultSpecError::new(opt.trim(), format!("bad seed: {e}"))
                        })?;
                    }
                    _ => {
                        return Err(FaultSpecError::new(
                            opt.trim(),
                            "unknown option (expected seed=N)",
                        ))
                    }
                }
            }
        }
        let mut parsed = 0usize;
        for spec in specs.split(',').filter(|s| !s.trim().is_empty()) {
            let spec = spec.trim();
            parsed += 1;
            let mut parts = spec.split(':');
            let name = parts.next().unwrap_or_default();
            match name {
                "store-io" | "artifact-corrupt" | "trace-truncate" => {
                    let p = parts
                        .next()
                        .ok_or_else(|| FaultSpecError::new(spec, "missing probability"))?
                        .parse::<f64>()
                        .map_err(|e| FaultSpecError::new(spec, format!("bad probability: {e}")))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(FaultSpecError::new(
                            spec,
                            format!("probability {p} outside [0, 1]"),
                        ));
                    }
                    match name {
                        "store-io" => plan.store_io = p,
                        "artifact-corrupt" => plan.artifact_corrupt = p,
                        _ => plan.trace_truncate = p,
                    }
                }
                "stage-panic" => {
                    let stage = match parts.next() {
                        Some("build") => Stage::Build,
                        Some("trace") => Stage::Trace,
                        Some("analyze") => Stage::Analyze,
                        Some("plan") => Stage::Plan,
                        Some("evaluate") => Stage::Evaluate,
                        Some("store") => Stage::Store,
                        other => {
                            return Err(FaultSpecError::new(
                                spec,
                                format!("bad stage `{}`", other.unwrap_or("")),
                            ))
                        }
                    };
                    let count = parts
                        .next()
                        .ok_or_else(|| FaultSpecError::new(spec, "missing count"))?
                        .parse::<u64>()
                        .map_err(|e| FaultSpecError::new(spec, format!("bad count: {e}")))?;
                    plan.stage_panics.push(StagePanic {
                        stage,
                        remaining: AtomicU64::new(count),
                    });
                }
                _ => return Err(FaultSpecError::new(spec, format!("unknown fault `{name}`"))),
            }
            if parts.next().is_some() {
                return Err(FaultSpecError::new(spec, "trailing fields"));
            }
        }
        if parsed == 0 {
            return Err(FaultSpecError::new(
                text.trim(),
                "empty fault spec (name at least one fault, or unset the variable)",
            ));
        }
        Ok(plan)
    }

    /// A builder-style empty plan with an explicit seed, for tests.
    #[must_use]
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Sets the store-I/O failure probability.
    #[must_use]
    pub fn with_store_io(mut self, p: f64) -> Self {
        self.store_io = p;
        self
    }

    /// Sets the artifact-corruption probability.
    #[must_use]
    pub fn with_artifact_corrupt(mut self, p: f64) -> Self {
        self.artifact_corrupt = p;
        self
    }

    /// Sets the trace-truncation probability.
    #[must_use]
    pub fn with_trace_truncate(mut self, p: f64) -> Self {
        self.trace_truncate = p;
        self
    }

    /// Adds a stage-panic fault: the first `count` entries to `stage`
    /// panic.
    #[must_use]
    pub fn with_stage_panic(mut self, stage: Stage, count: u64) -> Self {
        self.stage_panics.push(StagePanic {
            stage,
            remaining: AtomicU64::new(count),
        });
        self
    }

    /// Deterministic roll in `[0, 1)` for `site`.
    fn roll(&self, site: &str) -> f64 {
        let bits = splitmix64(self.seed ^ fnv1a(site));
        // Take the top 53 bits for a uniform double in [0, 1).
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should the store-I/O operation at `site` fail?
    #[must_use]
    pub fn store_io_error(&self, site: &str) -> bool {
        self.store_io > 0.0 && self.roll(site) < self.store_io
    }

    /// Should the artifact loaded at `site` be corrupted?
    #[must_use]
    pub fn corrupt_artifact(&self, site: &str) -> bool {
        self.artifact_corrupt > 0.0 && self.roll(site) < self.artifact_corrupt
    }

    /// Should the trace produced at `site` come back truncated?
    #[must_use]
    pub fn truncate_trace(&self, site: &str) -> bool {
        self.trace_truncate > 0.0 && self.roll(site) < self.trace_truncate
    }

    /// Entry hook for `stage`: panics (with [`INJECTED_PANIC_PREFIX`])
    /// while the stage's configured panic count lasts.
    ///
    /// # Panics
    ///
    /// By design, while injected panics remain for `stage`.
    pub fn maybe_panic(&self, stage: Stage, site: &str) {
        for sp in &self.stage_panics {
            if sp.stage != stage {
                continue;
            }
            // Count down atomically; fire while positive.
            let prev = sp
                .remaining
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .unwrap_or(0);
            if prev > 0 {
                panic!("{INJECTED_PANIC_PREFIX} {stage} stage panic at {site}");
            }
        }
    }

    /// Deterministically mutates artifact text to simulate on-disk
    /// corruption: flips a byte in the middle of the payload.
    #[must_use]
    pub fn corrupt_text(&self, site: &str, text: &str) -> String {
        let mut bytes = text.as_bytes().to_vec();
        if bytes.is_empty() {
            return "\u{0}".into();
        }
        let idx = (splitmix64(self.seed ^ fnv1a(site) ^ 0xC0DE) as usize) % bytes.len();
        bytes[idx] ^= 0x5A;
        // Re-encode leniently: invalid UTF-8 becomes replacement chars,
        // which is exactly the kind of garbage a torn write produces.
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example() {
        let plan =
            FaultPlan::parse("store-io:0.05,artifact-corrupt:0.02,stage-panic:trace:1@seed=42")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert!((plan.store_io - 0.05).abs() < 1e-12);
        assert!((plan.artifact_corrupt - 0.02).abs() < 1e-12);
        assert_eq!(plan.stage_panics.len(), 1);
        assert_eq!(plan.stage_panics[0].stage, Stage::Trace);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("store-io").is_err());
        assert!(FaultPlan::parse("store-io:2.0").is_err());
        assert!(FaultPlan::parse("stage-panic:warp:1").is_err());
        assert!(FaultPlan::parse("stage-panic:trace").is_err());
        assert!(FaultPlan::parse("flux-capacitor:0.5").is_err());
        assert!(FaultPlan::parse("store-io:0.1@velocity=88").is_err());
        assert!(FaultPlan::parse("store-io:0.1:extra").is_err());
    }

    #[test]
    fn malformed_probabilities_return_typed_errors() {
        // Negative, above 1, non-numeric, empty — all typed errors that
        // name the offending spec, never a panic or a silently-empty plan.
        for bad in [
            "store-io:-0.1",
            "store-io:1.5",
            "artifact-corrupt:lots",
            "trace-truncate:",
            "store-io:inf",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(
                bad.starts_with(&err.spec),
                "error spec `{}` should name `{bad}`",
                err.spec
            );
            assert!(err.to_string().contains("bad fault spec"), "{err}");
        }
        // NaN parses as a float but fails the range check.
        assert!(FaultPlan::parse("store-io:NaN").is_err());
    }

    #[test]
    fn unknown_fault_kinds_name_the_kind() {
        let err = FaultPlan::parse("bitflip:0.5").unwrap_err();
        assert!(err.reason.contains("unknown fault `bitflip`"), "{err}");
    }

    #[test]
    fn malformed_seed_options_are_typed_errors() {
        // `@seed` without a value, `@seed=` with an empty one, and a
        // non-numeric seed are all rejected with the option named.
        for bad in [
            "store-io:0.5@seed",
            "store-io:0.5@seed=",
            "store-io:0.5@seed=x",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.spec.starts_with("seed"), "{bad}: {err:?}");
        }
        // A trailing `@` with no options at all is tolerated (nothing to
        // misread), and the seed default is 0.
        let plan = FaultPlan::parse("store-io:0.5@").unwrap();
        assert_eq!(plan.seed, 0);
    }

    #[test]
    fn empty_specs_are_rejected_not_silently_inert() {
        // A plan that configures nothing would make a chaos run look
        // healthy; parse refuses it (from_env treats unset/blank env as
        // "no plan" before ever calling parse).
        for empty in ["", "   ", ",", " , ,", "@seed=5"] {
            let err = FaultPlan::parse(empty).expect_err(empty);
            assert!(err.reason.contains("empty fault spec"), "{empty}: {err}");
        }
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::default();
        for i in 0..100 {
            let site = format!("site{i}");
            assert!(!plan.store_io_error(&site));
            assert!(!plan.corrupt_artifact(&site));
            assert!(!plan.truncate_trace(&site));
        }
        plan.maybe_panic(Stage::Trace, "anywhere"); // must not panic
    }

    #[test]
    fn rolls_are_deterministic_and_site_dependent() {
        let a = FaultPlan::seeded(7).with_store_io(0.5);
        let b = FaultPlan::seeded(7).with_store_io(0.5);
        let mut hits = 0;
        let mut diverged = false;
        for i in 0..200 {
            let site = format!("load:{i}");
            assert_eq!(a.store_io_error(&site), b.store_io_error(&site));
            hits += u32::from(a.store_io_error(&site));
            if a.store_io_error(&site) != a.store_io_error(&format!("save:{i}")) {
                diverged = true;
            }
        }
        // p=0.5 over 200 sites: both outcomes must occur, and distinct
        // sites must not be lock-stepped.
        assert!(hits > 50 && hits < 150, "hits = {hits}");
        assert!(diverged, "distinct sites always rolled identically");
    }

    #[test]
    fn different_seeds_give_different_outcomes() {
        let a = FaultPlan::seeded(1).with_store_io(0.5);
        let b = FaultPlan::seeded(2).with_store_io(0.5);
        let differs = (0..100).any(|i| {
            let site = format!("s{i}");
            a.store_io_error(&site) != b.store_io_error(&site)
        });
        assert!(differs);
    }

    #[test]
    fn stage_panic_fires_exactly_count_times() {
        let plan = FaultPlan::seeded(0).with_stage_panic(Stage::Evaluate, 2);
        for i in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                plan.maybe_panic(Stage::Evaluate, "pt");
            }));
            assert!(r.is_err(), "panic {i} did not fire");
        }
        plan.maybe_panic(Stage::Evaluate, "pt"); // exhausted: no panic
        plan.maybe_panic(Stage::Trace, "pt"); // other stages unaffected
    }

    #[test]
    fn corrupt_text_changes_the_payload_deterministically() {
        let plan = FaultPlan::seeded(9);
        let original = "{\"schema\":1,\"payload\":42}";
        let c1 = plan.corrupt_text("site", original);
        let c2 = plan.corrupt_text("site", original);
        assert_eq!(c1, c2);
        assert_ne!(c1, original);
    }
}
