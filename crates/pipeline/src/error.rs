//! Typed pipeline errors: every failure names the workload and the stage
//! that produced it, so a 44-workload batch run points straight at the
//! culprit instead of panicking.

/// The pipeline stage an error originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Kernel construction / program validation.
    Build,
    /// Dynamic trace generation (functional simulation).
    Trace,
    /// IR reconstruction from the trace.
    Analyze,
    /// BSA plan analysis.
    Plan,
    /// Design-point evaluation (scheduling + combined TDG run).
    Evaluate,
    /// Artifact-store I/O.
    Store,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Stage::Build => "build",
            Stage::Trace => "trace",
            Stage::Analyze => "analyze",
            Stage::Plan => "plan",
            Stage::Evaluate => "evaluate",
            Stage::Store => "store",
        })
    }
}

/// A pipeline failure, carrying the workload name and failing stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// The workload being processed when the failure occurred.
    pub workload: String,
    /// The stage that failed.
    pub stage: Stage,
    /// Human-readable cause.
    pub message: String,
}

impl PipelineError {
    /// Creates an error for `workload` failing in `stage`.
    #[must_use]
    pub fn new(workload: impl Into<String>, stage: Stage, message: impl Into<String>) -> Self {
        PipelineError {
            workload: workload.into(),
            stage,
            message: message.into(),
        }
    }

    /// Wraps a [`prism_sim::TraceError`] from the trace stage.
    #[must_use]
    pub fn trace(workload: impl Into<String>, err: &prism_sim::TraceError) -> Self {
        PipelineError::new(workload, Stage::Trace, err.to_string())
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workload `{}` failed in {} stage: {}",
            self.workload, self.stage, self.message
        )
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_names_workload_and_stage() {
        let e = PipelineError::new("stencil", Stage::Trace, "boom");
        let text = e.to_string();
        assert!(text.contains("stencil"), "{text}");
        assert!(text.contains("trace"), "{text}");
        assert!(text.contains("boom"), "{text}");
    }
}
