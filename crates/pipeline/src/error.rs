//! Typed pipeline errors: every failure names the workload and the stage
//! that produced it, so a 44-workload batch run points straight at the
//! culprit instead of panicking.

/// The pipeline stage an error originated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Kernel construction / program validation.
    Build,
    /// Dynamic trace generation (functional simulation).
    Trace,
    /// IR reconstruction from the trace.
    Analyze,
    /// BSA plan analysis.
    Plan,
    /// Design-point evaluation (scheduling + combined TDG run).
    Evaluate,
    /// Artifact-store I/O.
    Store,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Stage::Build => "build",
            Stage::Trace => "trace",
            Stage::Analyze => "analyze",
            Stage::Plan => "plan",
            Stage::Evaluate => "evaluate",
            Stage::Store => "store",
        })
    }
}

impl std::str::FromStr for Stage {
    type Err = String;

    /// Inverse of [`Display`](std::fmt::Display), for wire formats (the
    /// grid worker protocol serializes errors as text).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "build" => Ok(Stage::Build),
            "trace" => Ok(Stage::Trace),
            "analyze" => Ok(Stage::Analyze),
            "plan" => Ok(Stage::Plan),
            "evaluate" => Ok(Stage::Evaluate),
            "store" => Ok(Stage::Store),
            other => Err(format!("unknown stage `{other}`")),
        }
    }
}

/// How a pipeline stage failed — drives retry and quarantine policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// An ordinary typed failure (bad program, trace error, ...).
    Failed,
    /// The stage panicked and was caught at the stage boundary.
    StagePanicked,
    /// Artifact-store I/O failed even after bounded retries.
    StoreIo,
    /// The evaluation ran past its execution budget.
    BudgetExceeded,
    /// The µDG result diverged from the reference simulator beyond
    /// tolerance.
    Diverged,
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorKind::Failed => "failed",
            ErrorKind::StagePanicked => "panicked",
            ErrorKind::StoreIo => "store-io",
            ErrorKind::BudgetExceeded => "budget-exceeded",
            ErrorKind::Diverged => "diverged",
        })
    }
}

impl std::str::FromStr for ErrorKind {
    type Err = String;

    /// Inverse of [`Display`](std::fmt::Display), for wire formats.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "failed" => Ok(ErrorKind::Failed),
            "panicked" => Ok(ErrorKind::StagePanicked),
            "store-io" => Ok(ErrorKind::StoreIo),
            "budget-exceeded" => Ok(ErrorKind::BudgetExceeded),
            "diverged" => Ok(ErrorKind::Diverged),
            other => Err(format!("unknown error kind `{other}`")),
        }
    }
}

/// A pipeline failure, carrying the workload name and failing stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// The workload being processed when the failure occurred.
    pub workload: String,
    /// The stage that failed.
    pub stage: Stage,
    /// How the stage failed.
    pub kind: ErrorKind,
    /// Human-readable cause.
    pub message: String,
}

impl PipelineError {
    /// Creates an error for `workload` failing in `stage`.
    #[must_use]
    pub fn new(workload: impl Into<String>, stage: Stage, message: impl Into<String>) -> Self {
        PipelineError {
            workload: workload.into(),
            stage,
            kind: ErrorKind::Failed,
            message: message.into(),
        }
    }

    /// Wraps a [`prism_sim::TraceError`] from the trace stage.
    #[must_use]
    pub fn trace(workload: impl Into<String>, err: &prism_sim::TraceError) -> Self {
        PipelineError::new(workload, Stage::Trace, err.to_string())
    }

    /// A caught stage panic. `payload` is the panic payload rendered as
    /// text (the usual `&str` / `String` payloads; anything else becomes a
    /// placeholder).
    #[must_use]
    pub fn panicked(workload: impl Into<String>, stage: Stage, payload: impl Into<String>) -> Self {
        PipelineError {
            kind: ErrorKind::StagePanicked,
            ..PipelineError::new(workload, stage, payload)
        }
    }

    /// Artifact-store I/O that kept failing after retries.
    #[must_use]
    pub fn store_io(workload: impl Into<String>, message: impl Into<String>) -> Self {
        PipelineError {
            kind: ErrorKind::StoreIo,
            ..PipelineError::new(workload, Stage::Store, message)
        }
    }

    /// An evaluation that ran past its execution budget.
    #[must_use]
    pub fn budget(workload: impl Into<String>, err: &prism_udg::BudgetExceeded) -> Self {
        PipelineError {
            kind: ErrorKind::BudgetExceeded,
            ..PipelineError::new(workload, Stage::Evaluate, err.to_string())
        }
    }

    /// A µDG result that diverged from the reference simulator.
    #[must_use]
    pub fn diverged(workload: impl Into<String>, message: impl Into<String>) -> Self {
        PipelineError {
            kind: ErrorKind::Diverged,
            ..PipelineError::new(workload, Stage::Evaluate, message)
        }
    }

    /// Whether this error came from a caught panic.
    #[must_use]
    pub fn is_panic(&self) -> bool {
        self.kind == ErrorKind::StagePanicked
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workload `{}` {} in {} stage: {}",
            self.workload, self.kind, self.stage, self.message
        )
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_names_workload_and_stage() {
        let e = PipelineError::new("stencil", Stage::Trace, "boom");
        let text = e.to_string();
        assert!(text.contains("stencil"), "{text}");
        assert!(text.contains("trace"), "{text}");
        assert!(text.contains("boom"), "{text}");
        assert_eq!(e.kind, ErrorKind::Failed);
    }

    #[test]
    fn stage_and_kind_roundtrip_through_text() {
        for stage in [
            Stage::Build,
            Stage::Trace,
            Stage::Analyze,
            Stage::Plan,
            Stage::Evaluate,
            Stage::Store,
        ] {
            assert_eq!(stage.to_string().parse::<Stage>(), Ok(stage));
        }
        for kind in [
            ErrorKind::Failed,
            ErrorKind::StagePanicked,
            ErrorKind::StoreIo,
            ErrorKind::BudgetExceeded,
            ErrorKind::Diverged,
        ] {
            assert_eq!(kind.to_string().parse::<ErrorKind>(), Ok(kind));
        }
        assert!("warp".parse::<Stage>().is_err());
        assert!("warp".parse::<ErrorKind>().is_err());
    }

    #[test]
    fn kinds_carry_through_constructors() {
        let p = PipelineError::panicked("fft", Stage::Evaluate, "index out of bounds");
        assert!(p.is_panic());
        assert!(p.to_string().contains("panicked"), "{p}");

        let io = PipelineError::store_io("fft", "disk on fire");
        assert_eq!(io.kind, ErrorKind::StoreIo);
        assert_eq!(io.stage, Stage::Store);

        let d = PipelineError::diverged("fft", "ipc off by 12%");
        assert_eq!(d.kind, ErrorKind::Diverged);

        let b = PipelineError::budget(
            "fft",
            &prism_udg::BudgetExceeded {
                used: 11,
                max_nodes: 10,
            },
        );
        assert_eq!(b.kind, ErrorKind::BudgetExceeded);
        assert!(b.to_string().contains("budget"), "{b}");
    }
}
