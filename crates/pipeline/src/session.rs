//! The [`Session`]: the single entry point for the staged evaluation
//! pipeline `workload → Trace → ProgramIr → AccelPlans → evaluation`.
//!
//! A session owns an in-memory memo (prepared workloads, oracle tables) and
//! an on-disk [`ArtifactStore`] of design-point results, both keyed by
//! content hashes of every input that affects the artifact. Stages
//! invalidate independently: changing the tracer config re-traces, changing
//! only a core config reuses every trace and recomputes only the affected
//! oracle tables and design points.
//!
//! All fan-out runs through [`parallel_map`], so results are reduced in
//! canonical (input-index) order and a `--jobs 1` run is bit-identical to a
//! `--jobs N` run.

use std::collections::HashMap;
use std::ops::Deref;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use prism_exocore::{
    all_bsa_subsets, all_cores, oracle_pick, oracle_table_budgeted, DesignPoint, DesignResult,
    OracleTable, WorkloadData, WorkloadMetrics,
};
use prism_sim::{SimSource, Trace, TraceSource, TracerConfig};
use prism_tdg::{price_exocore, run_exocore, run_exocore_timing, Assignment, BsaKind, ExoTiming};
use prism_udg::{simulate_reference, simulate_trace, CoreConfig, ExecBudget, NODES_PER_INST};
use prism_workloads::{Suite, Workload};

use crate::codec::{
    decode_design_result, decode_exo_timing, decode_trace_chunk, encode_design_result,
    encode_exo_timing, encode_trace_chunk,
};
use crate::crash::{crash_point, SITE_UNIT_COMPLETE};
use crate::error::{PipelineError, Stage};
use crate::fault::FaultPlan;
use crate::hash::{ContentHash, Sha256};
use crate::journal::{sweep_key, JournalReplay, SweepJournal};
use crate::key::KeyBuilder;
use crate::par::{parallel_map, resolve_jobs};
use crate::store::{store_cap_from_env, ArtifactStore, StoreStats, GC_SAFETY_WINDOW};
use crate::sweep::SweepReport;

/// A workload prepared by a [`Session`]: its content key plus the shared
/// trace/IR/plans data. Dereferences to [`WorkloadData`].
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// Content hash of (workload name, build size, tracer config).
    pub key: ContentHash,
    /// The prepared trace, IR, and accelerator plans.
    pub data: Arc<WorkloadData>,
}

impl Deref for PreparedWorkload {
    type Target = WorkloadData;

    fn deref(&self) -> &WorkloadData {
        &self.data
    }
}

/// Aggregate cache counters for one session.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// On-disk artifact store counters.
    pub artifacts: StoreStats,
    /// In-memory memo hits (prepared workloads + oracle tables).
    pub memo_hits: u64,
    /// In-memory memo misses.
    pub memo_misses: u64,
    /// Timing requests satisfied by the in-process µDG shape memo.
    pub shape_memo_hits: u64,
    /// Timing summaries loaded from the persistent artifact store
    /// instead of recomputed.
    pub timing_artifacts_loaded: u64,
    /// Trace walks avoided (shape-memo hits + timing artifacts loaded).
    pub walks_skipped: u64,
    /// Trace walks actually performed ([`run_exocore_timing`]).
    pub trace_walks: u64,
    /// Dynamic instructions produced by the functional simulator.
    pub sim_insts: u64,
    /// Wall-clock nanoseconds spent producing them.
    pub sim_nanos: u64,
    /// Wall-clock nanoseconds spent in combined-TDG trace walks (µDG
    /// timing model, [`run_exocore`] / [`run_exocore_timing`]).
    pub udg_nanos: u64,
    /// Wall-clock nanoseconds spent in IR reconstruction + accelerator
    /// analysis ([`WorkloadData::from_trace`]).
    pub transform_nanos: u64,
    /// Wall-clock nanoseconds spent measuring oracle tables (scheduling).
    pub schedule_nanos: u64,
    /// Largest single in-flight trace chunk, in bytes — the streaming
    /// architecture's memory high-water mark for trace storage.
    pub peak_chunk_bytes: u64,
    /// Units settled from a sweep-journal replay instead of recomputed
    /// (completed *and* quarantined units both count).
    pub resumed: u64,
    /// Journal records read during resume replays.
    pub replayed: u64,
}

impl std::ops::AddAssign for SessionStats {
    fn add_assign(&mut self, rhs: SessionStats) {
        self.artifacts += rhs.artifacts;
        self.memo_hits += rhs.memo_hits;
        self.memo_misses += rhs.memo_misses;
        self.shape_memo_hits += rhs.shape_memo_hits;
        self.timing_artifacts_loaded += rhs.timing_artifacts_loaded;
        self.walks_skipped += rhs.walks_skipped;
        self.trace_walks += rhs.trace_walks;
        self.sim_insts += rhs.sim_insts;
        self.sim_nanos += rhs.sim_nanos;
        self.udg_nanos += rhs.udg_nanos;
        self.transform_nanos += rhs.transform_nanos;
        self.schedule_nanos += rhs.schedule_nanos;
        self.peak_chunk_bytes = self.peak_chunk_bytes.max(rhs.peak_chunk_bytes);
        self.resumed += rhs.resumed;
        self.replayed += rhs.replayed;
    }
}

impl SessionStats {
    /// Simulator throughput in instructions per second (0 when nothing
    /// was simulated).
    #[must_use]
    pub fn insts_per_sec(&self) -> f64 {
        if self.sim_nanos == 0 {
            return 0.0;
        }
        self.sim_insts as f64 / (self.sim_nanos as f64 / 1e9)
    }

    /// Renders the counters as a human-readable block (for `--stats`).
    #[must_use]
    pub fn render(&self) -> String {
        let a = &self.artifacts;
        format!(
            "-- session stats --\n\
             artifact store : {} hits, {} misses ({} discarded)\n\
             store I/O      : {} retries, {} errors\n\
             recomputes     : {}\n\
             memo           : {} hits, {} misses\n\
             trace walks    : {} performed, {} skipped \
             ({} shape-memo hits, {} timing artifacts loaded)\n\
             sim throughput : {} insts in {} ms ({:.0} insts/sec)\n\
             stage wall     : sim {} ms, uDG {} ms, transforms {} ms, \
             schedule {} ms\n\
             peak chunk     : {} bytes\n\
             journal        : {} units resumed, {} records replayed\n\
             tmp-file GC    : {} bytes reclaimed\n",
            a.hits,
            a.misses,
            a.discarded,
            a.io_retries,
            a.io_errors,
            a.recomputes,
            self.memo_hits,
            self.memo_misses,
            self.trace_walks,
            self.walks_skipped,
            self.shape_memo_hits,
            self.timing_artifacts_loaded,
            self.sim_insts,
            self.sim_nanos / 1_000_000,
            self.insts_per_sec(),
            self.sim_nanos / 1_000_000,
            self.udg_nanos / 1_000_000,
            self.transform_nanos / 1_000_000,
            self.schedule_nanos / 1_000_000,
            self.peak_chunk_bytes,
            self.resumed,
            self.replayed,
            a.gc_reclaimed_bytes,
        )
    }
}

/// Opt-in runtime guard: cross-checks the µDG timing model against the
/// cycle-stepped reference simulator on a sampled subset of
/// (workload, core) pairs, quarantining points whose relative IPC error
/// exceeds the tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivergenceGuard {
    /// Maximum tolerated relative IPC error (e.g. `0.25` = 25%).
    pub tolerance: f64,
    /// Check one in `sample` (workload, core) pairs; `1` checks them all.
    pub sample: u64,
}

impl DivergenceGuard {
    /// A guard with the given tolerance checking one in `sample` pairs.
    #[must_use]
    pub fn new(tolerance: f64, sample: u64) -> Self {
        DivergenceGuard {
            tolerance,
            sample: sample.max(1),
        }
    }

    /// Parses `PRISM_DIVERGENCE=tol[:sample]` (e.g. `0.25` or `0.25:4`).
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but does not parse.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("PRISM_DIVERGENCE").ok()?;
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        let (tol, sample) = match raw.split_once(':') {
            Some((t, s)) => (t, s.parse::<u64>().ok()),
            None => (raw, Some(1)),
        };
        let (Ok(tolerance), Some(sample)) = (tol.parse::<f64>(), sample) else {
            panic!("bad PRISM_DIVERGENCE value `{raw}` (expected tol[:sample])");
        };
        Some(DivergenceGuard::new(tolerance, sample))
    }

    /// Whether this (workload key, core) pair is in the checked sample.
    /// Stable: depends only on the pair, not on sweep order or thread
    /// interleaving.
    #[must_use]
    pub fn selects(&self, workload_key: &ContentHash, core_name: &str) -> bool {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in workload_key.hex().bytes().chain(core_name.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h.is_multiple_of(self.sample)
    }

    /// Runs both simulators on `(data, core)` and compares IPC.
    ///
    /// # Errors
    ///
    /// Returns a description of the divergence when the relative IPC error
    /// exceeds the tolerance.
    pub fn check(&self, data: &WorkloadData, core: &CoreConfig) -> Result<(), String> {
        let udg = simulate_trace(&data.trace, core);
        let reference = simulate_reference(&data.trace, core);
        let rel = (udg.ipc() - reference.ipc()).abs() / reference.ipc().max(f64::EPSILON);
        if rel > self.tolerance {
            return Err(format!(
                "uDG IPC {:.4} vs reference IPC {:.4} on {}: relative error {:.4} > tolerance {:.4}",
                udg.ipc(),
                reference.ipc(),
                core.name,
                rel,
                self.tolerance
            ));
        }
        Ok(())
    }
}

/// Renders a caught panic payload as text (the common `&str` / `String`
/// payloads; anything else becomes a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Attributes a caught panic to a stage by its message, falling back to
/// `default` (injected panics name their stage; real panics usually
/// don't).
fn panic_stage(message: &str, default: Stage) -> Stage {
    for (needle, stage) in [
        ("build stage", Stage::Build),
        ("trace stage", Stage::Trace),
        ("analyze stage", Stage::Analyze),
        ("plan stage", Stage::Plan),
        ("evaluate stage", Stage::Evaluate),
        ("store stage", Stage::Store),
    ] {
        if message.contains(needle) {
            return stage;
        }
    }
    default
}

/// Opt-in streaming mode: set (non-empty, non-`"0"`) to persist traces as
/// length-prefixed chunk artifacts in the store, enabling per-chunk
/// hashing, fault injection, prewarm, and chunk-level reuse across runs.
pub const STREAM_ENV: &str = "PRISM_STREAM";

/// Opt-out escape hatch: set (non-empty, non-`"0"`) to disable the
/// trace-walk timing memo and evaluate every design point with a full
/// [`run_exocore`] — the reference behavior for debugging the composed
/// path. Results are byte-identical either way.
pub const NO_COMPOSE_ENV: &str = "PRISM_NO_COMPOSE";

/// Opt-out escape hatch: set (non-empty, non-`"0"`) to disable the
/// persistent timing-artifact cache — trace-walk timings are then only
/// memoized in-process and never loaded from or saved to the artifact
/// store. Results are byte-identical either way.
pub const NO_TIMING_CACHE_ENV: &str = "PRISM_NO_TIMING_CACHE";

/// The pipeline session: memoized stages + content-addressed artifacts +
/// deterministic parallelism.
#[derive(Debug)]
pub struct Session {
    tracer: TracerConfig,
    jobs: usize,
    store: ArtifactStore,
    store_cap: Option<u64>,
    faults: Option<Arc<FaultPlan>>,
    budget: ExecBudget,
    guard: Option<DivergenceGuard>,
    streaming: bool,
    composition: bool,
    timing_cache: bool,
    workloads: Mutex<HashMap<ContentHash, Arc<WorkloadData>>>,
    tables: Mutex<HashMap<ContentHash, Arc<OracleTable>>>,
    timings: Mutex<HashMap<ContentHash, Arc<ExoTiming>>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
    shape_memo_hits: AtomicU64,
    timing_artifacts_loaded: AtomicU64,
    walks_skipped: AtomicU64,
    trace_walks: AtomicU64,
    sim_insts: AtomicU64,
    sim_nanos: AtomicU64,
    udg_nanos: AtomicU64,
    transform_nanos: AtomicU64,
    schedule_nanos: AtomicU64,
    resumed: AtomicU64,
    replayed: AtomicU64,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Creates a session from the environment: default tracer config,
    /// `PRISM_JOBS` (else hardware parallelism) workers, artifacts under
    /// `PRISM_ARTIFACT_DIR` (else `target/prism-artifacts`), fault
    /// injection from `PRISM_FAULTS`, a node budget from `PRISM_MAX_NODES`,
    /// and a divergence guard from `PRISM_DIVERGENCE=tol[:sample]`.
    ///
    /// # Panics
    ///
    /// Panics when `PRISM_MAX_NODES` is set but not a number (like the
    /// other env knobs, a typo must not silently disable the budget), and
    /// when the removed `PRISM_REFRESH` variable is still set: artifacts
    /// in the content-addressed store invalidate themselves when any
    /// input changes, so there is nothing left to refresh.
    #[must_use]
    pub fn new() -> Self {
        assert!(
            std::env::var_os("PRISM_REFRESH").is_none(),
            "PRISM_REFRESH was removed: the content-addressed artifact store \
             (target/prism-artifacts, or $PRISM_ARTIFACT_DIR) keys every \
             artifact by its inputs and invalidates automatically; delete \
             the store directory if you really want a cold run"
        );
        let faults = FaultPlan::from_env();
        let budget = match std::env::var("PRISM_MAX_NODES") {
            Ok(v) => ExecBudget::new(
                v.trim()
                    .parse::<u64>()
                    .unwrap_or_else(|e| panic!("bad PRISM_MAX_NODES value `{v}`: {e}")),
            ),
            Err(_) => ExecBudget::unlimited(),
        };
        let store_cap = store_cap_from_env();
        let mut store = ArtifactStore::new(ArtifactStore::default_dir());
        store.set_faults(faults.clone());
        store.set_cap(store_cap);
        // Opportunistic repair: sweep out tmp files leaked by long-dead
        // writers. The safety window plus live-pid check make this safe
        // against concurrent sessions sharing the store.
        store.gc_tmp_files(GC_SAFETY_WINDOW);
        Session {
            tracer: TracerConfig::default(),
            jobs: resolve_jobs(None),
            store,
            store_cap,
            faults,
            budget,
            guard: DivergenceGuard::from_env(),
            streaming: std::env::var(STREAM_ENV)
                .is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0"),
            composition: !std::env::var(NO_COMPOSE_ENV)
                .is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0"),
            timing_cache: !std::env::var(NO_TIMING_CACHE_ENV)
                .is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0"),
            workloads: Mutex::new(HashMap::new()),
            tables: Mutex::new(HashMap::new()),
            timings: Mutex::new(HashMap::new()),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
            shape_memo_hits: AtomicU64::new(0),
            timing_artifacts_loaded: AtomicU64::new(0),
            walks_skipped: AtomicU64::new(0),
            trace_walks: AtomicU64::new(0),
            sim_insts: AtomicU64::new(0),
            sim_nanos: AtomicU64::new(0),
            udg_nanos: AtomicU64::new(0),
            transform_nanos: AtomicU64::new(0),
            schedule_nanos: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
        }
    }

    /// Replaces the tracer configuration (stage-1 cache key input).
    #[must_use]
    pub fn with_tracer(mut self, tracer: TracerConfig) -> Self {
        self.tracer = tracer;
        self
    }

    /// Overrides the worker count (e.g. from a `--jobs` flag).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Redirects the on-disk artifact store.
    #[must_use]
    pub fn with_store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = ArtifactStore::new(dir);
        self.store.set_faults(self.faults.clone());
        self.store.set_cap(self.store_cap);
        self.store.gc_tmp_files(GC_SAFETY_WINDOW);
        self
    }

    /// Caps the artifact store at a byte budget with LRU eviction
    /// ([`ArtifactStore::enforce_cap`]); `None` uncaps. Overrides
    /// `PRISM_STORE_CAP`. Survives a later
    /// [`with_store_dir`](Session::with_store_dir).
    #[must_use]
    pub fn with_store_cap(mut self, cap_bytes: Option<u64>) -> Self {
        self.store_cap = cap_bytes;
        self.store.set_cap(cap_bytes);
        self
    }

    /// Installs (or, with `None`, clears) a fault-injection plan, shared
    /// with the artifact store. Overrides `PRISM_FAULTS`.
    #[must_use]
    pub fn with_faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.store.set_faults(faults.clone());
        self.faults = faults;
        self
    }

    /// Caps every evaluation unit (oracle table, design point) at an
    /// execution budget. Overrides `PRISM_MAX_NODES`.
    #[must_use]
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Installs (or clears) the µDG-vs-reference divergence guard.
    /// Overrides `PRISM_DIVERGENCE`.
    #[must_use]
    pub fn with_divergence_guard(mut self, guard: Option<DivergenceGuard>) -> Self {
        self.guard = guard;
        self
    }

    /// Enables (or disables) streaming mode: traces are persisted as
    /// length-prefixed chunk artifacts and reloaded chunk-by-chunk on
    /// later runs. Overrides `PRISM_STREAM`. Both modes record the trace
    /// through the same chunked simulator loop — only persistence
    /// differs, so reports are identical either way.
    #[must_use]
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Enables (or disables) the trace-walk timing memo: with composition
    /// on, each distinct (workload, core variant, assignment) triple walks
    /// the trace once ([`run_exocore_timing`]) and every design point
    /// sharing it only re-prices the result ([`price_exocore`]).
    /// Byte-identical to the direct path. Overrides `PRISM_NO_COMPOSE`.
    #[must_use]
    pub fn with_composition(mut self, composition: bool) -> Self {
        self.composition = composition;
        self
    }

    /// Enables (or disables) the persistent timing-artifact cache: with it
    /// on, each trace-walk timing summary is saved to the artifact store
    /// keyed by its [µDG shape key](Session::shape_key) and loaded instead
    /// of recomputed on warm runs. Byte-identical either way. Overrides
    /// `PRISM_NO_TIMING_CACHE`.
    #[must_use]
    pub fn with_timing_cache(mut self, timing_cache: bool) -> Self {
        self.timing_cache = timing_cache;
        self
    }

    /// The session's worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The session's tracer configuration.
    #[must_use]
    pub fn tracer(&self) -> &TracerConfig {
        &self.tracer
    }

    /// The content key of a registered workload at size `n` under this
    /// session's tracer config — computable without preparing anything.
    #[must_use]
    pub fn workload_key(&self, name: &str, n: u32) -> ContentHash {
        let mut kb = KeyBuilder::new("workload");
        kb.field("name", name);
        kb.field("n", n);
        kb.tracer(&self.tracer);
        kb.finish()
    }

    /// The content key of trace chunk `index` of a prepared workload.
    /// The chunk size is part of the key, so runs with different
    /// `PRISM_CHUNK` settings never mix chunk boundaries.
    #[must_use]
    pub fn trace_chunk_key(&self, workload_key: &ContentHash, index: u64) -> ContentHash {
        let mut kb = KeyBuilder::new("trace-chunk");
        kb.hash_field("workload", workload_key);
        kb.field("chunk_insts", prism_sim::chunk_size_from_env());
        kb.field("index", index);
        kb.finish()
    }

    /// The content key of one design point over an ordered workload set.
    #[must_use]
    pub fn design_point_key(
        &self,
        workload_keys: &[ContentHash],
        core: &CoreConfig,
        bsas: &[BsaKind],
    ) -> ContentHash {
        let mut kb = KeyBuilder::new("design-result");
        kb.field("workloads", workload_keys.len());
        for (i, key) in workload_keys.iter().enumerate() {
            kb.hash_field(&format!("workload.{i}"), key);
        }
        kb.core(core);
        kb.bsas(bsas);
        kb.finish()
    }

    fn memo_workload(
        &self,
        key: ContentHash,
        name: &str,
        build: impl FnOnce() -> prism_isa::Program,
    ) -> Result<PreparedWorkload, PipelineError> {
        // Poison recovery: the memo holds plain data, so a panic in some
        // other thread that happened to hold the lock cannot have left it
        // half-updated — recover the guard instead of cascading the panic.
        if let Some(data) = self
            .workloads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PreparedWorkload {
                key,
                data: Arc::clone(data),
            });
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(f) = &self.faults {
            f.maybe_panic(Stage::Build, name);
        }
        let program = build();
        if let Some(f) = &self.faults {
            f.maybe_panic(Stage::Trace, name);
            if f.truncate_trace(name) {
                return Err(PipelineError::new(
                    name,
                    Stage::Trace,
                    format!(
                        "injected fault: trace truncated before {} instructions",
                        self.tracer.max_insts
                    ),
                ));
            }
        }
        let trace = self.record_trace(&key, &program, name)?;
        let started = std::time::Instant::now();
        let data = Arc::new(WorkloadData::from_trace(trace));
        self.transform_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.workloads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, Arc::clone(&data));
        Ok(PreparedWorkload { key, data })
    }

    /// Records `program`'s trace chunk-by-chunk from the streaming
    /// simulator, applying per-chunk fault injection (`{name}:chunk{i}`
    /// sites) and, in streaming mode, persisting each chunk to the store
    /// (after first trying to replay a previously stored chunk sequence).
    ///
    /// Both modes run the same chunked loop — the materialized `Trace` is
    /// assembled from the chunks either way, so downstream results do not
    /// depend on the mode.
    fn record_trace(
        &self,
        workload_key: &ContentHash,
        program: &prism_isa::Program,
        name: &str,
    ) -> Result<Trace, PipelineError> {
        if self.streaming {
            if let Some(trace) = self.load_chunked_trace(workload_key, program) {
                return Ok(trace);
            }
        }
        let mut source =
            SimSource::new(program, &self.tracer).map_err(|e| PipelineError::trace(name, &e))?;
        let started = std::time::Instant::now();
        let mut insts = Vec::new();
        let mut stats = prism_sim::TraceStats::default();
        loop {
            let chunk = match source.next_chunk() {
                Ok(Some(c)) => c,
                Ok(None) => break,
                Err(e) => return Err(PipelineError::trace(name, &e)),
            };
            if let Some(f) = &self.faults {
                if f.truncate_trace(&format!("{name}:chunk{}", chunk.index)) {
                    return Err(PipelineError::new(
                        name,
                        Stage::Trace,
                        format!("injected fault: trace truncated at chunk {}", chunk.index),
                    ));
                }
            }
            if self.streaming {
                let ck = self.trace_chunk_key(workload_key, chunk.index);
                self.store.save(&ck, encode_trace_chunk(&chunk));
            }
            stats = chunk.stats;
            let last = chunk.last;
            insts.extend(chunk.insts);
            if last {
                break;
            }
        }
        self.sim_insts.fetch_add(stats.insts, Ordering::Relaxed);
        self.sim_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(Trace {
            program: program.clone(),
            insts,
            stats,
        })
    }

    /// Replays a previously persisted chunk sequence from the store, or
    /// `None` when any chunk is missing, fails to decode, or breaks seq
    /// contiguity (the caller then re-simulates from scratch).
    fn load_chunked_trace(
        &self,
        workload_key: &ContentHash,
        program: &prism_isa::Program,
    ) -> Option<Trace> {
        let mut insts = Vec::new();
        let mut stats = prism_sim::TraceStats::default();
        for index in 0.. {
            let ck = self.trace_chunk_key(workload_key, index);
            let chunk = decode_trace_chunk(&self.store.load(&ck)?)?;
            if chunk.index != index || chunk.first_seq != insts.len() as u64 {
                return None;
            }
            stats = chunk.stats;
            let last = chunk.last;
            insts.extend(chunk.insts);
            if last {
                break;
            }
        }
        Some(Trace {
            program: program.clone(),
            insts,
            stats,
        })
    }

    /// Produces (and, in streaming mode, persists) only the *first* chunk
    /// of `workload`'s trace — enough for a grid worker to overlap
    /// simulation with another shard's evaluation without materializing
    /// the stream. A no-op when the workload is already memoized.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] when the program fails validation or
    /// execution.
    pub fn prewarm_chunk0(&self, workload: &Workload) -> Result<(), PipelineError> {
        let n = workload.scaled_n();
        let key = self.workload_key(workload.name, n);
        if self
            .workloads
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&key)
        {
            return Ok(());
        }
        let program = (workload.build)(n);
        let mut source = SimSource::new(&program, &self.tracer)
            .map_err(|e| PipelineError::trace(workload.name, &e))?;
        let started = std::time::Instant::now();
        match source.next_chunk() {
            Ok(Some(chunk)) => {
                self.sim_insts
                    .fetch_add(chunk.insts.len() as u64, Ordering::Relaxed);
                self.sim_nanos
                    .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                if self.streaming {
                    let ck = self.trace_chunk_key(&key, chunk.index);
                    self.store.save(&ck, encode_trace_chunk(&chunk));
                }
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(e) => Err(PipelineError::trace(workload.name, &e)),
        }
    }

    /// Prepares a registered workload at its default size, multiplied by
    /// the `PRISM_SCALE` knob ([`prism_workloads::scale`]).
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] naming the workload and failing stage.
    pub fn prepare(&self, workload: &Workload) -> Result<PreparedWorkload, PipelineError> {
        self.prepare_sized(workload, workload.scaled_n())
    }

    /// Prepares a registered workload at an explicit size.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] naming the workload and failing stage.
    pub fn prepare_sized(
        &self,
        workload: &Workload,
        n: u32,
    ) -> Result<PreparedWorkload, PipelineError> {
        let key = self.workload_key(workload.name, n);
        self.memo_workload(key, workload.name, || (workload.build)(n))
    }

    /// Prepares an ad-hoc program (keyed by a content hash of the program
    /// itself, so two identical programs share one preparation).
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] naming the program and failing stage.
    pub fn prepare_program(
        &self,
        program: &prism_isa::Program,
    ) -> Result<PreparedWorkload, PipelineError> {
        let mut h = Sha256::new();
        h.update_str(&format!("{program:?}"));
        let mut kb = KeyBuilder::new("program");
        kb.hash_field("program", &h.finish());
        kb.tracer(&self.tracer);
        let key = kb.finish();
        self.memo_workload(key, &program.name, || program.clone())
    }

    /// Prepares a batch of workloads in parallel, preserving input order.
    ///
    /// # Errors
    ///
    /// Returns the first failure in input order.
    pub fn prepare_batch(
        &self,
        workloads: &[&Workload],
    ) -> Result<Vec<PreparedWorkload>, PipelineError> {
        parallel_map(workloads, self.jobs, |_, w| self.prepare(w))
            .into_iter()
            .collect()
    }

    /// Prepares every registered workload.
    ///
    /// # Errors
    ///
    /// Returns the first failure in registry order.
    pub fn prepare_all(&self) -> Result<Vec<PreparedWorkload>, PipelineError> {
        self.prepare_batch(&prism_workloads::ALL.iter().collect::<Vec<_>>())
    }

    /// Prepares the workloads of one suite.
    ///
    /// # Errors
    ///
    /// Returns the first failure in registry order.
    pub fn prepare_suite(&self, suite: Suite) -> Result<Vec<PreparedWorkload>, PipelineError> {
        self.prepare_batch(&prism_workloads::by_suite(suite).collect::<Vec<_>>())
    }

    /// Prepares the microbenchmark set.
    ///
    /// # Errors
    ///
    /// Returns the first failure in registry order.
    pub fn prepare_micro(&self) -> Result<Vec<PreparedWorkload>, PipelineError> {
        self.prepare_batch(&prism_workloads::MICRO.iter().collect::<Vec<_>>())
    }

    /// The oracle table for `workload` on `core`'s base configuration,
    /// memoized per (workload key, core) and metered against the session's
    /// execution budget.
    ///
    /// # Errors
    ///
    /// Returns a budget-kind [`PipelineError`] when the table cannot be
    /// measured within the session's [`ExecBudget`].
    pub fn oracle_table(
        &self,
        workload: &PreparedWorkload,
        core: &CoreConfig,
    ) -> Result<Arc<OracleTable>, PipelineError> {
        let mut kb = KeyBuilder::new("oracle-table");
        kb.hash_field("workload", &workload.key);
        kb.core(core);
        let key = kb.finish();
        if let Some(table) = self
            .tables
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(table));
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let started = std::time::Instant::now();
        let table = oracle_table_budgeted(&workload.data, core, &self.budget)
            .map_err(|e| PipelineError::budget(&workload.name, &e))?;
        self.schedule_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let table = Arc::new(table);
        self.tables
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// The canonical **µDG shape key** of one trace-walk timing: a
    /// [`ContentHash`] over every structural feature that determines the
    /// walk — workload trace identity, the core's
    /// [timing class](CoreConfig::timing_class) (display name excluded,
    /// so variants differing only in priced parameters share one walk),
    /// the sorted transform assignment, and the execution-budget knob.
    /// Both the in-process timing memo and the persistent timing
    /// artifacts are keyed by it.
    #[must_use]
    pub fn shape_key(
        &self,
        workload: &PreparedWorkload,
        core: &CoreConfig,
        assignment: &Assignment,
    ) -> ContentHash {
        let mut kb = KeyBuilder::new("exo-timing-shape");
        kb.hash_field("workload", &workload.key);
        kb.core_timing(core);
        let mut pairs: Vec<_> = assignment.map.iter().map(|(&l, &k)| (l, k)).collect();
        pairs.sort_unstable();
        let assigned: String = pairs
            .iter()
            .map(|(l, k)| format!("{l}={};", k.code()))
            .collect();
        kb.field("assigned", assigned);
        kb.field("budget.max_nodes", self.budget.max_nodes);
        kb.finish()
    }

    /// The trace-walk timing for (workload, core variant, assignment),
    /// memoized for the session's lifetime under the [µDG shape
    /// key](Session::shape_key) and — unless the timing cache is off —
    /// persisted to the artifact store, so a warm run loads the summary
    /// instead of walking the trace. A corrupt or stale stored timing
    /// degrades to a recompute (the store validates on load, the decoder
    /// is strict). Counts against the session's memo and walk stats and
    /// the µDG stage wall-time.
    fn exo_timing(
        &self,
        workload: &PreparedWorkload,
        core: &CoreConfig,
        assignment: &Assignment,
    ) -> Arc<ExoTiming> {
        let key = self.shape_key(workload, core, assignment);
        if let Some(t) = self
            .timings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            self.shape_memo_hits.fetch_add(1, Ordering::Relaxed);
            self.walks_skipped.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(t);
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        if self.timing_cache {
            if let Some(timing) = self
                .store
                .load(&key)
                .and_then(|payload| decode_exo_timing(&payload))
            {
                self.timing_artifacts_loaded.fetch_add(1, Ordering::Relaxed);
                self.walks_skipped.fetch_add(1, Ordering::Relaxed);
                let timing = Arc::new(timing);
                self.timings
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(key, Arc::clone(&timing));
                return timing;
            }
        }
        let started = std::time::Instant::now();
        let timing = Arc::new(run_exocore_timing(
            &workload.trace,
            &workload.ir,
            core,
            &workload.plans,
            assignment,
        ));
        self.udg_nanos
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.trace_walks.fetch_add(1, Ordering::Relaxed);
        if self.timing_cache {
            self.store.save(&key, encode_exo_timing(&timing));
        }
        self.timings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, Arc::clone(&timing));
        timing
    }

    /// The [µDG shape keys](Session::shape_key) of the trace-walk timings
    /// one design point needs — one per workload whose oracle table is
    /// measurable (errors are skipped; they surface when the point is
    /// evaluated). Grid workers report these alongside the design-result
    /// key so coordinators can pull timing artifacts over the wire, and
    /// coordinators push them ahead of assignments — the multi-host
    /// fabric becomes a distributed timing cache.
    #[must_use]
    pub fn timing_shape_keys(
        &self,
        data: &[PreparedWorkload],
        core: &CoreConfig,
        bsas: &[BsaKind],
    ) -> Vec<ContentHash> {
        let point = DesignPoint::new(core.clone(), bsas.to_vec());
        data.iter()
            .filter_map(|w| {
                let table = self.oracle_table(w, core).ok()?;
                let assignment = oracle_pick(&table, &w.data, &point.bsas);
                Some(self.shape_key(w, &point.core, &assignment))
            })
            .collect()
    }

    fn evaluate_point(
        &self,
        data: &[PreparedWorkload],
        core: &CoreConfig,
        bsas: &[BsaKind],
    ) -> Result<DesignResult, PipelineError> {
        let point = DesignPoint::new(core.clone(), bsas.to_vec());
        if let Some(f) = &self.faults {
            f.maybe_panic(Stage::Evaluate, &point.label());
        }
        // One fuel meter per design point: every combined-TDG run charges
        // the µDG nodes it will place — also with composition on, where a
        // memo hit skips the walk but the budget semantics must not change.
        let mut meter = self.budget.meter();
        let mut per_workload = Vec::with_capacity(data.len());
        for w in data {
            let table = self.oracle_table(w, core)?;
            let assignment = oracle_pick(&table, &w.data, &point.bsas);
            meter
                .charge((w.trace.len() as u64).saturating_mul(NODES_PER_INST))
                .map_err(|e| PipelineError::budget(&w.name, &e))?;
            let run = if self.composition {
                for &kind in assignment.map.values() {
                    assert!(
                        point.bsas.contains(&kind),
                        "assignment to absent accelerator {kind}"
                    );
                }
                let timing = self.exo_timing(w, &point.core, &assignment);
                price_exocore(&timing, &point.core, &point.bsas)
            } else {
                let started = std::time::Instant::now();
                let run = run_exocore(
                    &w.trace,
                    &w.ir,
                    &point.core,
                    &w.plans,
                    &assignment,
                    &point.bsas,
                );
                self.udg_nanos
                    .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                run
            };
            per_workload.push(WorkloadMetrics::from_run(&run, &w.name));
        }
        Ok(DesignResult {
            label: point.label(),
            core: point.core.name.clone(),
            bsas: point.bsas.iter().map(|b| b.code()).collect(),
            area_mm2: point.area_mm2(),
            per_workload,
        })
    }

    /// [`Session::evaluate_point`] behind a panic boundary: a panicking
    /// model stage becomes a typed error attributed to this design point.
    fn evaluate_point_guarded(
        &self,
        data: &[PreparedWorkload],
        core: &CoreConfig,
        bsas: &[BsaKind],
    ) -> Result<DesignResult, PipelineError> {
        match catch_unwind(AssertUnwindSafe(|| self.evaluate_point(data, core, bsas))) {
            Ok(res) => res,
            Err(payload) => {
                let label = DesignPoint::new(core.clone(), bsas.to_vec()).label();
                let msg = panic_message(payload.as_ref());
                let stage = panic_stage(&msg, Stage::Evaluate);
                Err(PipelineError::panicked(label, stage, msg))
            }
        }
    }

    /// Prepares `workloads`, isolating failures: panicking or erroring
    /// workloads are returned as `(name, error)` instead of aborting the
    /// batch. The healthy preparations keep input order.
    pub fn prepare_quarantined(
        &self,
        workloads: &[&Workload],
    ) -> (Vec<PreparedWorkload>, Vec<(String, PipelineError)>) {
        let outcomes = parallel_map(workloads, self.jobs, |_, w| {
            catch_unwind(AssertUnwindSafe(|| self.prepare(w))).unwrap_or_else(|payload| {
                let msg = panic_message(payload.as_ref());
                let stage = panic_stage(&msg, Stage::Build);
                Err(PipelineError::panicked(w.name, stage, msg))
            })
        });
        let mut healthy = Vec::new();
        let mut failed = Vec::new();
        for (w, res) in workloads.iter().zip(outcomes) {
            match res {
                Ok(p) => healthy.push(p),
                Err(e) => failed.push((w.name.to_string(), e)),
            }
        }
        (healthy, failed)
    }

    /// The Fig. 12 label of grid point `idx` (core-major order).
    fn point_label(cores: &[CoreConfig], subsets: &[Vec<BsaKind>], idx: usize) -> String {
        let (c, s) = (idx / subsets.len(), idx % subsets.len());
        DesignPoint::new(cores[c].clone(), subsets[s].clone()).label()
    }

    /// Evaluates the grid points named by `missing` (indices in core-major
    /// order) with failure isolation, returning `(index, outcome)` pairs in
    /// input order. Applies the divergence guard, prefills oracle tables,
    /// and quarantines per point. `on_unit` runs inside the evaluation
    /// fan-out as each unit settles — the durability hook (store save +
    /// journal append) for callers that persist incrementally.
    fn run_points(
        &self,
        data: &[PreparedWorkload],
        cores: &[CoreConfig],
        subsets: &[Vec<BsaKind>],
        missing: &[usize],
        on_unit: &(dyn Fn(usize, &Result<DesignResult, PipelineError>) + Sync),
    ) -> Vec<(usize, Result<DesignResult, PipelineError>)> {
        // Cores that still have work (missing is sorted, so dedup works).
        let mut core_ids: Vec<usize> = missing.iter().map(|&i| i / subsets.len()).collect();
        core_ids.dedup();

        // Divergence guard: cross-check sampled (workload, core) pairs
        // against the reference simulator; a diverging pair quarantines
        // every point of that core.
        let mut core_block: Vec<Option<PipelineError>> = vec![None; cores.len()];
        if let Some(g) = self.guard {
            let pairs: Vec<(usize, usize)> = core_ids
                .iter()
                .flat_map(|&c| (0..data.len()).map(move |w| (c, w)))
                .filter(|&(c, w)| g.selects(&data[w].key, &cores[c].name))
                .collect();
            let bad = parallel_map(&pairs, self.jobs, |_, &(c, w)| {
                g.check(&data[w], &cores[c])
                    .err()
                    .map(|m| (c, PipelineError::diverged(&data[w].name, m)))
            });
            for (c, e) in bad.into_iter().flatten() {
                core_block[c].get_or_insert(e);
            }
        }

        // Prefill the oracle-table memo over (core × workload); failures
        // here resurface (typed) when the point is evaluated.
        let pairs: Vec<(usize, usize)> = core_ids
            .iter()
            .filter(|&&c| core_block[c].is_none())
            .flat_map(|&c| (0..data.len()).map(move |w| (c, w)))
            .collect();
        parallel_map(&pairs, self.jobs, |_, &(c, w)| {
            let _ = catch_unwind(AssertUnwindSafe(|| self.oracle_table(&data[w], &cores[c])));
        });

        // With composition on, prefill the trace-walk timing memo over the
        // *distinct* (workload, core variant, assignment) triples of the
        // missing points, so parallel point evaluation hits the memo
        // instead of racing to redo identical walks. Errors are ignored
        // here; they resurface (typed) when the point is evaluated.
        if self.composition {
            let mut seen = std::collections::HashSet::new();
            let mut walks: Vec<(usize, CoreConfig, Assignment)> = Vec::new();
            for &idx in missing {
                let (c, s) = (idx / subsets.len(), idx % subsets.len());
                if core_block[c].is_some() {
                    continue;
                }
                let point = DesignPoint::new(cores[c].clone(), subsets[s].clone());
                for (wi, w) in data.iter().enumerate() {
                    let Ok(table) = self.oracle_table(w, &cores[c]) else {
                        continue;
                    };
                    let assignment = oracle_pick(&table, &w.data, &point.bsas);
                    if seen.insert(self.shape_key(w, &point.core, &assignment)) {
                        walks.push((wi, point.core.clone(), assignment));
                    }
                }
            }
            parallel_map(&walks, self.jobs, |_, (wi, core, assignment)| {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    self.exo_timing(&data[*wi], core, assignment)
                }));
            });
        }

        // Evaluate every missing point; tables now come from the memo.
        parallel_map(missing, self.jobs, |_, &idx| {
            let (c, s) = (idx / subsets.len(), idx % subsets.len());
            let res = match &core_block[c] {
                Some(e) => Err(e.clone()),
                None => self.evaluate_point_guarded(data, &cores[c], &subsets[s]),
            };
            on_unit(idx, &res);
            (idx, res)
        })
    }

    /// Evaluates every (core × BSA-subset) design point over `data`,
    /// in canonical core-major order, isolating failures: points whose
    /// evaluation panics, blows the execution budget, or diverges from the
    /// reference simulator land in [`SweepReport::quarantined`] while every
    /// healthy point still produces a result. Oracle tables are measured
    /// once per (workload, base core) and shared across that core's
    /// subsets. Work is distributed over [`Session::jobs`] threads; the
    /// report (sorted by unit key) is independent of the job count.
    #[must_use]
    pub fn explore_grid(
        &self,
        data: &[PreparedWorkload],
        cores: &[CoreConfig],
        subsets: &[Vec<BsaKind>],
    ) -> SweepReport {
        let all: Vec<usize> = (0..cores.len() * subsets.len()).collect();
        let mut report = SweepReport::default();
        for (idx, res) in self.run_points(data, cores, subsets, &all, &|_, _| {}) {
            match res {
                Ok(r) => report.results.push(r),
                Err(e) => report
                    .quarantined
                    .push((Self::point_label(cores, subsets, idx), e)),
            }
        }
        report.sort_units();
        report
    }

    /// [`Session::explore_grid`] over the paper's full 64-point space
    /// (4 cores × 16 BSA subsets).
    #[must_use]
    pub fn explore(&self, data: &[PreparedWorkload]) -> SweepReport {
        self.explore_grid(data, &all_cores(), &all_bsa_subsets())
    }

    /// The fault-isolated, artifact-backed design-space sweep: design
    /// points already on disk are loaded instead of recomputed, workloads
    /// are prepared (with quarantine) only if at least one point is
    /// missing, and every failure — workload preparation, stage panic,
    /// budget, store I/O, divergence — quarantines the smallest unit it
    /// affects instead of aborting the sweep. A fully cached run does no
    /// tracing at all.
    ///
    /// When workloads are quarantined, the surviving points are keyed (and
    /// cached) over the healthy workload subset, so their artifacts are
    /// distinct from full-set results and a later healthy run recomputes
    /// the full set.
    #[must_use]
    pub fn evaluate_designs(
        &self,
        workloads: &[&Workload],
        cores: &[CoreConfig],
        subsets: &[Vec<BsaKind>],
    ) -> SweepReport {
        self.evaluate_designs_inner(workloads, cores, subsets, None)
    }

    /// [`Session::evaluate_designs`] with a sweep journal: every settled
    /// unit is appended to an on-disk WAL, and with `resume` the existing
    /// journal is replayed first — journaled units are never recomputed,
    /// and the report is identical to an uninterrupted run. Journal I/O
    /// failures degrade to an unjournaled sweep with a warning; they never
    /// fail the sweep itself.
    #[must_use]
    pub fn evaluate_designs_resumable(
        &self,
        workloads: &[&Workload],
        cores: &[CoreConfig],
        subsets: &[Vec<BsaKind>],
        resume: bool,
    ) -> SweepReport {
        let wl: Vec<(String, u32)> = workloads
            .iter()
            .map(|w| (w.name.to_string(), w.scaled_n()))
            .collect();
        let sweep = sweep_key(&wl, &self.tracer, cores, subsets);
        match SweepJournal::open(self.store.dir(), &sweep, resume) {
            Ok(journal) => self.evaluate_designs_inner(workloads, cores, subsets, Some(journal)),
            Err(e) => {
                eprintln!(
                    "[prism-pipeline] sweep journal unavailable ({e}); \
                     running unjournaled"
                );
                self.evaluate_designs_inner(workloads, cores, subsets, None)
            }
        }
    }

    fn evaluate_designs_inner(
        &self,
        workloads: &[&Workload],
        cores: &[CoreConfig],
        subsets: &[Vec<BsaKind>],
        journal: Option<(SweepJournal, JournalReplay)>,
    ) -> SweepReport {
        let mut report = SweepReport::default();
        let total = cores.len() * subsets.len();
        let mut results: Vec<Option<DesignResult>> = vec![None; total];
        // `settled[i]`: the journal already decided unit i (done or
        // quarantined) — never recompute it, never re-journal it.
        let mut settled = vec![false; total];
        let mut from_replay = vec![false; total];
        let (journal, replay) = match journal {
            Some((j, r)) => (Some(j), r),
            None => (None, JournalReplay::default()),
        };
        if replay.records > 0 {
            let label_to_idx: HashMap<String, usize> = (0..total)
                .map(|i| (Self::point_label(cores, subsets, i), i))
                .collect();
            for (unit, result) in &replay.done {
                // Units the current space doesn't contain (journal from a
                // colliding-but-different sweep cannot happen — the sweep
                // key covers the space — so this is purely defensive).
                let Some(&idx) = label_to_idx.get(unit) else {
                    continue;
                };
                results[idx] = Some(result.clone());
                settled[idx] = true;
                from_replay[idx] = true;
                self.resumed.fetch_add(1, Ordering::Relaxed);
            }
            for (unit, error) in &replay.quarantined {
                let Some(&idx) = label_to_idx.get(unit) else {
                    continue;
                };
                report.quarantined.push((unit.clone(), error.clone()));
                settled[idx] = true;
                from_replay[idx] = true;
                self.resumed.fetch_add(1, Ordering::Relaxed);
            }
            self.replayed.fetch_add(replay.records, Ordering::Relaxed);
        }

        // Fast path: everything cached under the full workload set (or
        // settled by the journal) — no preparation needed at all.
        let full_keys: Vec<ContentHash> = workloads
            .iter()
            .map(|w| self.workload_key(w.name, w.scaled_n()))
            .collect();
        for (i, cached) in self
            .load_cached_except(&full_keys, cores, subsets, &settled)
            .into_iter()
            .enumerate()
        {
            if !settled[i] {
                results[i] = cached;
            }
        }
        if (0..total).all(|i| settled[i] || results[i].is_some()) {
            report.results = results.into_iter().flatten().collect();
            report.sort_units();
            Self::finish_journal(journal, &report);
            return report;
        }

        // Prepare with quarantine; failed workloads drop out of the sweep.
        let (data, failed) = self.prepare_quarantined(workloads);
        for (name, err) in failed {
            report.quarantined.push((format!("workload:{name}"), err));
        }
        if data.is_empty() {
            report.sort_units();
            Self::finish_journal(journal, &report);
            return report;
        }
        let healthy_keys: Vec<ContentHash> = data.iter().map(|p| p.key).collect();
        if data.len() != workloads.len() {
            // The cache above was keyed over the full set; re-key over the
            // healthy subset. Journal-replayed units stay settled — under
            // the deterministic fault plans the same workloads fail on
            // every run, so replayed results match what this run would
            // compute.
            let rekeyed = self.load_cached_except(&healthy_keys, cores, subsets, &settled);
            for (i, cached) in rekeyed.into_iter().enumerate() {
                if !from_replay[i] {
                    results[i] = cached;
                }
            }
        }
        let point_keys: Vec<ContentHash> = {
            let mut keys = Vec::with_capacity(total);
            for core in cores {
                for bsas in subsets {
                    keys.push(self.design_point_key(&healthy_keys, core, bsas));
                }
            }
            keys
        };

        let missing: Vec<usize> = (0..total)
            .filter(|&i| !settled[i] && results[i].is_none())
            .collect();
        // Durability hook, run as each unit settles: persist the result
        // artifact first, then journal the unit. Ordering matters — a
        // `done` record must always refer to an artifact that is already
        // on disk, so a resume never recomputes a journaled-done unit.
        let on_unit = |idx: usize, res: &Result<DesignResult, PipelineError>| {
            match res {
                Ok(r) => {
                    self.store.save(&point_keys[idx], encode_design_result(r));
                    if let Some(j) = &journal {
                        if let Err(e) = j.append_done(&Self::point_label(cores, subsets, idx), r) {
                            eprintln!("[prism-pipeline] journal append failed: {e}");
                        }
                    }
                }
                Err(e) => {
                    if let Some(j) = &journal {
                        if let Err(we) =
                            j.append_quarantined(&Self::point_label(cores, subsets, idx), e)
                        {
                            eprintln!("[prism-pipeline] journal append failed: {we}");
                        }
                    }
                }
            }
            crash_point(SITE_UNIT_COMPLETE);
        };
        for (idx, res) in self.run_points(&data, cores, subsets, &missing, &on_unit) {
            match res {
                Ok(r) => results[idx] = Some(r),
                Err(e) => report
                    .quarantined
                    .push((Self::point_label(cores, subsets, idx), e)),
            }
        }
        report.results = results.into_iter().flatten().collect();
        report.sort_units();
        Self::finish_journal(journal, &report);
        report
    }

    /// Removes a finished sweep's journal when nothing remains to resume.
    /// A journal with quarantined units is kept: `--resume` then replays
    /// the identical errors instead of re-running known-bad units.
    fn finish_journal(journal: Option<SweepJournal>, report: &SweepReport) {
        if let Some(j) = journal {
            if report.quarantined.is_empty() {
                if let Err(e) = j.remove() {
                    eprintln!("[prism-pipeline] could not remove finished journal: {e}");
                }
            }
        }
    }

    /// Loads every (core × subset) design point keyed over `wkeys` from the
    /// artifact store (`None` per point on miss), skipping indices where
    /// `skip` is set (journal-settled units never touch the store).
    fn load_cached_except(
        &self,
        wkeys: &[ContentHash],
        cores: &[CoreConfig],
        subsets: &[Vec<BsaKind>],
        skip: &[bool],
    ) -> Vec<Option<DesignResult>> {
        let mut out = Vec::with_capacity(cores.len() * subsets.len());
        for core in cores {
            for bsas in subsets {
                if skip[out.len()] {
                    out.push(None);
                    continue;
                }
                let key = self.design_point_key(wkeys, core, bsas);
                out.push(
                    self.store
                        .load(&key)
                        .and_then(|payload| decode_design_result(&payload)),
                );
            }
        }
        out
    }

    /// Like [`Session::evaluate_designs`], for callers that treat any
    /// quarantine as fatal.
    ///
    /// # Errors
    ///
    /// Returns the first quarantined failure when one exists.
    pub fn explore_grid_cached(
        &self,
        workloads: &[&Workload],
        cores: &[CoreConfig],
        subsets: &[Vec<BsaKind>],
    ) -> Result<Vec<DesignResult>, PipelineError> {
        self.evaluate_designs(workloads, cores, subsets)
            .into_strict()
    }

    /// The full 64-point exploration over every registered workload,
    /// backed by the artifact store, with failure isolation.
    #[must_use]
    pub fn full_design_space(&self) -> SweepReport {
        let workloads: Vec<&Workload> = prism_workloads::ALL.iter().collect();
        self.evaluate_designs(&workloads, &all_cores(), &all_bsa_subsets())
    }

    /// [`Session::full_design_space`] with a sweep journal; with `resume`,
    /// a previous interrupted run's journal is replayed first.
    #[must_use]
    pub fn full_design_space_resumable(&self, resume: bool) -> SweepReport {
        let workloads: Vec<&Workload> = prism_workloads::ALL.iter().collect();
        self.evaluate_designs_resumable(&workloads, &all_cores(), &all_bsa_subsets(), resume)
    }

    /// Current cache counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            artifacts: self.store.stats(),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            shape_memo_hits: self.shape_memo_hits.load(Ordering::Relaxed),
            timing_artifacts_loaded: self.timing_artifacts_loaded.load(Ordering::Relaxed),
            walks_skipped: self.walks_skipped.load(Ordering::Relaxed),
            trace_walks: self.trace_walks.load(Ordering::Relaxed),
            sim_insts: self.sim_insts.load(Ordering::Relaxed),
            sim_nanos: self.sim_nanos.load(Ordering::Relaxed),
            udg_nanos: self.udg_nanos.load(Ordering::Relaxed),
            transform_nanos: self.transform_nanos.load(Ordering::Relaxed),
            schedule_nanos: self.schedule_nanos.load(Ordering::Relaxed),
            peak_chunk_bytes: prism_sim::peak_chunk_bytes(),
            resumed: self.resumed.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
        }
    }

    /// Logs cache hit/miss counts to stderr.
    pub fn log_stats(&self) {
        let s = self.stats();
        eprintln!(
            "[prism-pipeline] artifact cache: {} hits, {} misses ({} discarded, \
             {} I/O retries, {} I/O errors, {} recomputes); memo: {} hits, \
             {} misses; walks: {} performed, {} skipped ({} shape-memo, \
             {} artifacts); sim: {} insts at {:.0} insts/sec, peak chunk {} bytes; \
             stage wall: sim {} ms, uDG {} ms, transforms {} ms, schedule \
             {} ms; jobs={}",
            s.artifacts.hits,
            s.artifacts.misses,
            s.artifacts.discarded,
            s.artifacts.io_retries,
            s.artifacts.io_errors,
            s.artifacts.recomputes,
            s.memo_hits,
            s.memo_misses,
            s.trace_walks,
            s.walks_skipped,
            s.shape_memo_hits,
            s.timing_artifacts_loaded,
            s.sim_insts,
            s.insts_per_sec(),
            s.peak_chunk_bytes,
            s.sim_nanos / 1_000_000,
            s.udg_nanos / 1_000_000,
            s.transform_nanos / 1_000_000,
            s.schedule_nanos / 1_000_000,
            self.jobs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_tracer() -> TracerConfig {
        TracerConfig {
            max_insts: 20_000,
            ..TracerConfig::default()
        }
    }

    /// A session insulated from ambient env knobs (`PRISM_FAULTS` etc.),
    /// so these tests stay deterministic under the CI fault matrix.
    fn clean_session() -> Session {
        Session::new()
            .with_tracer(quick_tracer())
            .with_jobs(1)
            .with_faults(None)
            .with_budget(ExecBudget::unlimited())
            .with_divergence_guard(None)
            .with_streaming(false)
    }

    #[test]
    fn prepare_memoizes_by_content_key() {
        let session = clean_session();
        let w = &prism_workloads::MICRO[0];
        let a = session.prepare(w).expect("prepare");
        let b = session.prepare(w).expect("prepare");
        assert!(
            Arc::ptr_eq(&a.data, &b.data),
            "second prepare must hit the memo"
        );
        let s = session.stats();
        assert_eq!((s.memo_hits, s.memo_misses), (1, 1));
    }

    #[test]
    fn workload_key_depends_on_tracer_and_size() {
        let a = Session::new().with_tracer(quick_tracer());
        let b = Session::new().with_tracer(TracerConfig {
            max_insts: 40_000,
            ..quick_tracer()
        });
        assert_ne!(a.workload_key("x", 100), b.workload_key("x", 100));
        assert_ne!(a.workload_key("x", 100), a.workload_key("x", 101));
        assert_ne!(a.workload_key("x", 100), a.workload_key("y", 100));
        assert_eq!(a.workload_key("x", 100), a.workload_key("x", 100));
    }

    #[test]
    fn prepare_program_shares_identical_programs() {
        let session = clean_session();
        let w = &prism_workloads::MICRO[0];
        let p1 = (w.build)(64);
        let p2 = (w.build)(64);
        let a = session.prepare_program(&p1).expect("prepare");
        let b = session.prepare_program(&p2).expect("prepare");
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn oracle_tables_are_memoized_per_core() {
        let session = clean_session();
        let w = &prism_workloads::MICRO[0];
        let prepared = session.prepare(w).expect("prepare");
        let t1 = session
            .oracle_table(&prepared, &CoreConfig::ooo2())
            .unwrap();
        let t2 = session
            .oracle_table(&prepared, &CoreConfig::ooo2())
            .unwrap();
        assert!(Arc::ptr_eq(&t1, &t2));
        let t3 = session
            .oracle_table(&prepared, &CoreConfig::ooo4())
            .unwrap();
        assert!(!Arc::ptr_eq(&t1, &t3));
    }

    #[test]
    fn oracle_table_budget_errors_are_typed() {
        let session = clean_session().with_budget(ExecBudget::new(10));
        let w = &prism_workloads::MICRO[0];
        let prepared = session.prepare(w).expect("prepare");
        let err = session
            .oracle_table(&prepared, &CoreConfig::ooo2())
            .expect_err("10-node budget cannot measure a table");
        assert_eq!(err.kind, crate::error::ErrorKind::BudgetExceeded);
        assert_eq!(err.workload, w.name);
    }

    #[test]
    fn divergence_guard_env_parsing() {
        assert_eq!(
            DivergenceGuard::new(0.25, 0),
            DivergenceGuard {
                tolerance: 0.25,
                sample: 1
            }
        );
        // selects() is stable and sample=1 selects everything.
        let g = DivergenceGuard::new(0.1, 1);
        let key = {
            let mut kb = KeyBuilder::new("t");
            kb.field("x", 1u32);
            kb.finish()
        };
        assert!(g.selects(&key, "OOO2"));
        let sparse = DivergenceGuard::new(0.1, 1_000_000_007);
        assert!(!sparse.selects(&key, "OOO2") || !sparse.selects(&key, "OOO4"));
    }

    #[test]
    fn prewarm_chunk0_is_cheap_and_idempotent() {
        let session = clean_session();
        let w = &prism_workloads::MICRO[0];
        session.prewarm_chunk0(w).expect("prewarm");
        let after_prewarm = session.stats().sim_insts;
        assert!(after_prewarm > 0, "prewarm must simulate something");
        let prepared = session.prepare(w).expect("prepare");
        let after_prepare = session.stats().sim_insts;
        assert!(after_prepare >= prepared.trace.len() as u64);
        // Memoized now: prewarm is a no-op.
        session.prewarm_chunk0(w).expect("prewarm");
        assert_eq!(session.stats().sim_insts, after_prepare);
    }

    #[test]
    fn trace_chunk_keys_are_distinct_per_index() {
        let session = clean_session();
        let wk = session.workload_key("x", 100);
        assert_ne!(
            session.trace_chunk_key(&wk, 0),
            session.trace_chunk_key(&wk, 1)
        );
        assert_eq!(
            session.trace_chunk_key(&wk, 0),
            session.trace_chunk_key(&wk, 0)
        );
        let other = session.workload_key("y", 100);
        assert_ne!(
            session.trace_chunk_key(&wk, 0),
            session.trace_chunk_key(&other, 0)
        );
    }

    #[test]
    fn panic_stage_attribution_reads_the_message() {
        assert_eq!(
            panic_stage("injected fault: trace stage panic at fft", Stage::Build),
            Stage::Trace
        );
        assert_eq!(
            panic_stage("index out of bounds: the len is 3", Stage::Evaluate),
            Stage::Evaluate
        );
    }
}
