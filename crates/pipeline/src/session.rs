//! The [`Session`]: the single entry point for the staged evaluation
//! pipeline `workload → Trace → ProgramIr → AccelPlans → evaluation`.
//!
//! A session owns an in-memory memo (prepared workloads, oracle tables) and
//! an on-disk [`ArtifactStore`] of design-point results, both keyed by
//! content hashes of every input that affects the artifact. Stages
//! invalidate independently: changing the tracer config re-traces, changing
//! only a core config reuses every trace and recomputes only the affected
//! oracle tables and design points.
//!
//! All fan-out runs through [`parallel_map`], so results are reduced in
//! canonical (input-index) order and a `--jobs 1` run is bit-identical to a
//! `--jobs N` run.

use std::collections::HashMap;
use std::ops::Deref;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use prism_exocore::{
    all_bsa_subsets, all_cores, oracle_pick, oracle_table, DesignPoint, DesignResult, OracleTable,
    WorkloadData, WorkloadMetrics,
};
use prism_sim::TracerConfig;
use prism_tdg::{run_exocore, BsaKind};
use prism_udg::CoreConfig;
use prism_workloads::{Suite, Workload};

use crate::codec::{decode_design_result, encode_design_result};
use crate::error::PipelineError;
use crate::hash::{ContentHash, Sha256};
use crate::key::KeyBuilder;
use crate::par::{parallel_map, resolve_jobs};
use crate::store::{ArtifactStore, StoreStats};

/// A workload prepared by a [`Session`]: its content key plus the shared
/// trace/IR/plans data. Dereferences to [`WorkloadData`].
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// Content hash of (workload name, build size, tracer config).
    pub key: ContentHash,
    /// The prepared trace, IR, and accelerator plans.
    pub data: Arc<WorkloadData>,
}

impl Deref for PreparedWorkload {
    type Target = WorkloadData;

    fn deref(&self) -> &WorkloadData {
        &self.data
    }
}

/// Aggregate cache counters for one session.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// On-disk artifact store counters.
    pub artifacts: StoreStats,
    /// In-memory memo hits (prepared workloads + oracle tables).
    pub memo_hits: u64,
    /// In-memory memo misses.
    pub memo_misses: u64,
}

/// The pipeline session: memoized stages + content-addressed artifacts +
/// deterministic parallelism.
#[derive(Debug)]
pub struct Session {
    tracer: TracerConfig,
    jobs: usize,
    refresh: bool,
    store: ArtifactStore,
    workloads: Mutex<HashMap<ContentHash, Arc<WorkloadData>>>,
    tables: Mutex<HashMap<ContentHash, Arc<OracleTable>>>,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// Creates a session from the environment: default tracer config,
    /// `PRISM_JOBS` (else hardware parallelism) workers, artifacts under
    /// `PRISM_ARTIFACT_DIR` (else `target/prism-artifacts`).
    ///
    /// `PRISM_REFRESH` is honored but deprecated: artifacts are
    /// content-addressed and invalidate themselves when any input changes.
    #[must_use]
    pub fn new() -> Self {
        let refresh = std::env::var_os("PRISM_REFRESH").is_some();
        if refresh {
            eprintln!(
                "[prism-pipeline] PRISM_REFRESH is deprecated: artifacts are \
                 content-addressed and invalidate automatically when inputs \
                 change. Forcing recompute for this run."
            );
        }
        Session {
            tracer: TracerConfig::default(),
            jobs: resolve_jobs(None),
            refresh,
            store: ArtifactStore::new(ArtifactStore::default_dir()),
            workloads: Mutex::new(HashMap::new()),
            tables: Mutex::new(HashMap::new()),
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
        }
    }

    /// Replaces the tracer configuration (stage-1 cache key input).
    #[must_use]
    pub fn with_tracer(mut self, tracer: TracerConfig) -> Self {
        self.tracer = tracer;
        self
    }

    /// Overrides the worker count (e.g. from a `--jobs` flag).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Redirects the on-disk artifact store.
    #[must_use]
    pub fn with_store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = ArtifactStore::new(dir);
        self
    }

    /// Forces recomputation of disk artifacts (they are still re-saved).
    #[must_use]
    pub fn with_refresh(mut self, refresh: bool) -> Self {
        self.refresh = refresh;
        self
    }

    /// The session's worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The session's tracer configuration.
    #[must_use]
    pub fn tracer(&self) -> &TracerConfig {
        &self.tracer
    }

    /// The content key of a registered workload at size `n` under this
    /// session's tracer config — computable without preparing anything.
    #[must_use]
    pub fn workload_key(&self, name: &str, n: u32) -> ContentHash {
        let mut kb = KeyBuilder::new("workload");
        kb.field("name", name);
        kb.field("n", n);
        kb.tracer(&self.tracer);
        kb.finish()
    }

    /// The content key of one design point over an ordered workload set.
    #[must_use]
    pub fn design_point_key(
        &self,
        workload_keys: &[ContentHash],
        core: &CoreConfig,
        bsas: &[BsaKind],
    ) -> ContentHash {
        let mut kb = KeyBuilder::new("design-result");
        kb.field("workloads", workload_keys.len());
        for (i, key) in workload_keys.iter().enumerate() {
            kb.hash_field(&format!("workload.{i}"), key);
        }
        kb.core(core);
        kb.bsas(bsas);
        kb.finish()
    }

    fn memo_workload(
        &self,
        key: ContentHash,
        name: &str,
        build: impl FnOnce() -> prism_isa::Program,
    ) -> Result<PreparedWorkload, PipelineError> {
        if let Some(data) = self
            .workloads
            .lock()
            .expect("workload memo poisoned")
            .get(&key)
        {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PreparedWorkload {
                key,
                data: Arc::clone(data),
            });
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let program = build();
        let data = WorkloadData::prepare_with(&program, &self.tracer)
            .map_err(|e| PipelineError::trace(name, &e))?;
        let data = Arc::new(data);
        self.workloads
            .lock()
            .expect("workload memo poisoned")
            .insert(key, Arc::clone(&data));
        Ok(PreparedWorkload { key, data })
    }

    /// Prepares a registered workload at its default size.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] naming the workload and failing stage.
    pub fn prepare(&self, workload: &Workload) -> Result<PreparedWorkload, PipelineError> {
        self.prepare_sized(workload, workload.default_n)
    }

    /// Prepares a registered workload at an explicit size.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] naming the workload and failing stage.
    pub fn prepare_sized(
        &self,
        workload: &Workload,
        n: u32,
    ) -> Result<PreparedWorkload, PipelineError> {
        let key = self.workload_key(workload.name, n);
        self.memo_workload(key, workload.name, || (workload.build)(n))
    }

    /// Prepares an ad-hoc program (keyed by a content hash of the program
    /// itself, so two identical programs share one preparation).
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] naming the program and failing stage.
    pub fn prepare_program(
        &self,
        program: &prism_isa::Program,
    ) -> Result<PreparedWorkload, PipelineError> {
        let mut h = Sha256::new();
        h.update_str(&format!("{program:?}"));
        let mut kb = KeyBuilder::new("program");
        kb.hash_field("program", &h.finish());
        kb.tracer(&self.tracer);
        let key = kb.finish();
        self.memo_workload(key, &program.name, || program.clone())
    }

    /// Prepares a batch of workloads in parallel, preserving input order.
    ///
    /// # Errors
    ///
    /// Returns the first failure in input order.
    pub fn prepare_batch(
        &self,
        workloads: &[&Workload],
    ) -> Result<Vec<PreparedWorkload>, PipelineError> {
        parallel_map(workloads, self.jobs, |_, w| self.prepare(w))
            .into_iter()
            .collect()
    }

    /// Prepares every registered workload.
    ///
    /// # Errors
    ///
    /// Returns the first failure in registry order.
    pub fn prepare_all(&self) -> Result<Vec<PreparedWorkload>, PipelineError> {
        self.prepare_batch(&prism_workloads::ALL.iter().collect::<Vec<_>>())
    }

    /// Prepares the workloads of one suite.
    ///
    /// # Errors
    ///
    /// Returns the first failure in registry order.
    pub fn prepare_suite(&self, suite: Suite) -> Result<Vec<PreparedWorkload>, PipelineError> {
        self.prepare_batch(&prism_workloads::by_suite(suite).collect::<Vec<_>>())
    }

    /// Prepares the microbenchmark set.
    ///
    /// # Errors
    ///
    /// Returns the first failure in registry order.
    pub fn prepare_micro(&self) -> Result<Vec<PreparedWorkload>, PipelineError> {
        self.prepare_batch(&prism_workloads::MICRO.iter().collect::<Vec<_>>())
    }

    /// The oracle table for `workload` on `core`'s base configuration,
    /// memoized per (workload key, core).
    #[must_use]
    pub fn oracle_table(&self, workload: &PreparedWorkload, core: &CoreConfig) -> Arc<OracleTable> {
        let mut kb = KeyBuilder::new("oracle-table");
        kb.hash_field("workload", &workload.key);
        kb.core(core);
        let key = kb.finish();
        if let Some(table) = self.tables.lock().expect("table memo poisoned").get(&key) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(table);
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(oracle_table(&workload.data, core));
        self.tables
            .lock()
            .expect("table memo poisoned")
            .insert(key, Arc::clone(&table));
        table
    }

    fn evaluate_point(
        &self,
        data: &[PreparedWorkload],
        tables: &[Arc<OracleTable>],
        core: &CoreConfig,
        bsas: &[BsaKind],
    ) -> DesignResult {
        let point = DesignPoint::new(core.clone(), bsas.to_vec());
        let mut per_workload = Vec::with_capacity(data.len());
        for (w, table) in data.iter().zip(tables) {
            let assignment = oracle_pick(table, &w.data, &point.bsas);
            let run = run_exocore(
                &w.trace,
                &w.ir,
                &point.core,
                &w.plans,
                &assignment,
                &point.bsas,
            );
            per_workload.push(WorkloadMetrics::from_run(&run, &w.name));
        }
        DesignResult {
            label: point.label(),
            core: point.core.name.clone(),
            bsas: point.bsas.iter().map(|b| b.code()).collect(),
            area_mm2: point.area_mm2(),
            per_workload,
        }
    }

    /// Evaluates every (core × BSA-subset) design point over `data`,
    /// in canonical core-major order. Oracle tables are measured once per
    /// (workload, base core) and shared across that core's subsets. Work is
    /// distributed over [`Session::jobs`] threads; the result order and
    /// values are independent of the job count.
    #[must_use]
    pub fn explore_grid(
        &self,
        data: &[PreparedWorkload],
        cores: &[CoreConfig],
        subsets: &[Vec<BsaKind>],
    ) -> Vec<DesignResult> {
        // Stage 1: fill the oracle-table memo over (core × workload).
        let pairs: Vec<(usize, usize)> = (0..cores.len())
            .flat_map(|c| (0..data.len()).map(move |w| (c, w)))
            .collect();
        parallel_map(&pairs, self.jobs, |_, &(c, w)| {
            let _ = self.oracle_table(&data[w], &cores[c]);
        });
        // Stage 2: evaluate every point; tables now come from the memo.
        let points: Vec<(usize, usize)> = (0..cores.len())
            .flat_map(|c| (0..subsets.len()).map(move |s| (c, s)))
            .collect();
        parallel_map(&points, self.jobs, |_, &(c, s)| {
            let tables: Vec<Arc<OracleTable>> = data
                .iter()
                .map(|w| self.oracle_table(w, &cores[c]))
                .collect();
            self.evaluate_point(data, &tables, &cores[c], &subsets[s])
        })
    }

    /// [`Session::explore_grid`] over the paper's full 64-point space
    /// (4 cores × 16 BSA subsets).
    #[must_use]
    pub fn explore(&self, data: &[PreparedWorkload]) -> Vec<DesignResult> {
        self.explore_grid(data, &all_cores(), &all_bsa_subsets())
    }

    /// Like [`Session::explore_grid`], backed by the on-disk artifact
    /// store: design points already on disk are loaded instead of
    /// recomputed, and workloads are prepared only if at least one point is
    /// missing. A fully cached run does no tracing at all.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] if a missing point forces preparation
    /// and a workload fails.
    pub fn explore_grid_cached(
        &self,
        workloads: &[&Workload],
        cores: &[CoreConfig],
        subsets: &[Vec<BsaKind>],
    ) -> Result<Vec<DesignResult>, PipelineError> {
        let wkeys: Vec<ContentHash> = workloads
            .iter()
            .map(|w| self.workload_key(w.name, w.default_n))
            .collect();
        let mut keys = Vec::with_capacity(cores.len() * subsets.len());
        for core in cores {
            for bsas in subsets {
                keys.push(self.design_point_key(&wkeys, core, bsas));
            }
        }
        let mut results: Vec<Option<DesignResult>> = keys
            .iter()
            .map(|key| {
                if self.refresh {
                    return None;
                }
                self.store
                    .load(key)
                    .and_then(|payload| decode_design_result(&payload))
            })
            .collect();
        let missing: Vec<usize> = (0..results.len())
            .filter(|&i| results[i].is_none())
            .collect();
        if !missing.is_empty() {
            let data = self.prepare_batch(workloads)?;
            // Fill oracle tables only for cores that still have work.
            let mut core_ids: Vec<usize> = missing.iter().map(|&i| i / subsets.len()).collect();
            core_ids.dedup();
            let pairs: Vec<(usize, usize)> = core_ids
                .iter()
                .flat_map(|&c| (0..data.len()).map(move |w| (c, w)))
                .collect();
            parallel_map(&pairs, self.jobs, |_, &(c, w)| {
                let _ = self.oracle_table(&data[w], &cores[c]);
            });
            let computed = parallel_map(&missing, self.jobs, |_, &idx| {
                let (c, s) = (idx / subsets.len(), idx % subsets.len());
                let tables: Vec<Arc<OracleTable>> = data
                    .iter()
                    .map(|w| self.oracle_table(w, &cores[c]))
                    .collect();
                self.evaluate_point(&data, &tables, &cores[c], &subsets[s])
            });
            for (&idx, result) in missing.iter().zip(computed) {
                self.store.save(&keys[idx], encode_design_result(&result));
                results[idx] = Some(result);
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every point filled"))
            .collect())
    }

    /// The full 64-point exploration over every registered workload,
    /// backed by the artifact store.
    ///
    /// # Errors
    ///
    /// Returns a [`PipelineError`] if a workload fails to prepare.
    pub fn full_design_space(&self) -> Result<Vec<DesignResult>, PipelineError> {
        let workloads: Vec<&Workload> = prism_workloads::ALL.iter().collect();
        self.explore_grid_cached(&workloads, &all_cores(), &all_bsa_subsets())
    }

    /// Current cache counters.
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            artifacts: self.store.stats(),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
        }
    }

    /// Logs cache hit/miss counts to stderr.
    pub fn log_stats(&self) {
        let s = self.stats();
        eprintln!(
            "[prism-pipeline] artifact cache: {} hits, {} misses ({} discarded); \
             memo: {} hits, {} misses; jobs={}",
            s.artifacts.hits,
            s.artifacts.misses,
            s.artifacts.discarded,
            s.memo_hits,
            s.memo_misses,
            self.jobs,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_tracer() -> TracerConfig {
        TracerConfig {
            max_insts: 20_000,
            ..TracerConfig::default()
        }
    }

    #[test]
    fn prepare_memoizes_by_content_key() {
        let session = Session::new().with_tracer(quick_tracer()).with_jobs(1);
        let w = &prism_workloads::MICRO[0];
        let a = session.prepare(w).expect("prepare");
        let b = session.prepare(w).expect("prepare");
        assert!(
            Arc::ptr_eq(&a.data, &b.data),
            "second prepare must hit the memo"
        );
        let s = session.stats();
        assert_eq!((s.memo_hits, s.memo_misses), (1, 1));
    }

    #[test]
    fn workload_key_depends_on_tracer_and_size() {
        let a = Session::new().with_tracer(quick_tracer());
        let b = Session::new().with_tracer(TracerConfig {
            max_insts: 40_000,
            ..quick_tracer()
        });
        assert_ne!(a.workload_key("x", 100), b.workload_key("x", 100));
        assert_ne!(a.workload_key("x", 100), a.workload_key("x", 101));
        assert_ne!(a.workload_key("x", 100), a.workload_key("y", 100));
        assert_eq!(a.workload_key("x", 100), a.workload_key("x", 100));
    }

    #[test]
    fn prepare_program_shares_identical_programs() {
        let session = Session::new().with_tracer(quick_tracer()).with_jobs(1);
        let w = &prism_workloads::MICRO[0];
        let p1 = (w.build)(64);
        let p2 = (w.build)(64);
        let a = session.prepare_program(&p1).expect("prepare");
        let b = session.prepare_program(&p2).expect("prepare");
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn oracle_tables_are_memoized_per_core() {
        let session = Session::new().with_tracer(quick_tracer()).with_jobs(1);
        let w = &prism_workloads::MICRO[0];
        let prepared = session.prepare(w).expect("prepare");
        let t1 = session.oracle_table(&prepared, &CoreConfig::ooo2());
        let t2 = session.oracle_table(&prepared, &CoreConfig::ooo2());
        assert!(Arc::ptr_eq(&t1, &t2));
        let t3 = session.oracle_table(&prepared, &CoreConfig::ooo4());
        assert!(!Arc::ptr_eq(&t1, &t3));
    }
}
