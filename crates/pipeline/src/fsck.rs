//! Offline store checker/repairer behind `prism fsck`: re-validates every
//! artifact against its embedded key and checksum, quarantines corrupt
//! files, garbage-collects orphaned tmp files, and removes unreadable
//! (stale) sweep journals.
//!
//! fsck is *conservative*: a corrupt artifact is moved into a
//! `quarantine/` subdirectory — never deleted — so a surprising result
//! can be inspected; valid journals are kept even when old, because they
//! may belong to an interrupted sweep someone intends to `--resume`.

use std::io;
use std::path::Path;
use std::time::Duration;

use crate::journal::{JOURNAL_SUBDIR, JOURNAL_VERSION};
use crate::json::Json;
use crate::key::{MIN_SCHEMA_VERSION, SCHEMA_VERSION};
use crate::store::{payload_sum, ArtifactStore};

/// Subdirectory of the store where fsck moves corrupt artifacts.
pub const QUARANTINE_SUBDIR: &str = "quarantine";

/// What one fsck pass found and repaired.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Artifact files examined.
    pub artifacts_checked: u64,
    /// Artifacts that validated cleanly.
    pub artifacts_ok: u64,
    /// File names moved to `quarantine/`, with the reason.
    pub corrupt: Vec<(String, String)>,
    /// Orphaned tmp files removed.
    pub tmp_removed: u64,
    /// Bytes reclaimed by tmp-file GC.
    pub tmp_bytes_reclaimed: u64,
    /// Unreadable journal files removed.
    pub stale_journals_removed: u64,
    /// Journal files kept (valid header; possibly resumable).
    pub journals_kept: u64,
}

impl FsckReport {
    /// True when no corruption was found (tmp/journal GC is routine
    /// repair, not corruption).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }

    /// Human-readable summary for the CLI.
    #[must_use]
    pub fn render(&self, dir: &Path) -> String {
        let mut out = String::new();
        out.push_str(&format!("fsck {}\n", dir.display()));
        out.push_str(&format!(
            "  artifacts: {} checked, {} ok, {} corrupt\n",
            self.artifacts_checked,
            self.artifacts_ok,
            self.corrupt.len()
        ));
        for (name, why) in &self.corrupt {
            out.push_str(&format!("    quarantined {name}: {why}\n"));
        }
        out.push_str(&format!(
            "  tmp files: {} removed ({} bytes reclaimed)\n",
            self.tmp_removed, self.tmp_bytes_reclaimed
        ));
        out.push_str(&format!(
            "  journals: {} kept, {} stale removed\n",
            self.journals_kept, self.stale_journals_removed
        ));
        out.push_str(if self.is_clean() {
            "  status: clean\n"
        } else {
            "  status: CORRUPTION FOUND (see quarantine/)\n"
        });
        out
    }
}

/// Validates one artifact file's text against its own file name.
/// Unlike the store's load path, fsck has no expected key — the
/// embedded key is checked for shape and against the file name instead.
fn check_artifact(name: &str, text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("unparseable: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or("missing schema field")?;
    if schema < u64::from(MIN_SCHEMA_VERSION) || schema > u64::from(SCHEMA_VERSION) {
        return Err(format!(
            "schema {schema} outside supported range {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}"
        ));
    }
    let key = doc
        .get("key")
        .and_then(Json::as_str)
        .ok_or("missing key field")?;
    if key.len() != 64 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err("malformed embedded key".into());
    }
    if name != format!("{}.json", &key[..16]) {
        return Err("file name does not match embedded key".into());
    }
    let payload = doc.get("payload").ok_or("missing payload field")?;
    if let Some(sum) = doc.get("sum").and_then(Json::as_str) {
        if payload_sum(&payload.to_string()) != sum {
            return Err("payload checksum mismatch".into());
        }
    }
    Ok(())
}

/// Whether a journal file starts with a readable, current-version header.
/// The sweep key is not checked — fsck doesn't know which sweeps are
/// still wanted; `--resume` makes that call per sweep.
fn journal_header_readable(text: &str) -> bool {
    let Some((first, _)) = text.split_once('\n') else {
        return false;
    };
    let Ok(json) = Json::parse(first) else {
        return false;
    };
    json.get("type").and_then(Json::as_str) == Some("journal")
        && json.get("version").and_then(Json::as_u64) == Some(JOURNAL_VERSION)
        && json
            .get("sweep")
            .and_then(Json::as_str)
            .is_some_and(|s| s.len() == 64)
}

/// Checks and repairs the store at `dir`. A missing directory is clean
/// (nothing to check).
///
/// # Errors
///
/// Propagates I/O errors from directory traversal; per-file read errors
/// quarantine the file instead of aborting the pass.
pub fn run_fsck(dir: &Path) -> io::Result<FsckReport> {
    let mut report = FsckReport::default();
    if !dir.exists() {
        return Ok(report);
    }

    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.ends_with(".json") || !entry.file_type()?.is_file() {
            continue;
        }
        report.artifacts_checked += 1;
        let verdict = match std::fs::read_to_string(entry.path()) {
            Ok(text) => check_artifact(name, &text),
            Err(e) => Err(format!("unreadable: {e}")),
        };
        match verdict {
            Ok(()) => report.artifacts_ok += 1,
            Err(why) => {
                let qdir = dir.join(QUARANTINE_SUBDIR);
                std::fs::create_dir_all(&qdir)?;
                std::fs::rename(entry.path(), qdir.join(name))?;
                report.corrupt.push((name.to_string(), why));
            }
        }
    }
    report.corrupt.sort();

    // fsck runs offline, so orphaned tmp files are GC'd with no age
    // window (live pids are still skipped).
    let store = ArtifactStore::new(dir);
    let (files, bytes) = store.gc_tmp_files(Duration::ZERO);
    report.tmp_removed = files;
    report.tmp_bytes_reclaimed = bytes;

    let journal_dir = dir.join(JOURNAL_SUBDIR);
    if journal_dir.exists() {
        for entry in std::fs::read_dir(&journal_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(".ndjson") || !entry.file_type()?.is_file() {
                continue;
            }
            let readable = std::fs::read_to_string(entry.path())
                .map(|t| journal_header_readable(&t))
                .unwrap_or(false);
            if readable {
                report.journals_kept += 1;
            } else {
                std::fs::remove_file(entry.path())?;
                report.stale_journals_removed += 1;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::ContentHash;
    use crate::journal::SweepJournal;
    use crate::key::KeyBuilder;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("prism-fsck-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn key(tag: &str) -> ContentHash {
        let mut kb = KeyBuilder::new("fsck-test");
        kb.field("tag", tag);
        kb.finish()
    }

    #[test]
    fn missing_and_clean_stores_are_clean() {
        let dir = scratch("clean");
        let report = run_fsck(&dir.join("does-not-exist")).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.artifacts_checked, 0);

        let store = ArtifactStore::new(&dir);
        store.save(&key("a"), Json::U64(1));
        store.save(&key("b"), Json::U64(2));
        let report = run_fsck(&dir).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.artifacts_checked, 2);
        assert_eq!(report.artifacts_ok, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_artifact_is_detected_and_quarantined() {
        let dir = scratch("bitflip");
        let store = ArtifactStore::new(&dir);
        let k = key("victim");
        store.save(&k, Json::Obj(vec![("cycles".into(), Json::U64(777777))]));
        store.save(&key("innocent"), Json::U64(5));

        let path = dir.join(format!("{}.json", k.short()));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("777777", "777778")).unwrap();

        let report = run_fsck(&dir).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.artifacts_ok, 1);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].0, format!("{}.json", k.short()));
        assert!(report.corrupt[0].1.contains("checksum"), "{report:?}");
        assert!(!path.exists());
        assert!(dir
            .join(QUARANTINE_SUBDIR)
            .join(format!("{}.json", k.short()))
            .exists());
        // Rendered summary names the problem.
        let text = report.render(&dir);
        assert!(text.contains("CORRUPTION FOUND"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_tmp_files_are_removed_and_counted() {
        let dir = scratch("tmp");
        std::fs::write(dir.join("aaaabbbbccccdddd.tmp.999999999.3"), "orphan").unwrap();
        let own = dir.join(format!("aaaabbbbccccdddd.tmp.{}.4", std::process::id()));
        std::fs::write(&own, "live").unwrap();
        let report = run_fsck(&dir).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.tmp_removed, 1);
        assert_eq!(report.tmp_bytes_reclaimed, "orphan".len() as u64);
        assert!(own.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_journals_are_removed_valid_ones_kept() {
        let dir = scratch("journals");
        let (j, _) = SweepJournal::open(&dir, &key("sweep"), false).unwrap();
        drop(j);
        std::fs::write(dir.join(JOURNAL_SUBDIR).join("garbled.ndjson"), "oops\n").unwrap();
        std::fs::write(dir.join(JOURNAL_SUBDIR).join("empty.ndjson"), "").unwrap();

        let report = run_fsck(&dir).unwrap();
        assert_eq!(report.journals_kept, 1);
        assert_eq!(report.stale_journals_removed, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_and_mismatched_files_quarantine_with_reason() {
        let dir = scratch("foreign");
        // Valid-looking name, content from a different key.
        let store = ArtifactStore::new(&dir);
        let k = key("original");
        store.save(&k, Json::U64(1));
        let other = dir.join("0000000000000000.json");
        std::fs::copy(dir.join(format!("{}.json", k.short())), &other).unwrap();

        let report = run_fsck(&dir).unwrap();
        assert_eq!(report.corrupt.len(), 1);
        assert!(report.corrupt[0].1.contains("file name"), "{report:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
