//! # prism-pipeline
//!
//! The staged evaluation pipeline behind every prism experiment:
//!
//! ```text
//! workload ──trace──▶ Trace ──analyze──▶ ProgramIr ──plan──▶ AccelPlans
//!                                                              │
//!              oracle tables (per workload × base core)  ◀─────┘
//!                                │
//!                        design-point evaluation ──▶ DesignResult
//! ```
//!
//! A [`Session`] memoizes every stage in memory and stores design-point
//! results in an on-disk, content-addressed [`ArtifactStore`]. Keys cover
//! workload identity and build size, the full [`prism_sim::TracerConfig`],
//! the full core configuration, the BSA subset, and the schema/crate
//! version — so stale artifacts are structurally impossible: change any
//! input and the key changes; only the affected stages recompute.
//!
//! Fan-out across (workload × design point) runs on [`parallel_map`],
//! which reduces in canonical input order: results are bit-identical
//! whether run with `--jobs 1` or `--jobs N` (also settable via the
//! `PRISM_JOBS` environment variable).
//!
//! ## Fault tolerance
//!
//! Sweeps isolate failures instead of aborting: a panicking model stage,
//! a budget-blown evaluation, or a diverging timing model quarantines the
//! affected (workload, design point) unit into
//! [`SweepReport::quarantined`] while every healthy point still produces
//! a result. Store I/O is retried with bounded backoff and degrades to
//! recompute. A seeded [`FaultPlan`] (from the `PRISM_FAULTS` environment
//! variable) injects store I/O errors, artifact corruption, trace
//! truncation, and stage panics deterministically for chaos testing.
//!
//! ## Crash consistency
//!
//! Store puts are fsync-then-rename durable (opt out with
//! `PRISM_NO_FSYNC=1`), every sweep writes an append-only
//! [`SweepJournal`] of settled units, and `--resume` replays it to skip
//! completed work after a kill — producing byte-identical output. A
//! deterministic kill harness ([`crash_point`] / `PRISM_CRASH=<site>@<n>`)
//! proves the property at every kill site, and [`run_fsck`] checks and
//! repairs a store offline.

#![warn(missing_docs)]

pub mod codec;
pub mod crash;
pub mod error;
pub mod fault;
pub mod fsck;
pub mod hash;
pub mod journal;
pub mod json;
pub mod key;
pub mod par;
pub mod session;
pub mod store;
pub mod sweep;

pub use codec::{
    decode_design_result, decode_exo_timing, decode_pipeline_error, decode_trace_chunk,
    encode_design_result, encode_exo_timing, encode_pipeline_error, encode_trace_chunk,
};
pub use crash::{
    crash_point, CrashSpec, CRASH_ENV, CRASH_EXIT_CODE, SITE_GRID_FRAME, SITE_JOURNAL_APPEND,
    SITE_STORE_PUT, SITE_UNIT_COMPLETE,
};
pub use error::{ErrorKind, PipelineError, Stage};
pub use fault::{FaultPlan, FaultSpecError, FAULTS_ENV, INJECTED_PANIC_PREFIX};
pub use fsck::{run_fsck, FsckReport, QUARANTINE_SUBDIR};
pub use hash::ContentHash;
pub use journal::{journal_path, sweep_key, JournalReplay, SweepJournal, JOURNAL_SUBDIR};
pub use json::Json;
pub use key::{KeyBuilder, KEY_SCHEMA_VERSION, MIN_SCHEMA_VERSION, SCHEMA_VERSION};
pub use par::{flag_from_args, jobs_from_args, parallel_map, resolve_jobs};
pub use session::{
    DivergenceGuard, PreparedWorkload, Session, SessionStats, NO_COMPOSE_ENV, NO_TIMING_CACHE_ENV,
    STREAM_ENV,
};
pub use store::{
    fsync_enabled, store_cap_from_env, ArtifactStore, StoreStats, GC_SAFETY_WINDOW, NO_FSYNC_ENV,
    STORE_CAP_ENV,
};
pub use sweep::SweepReport;
