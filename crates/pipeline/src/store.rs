//! The on-disk artifact store: one JSON file per content hash, with the
//! key, schema version, and a payload checksum embedded so stale or corrupt
//! files are *detected* and discarded with a warning — never silently
//! reused and never a panic.
//!
//! Durability: puts are write-then-rename with the tmp file fsynced before
//! the rename and the parent directory fsynced after it, so a crash (or
//! power loss) can lose at most the artifact being written — never surface
//! a torn or empty file under a final name. `PRISM_NO_FSYNC=1` opts out
//! for speed in tests on throwaway stores.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::crash::{crash_point, SITE_STORE_PUT};
use crate::fault::FaultPlan;
use crate::hash::{ContentHash, Sha256};
use crate::journal::sync_dir;
use crate::json::Json;
use crate::key::{MIN_SCHEMA_VERSION, SCHEMA_VERSION};

/// Transient-I/O retry attempts per store operation.
const IO_ATTEMPTS: u32 = 3;

/// Environment variable that disables fsync on store puts and journal
/// appends (`PRISM_NO_FSYNC=1`). Durability is the default; the opt-out
/// exists for test suites hammering throwaway tmpfs stores.
pub const NO_FSYNC_ENV: &str = "PRISM_NO_FSYNC";

/// Minimum age of an orphaned `*.tmp.*` file before opportunistic GC on
/// session open removes it. A live writer holds its tmp file for
/// milliseconds; anything this old with a dead (or unknown) pid is a
/// crash leftover. `fsck` uses a zero window instead — it runs offline.
pub const GC_SAFETY_WINDOW: Duration = Duration::from_secs(15 * 60);

/// Environment variable holding a byte cap on store growth
/// (`PRISM_STORE_CAP=<bytes>`, also `prism worker --store-cap`). When
/// set, the store evicts least-recently-used artifacts after every put
/// until it fits — the knob long-running worker daemons use to bound
/// per-host disk growth.
pub const STORE_CAP_ENV: &str = "PRISM_STORE_CAP";

/// Parses [`STORE_CAP_ENV`]; `None` when unset, empty, or `0` (uncapped).
///
/// # Panics
///
/// Panics when the variable is set but not a number — like the other env
/// knobs, a typo must not silently disable the cap.
#[must_use]
pub fn store_cap_from_env() -> Option<u64> {
    let v = std::env::var(STORE_CAP_ENV).ok()?;
    let v = v.trim();
    if v.is_empty() || v == "0" {
        return None;
    }
    Some(
        v.parse::<u64>()
            .unwrap_or_else(|e| panic!("bad {STORE_CAP_ENV} value `{v}`: {e}")),
    )
}

/// Whether durability fsyncs are enabled (they are unless
/// [`NO_FSYNC_ENV`] is set to a non-empty value other than `0`).
#[must_use]
pub fn fsync_enabled() -> bool {
    match std::env::var(NO_FSYNC_ENV) {
        Ok(v) => {
            let v = v.trim();
            v.is_empty() || v == "0"
        }
        Err(_) => true,
    }
}

/// Backoff before retry `n` (n = 1, 2): 1ms, then 4ms.
fn backoff(attempt: u32) -> std::time::Duration {
    std::time::Duration::from_millis(1 << (2 * (attempt - 1)))
}

/// Hit/miss counters for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts served from disk.
    pub hits: u64,
    /// Keys with no artifact on disk.
    pub misses: u64,
    /// Corrupt or stale files discarded (each also counts as a miss).
    pub discarded: u64,
    /// Transient I/O failures that were retried.
    pub io_retries: u64,
    /// Operations that kept failing after all retries.
    pub io_errors: u64,
    /// Artifacts computed fresh and written back (each save is one
    /// recompute — a warm store saves nothing).
    pub recomputes: u64,
    /// Bytes reclaimed by garbage-collecting orphaned tmp files.
    pub gc_reclaimed_bytes: u64,
}

impl std::ops::AddAssign for StoreStats {
    fn add_assign(&mut self, rhs: StoreStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.discarded += rhs.discarded;
        self.io_retries += rhs.io_retries;
        self.io_errors += rhs.io_errors;
        self.recomputes += rhs.recomputes;
        self.gc_reclaimed_bytes += rhs.gc_reclaimed_bytes;
    }
}

/// A content-addressed artifact directory.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    faults: Option<Arc<FaultPlan>>,
    fsync: bool,
    cap_bytes: Option<u64>,
    hits: AtomicU64,
    misses: AtomicU64,
    discarded: AtomicU64,
    io_retries: AtomicU64,
    io_errors: AtomicU64,
    recomputes: AtomicU64,
    gc_reclaimed: AtomicU64,
}

impl ArtifactStore {
    /// Opens (and lazily creates) a store under `dir`. Durability fsyncs
    /// follow [`fsync_enabled`]; override with [`with_fsync`](Self::with_fsync).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ArtifactStore {
            dir: dir.into(),
            faults: None,
            fsync: fsync_enabled(),
            cap_bytes: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            io_retries: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            recomputes: AtomicU64::new(0),
            gc_reclaimed: AtomicU64::new(0),
        }
    }

    /// Overrides the fsync policy for this store.
    #[must_use]
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }

    /// Installs (or clears) the fault-injection plan for this store.
    pub fn set_faults(&mut self, faults: Option<Arc<FaultPlan>>) {
        self.faults = faults;
    }

    /// Caps the store's artifact bytes: after every put, least-recently-
    /// used artifacts are evicted until the store fits
    /// ([`enforce_cap`](Self::enforce_cap)). `None` removes the cap.
    pub fn set_cap(&mut self, cap_bytes: Option<u64>) {
        self.cap_bytes = cap_bytes;
    }

    /// Builder form of [`set_cap`](Self::set_cap).
    #[must_use]
    pub fn with_cap(mut self, cap_bytes: Option<u64>) -> Self {
        self.cap_bytes = cap_bytes;
        self
    }

    /// The default location: `$PRISM_ARTIFACT_DIR` if set, else
    /// `target/prism-artifacts` next to the workspace.
    #[must_use]
    pub fn default_dir() -> PathBuf {
        if let Some(dir) = std::env::var_os("PRISM_ARTIFACT_DIR") {
            return PathBuf::from(dir);
        }
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/prism-artifacts")
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &ContentHash) -> PathBuf {
        self.dir.join(format!("{}.json", key.short()))
    }

    /// Loads the payload stored under `key`, or `None` on a miss. Corrupt
    /// files and key/schema mismatches are deleted with a warning and
    /// reported as misses. Transient I/O errors are retried with bounded
    /// backoff; if they persist, the load degrades to a miss (recompute)
    /// rather than failing the pipeline.
    pub fn load(&self, key: &ContentHash) -> Option<Json> {
        let op = format!("load:{}", key.short());
        match self.with_retry(&op, |site| self.try_load(key, site)) {
            Ok(found) => found,
            Err(e) => {
                eprintln!(
                    "[prism-pipeline] artifact load {} failed after {IO_ATTEMPTS} attempts: {e}",
                    self.path_for(key).display()
                );
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// One load attempt: reads, (optionally) injects corruption, validates.
    /// `site` names this attempt for deterministic fault injection.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error for anything other than
    /// file-not-found (which is an `Ok(None)` miss).
    pub fn try_load(&self, key: &ContentHash, site: &str) -> std::io::Result<Option<Json>> {
        if let Some(f) = &self.faults {
            if f.store_io_error(site) {
                return Err(std::io::Error::other(format!(
                    "injected I/O fault at {site}"
                )));
            }
        }
        let path = self.path_for(key);
        let mut text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        if let Some(f) = &self.faults {
            if f.corrupt_artifact(site) {
                text = f.corrupt_text(site, &text);
            }
        }
        match Self::validate(&text, key) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(&path);
                Ok(Some(payload))
            }
            Err(why) => {
                eprintln!(
                    "[prism-pipeline] discarding stale/corrupt artifact {}: {why}",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
                self.discarded.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok(None)
            }
        }
    }

    /// Runs `attempt` up to [`IO_ATTEMPTS`] times with backoff, passing a
    /// per-attempt site string (`<op>:try<N>`) so deterministic fault
    /// injection can fail early attempts and let a retry succeed.
    fn with_retry<T>(
        &self,
        op: &str,
        mut attempt: impl FnMut(&str) -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        let mut last = None;
        for n in 0..IO_ATTEMPTS {
            match attempt(&format!("{op}:try{n}")) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last = Some(e);
                    if n + 1 < IO_ATTEMPTS {
                        self.io_retries.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(backoff(n + 1));
                    }
                }
            }
        }
        self.io_errors.fetch_add(1, Ordering::Relaxed);
        Err(last.expect("at least one attempt ran"))
    }

    fn validate(text: &str, key: &ContentHash) -> Result<Json, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("missing schema field")?;
        // Read-compat window: v1 envelopes (pre-chunking) are identical in
        // shape for every payload kind that existed then, so they stay
        // readable. Anything outside the window is discarded.
        if schema < u64::from(MIN_SCHEMA_VERSION) || schema > u64::from(SCHEMA_VERSION) {
            return Err(format!(
                "schema {schema} outside supported range {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}"
            ));
        }
        let stored = doc
            .get("key")
            .and_then(Json::as_str)
            .ok_or("missing key field")?;
        if stored != key.hex() {
            return Err("content key mismatch (hash prefix collision or stale file)".into());
        }
        let payload = doc.get("payload").cloned().ok_or("missing payload field")?;
        // Integrity checksum: present since the durability rework. Files
        // written without one (older builds) stay valid — the envelope
        // shape didn't change, so warm caches survive.
        if let Some(sum) = doc.get("sum").and_then(Json::as_str) {
            if payload_sum(&payload.to_string()) != sum {
                return Err("payload checksum mismatch (bit rot or torn write)".into());
            }
        }
        Ok(payload)
    }

    /// Stores `payload` under `key`. Transient I/O failures are retried
    /// with bounded backoff; persistent failures are reported as warnings,
    /// not errors: a read-only cache degrades to recompute-every-time.
    pub fn save(&self, key: &ContentHash, payload: Json) {
        let sum = payload_sum(&payload.to_string());
        let doc = Json::Obj(vec![
            ("schema".into(), Json::U64(u64::from(SCHEMA_VERSION))),
            ("key".into(), Json::Str(key.hex())),
            ("sum".into(), Json::Str(sum)),
            ("payload".into(), payload),
        ]);
        let op = format!("save:{}", key.short());
        self.recomputes.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.with_retry(&op, |site| self.try_save(key, &doc, site)) {
            eprintln!(
                "[prism-pipeline] failed to store artifact {} after {IO_ATTEMPTS} attempts: {e}",
                self.path_for(key).display()
            );
        } else {
            self.enforce_cap();
        }
    }

    /// Bumps an artifact's mtime — the LRU recency signal — on a load
    /// hit. Only capped stores pay the extra syscall; failures are
    /// ignored (recency then degrades toward FIFO, never to an error).
    fn touch(&self, path: &Path) {
        if self.cap_bytes.is_none() {
            return;
        }
        if let Ok(f) = std::fs::File::options().append(true).open(path) {
            let _ =
                f.set_times(std::fs::FileTimes::new().set_modified(std::time::SystemTime::now()));
        }
    }

    /// Evicts least-recently-used artifacts until the store's `.json`
    /// bytes fit under the cap; a no-op without one. Mtime is the recency
    /// signal (capped stores [`touch`](Self::touch) artifacts on every
    /// load hit). Journals and quarantined files live in subdirectories,
    /// so only top-level artifacts are ever evicted. Returns
    /// `(files_evicted, bytes_reclaimed)` and folds the bytes into
    /// [`StoreStats::gc_reclaimed_bytes`].
    pub fn enforce_cap(&self) -> (u64, u64) {
        let Some(cap) = self.cap_bytes else {
            return (0, 0);
        };
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        let mut total = 0u64;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.ends_with(".json") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            total += meta.len();
            files.push((mtime, entry.path(), meta.len()));
        }
        if total <= cap {
            return (0, 0);
        }
        // Path is the tiebreak, so eviction order is deterministic even
        // when a burst of puts lands within the filesystem's mtime
        // granularity.
        files.sort();
        let mut evicted = 0u64;
        let mut bytes = 0u64;
        for (_, path, len) in files {
            if total <= cap {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total -= len;
                evicted += 1;
                bytes += len;
            }
        }
        self.gc_reclaimed.fetch_add(bytes, Ordering::Relaxed);
        (evicted, bytes)
    }

    /// One save attempt. `site` names this attempt for deterministic fault
    /// injection.
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) I/O error.
    fn try_save(&self, key: &ContentHash, doc: &Json, site: &str) -> std::io::Result<()> {
        if let Some(f) = &self.faults {
            if f.store_io_error(site) {
                return Err(std::io::Error::other(format!(
                    "injected I/O fault at {site}"
                )));
            }
        }
        self.write_durable(&self.path_for(key), doc.to_string().as_bytes())
    }

    /// The durable put protocol shared by [`save`](Self::save) and
    /// [`import`](Self::import): write-then-rename so concurrent readers
    /// never see a torn file. The tmp name embeds (pid, sequence) so the
    /// store is safe to share between grid worker processes *and* between
    /// threads of one process racing on the same key: every writer gets a
    /// private tmp file, and the rename is atomic per key.
    fn write_durable(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            // fsync *before* the rename: once the final name exists, its
            // content must already be on stable storage — otherwise a
            // crash can surface an empty/torn file under the final name.
            if self.fsync {
                f.sync_all()?;
            }
        }
        crash_point(SITE_STORE_PUT);
        std::fs::rename(&tmp, path)?;
        // And fsync the directory *after* the rename so the new entry
        // itself survives power loss.
        if self.fsync {
            sync_dir(&self.dir);
        }
        Ok(())
    }

    /// Whether an artifact file exists under `key` (no validation — a
    /// cheap membership probe for deciding what to ship across hosts).
    #[must_use]
    pub fn contains(&self, key: &ContentHash) -> bool {
        self.path_for(key).exists()
    }

    /// Reads the raw envelope text stored under `key` for shipping to
    /// another store, validating it first so corrupt bytes are never
    /// propagated across hosts. `None` on a miss or a corrupt file (the
    /// file is left for `load`/fsck to quarantine).
    #[must_use]
    pub fn export(&self, key: &ContentHash) -> Option<String> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        Self::validate(&text, key).ok()?;
        Some(text)
    }

    /// Imports an envelope shipped from another store: full validation
    /// (schema window, embedded key, payload checksum) and then the same
    /// fsync-around-rename put protocol as [`save`](Self::save), so a
    /// shipped artifact is exactly as durable as a locally computed one.
    ///
    /// # Errors
    ///
    /// Returns a description when the envelope fails validation or the
    /// durable write keeps failing after retries.
    pub fn import(&self, key: &ContentHash, text: &str) -> Result<(), String> {
        Self::validate(text, key)?;
        let op = format!("import:{}", key.short());
        self.with_retry(&op, |site| {
            if let Some(f) = &self.faults {
                if f.store_io_error(site) {
                    return Err(std::io::Error::other(format!(
                        "injected I/O fault at {site}"
                    )));
                }
            }
            self.write_durable(&self.path_for(key), text.as_bytes())
        })
        .map_err(|e| format!("write failed after {IO_ATTEMPTS} attempts: {e}"))?;
        self.enforce_cap();
        Ok(())
    }

    /// Removes orphaned `*.tmp.<pid>.<seq>` files left behind by killed
    /// writer processes. Skips the calling process's own tmp files, any
    /// whose writing pid is still alive, and (as a belt-and-braces against
    /// pid reuse and clock skew) any younger than `window`. Returns
    /// `(files_removed, bytes_reclaimed)` and folds the bytes into
    /// [`StoreStats::gc_reclaimed_bytes`].
    pub fn gc_tmp_files(&self, window: Duration) -> (u64, u64) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        let mut files = 0u64;
        let mut bytes = 0u64;
        let now = std::time::SystemTime::now();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(pid) = tmp_file_pid(name) else {
                continue;
            };
            if pid == std::process::id() || pid_alive(pid) {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let old_enough = meta
                .modified()
                .ok()
                .and_then(|m| now.duration_since(m).ok())
                .is_some_and(|age| age >= window);
            if !(old_enough || window.is_zero()) {
                continue;
            }
            if std::fs::remove_file(entry.path()).is_ok() {
                files += 1;
                bytes += meta.len();
            }
        }
        self.gc_reclaimed.fetch_add(bytes, Ordering::Relaxed);
        (files, bytes)
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            recomputes: self.recomputes.load(Ordering::Relaxed),
            gc_reclaimed_bytes: self.gc_reclaimed.load(Ordering::Relaxed),
        }
    }
}

/// SHA-256 hex of a serialized payload — the `sum` envelope field.
pub(crate) fn payload_sum(payload_text: &str) -> String {
    let mut h = Sha256::new();
    h.update_str(payload_text);
    h.finish().hex()
}

/// Extracts the writing pid from a store tmp-file name
/// (`<short>.tmp.<pid>.<seq>`); `None` for anything else.
pub(crate) fn tmp_file_pid(name: &str) -> Option<u32> {
    let (_, rest) = name.split_once(".tmp.")?;
    let (pid, seq) = rest.split_once('.')?;
    // Both components must be pure integers — refuse to match files that
    // merely contain ".tmp." somewhere in an unrelated name.
    seq.parse::<u64>().ok()?;
    pid.parse().ok()
}

/// Whether a process with this pid is currently running. On Linux this
/// checks `/proc`; elsewhere it conservatively answers `true`, so GC
/// falls back to the age window alone.
fn pid_alive(pid: u32) -> bool {
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("prism-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::new(dir)
    }

    fn key(tag: &str) -> ContentHash {
        let mut kb = KeyBuilder::new("test");
        kb.field("tag", tag);
        kb.finish()
    }

    #[test]
    fn save_load_roundtrip_and_counters() {
        let store = temp_store("roundtrip");
        let k = key("a");
        assert_eq!(store.load(&k), None);
        let payload = Json::Obj(vec![("x".into(), Json::U64(7))]);
        store.save(&k, payload.clone());
        assert_eq!(store.load(&k), Some(payload));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.discarded), (1, 1, 0));
        assert_eq!(s.recomputes, 1, "each save counts as one recompute");
    }

    #[test]
    fn stats_accumulate_with_add_assign() {
        let mut a = StoreStats {
            hits: 1,
            misses: 2,
            recomputes: 3,
            ..StoreStats::default()
        };
        a += StoreStats {
            hits: 10,
            io_retries: 4,
            ..StoreStats::default()
        };
        assert_eq!(
            (a.hits, a.misses, a.io_retries, a.recomputes),
            (11, 2, 4, 3)
        );
    }

    #[test]
    fn corrupt_files_are_discarded_not_fatal() {
        let store = temp_store("corrupt");
        let k = key("b");
        store.save(&k, Json::Null);
        let path = store.path_for(&k);
        std::fs::write(&path, "{ not json").unwrap();
        assert_eq!(store.load(&k), None);
        assert!(!path.exists(), "corrupt file should be deleted");
        assert_eq!(store.stats().discarded, 1);
    }

    #[test]
    fn schema_bump_invalidates() {
        let store = temp_store("schema");
        let k = key("c");
        store.save(&k, Json::U64(1));
        // Rewrite with a wrong schema version.
        let doc = Json::Obj(vec![
            ("schema".into(), Json::U64(u64::from(SCHEMA_VERSION) + 1)),
            ("key".into(), Json::Str(k.hex())),
            ("payload".into(), Json::U64(1)),
        ]);
        std::fs::write(store.path_for(&k), doc.to_string()).unwrap();
        assert_eq!(store.load(&k), None);
        assert_eq!(store.stats().discarded, 1);
    }

    #[test]
    fn v1_envelope_stays_readable() {
        let store = temp_store("v1compat");
        let k = key("v1");
        // Hand-write a v1 envelope (the pre-chunking file format).
        let doc = Json::Obj(vec![
            ("schema".into(), Json::U64(u64::from(MIN_SCHEMA_VERSION))),
            ("key".into(), Json::Str(k.hex())),
            ("payload".into(), Json::U64(42)),
        ]);
        std::fs::create_dir_all(store.dir()).unwrap();
        std::fs::write(store.path_for(&k), doc.to_string()).unwrap();
        assert_eq!(store.load(&k), Some(Json::U64(42)));
        assert_eq!(store.stats().discarded, 0);
    }

    #[test]
    fn key_mismatch_invalidates() {
        let store = temp_store("keymismatch");
        let k1 = key("d");
        let k2 = key("e");
        store.save(&k1, Json::U64(1));
        // Copy k1's file over k2's slot: embedded key no longer matches.
        std::fs::copy(store.path_for(&k1), store.path_for(&k2)).unwrap();
        assert_eq!(store.load(&k2), None);
        assert_eq!(store.stats().discarded, 1);
    }

    #[test]
    fn injected_io_faults_are_retried_and_degrade_to_miss() {
        let mut store = temp_store("iofault");
        let k = key("f");
        store.save(&k, Json::U64(9));
        // Certain I/O failure: every attempt fails, so loads degrade to
        // misses and saves warn — but nothing panics or errors out.
        store.set_faults(Some(Arc::new(FaultPlan::seeded(3).with_store_io(1.0))));
        assert_eq!(store.load(&k), None);
        let s = store.stats();
        assert_eq!(s.io_errors, 1);
        assert_eq!(s.io_retries, (IO_ATTEMPTS - 1) as u64);
        assert_eq!(s.misses, 1);
        // Clearing the plan restores normal service: the artifact survived.
        store.set_faults(None);
        assert_eq!(store.load(&k), Some(Json::U64(9)));
    }

    #[test]
    fn intermittent_io_fault_recovers_via_retry() {
        // p = 0.5: with 3 attempts per op and per-attempt sites, some seed
        // fails try0 but passes a later try. Find one deterministically.
        let k = key("g");
        let mut hit_retry_path = false;
        for seed in 0..64 {
            let plan = FaultPlan::seeded(seed).with_store_io(0.5);
            let fails_first = plan.store_io_error(&format!("load:{}:try0", k.short()));
            let passes_later = !plan.store_io_error(&format!("load:{}:try1", k.short()))
                || !plan.store_io_error(&format!("load:{}:try2", k.short()));
            if fails_first && passes_later {
                let mut store = temp_store(&format!("flaky{seed}"));
                store.save(&k, Json::U64(5));
                store.set_faults(Some(Arc::new(plan)));
                assert_eq!(store.load(&k), Some(Json::U64(5)), "seed {seed}");
                let s = store.stats();
                assert!(s.io_retries >= 1, "seed {seed}: {s:?}");
                assert_eq!(s.io_errors, 0, "seed {seed}: {s:?}");
                hit_retry_path = true;
                break;
            }
        }
        assert!(hit_retry_path, "no seed in 0..64 exercised the retry path");
    }

    #[test]
    fn saved_files_carry_a_payload_checksum() {
        let store = temp_store("sum");
        let k = key("sum");
        store.save(&k, Json::Obj(vec![("x".into(), Json::F64(1.0 / 3.0))]));
        let text = std::fs::read_to_string(store.path_for(&k)).unwrap();
        let doc = Json::parse(&text).unwrap();
        let sum = doc.get("sum").and_then(Json::as_str).unwrap();
        assert_eq!(sum.len(), 64);
        assert_eq!(sum, payload_sum(&doc.get("payload").unwrap().to_string()));
    }

    #[test]
    fn bit_flipped_payload_is_discarded_by_checksum() {
        let store = temp_store("bitflip");
        let k = key("bitflip");
        store.save(&k, Json::Obj(vec![("cycles".into(), Json::U64(12345))]));
        let path = store.path_for(&k);
        // Flip one digit inside the payload: still valid JSON, same shape,
        // same embedded key — only the checksum can catch it.
        let text = std::fs::read_to_string(&path).unwrap();
        let flipped = text.replace("12345", "12346");
        assert_ne!(text, flipped, "payload digit must appear in the file");
        std::fs::write(&path, flipped).unwrap();
        assert_eq!(store.load(&k), None);
        assert_eq!(store.stats().discarded, 1);
        assert!(!path.exists(), "corrupt artifact should be deleted");
    }

    #[test]
    fn fsync_opt_out_still_roundtrips() {
        let store = temp_store("nofsync").with_fsync(false);
        let k = key("nofsync");
        store.save(&k, Json::U64(11));
        assert_eq!(store.load(&k), Some(Json::U64(11)));
    }

    #[test]
    fn tmp_file_pid_parses_only_store_tmp_names() {
        assert_eq!(tmp_file_pid("0123456789abcdef.tmp.4242.7"), Some(4242));
        assert_eq!(tmp_file_pid("0123456789abcdef.json"), None);
        assert_eq!(tmp_file_pid("x.tmp.notapid.7"), None);
        assert_eq!(tmp_file_pid("x.tmp.42.notaseq"), None);
        assert_eq!(tmp_file_pid("x.tmp.42"), None);
    }

    #[test]
    fn gc_removes_dead_pid_tmp_files_and_keeps_own() {
        let store = temp_store("gc");
        std::fs::create_dir_all(store.dir()).unwrap();
        // A pid beyond linux's pid_max can never be alive.
        let dead = store.dir().join("aaaabbbbccccdddd.tmp.999999999.0");
        std::fs::write(&dead, "orphan").unwrap();
        let own = store
            .dir()
            .join(format!("aaaabbbbccccdddd.tmp.{}.1", std::process::id()));
        std::fs::write(&own, "live").unwrap();
        let plain = store.dir().join("aaaabbbbccccdddd.json");
        std::fs::write(&plain, "artifact").unwrap();

        let (files, bytes) = store.gc_tmp_files(Duration::ZERO);
        assert_eq!(files, 1);
        assert_eq!(bytes, "orphan".len() as u64);
        assert!(!dead.exists());
        assert!(own.exists(), "own pid's tmp file must survive");
        assert!(plain.exists(), "final artifacts must survive");
        assert_eq!(store.stats().gc_reclaimed_bytes, bytes);

        // With a safety window, a *fresh* dead-pid file is left alone.
        std::fs::write(&dead, "orphan").unwrap();
        let (files, _) = store.gc_tmp_files(Duration::from_secs(3600));
        assert_eq!(files, 0);
        assert!(dead.exists());
    }

    /// Pins an artifact's mtime to a known instant so LRU ordering is
    /// independent of filesystem timestamp granularity.
    fn pin_mtime(store: &ArtifactStore, k: &ContentHash, secs: u64) {
        let f = std::fs::File::options()
            .append(true)
            .open(store.path_for(k))
            .unwrap();
        let t = std::time::UNIX_EPOCH + Duration::from_secs(secs);
        f.set_times(std::fs::FileTimes::new().set_modified(t))
            .unwrap();
    }

    #[test]
    fn lru_cap_evicts_oldest_artifacts_first() {
        let mut store = temp_store("lrucap");
        let (ka, kb, kc) = (key("lru-a"), key("lru-b"), key("lru-c"));
        store.save(&ka, Json::U64(1));
        store.save(&kb, Json::U64(2));
        store.save(&kc, Json::U64(3));
        pin_mtime(&store, &ka, 1_000_000);
        pin_mtime(&store, &kb, 1_000_100);
        pin_mtime(&store, &kc, 1_000_200);
        let size = std::fs::metadata(store.path_for(&ka)).unwrap().len();
        // Uncapped: enforce_cap is a no-op.
        assert_eq!(store.enforce_cap(), (0, 0));
        // Cap at two artifacts' bytes: only the oldest (a) must go.
        store.set_cap(Some(2 * size));
        let (files, bytes) = store.enforce_cap();
        assert_eq!((files, bytes), (1, size));
        assert!(!store.contains(&ka));
        assert!(store.contains(&kb) && store.contains(&kc));
        assert_eq!(store.stats().gc_reclaimed_bytes, bytes);
        // The next save re-enforces automatically: four minus cap leaves
        // two (the cap is checked after every put).
        store.save(&ka, Json::U64(1));
        pin_mtime(&store, &ka, 1_000_300);
        store.save(&key("lru-d"), Json::U64(4));
        let remaining = std::fs::read_dir(store.dir())
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".json"))
            .count();
        assert_eq!(remaining, 2);
    }

    #[test]
    fn capped_load_refreshes_lru_recency() {
        let mut store = temp_store("lrutouch");
        let (ka, kb, kc) = (key("touch-a"), key("touch-b"), key("touch-c"));
        store.save(&ka, Json::U64(1));
        store.save(&kb, Json::U64(2));
        store.save(&kc, Json::U64(3));
        pin_mtime(&store, &ka, 1_000_000);
        pin_mtime(&store, &kb, 1_000_100);
        pin_mtime(&store, &kc, 1_000_200);
        let size = std::fs::metadata(store.path_for(&ka)).unwrap().len();
        store.set_cap(Some(2 * size));
        // A hit on the oldest artifact bumps its mtime past the others,
        // so the *second*-oldest (b) is evicted instead.
        assert_eq!(store.load(&ka), Some(Json::U64(1)));
        let (files, _) = store.enforce_cap();
        assert_eq!(files, 1);
        assert!(store.contains(&ka), "recently read artifact must survive");
        assert!(!store.contains(&kb));
        assert!(store.contains(&kc));
    }

    #[test]
    fn export_import_ships_artifacts_between_stores() {
        let src = temp_store("ship-src");
        let dst = temp_store("ship-dst");
        let k = key("ship");
        let payload = Json::Obj(vec![("cycles".into(), Json::U64(777))]);
        src.save(&k, payload.clone());
        assert!(src.contains(&k));
        assert!(!dst.contains(&k));
        let doc = src.export(&k).expect("saved artifact must export");
        dst.import(&k, &doc)
            .expect("validated envelope must import");
        assert!(dst.contains(&k));
        assert_eq!(dst.load(&k), Some(payload));
        // Byte-identical shipping: the imported file is the exported text.
        assert_eq!(std::fs::read_to_string(dst.path_for(&k)).unwrap(), doc);
    }

    #[test]
    fn import_rejects_corrupt_or_mismatched_envelopes() {
        let src = temp_store("ship-bad-src");
        let dst = temp_store("ship-bad-dst");
        let k = key("ship-bad");
        src.save(&k, Json::U64(5));
        let doc = src.export(&k).unwrap();
        // Wrong key: the envelope embeds a different hash.
        let other = key("ship-other");
        assert!(dst.import(&other, &doc).is_err());
        // Torn/corrupt text never lands on disk.
        assert!(dst.import(&k, &doc[..doc.len() / 2]).is_err());
        assert!(dst.import(&k, &doc.replace('5', "6")).is_err());
        assert!(!dst.contains(&k));
        // The intact envelope still imports fine afterwards.
        assert!(dst.import(&k, &doc).is_ok());
    }

    #[test]
    fn export_refuses_corrupt_files() {
        let store = temp_store("export-corrupt");
        let k = key("export-corrupt");
        store.save(&k, Json::U64(3));
        std::fs::write(store.path_for(&k), "{ torn").unwrap();
        assert_eq!(store.export(&k), None);
        assert_eq!(store.export(&key("never-saved")), None);
    }

    #[test]
    fn injected_corruption_hits_the_discard_path() {
        let mut store = temp_store("corruptfault");
        let k = key("h");
        store.save(&k, Json::U64(1));
        store.set_faults(Some(Arc::new(
            FaultPlan::seeded(1).with_artifact_corrupt(1.0),
        )));
        assert_eq!(store.load(&k), None);
        let s = store.stats();
        assert_eq!(s.discarded, 1);
        assert_eq!(s.io_errors, 0);
        // The corrupt file was deleted; a clean store now just misses.
        store.set_faults(None);
        assert_eq!(store.load(&k), None);
    }
}
