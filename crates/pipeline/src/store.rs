//! The on-disk artifact store: one JSON file per content hash, with the
//! key and schema version embedded so stale or corrupt files are *detected*
//! and discarded with a warning — never silently reused and never a panic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::ContentHash;
use crate::json::Json;
use crate::key::SCHEMA_VERSION;

/// Hit/miss counters for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts served from disk.
    pub hits: u64,
    /// Keys with no artifact on disk.
    pub misses: u64,
    /// Corrupt or stale files discarded (each also counts as a miss).
    pub discarded: u64,
}

/// A content-addressed artifact directory.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    discarded: AtomicU64,
}

impl ArtifactStore {
    /// Opens (and lazily creates) a store under `dir`.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ArtifactStore {
            dir: dir.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// The default location: `$PRISM_ARTIFACT_DIR` if set, else
    /// `target/prism-artifacts` next to the workspace.
    #[must_use]
    pub fn default_dir() -> PathBuf {
        if let Some(dir) = std::env::var_os("PRISM_ARTIFACT_DIR") {
            return PathBuf::from(dir);
        }
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/prism-artifacts")
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &ContentHash) -> PathBuf {
        self.dir.join(format!("{}.json", key.short()))
    }

    /// Loads the payload stored under `key`, or `None` on a miss. Corrupt
    /// files and key/schema mismatches are deleted with a warning and
    /// reported as misses.
    pub fn load(&self, key: &ContentHash) -> Option<Json> {
        let path = self.path_for(key);
        let Ok(text) = std::fs::read_to_string(&path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match Self::validate(&text, key) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(why) => {
                eprintln!(
                    "[prism-pipeline] discarding stale/corrupt artifact {}: {why}",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
                self.discarded.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn validate(text: &str, key: &ContentHash) -> Result<Json, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("missing schema field")?;
        if schema != u64::from(SCHEMA_VERSION) {
            return Err(format!("schema {schema} != current {SCHEMA_VERSION}"));
        }
        let stored = doc
            .get("key")
            .and_then(Json::as_str)
            .ok_or("missing key field")?;
        if stored != key.hex() {
            return Err("content key mismatch (hash prefix collision or stale file)".into());
        }
        doc.get("payload")
            .cloned()
            .ok_or_else(|| "missing payload field".into())
    }

    /// Stores `payload` under `key`. I/O failures are reported as warnings,
    /// not errors: a read-only cache degrades to recompute-every-time.
    pub fn save(&self, key: &ContentHash, payload: Json) {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::U64(u64::from(SCHEMA_VERSION))),
            ("key".into(), Json::Str(key.hex())),
            ("payload".into(), payload),
        ]);
        let path = self.path_for(key);
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            // Write-then-rename so concurrent readers never see a torn file.
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, doc.to_string())?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(e) = write() {
            eprintln!(
                "[prism-pipeline] failed to store artifact {}: {e}",
                path.display()
            );
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("prism-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::new(dir)
    }

    fn key(tag: &str) -> ContentHash {
        let mut kb = KeyBuilder::new("test");
        kb.field("tag", tag);
        kb.finish()
    }

    #[test]
    fn save_load_roundtrip_and_counters() {
        let store = temp_store("roundtrip");
        let k = key("a");
        assert_eq!(store.load(&k), None);
        let payload = Json::Obj(vec![("x".into(), Json::U64(7))]);
        store.save(&k, payload.clone());
        assert_eq!(store.load(&k), Some(payload));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.discarded), (1, 1, 0));
    }

    #[test]
    fn corrupt_files_are_discarded_not_fatal() {
        let store = temp_store("corrupt");
        let k = key("b");
        store.save(&k, Json::Null);
        let path = store.path_for(&k);
        std::fs::write(&path, "{ not json").unwrap();
        assert_eq!(store.load(&k), None);
        assert!(!path.exists(), "corrupt file should be deleted");
        assert_eq!(store.stats().discarded, 1);
    }

    #[test]
    fn schema_bump_invalidates() {
        let store = temp_store("schema");
        let k = key("c");
        store.save(&k, Json::U64(1));
        // Rewrite with a wrong schema version.
        let doc = Json::Obj(vec![
            ("schema".into(), Json::U64(u64::from(SCHEMA_VERSION) + 1)),
            ("key".into(), Json::Str(k.hex())),
            ("payload".into(), Json::U64(1)),
        ]);
        std::fs::write(store.path_for(&k), doc.to_string()).unwrap();
        assert_eq!(store.load(&k), None);
        assert_eq!(store.stats().discarded, 1);
    }

    #[test]
    fn key_mismatch_invalidates() {
        let store = temp_store("keymismatch");
        let k1 = key("d");
        let k2 = key("e");
        store.save(&k1, Json::U64(1));
        // Copy k1's file over k2's slot: embedded key no longer matches.
        std::fs::copy(store.path_for(&k1), store.path_for(&k2)).unwrap();
        assert_eq!(store.load(&k2), None);
        assert_eq!(store.stats().discarded, 1);
    }
}
