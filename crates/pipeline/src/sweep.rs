//! Sweep results with failure isolation: a design-space sweep returns
//! every point it *could* evaluate plus a quarantine list naming the
//! points it could not, instead of aborting the whole batch on the first
//! failure.
//!
//! Reports from independent shards (e.g. the `prism-grid` worker fleet)
//! combine with [`SweepReport::merge`]: a unit that failed on one shard
//! but succeeded on another counts as *recovered* — its result is kept
//! and its first error moves to [`SweepReport::recovered`] instead of the
//! permanent quarantine list.

use std::collections::BTreeSet;

use prism_exocore::DesignResult;

use crate::error::PipelineError;

/// The outcome of a fault-isolated design-space sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepReport {
    /// Successfully evaluated design points.
    pub results: Vec<DesignResult>,
    /// `(key, error)` for every permanently quarantined unit. Keys are
    /// `workload:<name>` for whole-workload failures and the design-point
    /// label (e.g. `OOO2-SDN`) for per-point failures.
    pub quarantined: Vec<(String, PipelineError)>,
    /// `(key, error)` for units that failed at least once but succeeded
    /// on a retry (their result is in [`SweepReport::results`]; the error
    /// recorded here is from the failed attempt).
    pub recovered: Vec<(String, PipelineError)>,
}

impl SweepReport {
    /// A fully healthy report.
    #[must_use]
    pub fn healthy(results: Vec<DesignResult>) -> Self {
        SweepReport {
            results,
            quarantined: Vec::new(),
            recovered: Vec::new(),
        }
    }

    /// Whether every unit failed (no results at all, at least one error).
    /// An empty sweep over zero points is *not* a total failure.
    #[must_use]
    pub fn all_failed(&self) -> bool {
        self.results.is_empty() && !self.quarantined.is_empty()
    }

    /// Process exit code for CLI / bench front-ends: nonzero only when
    /// *everything* failed.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        i32::from(self.all_failed())
    }

    /// Renders the failure summary — one line per permanently quarantined
    /// unit, then one per retried-then-recovered unit — or `None` when the
    /// sweep was fully healthy on the first attempt.
    #[must_use]
    pub fn failure_summary(&self) -> Option<String> {
        if self.quarantined.is_empty() && self.recovered.is_empty() {
            return None;
        }
        let mut out = String::new();
        if !self.quarantined.is_empty() {
            out.push_str(&format!(
                "{} of {} units quarantined:\n",
                self.quarantined.len(),
                self.quarantined.len() + self.results.len()
            ));
            for (key, err) in &self.quarantined {
                out.push_str(&format!("  {key}: {err}\n"));
            }
        }
        if !self.recovered.is_empty() {
            out.push_str(&format!(
                "{} unit(s) recovered on retry:\n",
                self.recovered.len()
            ));
            for (key, err) in &self.recovered {
                out.push_str(&format!("  {key}: failed attempt: {err}\n"));
            }
        }
        Some(out)
    }

    /// Sorts the quarantine list by key for stable, diffable output.
    pub fn sort_quarantined(&mut self) {
        self.quarantined.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Sorts results by design-point label and the quarantine/recovery
    /// lists by unit key, so rendered output is deterministic regardless
    /// of `--jobs` thread count or grid worker count. Sorts are stable:
    /// entries sharing a key keep their insertion order.
    pub fn sort_units(&mut self) {
        self.results.sort_by(|a, b| a.label.cmp(&b.label));
        self.quarantined.sort_by(|a, b| a.0.cmp(&b.0));
        self.recovered.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Canonicalizes the report after a merge: sorts by unit key, drops
    /// duplicate results (first occurrence wins — results for one key are
    /// deterministic, so duplicates are identical), converts quarantine
    /// entries whose unit also has a result into recovery entries, and
    /// keeps one representative error per quarantined/recovered unit.
    pub fn normalize(&mut self) {
        self.sort_units();
        let mut seen = BTreeSet::new();
        self.results.retain(|r| seen.insert(r.label.clone()));
        let succeeded: BTreeSet<&String> = seen.iter().collect();
        // A unit with a result anywhere is recovered, not quarantined.
        let (rec, quar): (Vec<_>, Vec<_>) = std::mem::take(&mut self.quarantined)
            .into_iter()
            .partition(|(key, _)| succeeded.contains(key));
        self.quarantined = quar;
        self.recovered.extend(rec);
        self.recovered.sort_by(|a, b| a.0.cmp(&b.0));
        let mut seen = BTreeSet::new();
        self.quarantined.retain(|(key, _)| seen.insert(key.clone()));
        let mut seen = BTreeSet::new();
        self.recovered.retain(|(key, _)| seen.insert(key.clone()));
    }

    /// Merges another shard's report into this one, deduping units that
    /// succeeded on retry: a key present in either report's results is a
    /// success, and any quarantine entry for it (a failed attempt on some
    /// other shard) becomes a [`SweepReport::recovered`] entry. The merged
    /// report is normalized (sorted, one entry per unit).
    pub fn merge(&mut self, other: SweepReport) {
        self.results.extend(other.results);
        self.quarantined.extend(other.quarantined);
        self.recovered.extend(other.recovered);
        self.normalize();
    }

    /// Results, consuming the report — convenience for callers that treat
    /// any quarantine as fatal.
    ///
    /// # Errors
    ///
    /// Returns the first quarantined error when one exists.
    pub fn into_strict(self) -> Result<Vec<DesignResult>, PipelineError> {
        match self.quarantined.into_iter().next() {
            Some((_, err)) => Err(err),
            None => Ok(self.results),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Stage;

    fn err(w: &str) -> PipelineError {
        PipelineError::new(w, Stage::Evaluate, "boom")
    }

    #[test]
    fn healthy_report_has_exit_zero_and_no_summary() {
        let r = SweepReport::healthy(Vec::new());
        assert!(!r.all_failed());
        assert_eq!(r.exit_code(), 0);
        assert!(r.failure_summary().is_none());
        assert!(r.into_strict().is_ok());
    }

    fn dummy_result(label: &str) -> DesignResult {
        DesignResult {
            label: label.into(),
            core: "OOO2".into(),
            bsas: String::new(),
            area_mm2: 1.0,
            per_workload: Vec::new(),
        }
    }

    #[test]
    fn total_failure_sets_exit_one() {
        let r = SweepReport {
            results: vec![],
            quarantined: vec![("workload:fft".into(), err("fft"))],
            recovered: vec![],
        };
        assert!(r.all_failed());
        assert_eq!(r.exit_code(), 1);
        let s = r.failure_summary().unwrap();
        assert!(s.contains("workload:fft"), "{s}");
        assert!(s.contains("1 of 1"), "{s}");
        assert_eq!(r.into_strict().unwrap_err().workload, "fft");
    }

    #[test]
    fn partial_failure_keeps_exit_zero_but_reports() {
        let r = SweepReport {
            results: vec![dummy_result("OOO2")],
            quarantined: vec![("OOO4-SDN".into(), err("fft"))],
            recovered: vec![],
        };
        assert!(!r.all_failed());
        assert_eq!(r.exit_code(), 0);
        let s = r.failure_summary().unwrap();
        assert!(s.contains("1 of 2"), "{s}");
        assert!(s.contains("OOO4-SDN"), "{s}");
    }

    #[test]
    fn sort_quarantined_orders_by_key() {
        let mut r = SweepReport {
            results: vec![],
            quarantined: vec![
                ("z".into(), err("z")),
                ("a".into(), err("a")),
                ("m".into(), err("m")),
            ],
            recovered: vec![],
        };
        r.sort_quarantined();
        let keys: Vec<&str> = r.quarantined.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "m", "z"]);
    }

    #[test]
    fn sort_units_orders_results_and_all_lists() {
        let mut r = SweepReport {
            results: vec![dummy_result("OOO4"), dummy_result("IO2")],
            quarantined: vec![("z".into(), err("z")), ("a".into(), err("a"))],
            recovered: vec![("m".into(), err("m")), ("b".into(), err("b"))],
        };
        r.sort_units();
        let labels: Vec<&str> = r.results.iter().map(|x| x.label.as_str()).collect();
        assert_eq!(labels, ["IO2", "OOO4"]);
        assert_eq!(r.quarantined[0].0, "a");
        assert_eq!(r.recovered[0].0, "b");
    }

    #[test]
    fn merge_promotes_retried_success_to_recovered() {
        // Shard A quarantined OOO2-S; shard B retried it and succeeded.
        let mut a = SweepReport {
            results: vec![dummy_result("IO2")],
            quarantined: vec![("OOO2-S".into(), err("first try"))],
            recovered: vec![],
        };
        let b = SweepReport::healthy(vec![dummy_result("OOO2-S")]);
        a.merge(b);
        assert_eq!(a.results.len(), 2);
        assert!(a.quarantined.is_empty(), "{:?}", a.quarantined);
        assert_eq!(a.recovered.len(), 1);
        assert_eq!(a.recovered[0].0, "OOO2-S");
        assert_eq!(a.recovered[0].1.workload, "first try");
        let s = a.failure_summary().unwrap();
        assert!(s.contains("recovered on retry"), "{s}");
        assert!(!s.contains("quarantined"), "{s}");
    }

    #[test]
    fn merge_dedupes_double_failures_and_double_successes() {
        // Same unit failed on two shards: one quarantine entry survives.
        let mut a = SweepReport {
            results: vec![dummy_result("IO2")],
            quarantined: vec![("OOO2-S".into(), err("shard0"))],
            recovered: vec![],
        };
        let b = SweepReport {
            results: vec![dummy_result("IO2")], // duplicate success
            quarantined: vec![("OOO2-S".into(), err("shard1"))],
            recovered: vec![],
        };
        a.merge(b);
        assert_eq!(a.results.len(), 1, "duplicate results must collapse");
        assert_eq!(a.quarantined.len(), 1);
        assert_eq!(a.quarantined[0].0, "OOO2-S");
        assert!(a.recovered.is_empty());
    }

    #[test]
    fn merge_is_order_insensitive_on_unit_sets() {
        let mk = |labels: &[&str], quar: &[&str]| SweepReport {
            results: labels.iter().map(|l| dummy_result(l)).collect(),
            quarantined: quar.iter().map(|k| ((*k).to_string(), err(k))).collect(),
            recovered: vec![],
        };
        let mut ab = mk(&["B"], &["Q"]);
        ab.merge(mk(&["A", "Q"], &[]));
        let mut ba = mk(&["A", "Q"], &[]);
        ba.merge(mk(&["B"], &["Q"]));
        let keys = |r: &SweepReport| {
            (
                r.results
                    .iter()
                    .map(|x| x.label.clone())
                    .collect::<Vec<_>>(),
                r.quarantined
                    .iter()
                    .map(|x| x.0.clone())
                    .collect::<Vec<_>>(),
                r.recovered.iter().map(|x| x.0.clone()).collect::<Vec<_>>(),
            )
        };
        assert_eq!(keys(&ab), keys(&ba));
        assert_eq!(keys(&ab).0, vec!["A", "B", "Q"]);
        assert!(keys(&ab).1.is_empty());
        assert_eq!(keys(&ab).2, vec!["Q"]);
    }
}
