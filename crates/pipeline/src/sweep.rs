//! Sweep results with failure isolation: a design-space sweep returns
//! every point it *could* evaluate plus a quarantine list naming the
//! points it could not, instead of aborting the whole batch on the first
//! failure.

use prism_exocore::DesignResult;

use crate::error::PipelineError;

/// The outcome of a fault-isolated design-space sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepReport {
    /// Successfully evaluated design points.
    pub results: Vec<DesignResult>,
    /// `(key, error)` for every quarantined unit. Keys are
    /// `workload:<name>` for whole-workload failures and the design-point
    /// label (e.g. `OOO2-SDN`) for per-point failures.
    pub quarantined: Vec<(String, PipelineError)>,
}

impl SweepReport {
    /// A fully healthy report.
    #[must_use]
    pub fn healthy(results: Vec<DesignResult>) -> Self {
        SweepReport {
            results,
            quarantined: Vec::new(),
        }
    }

    /// Whether every unit failed (no results at all, at least one error).
    /// An empty sweep over zero points is *not* a total failure.
    #[must_use]
    pub fn all_failed(&self) -> bool {
        self.results.is_empty() && !self.quarantined.is_empty()
    }

    /// Process exit code for CLI / bench front-ends: nonzero only when
    /// *everything* failed.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        i32::from(self.all_failed())
    }

    /// Renders the failure summary (one line per quarantined unit), or
    /// `None` when the sweep was fully healthy.
    #[must_use]
    pub fn failure_summary(&self) -> Option<String> {
        if self.quarantined.is_empty() {
            return None;
        }
        let mut out = format!(
            "{} of {} units quarantined:\n",
            self.quarantined.len(),
            self.quarantined.len() + self.results.len()
        );
        for (key, err) in &self.quarantined {
            out.push_str(&format!("  {key}: {err}\n"));
        }
        Some(out)
    }

    /// Sorts the quarantine list by key for stable, diffable output.
    pub fn sort_quarantined(&mut self) {
        self.quarantined.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Results, consuming the report — convenience for callers that treat
    /// any quarantine as fatal.
    ///
    /// # Errors
    ///
    /// Returns the first quarantined error when one exists.
    pub fn into_strict(self) -> Result<Vec<DesignResult>, PipelineError> {
        match self.quarantined.into_iter().next() {
            Some((_, err)) => Err(err),
            None => Ok(self.results),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Stage;

    fn err(w: &str) -> PipelineError {
        PipelineError::new(w, Stage::Evaluate, "boom")
    }

    #[test]
    fn healthy_report_has_exit_zero_and_no_summary() {
        let r = SweepReport::healthy(Vec::new());
        assert!(!r.all_failed());
        assert_eq!(r.exit_code(), 0);
        assert!(r.failure_summary().is_none());
        assert!(r.into_strict().is_ok());
    }

    fn dummy_result(label: &str) -> DesignResult {
        DesignResult {
            label: label.into(),
            core: "OOO2".into(),
            bsas: String::new(),
            area_mm2: 1.0,
            per_workload: Vec::new(),
        }
    }

    #[test]
    fn total_failure_sets_exit_one() {
        let r = SweepReport {
            results: vec![],
            quarantined: vec![("workload:fft".into(), err("fft"))],
        };
        assert!(r.all_failed());
        assert_eq!(r.exit_code(), 1);
        let s = r.failure_summary().unwrap();
        assert!(s.contains("workload:fft"), "{s}");
        assert!(s.contains("1 of 1"), "{s}");
        assert_eq!(r.into_strict().unwrap_err().workload, "fft");
    }

    #[test]
    fn partial_failure_keeps_exit_zero_but_reports() {
        let r = SweepReport {
            results: vec![dummy_result("OOO2")],
            quarantined: vec![("OOO4-SDN".into(), err("fft"))],
        };
        assert!(!r.all_failed());
        assert_eq!(r.exit_code(), 0);
        let s = r.failure_summary().unwrap();
        assert!(s.contains("1 of 2"), "{s}");
        assert!(s.contains("OOO4-SDN"), "{s}");
    }

    #[test]
    fn sort_quarantined_orders_by_key() {
        let mut r = SweepReport {
            results: vec![],
            quarantined: vec![
                ("z".into(), err("z")),
                ("a".into(), err("a")),
                ("m".into(), err("m")),
            ],
        };
        r.sort_quarantined();
        let keys: Vec<&str> = r.quarantined.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "m", "z"]);
    }
}
