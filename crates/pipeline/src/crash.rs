//! Deterministic crash injection: named kill points that terminate the
//! process at the n-th hit of a chosen site, driven by the `PRISM_CRASH`
//! environment variable.
//!
//! Unlike the fault plan ([`crate::fault`]), which injects *recoverable*
//! failures (I/O errors, corruption, panics caught at stage boundaries),
//! a crash point models SIGKILL / power loss: the process exits
//! immediately with status [`CRASH_EXIT_CODE`], no destructors, no
//! flushing beyond what already happened. The crash-consistency layer
//! (durable store puts, the sweep journal, `--resume`) must make such a
//! kill recoverable at *every* site — the property the kill-anywhere
//! test asserts.
//!
//! Grammar: `PRISM_CRASH=<site>@<n>` — exit on the `n`-th (1-based) hit
//! of `site`. Sites are process-wide; hit counting is atomic, so the
//! n-th hit is well-defined under thread parallelism even though *which*
//! unit of work triggers it may vary. A malformed value panics (like
//! every other `PRISM_` knob, a typo must not silently disable the
//! crash). Known sites:
//!
//! | site             | fires                                              |
//! |------------------|----------------------------------------------------|
//! | `store-put`      | after the tmp file is written, before the rename   |
//! | `journal-append` | before a journal record is written                 |
//! | `unit-complete`  | after a unit's journal record is durable           |
//! | `grid-frame`     | before the coordinator handles a unit frame        |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable holding the crash spec (`<site>@<n>`).
pub const CRASH_ENV: &str = "PRISM_CRASH";

/// Exit status of an injected crash — mirrors a SIGKILL'd process
/// (128 + 9) so drivers treat it exactly like a real kill.
pub const CRASH_EXIT_CODE: i32 = 137;

/// Kill point in [`crate::store::ArtifactStore`]: tmp file written and
/// synced, rename not yet performed (leaks the tmp file; the artifact is
/// invisible to readers).
pub const SITE_STORE_PUT: &str = "store-put";

/// Kill point in [`crate::journal::SweepJournal`]: the unit's result is
/// already durable in the store, but its journal record was never
/// written.
pub const SITE_JOURNAL_APPEND: &str = "journal-append";

/// Kill point after a unit's journal record is written and synced — the
/// latest possible kill inside one unit's lifecycle.
pub const SITE_UNIT_COMPLETE: &str = "unit-complete";

/// Kill point in the grid coordinator's event loop, before a
/// result/quarantine frame from a worker is handled.
pub const SITE_GRID_FRAME: &str = "grid-frame";

/// A parsed crash spec: kill the process at the `hit`-th hit of `site`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSpec {
    /// The named kill point to arm.
    pub site: String,
    /// 1-based hit count at which the process exits.
    pub hit: u64,
}

impl CrashSpec {
    /// Parses `<site>@<n>`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed spec.
    pub fn parse(text: &str) -> Result<CrashSpec, String> {
        let t = text.trim();
        let (site, n) = t
            .split_once('@')
            .ok_or_else(|| format!("expected <site>@<n>, got `{t}`"))?;
        let site = site.trim();
        if site.is_empty() {
            return Err(format!("empty site in `{t}`"));
        }
        let hit: u64 = n
            .trim()
            .parse()
            .map_err(|e| format!("bad hit count in `{t}`: {e}"))?;
        if hit == 0 {
            return Err(format!("hit count must be >= 1 in `{t}`"));
        }
        Ok(CrashSpec {
            site: site.to_string(),
            hit,
        })
    }

    /// Reads the spec from [`CRASH_ENV`]; `None` when unset or empty.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but malformed.
    #[must_use]
    pub fn from_env() -> Option<CrashSpec> {
        let raw = std::env::var(CRASH_ENV).ok()?;
        let raw = raw.trim();
        if raw.is_empty() {
            return None;
        }
        Some(CrashSpec::parse(raw).unwrap_or_else(|e| panic!("bad {CRASH_ENV} value: {e}")))
    }
}

struct Armed {
    spec: CrashSpec,
    hits: AtomicU64,
}

static ARMED: OnceLock<Option<Armed>> = OnceLock::new();

/// Records one hit of `site`, exiting the process with
/// [`CRASH_EXIT_CODE`] when the armed spec's hit count is reached.
/// A no-op (one relaxed branch) when `PRISM_CRASH` is not set.
pub fn crash_point(site: &str) {
    let armed = ARMED.get_or_init(|| {
        CrashSpec::from_env().map(|spec| Armed {
            spec,
            hits: AtomicU64::new(0),
        })
    });
    let Some(armed) = armed.as_ref() else { return };
    if armed.spec.site != site {
        return;
    }
    let n = armed.hits.fetch_add(1, Ordering::SeqCst) + 1;
    if n == armed.spec.hit {
        eprintln!("[prism-crash] injected kill at site `{site}` (hit {n})");
        std::process::exit(CRASH_EXIT_CODE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_site_and_hit() {
        assert_eq!(
            CrashSpec::parse("store-put@3"),
            Ok(CrashSpec {
                site: "store-put".into(),
                hit: 3
            })
        );
        assert_eq!(
            CrashSpec::parse("  grid-frame @ 1 "),
            Ok(CrashSpec {
                site: "grid-frame".into(),
                hit: 1
            })
        );
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in ["", "store-put", "@3", "store-put@", "store-put@0", "x@-1"] {
            assert!(CrashSpec::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn unarmed_crash_point_is_a_no_op() {
        // The test runner never sets PRISM_CRASH (the CI fault matrix only
        // sets PRISM_FAULTS), so hitting a site must not exit.
        crash_point(SITE_STORE_PUT);
        crash_point(SITE_UNIT_COMPLETE);
    }
}
