//! A minimal JSON reader/writer for artifact files (serde_json is not
//! available in this build environment).
//!
//! Integers are kept out of `f64` so `u64` cycle counts round-trip exactly,
//! and floats are written with Rust's shortest-round-trip formatting so a
//! reloaded artifact is bit-identical to a recomputed one.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Negative integer (also any integer written with a sign).
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Number with a fraction or exponent.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Value as `u64` (integer-typed only).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Value as `f64` (any numeric type).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Value as `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Value as string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Value as array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` is shortest-round-trip: parse(format(v)) == v.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

/// Compact JSON serialization (round-trips through [`Json::parse`]).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("truncated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("stencil \"v2\"\n".into())),
            ("cycles".into(), Json::U64(u64::MAX)),
            ("delta".into(), Json::I64(-42)),
            ("energy".into(), Json::F64(2.5e-7)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, 6.02214076e23, f64::MIN_POSITIVE, -0.0] {
            let text = Json::F64(v).to_string();
            match Json::parse(&text).unwrap() {
                Json::F64(back) => assert_eq!(back.to_bits(), v.to_bits(), "{text}"),
                other => panic!("parsed {other:?}"),
            }
        }
    }

    #[test]
    fn u64_precision_is_preserved() {
        let v = (1u64 << 53) + 1; // not representable in f64
        let text = Json::U64(v).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(v));
    }

    #[test]
    fn corrupt_documents_are_rejected() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"\\q\"", "{}extra",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
