//! Fault-injection integration tests: sweeps under injected stage panics,
//! corrupt artifacts, failing store I/O, execution budgets, and the
//! µDG-vs-reference divergence guard must isolate failures per unit and
//! keep every healthy point.

use std::sync::Arc;

use prism_pipeline::{DivergenceGuard, ErrorKind, FaultPlan, Session, Stage, SweepReport};
use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::{CoreConfig, ExecBudget};
use prism_workloads::{Workload, MICRO};

fn quick_tracer() -> TracerConfig {
    TracerConfig {
        max_insts: 20_000,
        ..TracerConfig::default()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("prism-fault-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A session insulated from ambient env knobs, so these tests control
/// fault injection explicitly even under the CI fault matrix.
fn clean_session(tag: &str) -> Session {
    Session::new()
        .with_tracer(quick_tracer())
        .with_jobs(1)
        .with_store_dir(temp_dir(tag))
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None)
}

fn micro_set() -> Vec<&'static Workload> {
    MICRO.iter().take(3).collect()
}

fn small_grid() -> (Vec<CoreConfig>, Vec<Vec<BsaKind>>) {
    (
        vec![CoreConfig::io2(), CoreConfig::ooo2()],
        vec![
            vec![],
            vec![BsaKind::Simd],
            vec![BsaKind::NsDf],
            BsaKind::ALL.to_vec(),
        ],
    )
}

fn run_sweep(session: &Session) -> SweepReport {
    let (cores, subsets) = small_grid();
    session.evaluate_designs(&micro_set(), &cores, &subsets)
}

#[test]
fn stage_panics_and_corrupt_artifacts_quarantine_per_point() {
    let (cores, subsets) = small_grid();
    let total = cores.len() * subsets.len();

    // Reference: what a healthy sweep produces.
    let healthy = run_sweep(&clean_session("panic-ref"));
    assert!(healthy.quarantined.is_empty());
    assert_eq!(healthy.results.len(), total);

    // Chaos run: the first two design-point evaluations panic, and every
    // artifact load comes back corrupted (forcing the discard path — the
    // store starts empty here, so corruption only matters for re-loads).
    let plan = FaultPlan::seeded(42)
        .with_stage_panic(Stage::Evaluate, 2)
        .with_artifact_corrupt(1.0);
    let session = clean_session("panic-chaos").with_faults(Some(Arc::new(plan)));
    let report = run_sweep(&session);

    assert_eq!(report.quarantined.len(), 2, "{:?}", report.quarantined);
    assert_eq!(report.results.len(), total - 2);
    for (key, err) in &report.quarantined {
        assert_eq!(err.kind, ErrorKind::StagePanicked, "{key}: {err}");
        assert_eq!(err.stage, Stage::Evaluate, "{key}: {err}");
        assert!(err.message.contains("injected fault"), "{key}: {err}");
        // Quarantine keys are design-point labels (core name + BSA codes).
        assert!(key.starts_with("IO2") || key.starts_with("OOO2"), "{key}");
    }
    // Healthy points match the reference run bit-for-bit.
    for r in &report.results {
        let reference = healthy
            .results
            .iter()
            .find(|h| h.label == r.label)
            .expect("healthy run covers every label");
        assert_eq!(r, reference);
    }
    assert!(!report.all_failed());
    assert_eq!(report.exit_code(), 0);
    let summary = report.failure_summary().expect("quarantine summary");
    assert!(summary.contains("2 of"), "{summary}");

    // The panic plan is exhausted: a rerun on the same session heals the
    // two quarantined points (healthy ones load from the store).
    let rerun = run_sweep(&session);
    assert!(rerun.quarantined.is_empty(), "{:?}", rerun.quarantined);
    assert_eq!(rerun.results.len(), total);
}

#[test]
fn total_trace_truncation_fails_everything_with_typed_errors() {
    let plan = FaultPlan::seeded(7).with_trace_truncate(1.0);
    let session = clean_session("truncate").with_faults(Some(Arc::new(plan)));
    let report = run_sweep(&session);

    assert!(report.results.is_empty());
    assert!(report.all_failed());
    assert_eq!(report.exit_code(), 1);
    assert_eq!(report.quarantined.len(), micro_set().len());
    for (key, err) in &report.quarantined {
        assert!(key.starts_with("workload:"), "{key}");
        assert_eq!(err.stage, Stage::Trace, "{err}");
        assert_eq!(err.kind, ErrorKind::Failed, "{err}");
        assert!(err.message.contains("truncated"), "{err}");
    }
}

#[test]
fn dead_store_degrades_to_recompute_with_identical_results() {
    let healthy = run_sweep(&clean_session("deadstore-ref"));

    let plan = FaultPlan::seeded(3).with_store_io(1.0);
    let session = clean_session("deadstore").with_faults(Some(Arc::new(plan)));
    let report = run_sweep(&session);

    assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
    assert_eq!(report.results, healthy.results);
    let s = session.stats();
    assert!(s.artifacts.io_errors > 0, "{:?}", s.artifacts);
    assert!(s.artifacts.io_retries > 0, "{:?}", s.artifacts);
    assert_eq!(s.artifacts.hits, 0, "a dead store cannot serve hits");
}

#[test]
fn tiny_budget_quarantines_every_point_as_budget_exceeded() {
    let session = clean_session("budget").with_budget(ExecBudget::new(100));
    let report = run_sweep(&session);

    let (cores, subsets) = small_grid();
    assert!(report.results.is_empty());
    assert_eq!(report.quarantined.len(), cores.len() * subsets.len());
    assert!(report.all_failed());
    for (_, err) in &report.quarantined {
        assert_eq!(err.kind, ErrorKind::BudgetExceeded, "{err}");
        assert!(err.message.contains("budget"), "{err}");
    }
}

#[test]
fn divergence_guard_flags_only_beyond_tolerance() {
    // Measure the actual µDG-vs-reference divergence of the sweep's
    // (workload, core) pairs, then set the tolerance on either side of it.
    let probe = clean_session("guard-probe");
    let data = probe.prepare_batch(&micro_set()).expect("prepare");
    let (cores, subsets) = small_grid();
    let mut max_rel = 0.0f64;
    for w in &data {
        for core in &cores {
            // tolerance 0 errs whenever rel > 0 and reports the error.
            if let Err(msg) = DivergenceGuard::new(0.0, 1).check(w, core) {
                let rel: f64 = msg
                    .split("relative error ")
                    .nth(1)
                    .and_then(|s| s.split(' ').next())
                    .and_then(|s| s.parse().ok())
                    .expect("divergence message carries the relative error");
                max_rel = max_rel.max(rel);
            }
        }
    }
    assert!(
        max_rel > 0.0,
        "µDG and reference agree exactly; guard test needs a skew"
    );

    // Tolerance above the worst divergence: nothing quarantined.
    let lenient = clean_session("guard-lenient")
        .with_divergence_guard(Some(DivergenceGuard::new(max_rel * 2.0, 1)));
    let ok = lenient.evaluate_designs(&micro_set(), &cores, &subsets);
    assert!(ok.quarantined.is_empty(), "{:?}", ok.quarantined);

    // Tolerance below it: the offending core's points are quarantined as
    // Diverged, the rest still evaluate.
    let strict = clean_session("guard-strict")
        .with_divergence_guard(Some(DivergenceGuard::new(max_rel / 2.0, 1)));
    let flagged = strict.evaluate_designs(&micro_set(), &cores, &subsets);
    assert!(!flagged.quarantined.is_empty());
    for (_, err) in &flagged.quarantined {
        assert_eq!(err.kind, ErrorKind::Diverged, "{err}");
        assert!(err.message.contains("tolerance"), "{err}");
    }
    // Quarantine granularity is per core: whole multiples of the subset
    // count, never the entire sweep unless every core diverges.
    assert_eq!(flagged.quarantined.len() % subsets.len(), 0);
    assert_eq!(
        flagged.results.len() + flagged.quarantined.len(),
        cores.len() * subsets.len()
    );
}

#[test]
fn env_driven_fault_plan_still_completes_the_sweep() {
    // Under the CI fault matrix (PRISM_FAULTS set) this exercises the
    // whole chaos path end-to-end; without it, it's a plain healthy sweep.
    // Either way: no aborts, and every grid point is accounted for.
    let session = Session::new()
        .with_tracer(quick_tracer())
        .with_jobs(2)
        .with_store_dir(temp_dir("env-driven"));
    let (cores, subsets) = small_grid();
    let report = session.evaluate_designs(&micro_set(), &cores, &subsets);
    let total = cores.len() * subsets.len();
    let workload_failures = report
        .quarantined
        .iter()
        .filter(|(k, _)| k.starts_with("workload:"))
        .count();
    if workload_failures == micro_set().len() {
        // Everything fell over in preparation; nothing else to account.
        assert!(report.results.is_empty());
    } else {
        assert_eq!(
            report.results.len() + (report.quarantined.len() - workload_failures),
            total,
            "{:?}",
            report.quarantined
        );
    }
}
