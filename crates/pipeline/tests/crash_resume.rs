//! Resume-equivalence integration tests for the sweep journal.
//!
//! Property under test: a sweep resumed from a journal produces a report
//! *identical* to an uninterrupted run — results bit-for-bit, quarantines
//! replayed verbatim — while recomputing only units the journal does not
//! record. Composed with the streaming trace architecture and with
//! site-seeded fault injection (the deterministic `PRISM_FAULTS` kinds),
//! because crash recovery must hold under degraded stores too.
//!
//! The companion kill harness (`tests/crash_resume_kill.rs` at the
//! workspace root) proves the same property across real process kills at
//! every `PRISM_CRASH` site; these tests cover the replay logic itself in
//! the normal harness.

use std::sync::Arc;

use prism_pipeline::{
    journal_path, sweep_key, FaultPlan, JournalReplay, Session, SweepJournal, SweepReport,
};
use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::{CoreConfig, ExecBudget};
use prism_workloads::{Workload, MICRO};

fn quick_tracer() -> TracerConfig {
    TracerConfig {
        max_insts: 20_000,
        ..TracerConfig::default()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("prism-resume-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A session insulated from ambient env knobs (CI fault matrix included).
fn clean_session(tag: &str) -> Session {
    Session::new()
        .with_tracer(quick_tracer())
        .with_jobs(1)
        .with_store_dir(temp_dir(tag))
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None)
        .with_streaming(false)
}

fn micro_set() -> Vec<&'static Workload> {
    MICRO.iter().take(3).collect()
}

fn small_grid() -> (Vec<CoreConfig>, Vec<Vec<BsaKind>>) {
    (
        vec![CoreConfig::io2(), CoreConfig::ooo2()],
        vec![
            vec![],
            vec![BsaKind::Simd],
            vec![BsaKind::NsDf],
            BsaKind::ALL.to_vec(),
        ],
    )
}

/// The sweep key a journaled `evaluate_designs_resumable` over this
/// test's space derives (same inputs, same derivation).
fn test_sweep_key() -> prism_pipeline::ContentHash {
    let (cores, subsets) = small_grid();
    let workloads: Vec<(String, u32)> = micro_set()
        .iter()
        .map(|w| (w.name.to_string(), w.scaled_n()))
        .collect();
    sweep_key(&workloads, &quick_tracer(), &cores, &subsets)
}

fn run_resumable(session: &Session, resume: bool) -> SweepReport {
    let (cores, subsets) = small_grid();
    session.evaluate_designs_resumable(&micro_set(), &cores, &subsets, resume)
}

/// Seeds `dir` with a journal recording the first `count` units of
/// `reference` as done, as a crashed run would have left behind.
fn seed_partial_journal(dir: &std::path::Path, reference: &SweepReport, count: usize) {
    std::fs::create_dir_all(dir).unwrap();
    let sweep = test_sweep_key();
    let (journal, replay) = SweepJournal::open(dir, &sweep, false).unwrap();
    assert_eq!(replay.records, 0);
    for r in reference.results.iter().take(count) {
        journal.append_done(&r.label, r).unwrap();
    }
    // Drop without `remove()`: the file stays, like after a kill.
}

#[test]
fn partial_journal_resumes_to_identical_report() {
    let reference = run_resumable(&clean_session("partial-ref"), false);
    assert!(
        reference.quarantined.is_empty(),
        "{:?}",
        reference.quarantined
    );
    let total = reference.results.len();
    assert_eq!(total, 8);

    // Half the units journaled, nothing in the store: the resumed run
    // must replay those and recompute only the other half.
    let dir = temp_dir("partial");
    seed_partial_journal(&dir, &reference, total / 2);
    let session = clean_session("partial-unused").with_store_dir(&dir);
    let resumed = run_resumable(&session, true);

    assert_eq!(resumed, reference, "resumed report must be identical");
    let stats = session.stats();
    assert_eq!(stats.resumed, (total / 2) as u64, "{stats:?}");
    assert_eq!(stats.replayed, (total / 2) as u64, "{stats:?}");
    // `recomputes` counts every store save, and each trace walk also
    // saves a shape-keyed timing artifact — subtract those to get the
    // design-point recomputes.
    assert_eq!(
        stats.artifacts.recomputes - stats.trace_walks,
        (total - total / 2) as u64,
        "journaled units must not be recomputed: {stats:?}"
    );
    // The sweep finished clean, so its journal is gone.
    assert!(
        !journal_path(&dir, &test_sweep_key()).exists(),
        "clean finish must remove the journal"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_journal_is_a_plain_run() {
    let session = clean_session("nojournal");
    let report = run_resumable(&session, true);
    assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
    assert_eq!(report.results.len(), 8);
    let stats = session.stats();
    assert_eq!(stats.resumed, 0, "{stats:?}");
    assert_eq!(stats.replayed, 0, "{stats:?}");
}

#[test]
fn quarantined_sweep_keeps_journal_and_replays_identical_errors() {
    // A budget every point blows: the whole sweep quarantines, and the
    // journal records each unit's error.
    let dir = temp_dir("quar");
    let broke = clean_session("quar-unused")
        .with_store_dir(&dir)
        .with_budget(ExecBudget::new(100));
    let first = run_resumable(&broke, false);
    assert!(first.results.is_empty());
    assert_eq!(first.quarantined.len(), 8, "{:?}", first.quarantined);
    let sweep = test_sweep_key();
    assert!(
        journal_path(&dir, &sweep).exists(),
        "a quarantined sweep must keep its journal"
    );
    let replay = JournalReplay::read(&journal_path(&dir, &sweep), &sweep).unwrap();
    assert_eq!(replay.quarantined.len(), 8);
    assert_eq!(replay.dropped, 0);

    // Resume with a healthy session: the journaled errors replay verbatim
    // instead of the (now possible) evaluations re-running.
    let healed = clean_session("quar-heal-unused").with_store_dir(&dir);
    let resumed = run_resumable(&healed, true);
    assert_eq!(resumed, first, "replayed errors must match bit-for-bit");
    let stats = healed.stats();
    assert_eq!(stats.resumed, 8, "{stats:?}");
    assert_eq!(stats.artifacts.recomputes, 0, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_composes_with_streaming_traces() {
    let reference = run_resumable(&clean_session("stream-ref").with_streaming(true), false);
    assert!(
        reference.quarantined.is_empty(),
        "{:?}",
        reference.quarantined
    );

    let dir = temp_dir("stream");
    seed_partial_journal(&dir, &reference, 3);
    let session = clean_session("stream-unused")
        .with_store_dir(&dir)
        .with_streaming(true);
    let resumed = run_resumable(&session, true);
    assert_eq!(resumed, reference);
    assert_eq!(session.stats().resumed, 3, "{:?}", session.stats());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_composes_with_site_seeded_faults() {
    // Only the site-seeded fault kinds are deterministic across processes
    // and runs (stage-panic is counter-based, so it is excluded): a
    // degraded store (failing I/O, corrupt loads) must not break resume.
    let reference = run_resumable(&clean_session("faults-ref"), false);
    assert!(
        reference.quarantined.is_empty(),
        "{:?}",
        reference.quarantined
    );

    for (tag, plan) in [
        ("store-io", FaultPlan::seeded(11).with_store_io(1.0)),
        (
            "artifact-corrupt",
            FaultPlan::seeded(12).with_artifact_corrupt(1.0),
        ),
    ] {
        let dir = temp_dir(tag);
        seed_partial_journal(&dir, &reference, 5);
        let session = clean_session("faults-unused")
            .with_store_dir(&dir)
            .with_faults(Some(Arc::new(plan)));
        let resumed = run_resumable(&session, true);
        assert_eq!(resumed, reference, "{tag}: resumed under faults");
        assert_eq!(session.stats().resumed, 5, "{tag}: {:?}", session.stats());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn foreign_journal_is_ignored_not_replayed() {
    // A journal for a *different* sweep (other tracer length) under the
    // same store must never leak units into this sweep.
    let dir = temp_dir("foreign");
    std::fs::create_dir_all(&dir).unwrap();
    let (cores, subsets) = small_grid();
    let workloads: Vec<(String, u32)> = micro_set()
        .iter()
        .map(|w| (w.name.to_string(), w.scaled_n()))
        .collect();
    let other_key = sweep_key(
        &workloads,
        &TracerConfig {
            max_insts: 5_000,
            ..TracerConfig::default()
        },
        &cores,
        &subsets,
    );
    let (journal, _) = SweepJournal::open(&dir, &other_key, false).unwrap();
    drop(journal);
    assert_ne!(other_key.hex(), test_sweep_key().hex());
    // Plant the foreign journal at *this* sweep's path: the reader must
    // reject it on the header's sweep key, not the file name.
    std::fs::rename(
        journal_path(&dir, &other_key),
        journal_path(&dir, &test_sweep_key()),
    )
    .unwrap();

    let session = clean_session("foreign-unused").with_store_dir(&dir);
    let report = run_resumable(&session, true);
    assert!(report.quarantined.is_empty(), "{:?}", report.quarantined);
    assert_eq!(session.stats().resumed, 0, "{:?}", session.stats());
    let _ = std::fs::remove_dir_all(&dir);
}
