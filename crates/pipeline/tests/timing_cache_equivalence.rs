//! Equivalence proof for the timing-reuse layer: shape-keyed timing
//! memoization (in-process, cross-variant) and persistent timing
//! artifacts (cross-process, via the content-addressed store) must be
//! pure caches — every sweep they accelerate must be **byte-identical**
//! to the cold composed run and to the `PRISM_NO_COMPOSE` direct run,
//! and a corrupt timing artifact must degrade to recompute, never to an
//! error or a changed result.

use prism_pipeline::{FaultPlan, Session, SweepReport};
use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::{CoreConfig, ExecBudget};
use prism_workloads::Workload;

fn quick_tracer() -> TracerConfig {
    TracerConfig {
        max_insts: 4_000,
        ..TracerConfig::default()
    }
}

/// A session insulated from ambient env knobs, writing artifacts under
/// the given per-test store directory (shared across sessions of one
/// test to model warm restarts; pass a fresh tag for a cold store).
fn session_at(dir: &std::path::Path, composition: bool) -> Session {
    Session::new()
        .with_tracer(quick_tracer())
        .with_jobs(2)
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None)
        .with_streaming(false)
        .with_composition(composition)
        .with_timing_cache(true)
        .with_store_cap(None)
        .with_store_dir(dir)
}

/// A fresh (removed) store directory unique to this test.
fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("prism-timing-equiv-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn registry() -> Vec<&'static Workload> {
    prism_workloads::ALL.iter().collect()
}

/// A core that shares IO2's timing shape but not its display name: the
/// design-point key differs (name is priced identity), the µDG shape
/// hash does not.
fn io2_twin() -> CoreConfig {
    let mut core = CoreConfig::io2();
    core.name = "IO2-twin".into();
    core
}

fn small_subsets() -> Vec<Vec<BsaKind>> {
    vec![
        vec![],
        vec![BsaKind::Simd],
        vec![BsaKind::NsDf, BsaKind::TraceP],
        BsaKind::ALL.to_vec(),
    ]
}

fn fingerprint(report: &SweepReport) -> String {
    format!("{report:?}")
}

#[test]
fn warm_store_sweep_is_byte_identical_and_walk_free() {
    let workloads = registry();
    let cores = vec![CoreConfig::io2(), CoreConfig::ooo4()];
    let subsets = small_subsets();

    let warm_dir = fresh_dir("warm");
    let cold = session_at(&warm_dir, true).evaluate_designs(&workloads, &cores, &subsets);
    assert!(cold.quarantined.is_empty(), "healthy sweep expected");

    // A fresh session over the same store models a warm process restart:
    // byte-identical output, zero trace walks.
    let warm_session = session_at(&warm_dir, true);
    let warm = warm_session.evaluate_designs(&workloads, &cores, &subsets);
    let stats = warm_session.stats();
    assert_eq!(fingerprint(&cold), fingerprint(&warm));
    assert_eq!(stats.trace_walks, 0, "warm run must not walk: {stats:?}");

    // And the cold direct (PRISM_NO_COMPOSE) run agrees byte-for-byte.
    let direct =
        session_at(&fresh_dir("warm-direct"), false).evaluate_designs(&workloads, &cores, &subsets);
    assert_eq!(fingerprint(&cold), fingerprint(&direct));
}

#[test]
fn shape_sharing_core_reuses_walks_in_process() {
    let workloads = registry();
    let subsets = small_subsets();

    // Walk count for IO2 alone, with the store disabled as a source
    // (cold dir) so every walk is really performed.
    let solo_session = session_at(&fresh_dir("solo"), true);
    let _ = solo_session.evaluate_designs(&workloads, &[CoreConfig::io2()], &subsets);
    let solo_walks = solo_session.stats().trace_walks;
    assert!(solo_walks > 0, "cold run must walk");

    // IO2 plus its renamed twin in one session: the twin's timing comes
    // from the shape-keyed memo, so the walk count must not grow.
    let pair_session = session_at(&fresh_dir("pair"), true);
    let pair =
        pair_session.evaluate_designs(&workloads, &[CoreConfig::io2(), io2_twin()], &subsets);
    let stats = pair_session.stats();
    assert_eq!(
        stats.trace_walks, solo_walks,
        "twin core must add zero walks: {stats:?}"
    );
    assert!(stats.shape_memo_hits > 0, "memo must be hit: {stats:?}");

    // The twin's results are byte-identical to evaluating it cold.
    let twin_in_pair: Vec<String> = pair
        .results
        .iter()
        .filter(|r| r.label.contains("IO2-twin"))
        .map(|r| format!("{r:?}"))
        .collect();
    let twin_cold = session_at(&fresh_dir("twin-cold"), false).evaluate_designs(
        &workloads,
        &[io2_twin()],
        &subsets,
    );
    let twin_ref: Vec<String> = twin_cold.results.iter().map(|r| format!("{r:?}")).collect();
    assert!(!twin_in_pair.is_empty());
    assert_eq!(twin_in_pair, twin_ref);
}

#[test]
fn timing_artifacts_warm_a_fresh_process_across_core_variants() {
    let workloads = registry();
    let subsets = small_subsets();
    let dir = fresh_dir("across");

    // Cold run settles IO2's timing artifacts into the store.
    let _ = session_at(&dir, true).evaluate_designs(&workloads, &[CoreConfig::io2()], &subsets);

    // A fresh session evaluates only the renamed twin: its design-point
    // results are not in the store (the name differs), but its timing
    // shape is — so it prices loaded summaries instead of walking.
    let warm_session = session_at(&dir, true);
    let warm = warm_session.evaluate_designs(&workloads, &[io2_twin()], &subsets);
    let stats = warm_session.stats();
    assert_eq!(stats.trace_walks, 0, "twin must not walk: {stats:?}");
    assert!(
        stats.timing_artifacts_loaded > 0,
        "timing artifacts must load: {stats:?}"
    );

    let reference = session_at(&fresh_dir("across-ref"), false).evaluate_designs(
        &workloads,
        &[io2_twin()],
        &subsets,
    );
    assert_eq!(fingerprint(&warm), fingerprint(&reference));
}

#[test]
fn corrupt_timing_artifacts_degrade_to_recompute() {
    let workloads = registry();
    let subsets = small_subsets();
    let dir = fresh_dir("corrupt");

    let _ = session_at(&dir, true).evaluate_designs(&workloads, &[CoreConfig::io2()], &subsets);

    // Corrupt every stored artifact in place (timing summaries included).
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).expect("store dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "json") {
            std::fs::write(&path, b"{ not an envelope").expect("overwrite artifact");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "the cold run must have stored artifacts");

    // The warm twin run now finds only garbage: it must silently fall
    // back to walking and still produce byte-identical results.
    let warm_session = session_at(&dir, true);
    let warm = warm_session.evaluate_designs(&workloads, &[io2_twin()], &subsets);
    let stats = warm_session.stats();
    assert!(warm.quarantined.is_empty(), "corruption must not error");
    assert!(stats.trace_walks > 0, "must recompute: {stats:?}");
    assert_eq!(stats.timing_artifacts_loaded, 0, "{stats:?}");

    let reference = session_at(&fresh_dir("corrupt-ref"), false).evaluate_designs(
        &workloads,
        &[io2_twin()],
        &subsets,
    );
    assert_eq!(fingerprint(&warm), fingerprint(&reference));
}

#[test]
fn timing_cache_opt_out_is_byte_identical() {
    // As if via PRISM_NO_TIMING_CACHE=1: the layer off entirely.
    let workloads = registry();
    let subsets = small_subsets();
    let cores = vec![CoreConfig::io2(), io2_twin()];

    let off_session = session_at(&fresh_dir("optout"), true).with_timing_cache(false);
    let off = off_session.evaluate_designs(&workloads, &cores, &subsets);
    let stats = off_session.stats();
    assert_eq!(stats.timing_artifacts_loaded, 0, "{stats:?}");

    let on =
        session_at(&fresh_dir("optout-on"), true).evaluate_designs(&workloads, &cores, &subsets);
    assert_eq!(fingerprint(&off), fingerprint(&on));
}

#[test]
fn warm_streamed_faulted_sweep_is_byte_identical_composed_vs_direct() {
    // As if via PRISM_STREAM=1 + site-seeded PRISM_FAULTS: injected
    // store I/O failures and artifact corruption hit the timing cache
    // too, and must only ever degrade it to recompute.
    let plan = || {
        std::sync::Arc::new(
            FaultPlan::parse("store-io:0.05,artifact-corrupt:0.10@seed=11").expect("valid spec"),
        )
    };
    let workloads = registry();
    let cores = vec![CoreConfig::io2(), io2_twin()];
    let subsets = small_subsets();

    let composed = session_at(&fresh_dir("faults"), true)
        .with_streaming(true)
        .with_faults(Some(plan()))
        .evaluate_designs(&workloads, &cores, &subsets);
    let direct = session_at(&fresh_dir("faults-direct"), false)
        .with_streaming(true)
        .with_faults(Some(plan()))
        .evaluate_designs(&workloads, &cores, &subsets);
    assert!(composed.quarantined.is_empty(), "these faults only degrade");
    assert_eq!(fingerprint(&composed), fingerprint(&direct));
}
