//! Property-style fuzzing: random valid programs pushed through the whole
//! trace → µDG → evaluation pipeline. The invariant under test is the
//! failure model itself — every outcome is a typed error or a success,
//! never an unhandled panic, and budgets are always respected.

use std::panic::{catch_unwind, AssertUnwindSafe};

use prism_isa::{Program, ProgramBuilder, Reg};
use prism_pipeline::Session;
use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::{try_simulate_trace, CoreConfig, ExecBudget};

/// SplitMix64: small, seedable PRNG (no dependencies).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// Builds a random but always-valid, always-terminating program: a counted
/// outer loop over a randomized body of ALU ops, strided memory traffic,
/// an optional data-dependent skip, and an optional counted inner loop.
fn random_program(seed: u64) -> Program {
    let mut g = Gen::new(seed);
    let mut b = ProgramBuilder::new(format!("fuzz{seed}"));
    let regs: Vec<Reg> = (1..=6).map(Reg::int).collect();
    let ptr = Reg::int(7);
    let ctr = Reg::int(8);
    for (i, &r) in regs.iter().enumerate() {
        b.init_reg(r, g.range(1, 1000) as i64 + i as i64);
    }
    b.init_reg(ptr, 0x10000);
    let iters = g.range(20, 200) as i64;
    b.init_reg(ctr, iters);
    let head = b.bind_new_label();

    let body_len = g.range(3, 12);
    for _ in 0..body_len {
        let d = regs[g.range(0, regs.len() as u64) as usize];
        let a = regs[g.range(0, regs.len() as u64) as usize];
        let c = regs[g.range(0, regs.len() as u64) as usize];
        match g.range(0, 8) {
            0 => {
                b.add(d, a, c);
            }
            1 => {
                b.mul(d, a, c);
            }
            2 => {
                b.xor(d, a, c);
            }
            3 => {
                b.addi(d, a, g.range(0, 64) as i64 - 32);
            }
            4 => {
                b.andi(d, a, 0xFF);
            }
            5 => {
                b.shri(d, a, g.range(1, 4) as i64);
            }
            6 => {
                b.ld(d, ptr, (g.range(0, 8) * 8) as i64);
            }
            _ => {
                b.st(a, ptr, (g.range(0, 8) * 8) as i64);
            }
        }
    }
    if g.range(0, 2) == 0 {
        // Data-dependent skip over one instruction.
        let skip = b.label();
        let t = regs[0];
        b.andi(t, regs[1], 1);
        b.beq_label(t, Reg::ZERO, skip);
        b.addi(regs[2], regs[2], 3);
        b.bind(skip);
    }
    b.addi(ptr, ptr, 8);
    b.addi(ctr, ctr, -1);
    b.bne_label(ctr, Reg::ZERO, head);
    b.halt();
    b.build().expect("generator only emits valid programs")
}

#[test]
fn random_programs_never_panic_and_respect_budgets() {
    let tracer = TracerConfig {
        max_insts: 50_000,
        ..TracerConfig::default()
    };
    for seed in 0..40 {
        let program = random_program(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let trace = prism_sim::trace_with(&program, &tracer)?;
            // Roomy budget: must succeed and model every instruction.
            let roomy = ExecBudget::for_trace_insts(trace.len() as u64, 1);
            let run = try_simulate_trace(&trace, &CoreConfig::ooo2(), &roomy)
                .expect("a budget sized for the trace cannot trip");
            assert_eq!(run.insts, trace.len() as u64);
            // Starved budget: must trip with the typed error, not panic.
            let starved = ExecBudget::new(7);
            let err = try_simulate_trace(&trace, &CoreConfig::ooo2(), &starved)
                .expect_err("a 7-node budget cannot cover any trace");
            assert!(err.used > err.max_nodes);
            Ok::<u64, prism_sim::TraceError>(run.cycles)
        }));
        match outcome {
            Ok(Ok(cycles)) => assert!(cycles > 0, "seed {seed}: zero-cycle run"),
            Ok(Err(trace_err)) => {
                // A typed trace error is an acceptable outcome; an
                // unbounded or malformed trace must not get this far.
                eprintln!("seed {seed}: typed trace error: {trace_err}");
            }
            Err(_) => panic!("seed {seed}: pipeline panicked instead of returning an error"),
        }
    }
}

#[test]
fn random_programs_survive_full_pipeline_evaluation() {
    // Heavier per seed (IR analysis + oracle tables + evaluation), so
    // fewer seeds: the invariant is typed-error-or-success, no panics.
    let session = Session::new()
        .with_tracer(TracerConfig {
            max_insts: 20_000,
            ..TracerConfig::default()
        })
        .with_jobs(1)
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None);
    let cores = [CoreConfig::ooo2()];
    let subsets = [vec![], BsaKind::ALL.to_vec()];
    for seed in 0..8 {
        let program = random_program(1000 + seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let prepared = session.prepare_program(&program)?;
            let report = session.explore_grid(&[prepared], &cores, &subsets);
            Ok::<_, prism_pipeline::PipelineError>(report)
        }));
        match outcome {
            Ok(Ok(report)) => {
                assert_eq!(
                    report.results.len() + report.quarantined.len(),
                    cores.len() * subsets.len(),
                    "seed {seed}: unaccounted grid points"
                );
            }
            Ok(Err(e)) => eprintln!("seed {seed}: typed pipeline error: {e}"),
            Err(_) => panic!("seed {seed}: evaluation panicked instead of returning an error"),
        }
    }
}
