//! Equivalence proof for the performance layer: a full-registry sweep
//! must be **byte-identical** with the trace-walk timing memo on
//! (composed, the default) and off (`PRISM_NO_COMPOSE` / direct) — under
//! plain runs, under fault injection, and under streaming mode. The memo
//! re-prices a shared `ExoTiming` per BSA subset instead of re-walking
//! the trace, and pricing preserves float-operation order, so not even a
//! ULP may differ.

use prism_pipeline::{FaultPlan, Session, SweepReport};
use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::{CoreConfig, ExecBudget};
use prism_workloads::Workload;

fn quick_tracer() -> TracerConfig {
    TracerConfig {
        max_insts: 4_000,
        ..TracerConfig::default()
    }
}

/// A session insulated from ambient env knobs, composed or direct,
/// writing artifacts under a fresh per-test store.
fn session(tag: &str, composition: bool) -> Session {
    let dir = std::env::temp_dir().join(format!(
        "prism-perf-equiv-{}-{tag}-{composition}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Session::new()
        .with_tracer(quick_tracer())
        .with_jobs(2)
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None)
        .with_streaming(false)
        .with_composition(composition)
        .with_store_dir(dir)
}

/// The full registry (every workload, quick-traced).
fn full_registry() -> Vec<&'static Workload> {
    prism_workloads::ALL.iter().collect()
}

/// The full 64-point grid.
fn grid() -> (Vec<CoreConfig>, Vec<Vec<BsaKind>>) {
    (prism_exocore::all_cores(), prism_exocore::all_bsa_subsets())
}

/// A reduced grid for the fault/streaming variants (the orthogonality
/// they exercise does not depend on grid size, and this test binary
/// must stay fast on single-core CI hosts).
fn small_grid() -> (Vec<CoreConfig>, Vec<Vec<BsaKind>>) {
    (
        vec![CoreConfig::io2(), CoreConfig::ooo4()],
        vec![
            vec![],
            vec![BsaKind::Simd],
            vec![BsaKind::NsDf, BsaKind::TraceP],
            BsaKind::ALL.to_vec(),
        ],
    )
}

/// Renders a report to the byte-exact form we compare: the Debug
/// formatting covers every result field (cycles, energy floats, unit
/// attributions) and the quarantine labels/errors.
fn fingerprint(report: &SweepReport) -> String {
    format!("{report:?}")
}

#[test]
fn full_registry_sweep_is_byte_identical_composed_vs_direct() {
    let workloads = full_registry();
    let (cores, subsets) = grid();
    let composed = session("plain", true).evaluate_designs(&workloads, &cores, &subsets);
    let direct = session("plain", false).evaluate_designs(&workloads, &cores, &subsets);
    assert!(composed.quarantined.is_empty(), "healthy sweep expected");
    assert_eq!(fingerprint(&composed), fingerprint(&direct));
}

#[test]
fn faulted_sweep_is_byte_identical_composed_vs_direct() {
    // Deterministic fault plan (as if via PRISM_FAULTS): evaluate-stage
    // panics and trace truncation quarantine the same units either way.
    let plan = || {
        std::sync::Arc::new(
            FaultPlan::parse("trace-truncate:0.05,stage-panic:evaluate:2@seed=7")
                .expect("valid spec"),
        )
    };
    let workloads = full_registry();
    let (cores, subsets) = small_grid();
    let composed = session("faults", true)
        .with_faults(Some(plan()))
        .evaluate_designs(&workloads, &cores, &subsets);
    let direct = session("faults", false)
        .with_faults(Some(plan()))
        .evaluate_designs(&workloads, &cores, &subsets);
    assert!(
        !composed.quarantined.is_empty(),
        "fault plan must actually fire for this test to mean anything"
    );
    assert_eq!(fingerprint(&composed), fingerprint(&direct));
}

#[test]
fn streaming_sweep_is_byte_identical_composed_vs_direct() {
    // As if via PRISM_STREAM=1: chunked trace persistence must not
    // disturb the composed path (and vice versa).
    let workloads = full_registry();
    let (cores, subsets) = small_grid();
    let composed = session("stream", true)
        .with_streaming(true)
        .evaluate_designs(&workloads, &cores, &subsets);
    let direct = session("stream", false)
        .with_streaming(true)
        .evaluate_designs(&workloads, &cores, &subsets);
    assert!(composed.quarantined.is_empty(), "healthy sweep expected");
    assert_eq!(fingerprint(&composed), fingerprint(&direct));
}
