//! End-to-end pipeline tests: artifact-cache round-trips, content-key
//! invalidation, and the determinism guarantee (`--jobs 1` ≡ `--jobs N`).

use prism_pipeline::{Json, Session};
use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::{CoreConfig, ExecBudget};
use prism_workloads::{Workload, MICRO};

fn quick_tracer() -> TracerConfig {
    TracerConfig {
        max_insts: 20_000,
        ..TracerConfig::default()
    }
}

/// A session insulated from ambient env knobs (`PRISM_FAULTS`,
/// `PRISM_MAX_NODES`, `PRISM_DIVERGENCE`), so these determinism and cache
/// tests hold even under the CI fault-injection matrix.
fn clean_session() -> Session {
    Session::new()
        .with_tracer(quick_tracer())
        .with_jobs(1)
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None)
        .with_timing_cache(true)
        .with_store_cap(None)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("prism-pipeline-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn micro_set() -> Vec<&'static Workload> {
    MICRO.iter().take(3).collect()
}

fn small_grid() -> (Vec<CoreConfig>, Vec<Vec<BsaKind>>) {
    (
        vec![CoreConfig::io2(), CoreConfig::ooo2()],
        vec![
            vec![],
            vec![BsaKind::Simd],
            vec![BsaKind::NsDf],
            BsaKind::ALL.to_vec(),
        ],
    )
}

#[test]
fn artifact_cache_roundtrip_hits_on_second_run() {
    let dir = temp_dir("roundtrip");
    let (cores, subsets) = small_grid();
    let workloads = micro_set();

    // Cold run: every point is a miss, then gets stored.
    let cold = clean_session().with_store_dir(&dir);
    let first = cold
        .explore_grid_cached(&workloads, &cores, &subsets)
        .expect("cold run");
    let s = cold.stats();
    assert_eq!(s.artifacts.hits, 0);
    // Every design point misses once, and each distinct timing shape
    // attempts (and misses) a timing-artifact load before its walk.
    assert_eq!(
        s.artifacts.misses,
        (cores.len() * subsets.len()) as u64 + s.trace_walks,
        "{s:?}"
    );

    // Warm run in a fresh session: every point loads from disk — no
    // tracing happens at all (the workload memo stays empty).
    let warm = clean_session().with_store_dir(&dir);
    let second = warm
        .explore_grid_cached(&workloads, &cores, &subsets)
        .expect("warm run");
    let s = warm.stats();
    assert_eq!(s.artifacts.misses, 0, "warm run must not miss");
    assert_eq!(s.artifacts.hits, (cores.len() * subsets.len()) as u64);
    assert_eq!(s.memo_misses, 0, "warm run must not prepare any workload");

    // Loaded results are bit-identical to computed ones.
    assert_eq!(first, second);
}

#[test]
fn tracer_config_change_invalidates_artifacts() {
    let dir = temp_dir("tracer-invalidation");
    let (cores, subsets) = small_grid();
    let workloads = micro_set();

    let a = clean_session().with_store_dir(&dir);
    a.explore_grid_cached(&workloads, &cores, &subsets)
        .expect("first run");

    // Same store, different tracer: every key changes, so nothing hits.
    let other = TracerConfig {
        max_insts: 10_000,
        ..quick_tracer()
    };
    let b = clean_session().with_tracer(other).with_store_dir(&dir);
    b.explore_grid_cached(&workloads, &cores, &subsets)
        .expect("second run");
    let s = b.stats();
    assert_eq!(
        s.artifacts.hits, 0,
        "changed tracer config must miss every artifact"
    );
    // Changed trace identity changes timing shapes too, so each walk's
    // load-before-walk also misses.
    assert_eq!(
        s.artifacts.misses,
        (cores.len() * subsets.len()) as u64 + s.trace_walks,
        "{s:?}"
    );
}

#[test]
fn corrupt_artifact_recomputes_instead_of_failing() {
    let dir = temp_dir("corrupt");
    let (cores, subsets) = small_grid();
    let workloads = micro_set();

    let a = clean_session().with_store_dir(&dir);
    let first = a
        .explore_grid_cached(&workloads, &cores, &subsets)
        .expect("first run");

    // Truncate one *design* artifact and swap valid JSON of the wrong
    // shape into another; both must be treated as misses and recomputed.
    // (Timing artifacts — payloads carrying `timeline_len` — share the
    // store; skip them so exactly two design points are hit.)
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            let text = std::fs::read_to_string(p).expect("read artifact");
            let doc = Json::parse(&text).expect("parse artifact");
            doc.get("payload")
                .map(|pl| pl.get("timeline_len").is_none())
                .unwrap_or(true)
        })
        .collect();
    files.sort();
    std::fs::write(&files[0], "{ truncated").expect("corrupt file");
    std::fs::write(&files[1], Json::Obj(vec![]).to_string()).expect("wrong shape");

    let b = clean_session().with_store_dir(&dir);
    let second = b
        .explore_grid_cached(&workloads, &cores, &subsets)
        .expect("recovery run");
    assert_eq!(first, second);
    let s = b.stats();
    assert_eq!(s.artifacts.misses, 2, "{s:?}");
    // The 6 intact design points hit, and the 2 recomputed points reuse
    // the first run's (uncorrupted) timing artifacts instead of walking.
    assert_eq!(
        s.artifacts.hits,
        (cores.len() * subsets.len()) as u64 - 2 + s.timing_artifacts_loaded,
        "{s:?}"
    );
    assert_eq!(s.trace_walks, 0, "timing artifacts must cover the walks");
}

#[test]
fn parallel_and_sequential_runs_are_bit_identical() {
    let (cores, subsets) = small_grid();
    let workloads = micro_set();

    let seq = clean_session();
    let data = seq.prepare_batch(&workloads).expect("prepare");
    let sequential = seq.explore_grid(&data, &cores, &subsets);

    for jobs in [2, 4] {
        let par = clean_session().with_jobs(jobs);
        let data = par.prepare_batch(&workloads).expect("prepare");
        let parallel = par.explore_grid(&data, &cores, &subsets);
        assert_eq!(
            sequential, parallel,
            "jobs={jobs} must produce bit-identical DesignResults to jobs=1"
        );
    }
}

#[test]
fn deleting_the_store_forces_a_clean_recompute() {
    let dir = temp_dir("cold");
    let (cores, subsets) = small_grid();
    let workloads = micro_set();

    let a = clean_session().with_store_dir(&dir);
    let first = a
        .explore_grid_cached(&workloads, &cores, &subsets)
        .expect("first run");

    // The supported way to force a cold run (PRISM_REFRESH was removed):
    // delete the store directory.
    std::fs::remove_dir_all(&dir).expect("remove store");
    let b = clean_session().with_store_dir(&dir);
    let second = b
        .explore_grid_cached(&workloads, &cores, &subsets)
        .expect("cold run");
    assert_eq!(first, second);
    assert_eq!(b.stats().artifacts.hits, 0, "cold run cannot hit the store");
    assert!(
        b.stats().memo_misses > 0,
        "cold run must actually recompute"
    );
}
