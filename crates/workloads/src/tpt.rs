//! Intel TPT (throughput) kernel analogues \[17\]: highly regular,
//! data-parallel codes — the workloads DySER's evaluation targeted.

use prism_isa::{Program, ProgramBuilder, Reg};

use crate::helpers::{init_f64_array, init_i64_array, init_sorted_array, Alloc};

/// 1-D convolution with a 5-tap filter: `out[i] = Σ_k in[i+k]·w[k]`.
///
/// Fully unrolled taps make a memory/compute-separable, vectorizable body.
#[must_use]
pub fn conv(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("conv");
    let input = a.words((n + 8) as u64);
    let output = a.words(n as u64);
    init_f64_array(&mut b, input, (n + 8) as usize, -1.0, 1.0, 0xC0);

    let (pin, pout, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let acc = Reg::fp(0);
    let x = Reg::fp(1);
    let t = Reg::fp(2);
    let (w0, w1, w2, w3, w4) = (
        Reg::fp(10),
        Reg::fp(11),
        Reg::fp(12),
        Reg::fp(13),
        Reg::fp(14),
    );
    b.init_reg(pin, input as i64);
    b.init_reg(pout, output as i64);
    b.init_reg(i, n);
    b.fli(w0, 0.1);
    b.fli(w1, 0.25);
    b.fli(w2, 0.3);
    b.fli(w3, 0.25);
    b.fli(w4, 0.1);
    let head = b.bind_new_label();
    b.fld(x, pin, 0);
    b.fmul(acc, x, w0);
    b.fld(x, pin, 8);
    b.fmul(t, x, w1);
    b.fadd(acc, acc, t);
    b.fld(x, pin, 16);
    b.fmul(t, x, w2);
    b.fadd(acc, acc, t);
    b.fld(x, pin, 24);
    b.fmul(t, x, w3);
    b.fadd(acc, acc, t);
    b.fld(x, pin, 32);
    b.fmul(t, x, w4);
    b.fadd(acc, acc, t);
    b.fst(acc, pout, 0);
    b.addi(pin, pin, 8);
    b.addi(pout, pout, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("conv")
}

/// Merge of two sorted runs: per-element data-dependent branch picks the
/// smaller head — control is critical and varies.
#[must_use]
pub fn merge(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("merge");
    let left = a.words(n as u64 + 1);
    let right = a.words(n as u64 + 1);
    let out = a.words(2 * n as u64);
    init_sorted_array(&mut b, left, n as usize, 9, 0x11);
    init_sorted_array(&mut b, right, n as usize, 9, 0x22);
    // Sentinels so neither run underflows during the merge of 2n-2 items.
    b.init_words(left + (n as u64) * 8, &[i64::MAX / 2]);
    b.init_words(right + (n as u64) * 8, &[i64::MAX / 2]);

    let (pl, pr, po, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let (vl, vr) = (Reg::int(5), Reg::int(6));
    b.init_reg(pl, left as i64);
    b.init_reg(pr, right as i64);
    b.init_reg(po, out as i64);
    b.init_reg(i, 2 * n - 2);
    let head = b.bind_new_label();
    let take_right = b.label();
    let cont = b.label();
    b.ld(vl, pl, 0);
    b.ld(vr, pr, 0);
    b.bge_label(vl, vr, take_right);
    b.st(vl, po, 0);
    b.addi(pl, pl, 8);
    b.jmp_label(cont);
    b.bind(take_right);
    b.st(vr, po, 0);
    b.addi(pr, pr, 8);
    b.bind(cont);
    b.addi(po, po, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("merge")
}

/// N-body force accumulation: for each body, sum pairwise inverse-square
/// contributions over all others (outer×inner nest, FP-heavy).
#[must_use]
pub fn nbody(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("nbody");
    let pos = a.words(n as u64);
    let force = a.words(n as u64);
    init_f64_array(&mut b, pos, n as usize, -10.0, 10.0, 0x33);

    let (ppos, pfor, i, j, pj) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
    );
    let (xi, xj, d, d2, inv, facc) = (
        Reg::fp(0),
        Reg::fp(1),
        Reg::fp(2),
        Reg::fp(3),
        Reg::fp(4),
        Reg::fp(5),
    );
    let eps = Reg::fp(10);
    b.init_reg(ppos, pos as i64);
    b.init_reg(pfor, force as i64);
    b.init_reg(i, n);
    b.fli(eps, 0.01);
    let outer = b.bind_new_label();
    b.fld(xi, ppos, 0);
    b.fli(facc, 0.0);
    b.li(j, n);
    b.li(pj, pos as i64);
    let inner = b.bind_new_label();
    b.fld(xj, pj, 0);
    b.fsub(d, xj, xi);
    b.fmul(d2, d, d);
    b.fadd(d2, d2, eps);
    b.fdiv(inv, d, d2);
    b.fadd(facc, facc, inv);
    b.addi(pj, pj, 8);
    b.addi(j, j, -1);
    b.bne_label(j, Reg::ZERO, inner);
    b.fst(facc, pfor, 0);
    b.addi(ppos, ppos, 8);
    b.addi(pfor, pfor, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, outer);
    b.halt();
    b.build().expect("nbody")
}

/// Radar correlation: complex multiply-accumulate over a pulse window
/// (interleaved re/im arrays, stride-16 access).
#[must_use]
pub fn radar(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("radar");
    let signal = a.words(2 * n as u64 + 32);
    let replica = a.words(32);
    let out = a.words(2 * n as u64);
    init_f64_array(&mut b, signal, 2 * n as usize + 32, -1.0, 1.0, 0x44);
    init_f64_array(&mut b, replica, 32, -1.0, 1.0, 0x45);

    let (ps, pr, po, i, k, pk, psk) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    let (sr, si, rr, ri, accr, acci, t1, t2) = (
        Reg::fp(0),
        Reg::fp(1),
        Reg::fp(2),
        Reg::fp(3),
        Reg::fp(4),
        Reg::fp(5),
        Reg::fp(6),
        Reg::fp(7),
    );
    b.init_reg(ps, signal as i64);
    b.init_reg(po, out as i64);
    b.init_reg(i, n);
    b.init_reg(pr, replica as i64);
    let outer = b.bind_new_label();
    b.fli(accr, 0.0);
    b.fli(acci, 0.0);
    b.li(k, 8);
    b.mov(pk, pr);
    b.mov(psk, ps);
    let inner = b.bind_new_label();
    b.fld(sr, psk, 0);
    b.fld(si, psk, 8);
    b.fld(rr, pk, 0);
    b.fld(ri, pk, 8);
    b.fmul(t1, sr, rr);
    b.fmul(t2, si, ri);
    b.fsub(t1, t1, t2);
    b.fadd(accr, accr, t1);
    b.fmul(t1, sr, ri);
    b.fmul(t2, si, rr);
    b.fadd(t1, t1, t2);
    b.fadd(acci, acci, t1);
    b.addi(psk, psk, 16);
    b.addi(pk, pk, 16);
    b.addi(k, k, -1);
    b.bne_label(k, Reg::ZERO, inner);
    b.fst(accr, po, 0);
    b.fst(acci, po, 8);
    b.addi(ps, ps, 16);
    b.addi(po, po, 16);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, outer);
    b.halt();
    b.build().expect("radar")
}

/// Repeated binary-search descents through an implicit tree (array-backed):
/// irregular, data-dependent loads and branches.
#[must_use]
pub fn treesearch(n: u32) -> Program {
    let keys = 4096u64; // tree size (power of two minus structure)
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("treesearch");
    let tree = a.words(keys);
    let queries = a.words(n as u64);
    init_sorted_array(&mut b, tree, keys as usize, 7, 0x55);
    init_i64_array(&mut b, queries, n as usize, 0, 7 * keys as i64, 0x56);

    let (ptree, pq, i, lo, hi, mid, pm, v, q, found) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
        Reg::int(10),
    );
    b.init_reg(ptree, tree as i64);
    b.init_reg(pq, queries as i64);
    b.init_reg(i, n);
    let outer = b.bind_new_label();
    b.ld(q, pq, 0);
    b.li(lo, 0);
    b.li(hi, keys as i64);
    let descend = b.bind_new_label();
    let go_right = b.label();
    let done = b.label();
    b.sub(mid, hi, lo);
    b.srai(mid, mid, 1);
    b.add(mid, mid, lo);
    b.shli(pm, mid, 3);
    b.add(pm, pm, ptree);
    b.ld(v, pm, 0);
    b.blt_label(v, q, go_right);
    b.mov(hi, mid);
    b.jmp_label(done);
    b.bind(go_right);
    b.addi(lo, mid, 1);
    b.bind(done);
    b.sub(v, hi, lo);
    b.slti(v, v, 2);
    b.beq_label(v, Reg::ZERO, descend);
    b.add(found, found, lo);
    b.addi(pq, pq, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, outer);
    b.halt();
    b.build().expect("treesearch")
}

/// Volume-rendering ray step: trilinear-ish interpolation with an opacity
/// early-out branch — data parallel with some control.
#[must_use]
pub fn vr(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("vr");
    let vol = a.words(n as u64 + 4);
    let img = a.words(n as u64);
    init_f64_array(&mut b, vol, n as usize + 4, 0.0, 1.0, 0x66);

    let (pv, pi, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let t = Reg::int(4);
    let (s0, s1, w, acc, thr) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3), Reg::fp(4));
    b.init_reg(pv, vol as i64);
    b.init_reg(pi, img as i64);
    b.init_reg(i, n);
    b.fli(w, 0.6);
    b.fli(thr, 0.8);
    let head = b.bind_new_label();
    let opaque = b.label();
    let store = b.label();
    b.fld(s0, pv, 0);
    b.fld(s1, pv, 8);
    b.fsub(s1, s1, s0);
    b.fmul(s1, s1, w);
    b.fadd(acc, s0, s1);
    b.flt(t, thr, acc);
    b.bne_label(t, Reg::ZERO, opaque);
    b.fmul(acc, acc, w);
    b.jmp_label(store);
    b.bind(opaque);
    b.fli(acc, 1.0);
    b.bind(store);
    b.fst(acc, pi, 0);
    b.addi(pv, pv, 8);
    b.addi(pi, pi, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("vr")
}
