//! Parboil benchmark analogues \[1\]: regular scientific kernels.

use prism_isa::{Program, ProgramBuilder, Reg};

use crate::helpers::{init_f64_array, init_i64_array, Alloc};

/// Cutoff Coulombic potential: distance computation with a cutoff branch
/// and an expensive `sqrt`/`div` on the pass path.
#[must_use]
pub fn cutcp(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("cutcp");
    let atoms = a.words(n as u64);
    let grid = a.words(n as u64);
    init_f64_array(&mut b, atoms, n as usize, 0.0, 8.0, 0x71);

    let (pa, pg, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let t = Reg::int(4);
    let (x, d2, inv, cut, pot) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3), Reg::fp(4));
    b.init_reg(pa, atoms as i64);
    b.init_reg(pg, grid as i64);
    b.init_reg(i, n);
    b.fli(cut, 16.0);
    let head = b.bind_new_label();
    let skip = b.label();
    let store = b.label();
    b.fld(x, pa, 0);
    b.fmul(d2, x, x);
    b.flt(t, cut, d2);
    b.bne_label(t, Reg::ZERO, skip); // beyond cutoff
    b.fsqrt(inv, d2);
    b.fli(pot, 1.0);
    b.fdiv(pot, pot, inv);
    b.jmp_label(store);
    b.bind(skip);
    b.fli(pot, 0.0);
    b.bind(store);
    b.fst(pot, pg, 0);
    b.addi(pa, pa, 8);
    b.addi(pg, pg, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("cutcp")
}

/// One radix-2 FFT butterfly pass over `n` complex points: strided loads,
/// twiddle multiply, separable compute.
#[must_use]
#[allow(clippy::approx_constant)] // 0.7071 is the kernel's literal twiddle
pub fn fft(n: u32) -> Program {
    let n = i64::from(n) & !1;
    let half = n / 2;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("fft");
    let re = a.words(n as u64);
    let im = a.words(n as u64);
    init_f64_array(&mut b, re, n as usize, -1.0, 1.0, 0x72);
    init_f64_array(&mut b, im, n as usize, -1.0, 1.0, 0x73);

    let (pre, pim, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (ar, ai, br, bi, wr, wi, t1, t2) = (
        Reg::fp(0),
        Reg::fp(1),
        Reg::fp(2),
        Reg::fp(3),
        Reg::fp(10),
        Reg::fp(11),
        Reg::fp(4),
        Reg::fp(5),
    );
    let off = half * 8;
    b.init_reg(pre, re as i64);
    b.init_reg(pim, im as i64);
    b.init_reg(i, half);
    b.fli(wr, 0.7071);
    b.fli(wi, -0.7071);
    let head = b.bind_new_label();
    b.fld(ar, pre, 0);
    b.fld(ai, pim, 0);
    b.fld(br, pre, off);
    b.fld(bi, pim, off);
    // t = w * b (complex)
    b.fmul(t1, br, wr);
    b.fmul(t2, bi, wi);
    b.fsub(t1, t1, t2);
    b.fmul(t2, br, wi);
    b.fmul(br, bi, wr);
    b.fadd(t2, t2, br);
    // a' = a + t ; b' = a - t
    b.fadd(br, ar, t1);
    b.fadd(bi, ai, t2);
    b.fst(br, pre, 0);
    b.fst(bi, pim, 0);
    b.fsub(br, ar, t1);
    b.fsub(bi, ai, t2);
    b.fst(br, pre, off);
    b.fst(bi, pim, off);
    b.addi(pre, pre, 8);
    b.addi(pim, pim, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("fft")
}

/// K-means assignment step: distance to 4 centroids, argmin with branches.
#[must_use]
pub fn kmeans(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("kmeans");
    let pts = a.words(n as u64);
    let assign = a.words(n as u64);
    init_f64_array(&mut b, pts, n as usize, 0.0, 100.0, 0x74);

    let (pp, pa, i, best) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let t = Reg::int(5);
    let (x, d, dbest, c) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3));
    b.init_reg(pp, pts as i64);
    b.init_reg(pa, assign as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    b.fld(x, pp, 0);
    b.li(best, 0);
    b.fli(dbest, 1.0e18);
    for (k, center) in [12.5, 37.5, 62.5, 87.5].into_iter().enumerate() {
        let skip = b.label();
        b.fli(c, center);
        b.fsub(d, x, c);
        b.fmul(d, d, d);
        b.fle(t, dbest, d);
        b.bne_label(t, Reg::ZERO, skip);
        b.fmov(dbest, d);
        b.li(best, k as i64);
        b.bind(skip);
    }
    b.st(best, pa, 0);
    b.addi(pp, pp, 8);
    b.addi(pa, pa, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("kmeans")
}

/// Lattice-Boltzmann style site update: long straight-line FP on streamed
/// data, very high ILP.
#[must_use]
pub fn lbm(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("lbm");
    let f0 = a.words(n as u64 + 2);
    let f1 = a.words(n as u64 + 2);
    let f2 = a.words(n as u64 + 2);
    let out = a.words(n as u64);
    init_f64_array(&mut b, f0, n as usize + 2, 0.1, 1.0, 0x75);
    init_f64_array(&mut b, f1, n as usize + 2, 0.1, 1.0, 0x76);
    init_f64_array(&mut b, f2, n as usize + 2, 0.1, 1.0, 0x77);

    let (p0, p1, p2, po, i) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
    );
    let (a0, a1, a2, rho, u, eq, om) = (
        Reg::fp(0),
        Reg::fp(1),
        Reg::fp(2),
        Reg::fp(3),
        Reg::fp(4),
        Reg::fp(5),
        Reg::fp(10),
    );
    b.init_reg(p0, f0 as i64);
    b.init_reg(p1, f1 as i64);
    b.init_reg(p2, f2 as i64);
    b.init_reg(po, out as i64);
    b.init_reg(i, n);
    b.fli(om, 1.85);
    let head = b.bind_new_label();
    b.fld(a0, p0, 0);
    b.fld(a1, p1, 8);
    b.fld(a2, p2, 16);
    b.fadd(rho, a0, a1);
    b.fadd(rho, rho, a2);
    b.fsub(u, a1, a2);
    b.fdiv(u, u, rho);
    b.fmul(eq, u, u);
    b.fmul(eq, eq, rho);
    b.fsub(eq, rho, eq);
    b.fsub(eq, eq, a0);
    b.fmul(eq, eq, om);
    b.fadd(a0, a0, eq);
    b.fst(a0, po, 0);
    b.addi(p0, p0, 8);
    b.addi(p1, p1, 8);
    b.addi(p2, p2, 8);
    b.addi(po, po, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("lbm")
}

/// Dense matrix multiply, `C += A·B`, classic ijk nest with an invariant-
/// hoisted `A[i][k]`.
#[must_use]
pub fn mm(n: u32) -> Program {
    let dim = i64::from(n.clamp(4, 64));
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("mm");
    let ma = a.words((dim * dim) as u64);
    let mb = a.words((dim * dim) as u64);
    let mc = a.words((dim * dim) as u64);
    init_f64_array(&mut b, ma, (dim * dim) as usize, -1.0, 1.0, 0x78);
    init_f64_array(&mut b, mb, (dim * dim) as usize, -1.0, 1.0, 0x79);

    let (i, k, j, pa, pb, pc, pbk, pci) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
    );
    let (aik, bkj, cij) = (Reg::fp(0), Reg::fp(1), Reg::fp(2));
    let row = dim * 8;
    b.init_reg(pa, ma as i64);
    b.init_reg(pb, mb as i64);
    b.init_reg(pc, mc as i64);
    b.init_reg(i, dim);
    let li = b.bind_new_label();
    b.li(k, dim);
    b.mov(pbk, pb);
    let lk = b.bind_new_label();
    b.fld(aik, pa, 0);
    b.li(j, dim);
    b.mov(pci, pc);
    let lj = b.bind_new_label();
    b.fld(bkj, pbk, 0);
    b.fld(cij, pci, 0);
    b.fmul(bkj, aik, bkj);
    b.fadd(cij, cij, bkj);
    b.fst(cij, pci, 0);
    b.addi(pbk, pbk, 8);
    b.addi(pci, pci, 8);
    b.addi(j, j, -1);
    b.bne_label(j, Reg::ZERO, lj);
    b.addi(pa, pa, 8);
    b.addi(k, k, -1);
    b.bne_label(k, Reg::ZERO, lk);
    b.addi(pc, pc, row);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, li);
    b.halt();
    b.build().expect("mm")
}

/// Needleman–Wunsch anti-diagonal DP: each cell depends on the previous
/// cell in the same row — a genuine loop-carried recurrence.
#[must_use]
pub fn needle(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("needle");
    let scores = a.words(n as u64 + 1);
    let sub = a.words(n as u64);
    init_i64_array(&mut b, scores, n as usize + 1, 0, 10, 0x7A);
    init_i64_array(&mut b, sub, n as usize, -3, 4, 0x7B);

    let (ps, pu, i, prev, cur, s, t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    b.init_reg(ps, scores as i64);
    b.init_reg(pu, sub as i64);
    b.init_reg(i, n);
    b.li(prev, 0);
    let head = b.bind_new_label();
    let keep = b.label();
    b.ld(cur, ps, 8); // up-neighbor
    b.ld(s, pu, 0);
    b.add(cur, cur, s);
    b.addi(t, prev, -1); // left-neighbor path (gap penalty)
    b.bge_label(cur, t, keep);
    b.mov(cur, t);
    b.bind(keep);
    b.st(cur, ps, 0);
    b.mov(prev, cur);
    b.addi(ps, ps, 8);
    b.addi(pu, pu, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("needle")
}

/// Neural-net forward layer: dot products over weights (nest of MACs).
#[must_use]
pub fn nnw(n: u32) -> Program {
    let hidden = 16i64;
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("nnw");
    let input = a.words(n as u64);
    let weights = a.words((hidden * 8) as u64);
    let out = a.words(hidden as u64 * (n as u64 / 8).max(1));
    init_f64_array(&mut b, input, n as usize, -1.0, 1.0, 0x7C);
    init_f64_array(&mut b, weights, (hidden * 8) as usize, -0.5, 0.5, 0x7D);

    let (pi, pw, po, i, h, k, pk, pwk) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
    );
    let (x, w, acc) = (Reg::fp(0), Reg::fp(1), Reg::fp(2));
    b.init_reg(pi, input as i64);
    b.init_reg(po, out as i64);
    b.init_reg(i, n / 8);
    let lwin = b.bind_new_label();
    b.li(h, hidden);
    b.li(pw, weights as i64);
    let lh = b.bind_new_label();
    b.fli(acc, 0.0);
    b.li(k, 8);
    b.mov(pk, pi);
    b.mov(pwk, pw);
    let lk = b.bind_new_label();
    b.fld(x, pk, 0);
    b.fld(w, pwk, 0);
    b.fmul(x, x, w);
    b.fadd(acc, acc, x);
    b.addi(pk, pk, 8);
    b.addi(pwk, pwk, 8);
    b.addi(k, k, -1);
    b.bne_label(k, Reg::ZERO, lk);
    b.fst(acc, po, 0);
    b.addi(po, po, 8);
    b.addi(pw, pw, 64);
    b.addi(h, h, -1);
    b.bne_label(h, Reg::ZERO, lh);
    b.addi(pi, pi, 64);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, lwin);
    b.halt();
    b.build().expect("nnw")
}

/// Sparse matrix–vector product (CSR-ish): indexed gathers from the vector.
#[must_use]
pub fn spmv(n: u32) -> Program {
    let n = i64::from(n);
    let nnz_per_row = 8i64;
    let cols = 2048i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("spmv");
    let vals = a.words((n * nnz_per_row) as u64);
    let idx = a.words((n * nnz_per_row) as u64);
    let vec = a.words(cols as u64);
    let out = a.words(n as u64);
    init_f64_array(&mut b, vals, (n * nnz_per_row) as usize, -1.0, 1.0, 0x7E);
    init_i64_array(&mut b, idx, (n * nnz_per_row) as usize, 0, cols, 0x7F);
    init_f64_array(&mut b, vec, cols as usize, -1.0, 1.0, 0x80);

    let (pv, px, pvec, po, i, k, col) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    let (v, x, acc) = (Reg::fp(0), Reg::fp(1), Reg::fp(2));
    b.init_reg(pv, vals as i64);
    b.init_reg(px, idx as i64);
    b.init_reg(pvec, vec as i64);
    b.init_reg(po, out as i64);
    b.init_reg(i, n);
    let row = b.bind_new_label();
    b.fli(acc, 0.0);
    b.li(k, nnz_per_row);
    let elem = b.bind_new_label();
    b.fld(v, pv, 0);
    b.ld(col, px, 0);
    b.shli(col, col, 3);
    b.add(col, col, pvec);
    b.fld(x, col, 0); // gather
    b.fmul(v, v, x);
    b.fadd(acc, acc, v);
    b.addi(pv, pv, 8);
    b.addi(px, px, 8);
    b.addi(k, k, -1);
    b.bne_label(k, Reg::ZERO, elem);
    b.fst(acc, po, 0);
    b.addi(po, po, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, row);
    b.halt();
    b.build().expect("spmv")
}

/// 1-D 3-point stencil: `out[i] = 0.25·a[i-1] + 0.5·a[i] + 0.25·a[i+1]`.
#[must_use]
pub fn stencil(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("stencil");
    let input = a.words(n as u64 + 2);
    let output = a.words(n as u64);
    init_f64_array(&mut b, input, n as usize + 2, 0.0, 4.0, 0x81);

    let (pi, po, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (l, c, r, acc, kq, kh) = (
        Reg::fp(0),
        Reg::fp(1),
        Reg::fp(2),
        Reg::fp(3),
        Reg::fp(10),
        Reg::fp(11),
    );
    b.init_reg(pi, input as i64);
    b.init_reg(po, output as i64);
    b.init_reg(i, n);
    b.fli(kq, 0.25);
    b.fli(kh, 0.5);
    let head = b.bind_new_label();
    b.fld(l, pi, 0);
    b.fld(c, pi, 8);
    b.fld(r, pi, 16);
    b.fmul(l, l, kq);
    b.fmul(c, c, kh);
    b.fmul(r, r, kq);
    b.fadd(acc, l, c);
    b.fadd(acc, acc, r);
    b.fst(acc, po, 0);
    b.addi(pi, pi, 8);
    b.addi(po, po, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("stencil")
}

/// Two-point angular correlation: histogram of binned distances —
/// data-dependent store addresses (irregular writes).
#[must_use]
pub fn tpacf(n: u32) -> Program {
    let n = i64::from(n);
    let bins = 32i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("tpacf");
    let angles = a.words(n as u64);
    let hist = a.words(bins as u64);
    init_f64_array(&mut b, angles, n as usize, 0.0, 32.0, 0x82);

    let (pa, ph, i, bin, cnt) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
    );
    let x = Reg::fp(0);
    b.init_reg(pa, angles as i64);
    b.init_reg(ph, hist as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    b.fld(x, pa, 0);
    b.cvt_f_i(bin, x);
    b.andi(bin, bin, bins - 1);
    b.shli(bin, bin, 3);
    b.add(bin, bin, ph);
    b.ld(cnt, bin, 0);
    b.addi(cnt, cnt, 1);
    b.st(cnt, bin, 0);
    b.addi(pa, pa, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("tpacf")
}

/// Sum of absolute differences over two pixel rows (video motion search).
#[must_use]
pub fn sad(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("sad");
    let cur = a.words(n as u64);
    let refr = a.words(n as u64);
    init_i64_array(&mut b, cur, n as usize, 0, 256, 0x83);
    init_i64_array(&mut b, refr, n as usize, 0, 256, 0x84);

    let (pc, pr, i, c, r, d, acc) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    b.init_reg(pc, cur as i64);
    b.init_reg(pr, refr as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    b.ld(c, pc, 0);
    b.ld(r, pr, 0);
    b.sub(d, c, r);
    b.srai(c, d, 63); // branch-free abs
    b.xor(d, d, c);
    b.sub(d, d, c);
    b.add(acc, acc, d);
    b.addi(pc, pc, 8);
    b.addi(pr, pr, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("sad")
}
