//! # prism-workloads
//!
//! Synthetic kernel analogues of the benchmark suites in *Analyzing
//! Behavior Specialized Acceleration* (ASPLOS 2016), Table 3 — authored in
//! the `exo` mini-ISA.
//!
//! The real suites (SPEC, Mediabench, Parboil, Intel TPT, TPC-H) are
//! proprietary or need a full C toolchain, so each benchmark is replaced
//! by a kernel reproducing the *behavioral signature* the paper's taxonomy
//! (Fig. 6) cares about: control criticality and consistency,
//! memory/compute separability, and potential ILP/DLP. Suite membership
//! and the regular / semi-regular / irregular grouping of the paper's
//! Fig. 11 are preserved.
//!
//! # Examples
//!
//! ```
//! let w = prism_workloads::by_name("mm").expect("registered");
//! let program = w.build_default();
//! let trace = prism_sim::trace(&program)?;
//! assert!(trace.stats.insts > 1_000);
//! # Ok::<(), prism_sim::TraceError>(())
//! ```

#![warn(missing_docs)]

pub mod helpers;
mod mediabench;
pub mod micro;
mod parboil;
mod specfp;
mod specint;
mod tpch;
mod tpt;

use prism_isa::Program;

/// Benchmark suite of a workload (the paper's Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Intel throughput kernels \[17\].
    Tpt,
    /// Parboil scientific workloads \[1\].
    Parboil,
    /// SPECfp floating-point applications.
    SpecFp,
    /// Mediabench image/video/audio codecs \[27\].
    Mediabench,
    /// TPC-H decision-support queries.
    Tpch,
    /// SPECint irregular integer applications.
    SpecInt,
}

/// Workload regularity class used by the paper's Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegularityClass {
    /// Highly regular (TPT, Parboil).
    Regular,
    /// Semi-regular (Mediabench, TPC-H, SPECfp).
    SemiRegular,
    /// Highly irregular (SPECint).
    Irregular,
}

impl Suite {
    /// The Fig. 11 regularity class of this suite.
    #[must_use]
    pub fn class(self) -> RegularityClass {
        match self {
            Suite::Tpt | Suite::Parboil => RegularityClass::Regular,
            Suite::SpecFp | Suite::Mediabench | Suite::Tpch => RegularityClass::SemiRegular,
            Suite::SpecInt => RegularityClass::Irregular,
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Suite::Tpt => "TPT",
            Suite::Parboil => "Parboil",
            Suite::SpecFp => "SPECfp",
            Suite::Mediabench => "Mediabench",
            Suite::Tpch => "TPCH",
            Suite::SpecInt => "SPECint",
        }
    }
}

/// A registered workload: a kernel builder plus its suite and default
/// problem size.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Benchmark name (matches the paper's Table 3 where applicable).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Kernel builder; the parameter scales the problem size.
    pub build: fn(u32) -> Program,
    /// Default problem size (tuned for ~20k-80k dynamic instructions).
    pub default_n: u32,
}

impl Workload {
    /// Builds the kernel at its default problem size.
    #[must_use]
    pub fn build_default(&self) -> Program {
        (self.build)(self.default_n)
    }

    /// The default problem size multiplied by [`scale`] (`PRISM_SCALE`).
    /// This is the size the pipeline actually prepares.
    #[must_use]
    pub fn scaled_n(&self) -> u32 {
        self.default_n.saturating_mul(scale())
    }

    /// The regularity class of the owning suite.
    #[must_use]
    pub fn class(&self) -> RegularityClass {
        self.suite.class()
    }
}

/// Environment knob: a problem-size multiplier applied to every
/// workload's `default_n` (see [`scale`]).
pub const SCALE_ENV: &str = "PRISM_SCALE";

/// The `PRISM_SCALE` problem-size multiplier (default 1): `PRISM_SCALE=16`
/// runs every kernel at 16× its default iteration count, so long-trace
/// behavior (streaming, bounded memory) is exercisable without editing
/// kernels.
///
/// # Panics
///
/// Panics when the variable is set but not a positive integer — like the
/// other env knobs, a typo must not silently run at the default size.
#[must_use]
pub fn scale() -> u32 {
    match std::env::var(SCALE_ENV) {
        Ok(v) => {
            let k = v
                .trim()
                .parse::<u32>()
                .unwrap_or_else(|e| panic!("bad {SCALE_ENV} value `{v}`: {e}"));
            assert!(k >= 1, "bad {SCALE_ENV} value `{v}`: must be >= 1");
            k
        }
        Err(_) => 1,
    }
}

macro_rules! workloads {
    ($($name:literal, $suite:ident, $f:path, $n:expr;)*) => {
        /// The full workload registry (the paper's Table 3).
        pub const ALL: &[Workload] = &[
            $(Workload { name: $name, suite: Suite::$suite, build: $f, default_n: $n },)*
        ];
    };
}

workloads! {
    // TPT
    "conv",        Tpt,        tpt::conv,            1500;
    "merge",       Tpt,        tpt::merge,           2200;
    "nbody",       Tpt,        tpt::nbody,           70;
    "radar",       Tpt,        tpt::radar,           220;
    "treesearch",  Tpt,        tpt::treesearch,      900;
    "vr",          Tpt,        tpt::vr,              1800;
    // Parboil
    "cutcp",       Parboil,    parboil::cutcp,       2200;
    "fft",         Parboil,    parboil::fft,         1300;
    "kmeans",      Parboil,    parboil::kmeans,      900;
    "lbm",         Parboil,    parboil::lbm,         1500;
    "mm",          Parboil,    parboil::mm,          28;
    "sad",         Parboil,    parboil::sad,         2600;
    "needle",      Parboil,    parboil::needle,      2200;
    "nnw",         Parboil,    parboil::nnw,         400;
    "spmv",        Parboil,    parboil::spmv,        350;
    "stencil",     Parboil,    parboil::stencil,     2200;
    "tpacf",       Parboil,    parboil::tpacf,       2800;
    // SPECfp
    "433.milc",    SpecFp,     specfp::milc,         1400;
    "444.namd",    SpecFp,     specfp::namd,         1600;
    "450.soplex",  SpecFp,     specfp::soplex,       2200;
    "453.povray",  SpecFp,     specfp::povray,       1700;
    "482.sphinx3", SpecFp,     specfp::sphinx3,      45;
    // Mediabench
    "cjpeg-1",     Mediabench, mediabench::cjpeg,    1600;
    "djpeg-1",     Mediabench, mediabench::djpeg,    1600;
    "gsmdecode",   Mediabench, mediabench::gsmdecode, 2200;
    "gsmencode",   Mediabench, mediabench::gsmencode, 280;
    "cjpeg-2",     Mediabench, mediabench::cjpeg2,   2000;
    "djpeg-2",     Mediabench, mediabench::djpeg2,   2000;
    "h263enc",     Mediabench, mediabench::h263enc,  60;
    "h264dec",     Mediabench, mediabench::h264dec,  1100;
    "jpg2000dec",  Mediabench, mediabench::jpg2000dec, 2600;
    "jpg2000enc",  Mediabench, mediabench::jpg2000enc, 2200;
    "mpeg2dec",    Mediabench, mediabench::mpeg2dec, 1500;
    "mpeg2enc",    Mediabench, mediabench::mpeg2enc, 1600;
    // TPC-H
    "tpch1",       Tpch,       tpch::q1,             1700;
    "tpch2",       Tpch,       tpch::q2,             2400;
    // SPECint
    "164.gzip",    SpecInt,    specint::gzip,        1400;
    "181.mcf",     SpecInt,    specint::mcf,         4500;
    "175.vpr",     SpecInt,    specint::vpr,         2400;
    "197.parser",  SpecInt,    specint::parser,      900;
    "256.bzip2",   SpecInt,    specint::bzip2,       900;
    "401.bzip2",   SpecInt,    specint::bzip2_401,   900;
    "429.mcf",     SpecInt,    specint::mcf429,      4500;
    "403.gcc",     SpecInt,    specint::gcc,         2000;
    "458.sjeng",   SpecInt,    specint::sjeng,       900;
    "473.astar",   SpecInt,    specint::astar,       2200;
    "456.hmmer",   SpecInt,    specint::hmmer,       2000;
    "445.gobmk",   SpecInt,    specint::gobmk,       2600;
    "464.h264ref", SpecInt,    specint::h264ref,     1300;
}

/// Vertical microbenchmarks (paper ref. \[2\]): single-mechanism stress
/// kernels used by the core-model validation; not part of the DSE registry.
pub const MICRO: &[Workload] = &[
    Workload {
        name: "micro-fetch",
        suite: Suite::Tpt,
        build: micro::fetch_bound,
        default_n: 600,
    },
    Workload {
        name: "micro-chain",
        suite: Suite::Tpt,
        build: micro::chain_bound,
        default_n: 600,
    },
    Workload {
        name: "micro-muldiv",
        suite: Suite::Tpt,
        build: micro::muldiv_bound,
        default_n: 600,
    },
    Workload {
        name: "micro-latency",
        suite: Suite::Tpt,
        build: micro::latency_bound,
        default_n: 800,
    },
    Workload {
        name: "micro-mispredict",
        suite: Suite::Tpt,
        build: micro::mispredict_bound,
        default_n: 800,
    },
    Workload {
        name: "micro-window",
        suite: Suite::Tpt,
        build: micro::window_bound,
        default_n: 500,
    },
    Workload {
        name: "micro-forward",
        suite: Suite::Tpt,
        build: micro::forwarding_bound,
        default_n: 600,
    },
    Workload {
        name: "micro-fp",
        suite: Suite::Tpt,
        build: micro::fp_bound,
        default_n: 600,
    },
];

/// Looks a workload up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<&'static Workload> {
    ALL.iter().find(|w| w.name == name)
}

/// All workloads of one suite.
pub fn by_suite(suite: Suite) -> impl Iterator<Item = &'static Workload> {
    ALL.iter().filter(move |w| w.suite == suite)
}

/// All workloads of one regularity class.
pub fn by_class(class: RegularityClass) -> impl Iterator<Item = &'static Workload> {
    ALL.iter().filter(move |w| w.class() == class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_is_complete_and_unique() {
        assert!(
            ALL.len() >= 44,
            "paper evaluates >40 benchmarks; have {}",
            ALL.len()
        );
        let names: HashSet<&str> = ALL.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), ALL.len(), "duplicate names");
        assert!(by_name("mm").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn every_kernel_builds_and_validates() {
        for w in ALL {
            let p = w.build_default();
            assert!(p.validate().is_ok(), "{} failed validation", w.name);
            assert!(p.len() > 5, "{} suspiciously small", w.name);
        }
    }

    #[test]
    fn every_kernel_traces_and_terminates() {
        for w in ALL {
            // Use a smaller size for the test-run budget.
            let p = (w.build)(w.default_n / 4 + 8);
            let cfg = prism_sim::TracerConfig {
                max_insts: 400_000,
                ..prism_sim::TracerConfig::default()
            };
            let t = prism_sim::trace_with(&p, &cfg).expect(w.name);
            assert!(
                t.stats.insts > 200,
                "{}: only {} insts — trivial kernel?",
                w.name,
                t.stats.insts
            );
            assert!(
                t.stats.insts < 400_000,
                "{}: did not terminate within budget",
                w.name
            );
            // Every kernel must actually loop.
            assert!(t.stats.cond_branches > 10, "{}: no loop behavior", w.name);
        }
    }

    #[test]
    fn default_sizes_hit_target_trace_lengths() {
        for w in ALL {
            let t = prism_sim::trace(&w.build_default()).expect(w.name);
            assert!(
                (8_000..400_000).contains(&(t.stats.insts as usize)),
                "{}: {} dynamic insts outside target band",
                w.name,
                t.stats.insts
            );
        }
    }

    #[test]
    fn class_grouping_matches_paper() {
        assert_eq!(Suite::Tpt.class(), RegularityClass::Regular);
        assert_eq!(Suite::Parboil.class(), RegularityClass::Regular);
        assert_eq!(Suite::Mediabench.class(), RegularityClass::SemiRegular);
        assert_eq!(Suite::Tpch.class(), RegularityClass::SemiRegular);
        assert_eq!(Suite::SpecFp.class(), RegularityClass::SemiRegular);
        assert_eq!(Suite::SpecInt.class(), RegularityClass::Irregular);
        assert!(by_class(RegularityClass::Irregular).count() >= 12);
        assert!(by_suite(Suite::Mediabench).count() == 12);
    }

    #[test]
    fn suites_show_expected_branch_behavior() {
        // Regular kernels should have very predictable branches; irregular
        // kernels should mispredict noticeably more.
        let rate = |name: &str| {
            let w = by_name(name).unwrap();
            let t = prism_sim::trace(&w.build_default()).unwrap();
            t.stats.mispredicts as f64 / t.stats.insts.max(1) as f64
        };
        let regular = rate("stencil");
        let irregular = rate("164.gzip");
        assert!(
            irregular > 4.0 * regular.max(1e-6),
            "gzip ({irregular:.4}) should mispredict far more than stencil ({regular:.4})"
        );
    }
}
