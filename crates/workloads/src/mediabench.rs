//! Mediabench analogues \[27\]: image/video/audio codecs. Most are
//! *multi-phase* — a regular transform phase followed by an irregular
//! coding phase — which is exactly what makes them need multiple BSAs
//! inside one application (the paper's Fig. 13/15 point).

use prism_isa::{Label, Program, ProgramBuilder, Reg};

use crate::helpers::{init_f64_array, init_i64_array, Alloc};

/// Emits an 8-point DCT-like butterfly pass over `blocks` rows of 8 pixels
/// (regular, vectorizable).
#[allow(clippy::approx_constant)] // 0.7071 is the kernel's literal twiddle
fn emit_dct_phase(b: &mut ProgramBuilder, src: u64, dst: u64, blocks: i64) {
    let (ps, pd, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
    let (x0, x1, s, d, c) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3), Reg::fp(10));
    b.init_reg(ps, src as i64);
    b.init_reg(pd, dst as i64);
    b.init_reg(i, blocks * 4);
    b.fli(c, 0.7071);
    let head = b.bind_new_label();
    b.fld(x0, ps, 0);
    b.fld(x1, ps, 8);
    b.fadd(s, x0, x1);
    b.fsub(d, x0, x1);
    b.fmul(s, s, c);
    b.fmul(d, d, c);
    b.fst(s, pd, 0);
    b.fst(d, pd, 8);
    b.addi(ps, ps, 16);
    b.addi(pd, pd, 16);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
}

/// Emits a zero-run entropy-coding-like phase: data-dependent branches on
/// coefficient magnitude (irregular; suits Trace-P / NS-DF).
fn emit_entropy_phase(b: &mut ProgramBuilder, src: u64, dst: u64, n: i64) {
    let (ps, pd, i, run, v, t) = (
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
    );
    b.init_reg(ps, src as i64);
    b.init_reg(pd, dst as i64);
    b.init_reg(i, n);
    b.li(run, 0);
    let head = b.bind_new_label();
    let nonzero = b.label();
    let next: Label = b.label();
    b.ld(v, ps, 0);
    b.andi(t, v, 7);
    b.bne_label(t, Reg::ZERO, nonzero);
    b.addi(run, run, 1); // extend the zero run
    b.jmp_label(next);
    b.bind(nonzero);
    b.shli(t, run, 4);
    b.or(t, t, v);
    b.st(t, pd, 0);
    b.addi(pd, pd, 8);
    b.li(run, 0);
    b.bind(next);
    b.addi(ps, ps, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
}

/// Builds a two-phase codec kernel: DCT-like transform then entropy-like
/// coding, the canonical JPEG encode structure.
fn codec(name: &str, n: u32, seed: u64, transform_first: bool) -> Program {
    let n = i64::from(n) & !7;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new(name);
    let pixels = a.words(n as u64);
    let coeffs = a.words(n as u64);
    let code = a.words(n as u64);
    init_f64_array(&mut b, pixels, n as usize, 0.0, 255.0, seed);
    init_i64_array(&mut b, coeffs, n as usize, 0, 64, seed ^ 0xFF);
    if transform_first {
        emit_dct_phase(&mut b, pixels, coeffs, n / 8);
        emit_entropy_phase(&mut b, coeffs, code, n);
    } else {
        emit_entropy_phase(&mut b, coeffs, code, n);
        emit_dct_phase(&mut b, pixels, code, n / 8);
    }
    b.halt();
    b.build().expect(name)
}

/// `cjpeg` (encode: DCT then entropy coding).
#[must_use]
pub fn cjpeg(n: u32) -> Program {
    codec("cjpeg-1", n, 0xA0, true)
}

/// `djpeg` (decode: entropy decoding then inverse DCT).
#[must_use]
pub fn djpeg(n: u32) -> Program {
    codec("djpeg-1", n, 0xA1, false)
}

/// `cjpeg-2` (second input set; different coefficient statistics).
#[must_use]
pub fn cjpeg2(n: u32) -> Program {
    codec("cjpeg-2", n, 0xA2, true)
}

/// `djpeg-2` (second input set).
#[must_use]
pub fn djpeg2(n: u32) -> Program {
    codec("djpeg-2", n, 0xA3, false)
}

/// `gsmdecode` analogue: short-term LPC synthesis filter — an order-8
/// integer lattice with a genuine recurrence.
#[must_use]
pub fn gsmdecode(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("gsmdecode");
    let residual = a.words(n as u64);
    let speech = a.words(n as u64);
    init_i64_array(&mut b, residual, n as usize, -4096, 4096, 0xA4);

    let (pr, ps, i, s0, s1, x, t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    b.init_reg(pr, residual as i64);
    b.init_reg(ps, speech as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    b.ld(x, pr, 0);
    // s0, s1 are the filter state: s0' = x + (13·s0 - 7·s1) >> 4
    b.mul(t, s0, Reg::ZERO); // clears t (keeps mul unit exercised)
    b.shli(t, s0, 3);
    b.add(t, t, s0);
    b.shli(s1, s1, 2);
    b.sub(t, t, s1);
    b.srai(t, t, 4);
    b.add(t, t, x);
    b.mov(s1, s0);
    b.mov(s0, t);
    b.st(t, ps, 0);
    b.addi(pr, pr, 8);
    b.addi(ps, ps, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("gsmdecode")
}

/// `gsmencode` analogue: LTP lag search — correlation with a running max
/// and biased branch.
#[must_use]
pub fn gsmencode(n: u32) -> Program {
    let n = i64::from(n);
    let lags = 8i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("gsmencode");
    let window = a.words(n as u64 + lags as u64);
    init_i64_array(&mut b, window, (n + lags) as usize, -1024, 1024, 0xA5);

    let (pw, i, k, pk, x, y, corr, best, _t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
    );
    b.init_reg(pw, window as i64);
    b.init_reg(i, n);
    let outer = b.bind_new_label();
    b.li(best, i64::MIN / 2);
    b.li(k, lags);
    b.mov(pk, pw);
    let inner = b.bind_new_label();
    let worse = b.label();
    b.ld(x, pw, 0);
    b.ld(y, pk, 8);
    b.mul(corr, x, y);
    b.bge_label(best, corr, worse);
    b.mov(best, corr);
    b.bind(worse);
    b.addi(pk, pk, 8);
    b.addi(k, k, -1);
    b.bne_label(k, Reg::ZERO, inner);
    b.addi(pw, pw, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, outer);
    b.halt();
    b.build().expect("gsmencode")
}

/// `h263enc` analogue: exhaustive block motion search (SAD over candidate
/// offsets, min tracking).
#[must_use]
pub fn h263enc(n: u32) -> Program {
    let n = i64::from(n);
    let cands = 4i64;
    let blk = 8i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("h263enc");
    let cur = a.words((n * blk) as u64);
    let refw = a.words((n * blk + 64) as u64);
    let mvs = a.words(n as u64);
    init_i64_array(&mut b, cur, (n * blk) as usize, 0, 256, 0xA6);
    init_i64_array(&mut b, refw, (n * blk + 64) as usize, 0, 256, 0xA7);

    let (pc, pr, pm, i, c, k, pck, prk, sad, bestsad) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
        Reg::int(10),
    );
    let (x, y, d) = (Reg::int(11), Reg::int(12), Reg::int(13));
    b.init_reg(pc, cur as i64);
    b.init_reg(pr, refw as i64);
    b.init_reg(pm, mvs as i64);
    b.init_reg(i, n);
    let block = b.bind_new_label();
    b.li(bestsad, i64::MAX / 2);
    b.li(c, cands);
    let cand = b.bind_new_label();
    b.li(sad, 0);
    b.li(k, blk);
    b.mov(pck, pc);
    // Candidate offset: c·16 bytes into the reference window.
    b.shli(prk, c, 4);
    b.add(prk, prk, pr);
    let pix = b.bind_new_label();
    b.ld(x, pck, 0);
    b.ld(y, prk, 0);
    b.sub(d, x, y);
    b.srai(x, d, 63);
    b.xor(d, d, x);
    b.sub(d, d, x);
    b.add(sad, sad, d);
    b.addi(pck, pck, 8);
    b.addi(prk, prk, 8);
    b.addi(k, k, -1);
    b.bne_label(k, Reg::ZERO, pix);
    let worse = b.label();
    b.bge_label(sad, bestsad, worse);
    b.mov(bestsad, sad);
    b.bind(worse);
    b.addi(c, c, -1);
    b.bne_label(c, Reg::ZERO, cand);
    b.st(bestsad, pm, 0);
    b.addi(pm, pm, 8);
    b.addi(pc, pc, blk * 8);
    b.addi(pr, pr, blk * 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, block);
    b.halt();
    b.build().expect("h263enc")
}

/// `h264dec` analogue: 6-tap sub-pixel interpolation (regular) with a
/// clipping branch per sample.
#[must_use]
pub fn h264dec(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("h264dec");
    let src = a.words(n as u64 + 8);
    let dst = a.words(n as u64);
    init_i64_array(&mut b, src, n as usize + 8, 0, 256, 0xA8);

    let (ps, pd, i, acc, x, t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
    );
    b.init_reg(ps, src as i64);
    b.init_reg(pd, dst as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    // acc = (s0 - 5·s1 + 20·s2 + 20·s3 - 5·s4 + s5 + 16) >> 5
    b.ld(acc, ps, 0);
    b.ld(x, ps, 8);
    b.shli(t, x, 2);
    b.add(t, t, x);
    b.sub(acc, acc, t);
    b.ld(x, ps, 16);
    b.shli(t, x, 4);
    b.shli(x, x, 2);
    b.add(t, t, x);
    b.add(acc, acc, t);
    b.ld(x, ps, 24);
    b.shli(t, x, 4);
    b.shli(x, x, 2);
    b.add(t, t, x);
    b.add(acc, acc, t);
    b.ld(x, ps, 32);
    b.shli(t, x, 2);
    b.add(t, t, x);
    b.sub(acc, acc, t);
    b.ld(x, ps, 40);
    b.add(acc, acc, x);
    b.addi(acc, acc, 16);
    b.srai(acc, acc, 5);
    // clip to [0, 255]
    let not_neg = b.label();
    let not_big = b.label();
    b.bge_label(acc, Reg::ZERO, not_neg);
    b.li(acc, 0);
    b.bind(not_neg);
    b.slti(t, acc, 256);
    b.bne_label(t, Reg::ZERO, not_big);
    b.li(acc, 255);
    b.bind(not_big);
    b.st(acc, pd, 0);
    b.addi(ps, ps, 8);
    b.addi(pd, pd, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("h264dec")
}

/// `jpg2000dec` analogue: inverse 5/3 lifting wavelet — neighbor-coupled
/// integer updates (loop-carried).
#[must_use]
pub fn jpg2000dec(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("jpg2000dec");
    let coeff = a.words(n as u64 + 2);
    init_i64_array(&mut b, coeff, n as usize + 2, -512, 512, 0xA9);

    let (p, i, lo, hi, t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
    );
    b.init_reg(p, coeff as i64);
    b.init_reg(i, n / 2);
    let head = b.bind_new_label();
    // even' = even - ((odd_prev + odd_next + 2) >> 2)
    b.ld(lo, p, 0);
    b.ld(hi, p, 8);
    b.ld(t, p, 16);
    b.add(t, t, hi);
    b.addi(t, t, 2);
    b.srai(t, t, 2);
    b.sub(lo, lo, t);
    b.st(lo, p, 0);
    // odd' = odd + ((even' + even_next) >> 1)
    b.ld(t, p, 16);
    b.add(t, t, lo);
    b.srai(t, t, 1);
    b.add(hi, hi, t);
    b.st(hi, p, 8);
    b.addi(p, p, 16);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("jpg2000dec")
}

/// `jpg2000enc` analogue: forward lifting + significance coding branch.
#[must_use]
pub fn jpg2000enc(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("jpg2000enc");
    let samples = a.words(n as u64 + 2);
    let sig = a.words(n as u64);
    init_i64_array(&mut b, samples, n as usize + 2, -512, 512, 0xAA);

    let (p, ps, i, lo, hi, t, cnt) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    b.init_reg(p, samples as i64);
    b.init_reg(ps, sig as i64);
    b.init_reg(i, n / 2);
    let head = b.bind_new_label();
    let insig = b.label();
    b.ld(lo, p, 0);
    b.ld(hi, p, 8);
    b.ld(t, p, 16);
    b.add(t, t, lo);
    b.srai(t, t, 1);
    b.sub(hi, hi, t); // predict
    b.st(hi, p, 8);
    // significance: |hi| >= 64?
    b.srai(t, hi, 63);
    b.xor(t, hi, t);
    b.slti(t, t, 64);
    b.bne_label(t, Reg::ZERO, insig);
    b.addi(cnt, cnt, 1);
    b.st(hi, ps, 0);
    b.addi(ps, ps, 8);
    b.bind(insig);
    b.addi(p, p, 16);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("jpg2000enc")
}

/// `mpeg2dec` analogue: IDCT row pass + saturating add of the prediction.
#[must_use]
pub fn mpeg2dec(n: u32) -> Program {
    let n = i64::from(n) & !7;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("mpeg2dec");
    let coef = a.words(n as u64);
    let pred = a.words(n as u64);
    let out = a.words(n as u64);
    init_i64_array(&mut b, coef, n as usize, -256, 256, 0xAB);
    init_i64_array(&mut b, pred, n as usize, 0, 256, 0xAC);

    let (pc, pp, po, i, c0, c1, s, d, t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
    );
    b.init_reg(pc, coef as i64);
    b.init_reg(pp, pred as i64);
    b.init_reg(po, out as i64);
    b.init_reg(i, n / 2);
    let head = b.bind_new_label();
    b.ld(c0, pc, 0);
    b.ld(c1, pc, 8);
    b.add(s, c0, c1);
    b.sub(d, c0, c1);
    // add prediction, clip at 255 (branchless min via slt)
    b.ld(t, pp, 0);
    b.add(s, s, t);
    b.slti(t, s, 256);
    b.mul(s, s, t); // crude clip: 0 if overflow (keeps mul busy)
    b.st(s, po, 0);
    b.ld(t, pp, 8);
    b.add(d, d, t);
    b.st(d, po, 8);
    b.addi(pc, pc, 16);
    b.addi(pp, pp, 16);
    b.addi(po, po, 16);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("mpeg2dec")
}

/// `mpeg2enc` analogue: motion search SAD (phase 1) + DCT (phase 2).
#[must_use]
pub fn mpeg2enc(n: u32) -> Program {
    let n = i64::from(n) & !7;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("mpeg2enc");
    let cur = a.words(n as u64);
    let refw = a.words(n as u64 + 16);
    let pix = a.words(n as u64);
    let coef = a.words(n as u64);
    init_i64_array(&mut b, cur, n as usize, 0, 256, 0xAD);
    init_i64_array(&mut b, refw, n as usize + 16, 0, 256, 0xAE);
    init_f64_array(&mut b, pix, n as usize, 0.0, 255.0, 0xAF);

    // Phase 1: SAD over the block (integer).
    let (pc, pr, i, x, y, d, acc) = (
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
        Reg::int(10),
    );
    b.init_reg(pc, cur as i64);
    b.init_reg(pr, refw as i64);
    b.init_reg(i, n);
    let sad = b.bind_new_label();
    b.ld(x, pc, 0);
    b.ld(y, pr, 0);
    b.sub(d, x, y);
    b.srai(x, d, 63);
    b.xor(d, d, x);
    b.sub(d, d, x);
    b.add(acc, acc, d);
    b.addi(pc, pc, 8);
    b.addi(pr, pr, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, sad);
    // Phase 2: DCT butterflies (FP, vectorizable).
    emit_dct_phase(&mut b, pix, coef, n / 8);
    b.halt();
    b.build().expect("mpeg2enc")
}
