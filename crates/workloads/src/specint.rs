//! SPECint benchmark analogues: irregular integer codes — pointer chasing,
//! unpredictable branches, bit manipulation. The hard cases for BSAs.

use prism_isa::{Program, ProgramBuilder, Reg};

use crate::helpers::{init_chase_array, init_i64_array, Alloc};

/// `164.gzip` analogue: LZ77 longest-match search — hash-chain probes with
/// an early-exit comparison loop.
#[must_use]
pub fn gzip(n: u32) -> Program {
    let n = i64::from(n);
    let win = 4096i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("164.gzip");
    let window = a.words(win as u64 + 16);
    let starts = a.words(n as u64);
    let lens = a.words(n as u64);
    init_i64_array(&mut b, window, win as usize + 16, 0, 32, 0xC0);
    init_i64_array(&mut b, starts, n as usize, 0, win - 16, 0xC1);

    let (pw, ps, pl, i, cur, cand, k, x, y, len) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
        Reg::int(10),
    );
    b.init_reg(pw, window as i64);
    b.init_reg(ps, starts as i64);
    b.init_reg(pl, lens as i64);
    b.init_reg(i, n);
    let outer = b.bind_new_label();
    b.ld(cur, ps, 0);
    b.shli(cur, cur, 3);
    b.add(cur, cur, pw);
    b.addi(cand, cur, 64); // candidate match 8 words ahead
    b.li(len, 0);
    b.li(k, 8);
    let matchloop = b.bind_new_label();
    let differ = b.label();
    b.ld(x, cur, 0);
    b.ld(y, cand, 0);
    b.bne_label(x, y, differ); // early exit — data dependent
    b.addi(len, len, 1);
    b.addi(cur, cur, 8);
    b.addi(cand, cand, 8);
    b.addi(k, k, -1);
    b.bne_label(k, Reg::ZERO, matchloop);
    b.bind(differ);
    b.st(len, pl, 0);
    b.addi(ps, ps, 8);
    b.addi(pl, pl, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, outer);
    b.halt();
    b.build().expect("gzip")
}

/// `181.mcf` analogue: network-simplex arc scan — pointer chase through a
/// permutation with a cost-comparison branch.
#[must_use]
pub fn mcf(n: u32) -> Program {
    mcf_named("181.mcf", n, 0xC2)
}

/// `429.mcf` (the CPU2006 variant; different arc-cost distribution).
#[must_use]
pub fn mcf429(n: u32) -> Program {
    mcf_named("429.mcf", n, 0xC3)
}

fn mcf_named(name: &str, n: u32, seed: u64) -> Program {
    let n = i64::from(n);
    let nodes = 2048u64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new(name);
    let next = a.words(nodes);
    let cost = a.words(nodes);
    init_chase_array(&mut b, next, nodes as usize, seed);
    init_i64_array(&mut b, cost, nodes as usize, -100, 100, seed ^ 1);

    let (pn, pc, i, cur, c, acc, t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    b.init_reg(pn, next as i64);
    b.init_reg(pc, cost as i64);
    b.init_reg(i, n);
    b.li(cur, 0);
    let head = b.bind_new_label();
    let nonneg = b.label();
    b.shli(t, cur, 3);
    b.add(t, t, pc);
    b.ld(c, t, 0);
    b.bge_label(c, Reg::ZERO, nonneg); // negative reduced cost → pivot
    b.add(acc, acc, c);
    b.bind(nonneg);
    b.shli(t, cur, 3);
    b.add(t, t, pn);
    b.ld(cur, t, 0); // chase
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("mcf")
}

/// `175.vpr` analogue: placement cost delta — net bounding-box updates with
/// several data-dependent branches.
#[must_use]
pub fn vpr(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("175.vpr");
    let xs = a.words(n as u64);
    let bbs = a.words(n as u64);
    init_i64_array(&mut b, xs, n as usize, 0, 100, 0xC4);

    let (px, pb, i, x, lo, hi, cost) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    b.init_reg(px, xs as i64);
    b.init_reg(pb, bbs as i64);
    b.init_reg(i, n);
    b.li(lo, 50);
    b.li(hi, 50);
    let head = b.bind_new_label();
    let not_lo = b.label();
    let not_hi = b.label();
    b.ld(x, px, 0);
    b.bge_label(x, lo, not_lo);
    b.mov(lo, x); // extend bbox left
    b.bind(not_lo);
    b.bge_label(hi, x, not_hi);
    b.mov(hi, x); // extend bbox right
    b.bind(not_hi);
    b.sub(cost, hi, lo);
    b.st(cost, pb, 0);
    b.addi(px, px, 8);
    b.addi(pb, pb, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("vpr")
}

/// `197.parser` analogue: dictionary trie walk per token — short
/// data-dependent descents.
#[must_use]
pub fn parser(n: u32) -> Program {
    let n = i64::from(n);
    let trie = 1024i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("197.parser");
    let nodes = a.words(2 * trie as u64);
    let tokens = a.words(n as u64);
    init_i64_array(&mut b, nodes, 2 * trie as usize, 0, trie, 0xC5);
    init_i64_array(&mut b, tokens, n as usize, 0, 64, 0xC6);

    let (pn, pt, i, tok, node, d, t, hits) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
    );
    b.init_reg(pn, nodes as i64);
    b.init_reg(pt, tokens as i64);
    b.init_reg(i, n);
    let outer = b.bind_new_label();
    b.ld(tok, pt, 0);
    b.li(node, 1);
    b.li(d, 4);
    let descend = b.bind_new_label();
    b.and(t, node, tok);
    b.andi(t, t, 1);
    b.add(t, t, node);
    b.shli(t, t, 3);
    b.add(t, t, pn);
    b.ld(node, t, 0); // child pointer
    b.srai(tok, tok, 1);
    b.addi(d, d, -1);
    b.bne_label(d, Reg::ZERO, descend);
    b.add(hits, hits, node);
    b.addi(pt, pt, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, outer);
    b.halt();
    b.build().expect("parser")
}

/// `256.bzip2` analogue: move-to-front coding — a scan loop with a
/// data-dependent early exit, then a shift loop.
#[must_use]
pub fn bzip2(n: u32) -> Program {
    bzip2_named("256.bzip2", n, 0xC7)
}

/// `401.bzip2` (CPU2006 variant; different symbol distribution).
#[must_use]
pub fn bzip2_401(n: u32) -> Program {
    bzip2_named("401.bzip2", n, 0xC8)
}

fn bzip2_named(name: &str, n: u32, seed: u64) -> Program {
    let n = i64::from(n);
    let alpha = 16i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new(name);
    let mtf = a.words(alpha as u64);
    let input = a.words(n as u64);
    let output = a.words(n as u64);
    b.init_words(mtf, &(0..alpha).collect::<Vec<i64>>());
    init_i64_array(&mut b, input, n as usize, 0, 4, seed); // skewed: small ranks

    let (pm, pi, po, i, sym, j, pj, v, prev) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
    );
    b.init_reg(pm, mtf as i64);
    b.init_reg(pi, input as i64);
    b.init_reg(po, output as i64);
    b.init_reg(i, n);
    let outer = b.bind_new_label();
    b.ld(sym, pi, 0);
    // Find sym's rank: scan the MTF table.
    b.li(j, 0);
    b.mov(pj, pm);
    let scan = b.bind_new_label();
    let found = b.label();
    b.ld(v, pj, 0);
    b.beq_label(v, sym, found);
    b.addi(pj, pj, 8);
    b.addi(j, j, 1);
    b.slti(v, j, alpha);
    b.bne_label(v, Reg::ZERO, scan);
    b.bind(found);
    b.st(j, po, 0);
    // Move to front: shift [0..j) down by one.
    b.ld(prev, pm, 0);
    b.st(sym, pm, 0);
    let shifted = b.label();
    b.beq_label(j, Reg::ZERO, shifted);
    b.st(prev, pj, 0); // crude: put the old head where sym was
    b.bind(shifted);
    b.addi(pi, pi, 8);
    b.addi(po, po, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, outer);
    b.halt();
    b.build().expect("bzip2")
}

/// `403.gcc` analogue: a dataflow-equations pass — bitset OR/AND over
/// basic-block sets with change detection.
#[must_use]
pub fn gcc(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("403.gcc");
    let gen = a.words(n as u64);
    let kill = a.words(n as u64);
    let inb = a.words(n as u64 + 1);
    init_i64_array(&mut b, gen, n as usize, i64::MIN, i64::MAX, 0xC9);
    init_i64_array(&mut b, kill, n as usize, i64::MIN, i64::MAX, 0xCA);

    let (pg, pk, pin, i, g, k, x, out, changed) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
    );
    b.init_reg(pg, gen as i64);
    b.init_reg(pk, kill as i64);
    b.init_reg(pin, inb as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    let same = b.label();
    b.ld(g, pg, 0);
    b.ld(k, pk, 0);
    b.ld(x, pin, 0);
    // out = gen | (in & ~kill)
    b.xori(k, k, -1);
    b.and(out, x, k);
    b.or(out, out, g);
    b.ld(x, pin, 8);
    b.beq_label(out, x, same);
    b.st(out, pin, 8);
    b.addi(changed, changed, 1);
    b.bind(same);
    b.addi(pg, pg, 8);
    b.addi(pk, pk, 8);
    b.addi(pin, pin, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("gcc")
}

/// `458.sjeng` analogue: bitboard attack generation — shifts/masks with a
/// popcount-ish loop and capture branch.
#[must_use]
pub fn sjeng(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("458.sjeng");
    let boards = a.words(n as u64);
    let scores = a.words(n as u64);
    init_i64_array(&mut b, boards, n as usize, i64::MIN, i64::MAX, 0xCB);

    let (pb, ps, i, bb, att, cnt, t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    b.init_reg(pb, boards as i64);
    b.init_reg(ps, scores as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    b.ld(bb, pb, 0);
    // Knight-ish attack spread.
    b.shli(att, bb, 6);
    b.shri(t, bb, 10);
    b.or(att, att, t);
    b.shli(t, bb, 15);
    b.or(att, att, t);
    // Popcount 4 nibbles (partial).
    b.li(cnt, 0);
    for shift in [0i64, 16, 32, 48] {
        b.shri(t, att, shift);
        b.andi(t, t, 0xF);
        b.add(cnt, cnt, t);
    }
    let quiet = b.label();
    b.and(t, att, bb);
    b.beq_label(t, Reg::ZERO, quiet); // capture available?
    b.shli(cnt, cnt, 1);
    b.bind(quiet);
    b.st(cnt, ps, 0);
    b.addi(pb, pb, 8);
    b.addi(ps, ps, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("sjeng")
}

/// `473.astar` analogue: grid relaxation — neighbor cost comparisons with
/// conditional updates (branchy, cache-friendly).
#[must_use]
pub fn astar(n: u32) -> Program {
    let n = i64::from(n);
    let grid = 64i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("473.astar");
    let dist = a.words((grid * grid) as u64 + grid as u64 + 1);
    let cost = a.words((grid * grid) as u64);
    init_i64_array(
        &mut b,
        dist,
        (grid * grid) as usize + grid as usize + 1,
        0,
        10_000,
        0xCC,
    );
    init_i64_array(&mut b, cost, (grid * grid) as usize, 1, 10, 0xCD);

    let (pd, pc, i, d, c, nb, t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    b.init_reg(pd, dist as i64);
    b.init_reg(pc, cost as i64);
    b.init_reg(i, n.min(grid * grid - grid - 1));
    let head = b.bind_new_label();
    b.ld(d, pd, 0);
    b.ld(c, pc, 0);
    // Relax east neighbor.
    let no_east = b.label();
    b.ld(nb, pd, 8);
    b.add(t, d, c);
    b.bge_label(t, nb, no_east);
    b.st(t, pd, 8);
    b.bind(no_east);
    // Relax south neighbor.
    let no_south = b.label();
    b.ld(nb, pd, grid * 8);
    b.add(t, d, c);
    b.bge_label(t, nb, no_south);
    b.st(t, pd, grid * 8);
    b.bind(no_south);
    b.addi(pd, pd, 8);
    b.addi(pc, pc, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("astar")
}

/// `456.hmmer` analogue: Viterbi inner loop — three-way max recurrence
/// over match/insert/delete states (regular structure, serial dependence).
#[must_use]
pub fn hmmer(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("456.hmmer");
    let emit = a.words(n as u64);
    let trans = a.words(n as u64);
    let dp = a.words(n as u64 + 1);
    init_i64_array(&mut b, emit, n as usize, -50, 50, 0xCE);
    init_i64_array(&mut b, trans, n as usize, -20, 0, 0xCF);

    let (pe, pt, pd, i, m, ins, e, tr, best) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
    );
    b.init_reg(pe, emit as i64);
    b.init_reg(pt, trans as i64);
    b.init_reg(pd, dp as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    b.ld(e, pe, 0);
    b.ld(tr, pt, 0);
    b.ld(m, pd, 0); // previous match score
    b.add(m, m, tr);
    b.add(ins, m, e);
    // best = max(m, ins) without a branch, then one branchy clamp.
    b.slt(best, m, ins);
    let keep = b.label();
    b.beq_label(best, Reg::ZERO, keep);
    b.mov(m, ins);
    b.bind(keep);
    b.add(m, m, e);
    b.st(m, pd, 8);
    b.addi(pe, pe, 8);
    b.addi(pt, pt, 8);
    b.addi(pd, pd, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("hmmer")
}

/// `445.gobmk` analogue: board-region flood scan — neighbor tests with
/// many short branches over a byte board.
#[must_use]
pub fn gobmk(n: u32) -> Program {
    let n = i64::from(n);
    let side = 64i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("445.gobmk");
    let board = a.words((side * side) as u64 + side as u64 + 1);
    let libs = a.words((side * side) as u64);
    init_i64_array(
        &mut b,
        board,
        (side * side) as usize + side as usize + 1,
        0,
        3,
        0xD0,
    );

    let (pb, pl, i, v, nbv, cnt) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
    );
    b.init_reg(pb, board as i64);
    b.init_reg(pl, libs as i64);
    b.init_reg(i, n.min(side * side - side - 1));
    let head = b.bind_new_label();
    let empty = b.label();
    let store = b.label();
    b.ld(v, pb, 0);
    b.beq_label(v, Reg::ZERO, empty); // empty point
    b.li(cnt, 0);
    for off in [8i64, side * 8] {
        let occupied = b.label();
        b.ld(nbv, pb, off);
        b.bne_label(nbv, Reg::ZERO, occupied);
        b.addi(cnt, cnt, 1); // liberty
        b.bind(occupied);
    }
    b.jmp_label(store);
    b.bind(empty);
    b.li(cnt, -1);
    b.bind(store);
    b.st(cnt, pl, 0);
    b.addi(pb, pb, 8);
    b.addi(pl, pl, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("gobmk")
}

/// `464.h264ref` analogue: two-phase encoder slice — SAD motion estimation
/// (regular int) followed by intra-prediction selection (branchy), the
/// switching benchmark of the paper's Fig. 14.
#[must_use]
pub fn h264ref(n: u32) -> Program {
    let n = i64::from(n) & !7;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("464.h264ref");
    let cur = a.words(n as u64);
    let refw = a.words(n as u64 + 8);
    let modes = a.words(n as u64);
    init_i64_array(&mut b, cur, n as usize, 0, 256, 0xD1);
    init_i64_array(&mut b, refw, n as usize + 8, 0, 256, 0xD2);

    // Phase 1: SAD (data parallel).
    let (pc, pr, i, x, y, d, acc) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
    );
    b.init_reg(pc, cur as i64);
    b.init_reg(pr, refw as i64);
    b.init_reg(i, n);
    let sad = b.bind_new_label();
    b.ld(x, pc, 0);
    b.ld(y, pr, 0);
    b.sub(d, x, y);
    b.srai(x, d, 63);
    b.xor(d, d, x);
    b.sub(d, d, x);
    b.add(acc, acc, d);
    b.addi(pc, pc, 8);
    b.addi(pr, pr, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, sad);

    // Phase 2: intra-mode decision (irregular branches).
    let (pm, j, v, mode) = (Reg::int(8), Reg::int(9), Reg::int(10), Reg::int(11));
    b.init_reg(pm, modes as i64);
    b.li(pc, cur as i64);
    b.li(j, n);
    let intra = b.bind_new_label();
    let try_dc = b.label();
    let use_planar = b.label();
    let decided = b.label();
    b.ld(v, pc, 0);
    b.slti(mode, v, 64);
    b.beq_label(mode, Reg::ZERO, try_dc);
    b.li(mode, 0); // vertical
    b.jmp_label(decided);
    b.bind(try_dc);
    b.slti(mode, v, 192);
    b.beq_label(mode, Reg::ZERO, use_planar);
    b.li(mode, 1); // DC
    b.jmp_label(decided);
    b.bind(use_planar);
    b.li(mode, 2); // planar
    b.bind(decided);
    b.st(mode, pm, 0);
    b.addi(pc, pc, 8);
    b.addi(pm, pm, 8);
    b.addi(j, j, -1);
    b.bne_label(j, Reg::ZERO, intra);
    b.halt();
    b.build().expect("h264ref")
}
