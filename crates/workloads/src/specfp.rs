//! SPECfp benchmark analogues: semi-regular floating-point codes.

use prism_isa::{Program, ProgramBuilder, Reg};

use crate::helpers::{init_f64_array, init_i64_array, Alloc};

/// `433.milc` analogue: SU(3)-flavored complex matrix-vector products on
/// lattice sites (straight-line FP with interleaved re/im).
#[must_use]
pub fn milc(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("433.milc");
    let links = a.words(6 * n as u64);
    let vecs = a.words(2 * n as u64);
    let out = a.words(2 * n as u64);
    init_f64_array(&mut b, links, 6 * n as usize, -1.0, 1.0, 0x90);
    init_f64_array(&mut b, vecs, 2 * n as usize, -1.0, 1.0, 0x91);

    let (pl, pv, po, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let (m0, m1, m2, vr, vi, ar, ai, t) = (
        Reg::fp(0),
        Reg::fp(1),
        Reg::fp(2),
        Reg::fp(3),
        Reg::fp(4),
        Reg::fp(5),
        Reg::fp(6),
        Reg::fp(7),
    );
    b.init_reg(pl, links as i64);
    b.init_reg(pv, vecs as i64);
    b.init_reg(po, out as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    b.fld(m0, pl, 0);
    b.fld(m1, pl, 8);
    b.fld(m2, pl, 16);
    b.fld(vr, pv, 0);
    b.fld(vi, pv, 8);
    b.fmul(ar, m0, vr);
    b.fmul(t, m1, vi);
    b.fsub(ar, ar, t);
    b.fmul(ai, m0, vi);
    b.fmul(t, m1, vr);
    b.fadd(ai, ai, t);
    b.fmul(t, m2, vr);
    b.fadd(ar, ar, t);
    b.fst(ar, po, 0);
    b.fst(ai, po, 8);
    b.addi(pl, pl, 48);
    b.addi(pv, pv, 16);
    b.addi(po, po, 16);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("milc")
}

/// `444.namd` analogue: pairwise force inner loop with an exclusion-list
/// branch and reciprocal-sqrt-style arithmetic.
#[must_use]
pub fn namd(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("444.namd");
    let dx = a.words(n as u64);
    let excl = a.words(n as u64);
    let force = a.words(n as u64);
    init_f64_array(&mut b, dx, n as usize, 0.5, 9.0, 0x92);
    init_i64_array(&mut b, excl, n as usize, 0, 10, 0x93);

    let (pd, pe, pf, i, e) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
    );
    let (x, r2, inv, f6, f12, fout) = (
        Reg::fp(0),
        Reg::fp(1),
        Reg::fp(2),
        Reg::fp(3),
        Reg::fp(4),
        Reg::fp(5),
    );
    b.init_reg(pd, dx as i64);
    b.init_reg(pe, excl as i64);
    b.init_reg(pf, force as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    let excluded = b.label();
    let store = b.label();
    b.ld(e, pe, 0);
    b.beq_label(e, Reg::ZERO, excluded); // ~10% excluded
    b.fld(x, pd, 0);
    b.fmul(r2, x, x);
    b.fli(inv, 1.0);
    b.fdiv(inv, inv, r2);
    b.fmul(f6, inv, inv);
    b.fmul(f6, f6, inv);
    b.fmul(f12, f6, f6);
    b.fsub(fout, f12, f6);
    b.fmul(fout, fout, inv);
    b.jmp_label(store);
    b.bind(excluded);
    b.fli(fout, 0.0);
    b.bind(store);
    b.fst(fout, pf, 0);
    b.addi(pd, pd, 8);
    b.addi(pe, pe, 8);
    b.addi(pf, pf, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("namd")
}

/// `450.soplex` analogue: sparse simplex pivot update — indexed row
/// updates with a numerical-tolerance branch.
#[must_use]
pub fn soplex(n: u32) -> Program {
    let n = i64::from(n);
    let cols = 1024i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("450.soplex");
    let vals = a.words(n as u64);
    let idx = a.words(n as u64);
    let dense = a.words(cols as u64);
    init_f64_array(&mut b, vals, n as usize, -2.0, 2.0, 0x94);
    init_i64_array(&mut b, idx, n as usize, 0, cols, 0x95);
    init_f64_array(&mut b, dense, cols as usize, -2.0, 2.0, 0x96);

    let (pv, px, pd, i, col, t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
    );
    let (v, d, pivot, tol) = (Reg::fp(0), Reg::fp(1), Reg::fp(10), Reg::fp(11));
    b.init_reg(pv, vals as i64);
    b.init_reg(px, idx as i64);
    b.init_reg(pd, dense as i64);
    b.init_reg(i, n);
    b.fli(pivot, 1.25);
    b.fli(tol, 1.0e-3);
    let head = b.bind_new_label();
    let skip = b.label();
    b.fld(v, pv, 0);
    b.fabs(d, v);
    b.flt(t, d, tol);
    b.bne_label(t, Reg::ZERO, skip); // numerically-zero entries skipped
    b.ld(col, px, 0);
    b.shli(col, col, 3);
    b.add(col, col, pd);
    b.fld(d, col, 0);
    b.fmul(v, v, pivot);
    b.fsub(d, d, v);
    b.fst(d, col, 0);
    b.bind(skip);
    b.addi(pv, pv, 8);
    b.addi(px, px, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("soplex")
}

/// `453.povray` analogue: ray–sphere intersection tests — discriminant
/// branch, sqrt on the hit path.
#[must_use]
pub fn povray(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("453.povray");
    let rays = a.words(2 * n as u64);
    let hits = a.words(n as u64);
    init_f64_array(&mut b, rays, 2 * n as usize, -2.0, 2.0, 0x97);

    let (pr, ph, i, t) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    let (ox, dx, bq, cq, disc, root) = (
        Reg::fp(0),
        Reg::fp(1),
        Reg::fp(2),
        Reg::fp(3),
        Reg::fp(4),
        Reg::fp(5),
    );
    let one = Reg::fp(10);
    b.init_reg(pr, rays as i64);
    b.init_reg(ph, hits as i64);
    b.init_reg(i, n);
    b.fli(one, 1.0);
    let head = b.bind_new_label();
    let miss = b.label();
    let store = b.label();
    b.fld(ox, pr, 0);
    b.fld(dx, pr, 8);
    b.fmul(bq, ox, dx);
    b.fmul(cq, ox, ox);
    b.fsub(cq, cq, one);
    b.fmul(disc, bq, bq);
    b.fsub(disc, disc, cq);
    b.fli(root, 0.0);
    b.flt(t, disc, root);
    b.bne_label(t, Reg::ZERO, miss);
    b.fsqrt(root, disc);
    b.fsub(root, root, bq);
    b.jmp_label(store);
    b.bind(miss);
    b.fli(root, -1.0);
    b.bind(store);
    b.fst(root, ph, 0);
    b.addi(pr, pr, 16);
    b.addi(ph, ph, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("povray")
}

/// `482.sphinx3` analogue: Gaussian mixture scoring — nested dot products
/// with per-component max tracking.
#[must_use]
pub fn sphinx3(n: u32) -> Program {
    let comps = 8i64;
    let dims = 8i64;
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("482.sphinx3");
    let feats = a.words((n * dims) as u64);
    let means = a.words((comps * dims) as u64);
    let scores = a.words(n as u64);
    init_f64_array(&mut b, feats, (n * dims) as usize, -1.0, 1.0, 0x98);
    init_f64_array(&mut b, means, (comps * dims) as usize, -1.0, 1.0, 0x99);

    let (pf, pm, ps, i, c, k, pfk, pmk, t) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
        Reg::int(9),
    );
    let (x, m, d, acc, best) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3), Reg::fp(4));
    b.init_reg(pf, feats as i64);
    b.init_reg(ps, scores as i64);
    b.init_reg(i, n);
    let frame = b.bind_new_label();
    b.fli(best, -1.0e18);
    b.li(c, comps);
    b.li(pm, means as i64);
    let comp = b.bind_new_label();
    b.fli(acc, 0.0);
    b.li(k, dims);
    b.mov(pfk, pf);
    b.mov(pmk, pm);
    let dim = b.bind_new_label();
    b.fld(x, pfk, 0);
    b.fld(m, pmk, 0);
    b.fsub(d, x, m);
    b.fmul(d, d, d);
    b.fadd(acc, acc, d);
    b.addi(pfk, pfk, 8);
    b.addi(pmk, pmk, 8);
    b.addi(k, k, -1);
    b.bne_label(k, Reg::ZERO, dim);
    b.fneg(acc, acc);
    let worse = b.label();
    b.fle(t, acc, best);
    b.bne_label(t, Reg::ZERO, worse);
    b.fmov(best, acc);
    b.bind(worse);
    b.addi(pm, pm, dims * 8);
    b.addi(c, c, -1);
    b.bne_label(c, Reg::ZERO, comp);
    b.fst(best, ps, 0);
    b.addi(pf, pf, dims * 8);
    b.addi(ps, ps, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, frame);
    b.halt();
    b.build().expect("sphinx3")
}
