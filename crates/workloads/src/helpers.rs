//! Shared helpers for authoring workload kernels: a conflict-avoiding
//! array allocator and seeded input generators.

use prism_isa::ProgramBuilder;

/// Bump allocator for kernel arrays.
///
/// Pads between arrays with a non-power-of-two gap so that equally-strided
/// arrays do not land on identical cache sets (the pathological aliasing a
/// real allocator's ASLR/heap layout also avoids).
#[derive(Debug)]
pub struct Alloc {
    next: u64,
}

impl Alloc {
    /// Creates an allocator starting at the conventional data base.
    #[must_use]
    pub fn new() -> Self {
        Alloc { next: 0x1_0000 }
    }

    /// Reserves `bytes` and returns the base address (64-byte aligned).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        // 0x1C0 = 7 cache lines of padding: staggers set mapping.
        self.next = (self.next + bytes + 0x1C0 + 63) & !63;
        base
    }

    /// Reserves an array of `n` 8-byte words.
    pub fn words(&mut self, n: u64) -> u64 {
        self.alloc(n * 8)
    }
}

impl Default for Alloc {
    fn default() -> Self {
        Alloc::new()
    }
}

/// Deterministic per-kernel RNG: SplitMix64, dependency-free and stable
/// across platforms and releases (kernel data is part of the workload
/// definition, so the stream must never change).
#[derive(Debug, Clone)]
pub struct KernelRng {
    state: u64,
}

impl KernelRng {
    /// Creates a generator with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        KernelRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Deterministic per-kernel RNG.
#[must_use]
pub fn rng(seed: u64) -> KernelRng {
    KernelRng::new(seed)
}

/// Fills an `f64` array with uniform values in `[lo, hi)`.
pub fn init_f64_array(b: &mut ProgramBuilder, addr: u64, n: usize, lo: f64, hi: f64, seed: u64) {
    let mut r = rng(seed);
    let vals: Vec<f64> = (0..n).map(|_| r.f64_in(lo, hi)).collect();
    b.init_f64s(addr, &vals);
}

/// Fills an `i64` array with uniform values in `[lo, hi)`.
pub fn init_i64_array(b: &mut ProgramBuilder, addr: u64, n: usize, lo: i64, hi: i64, seed: u64) {
    let mut r = rng(seed);
    let vals: Vec<i64> = (0..n).map(|_| r.i64_in(lo, hi)).collect();
    b.init_words(addr, &vals);
}

/// Fills an `i64` array with a random permutation of `0..n` (pointer-chase
/// style cycle: `perm[i]` is the next index after `i`).
pub fn init_chase_array(b: &mut ProgramBuilder, addr: u64, n: usize, seed: u64) {
    let mut r = rng(seed);
    // Sattolo's algorithm: a single cycle through all n slots.
    let mut idx: Vec<i64> = (0..n as i64).collect();
    for i in (1..n).rev() {
        let j = r.index(i);
        idx.swap(i, j);
    }
    // idx is a permutation; build next-pointers along the cycle.
    let mut next = vec![0i64; n];
    for w in 0..n {
        next[idx[w] as usize] = idx[(w + 1) % n];
    }
    b.init_words(addr, &next);
}

/// Fills an `i64` array with sorted ascending values (for search trees /
/// merge inputs).
pub fn init_sorted_array(b: &mut ProgramBuilder, addr: u64, n: usize, step_max: i64, seed: u64) {
    let mut r = rng(seed);
    let mut v = 0i64;
    let vals: Vec<i64> = (0..n)
        .map(|_| {
            v += r.i64_in(1, step_max + 1);
            v
        })
        .collect();
    b.init_words(addr, &vals);
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::Reg;

    #[test]
    fn alloc_is_aligned_and_padded() {
        let mut a = Alloc::new();
        let x = a.words(100);
        let y = a.words(100);
        assert_eq!(x % 64, 0);
        assert_eq!(y % 64, 0);
        assert!(y >= x + 800 + 0x1C0);
        // Stagger: the two arrays must not map to the same L1 set offset.
        let set = |addr: u64| (addr / 64) % 512;
        assert_ne!(set(x), set(y));
    }

    #[test]
    fn chase_array_is_a_full_cycle() {
        let mut b = ProgramBuilder::new("t");
        let addr = 0x1000;
        init_chase_array(&mut b, addr, 64, 42);
        b.init_reg(Reg::int(1), 0);
        b.halt();
        let p = b.build().unwrap();
        // Decode the data segment back and verify the cycle covers all 64.
        let seg = &p.data[0];
        let next: Vec<i64> = seg
            .bytes
            .chunks(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut seen = [false; 64];
        let mut cur = 0usize;
        for _ in 0..64 {
            assert!(!seen[cur], "cycle revisited {cur} early");
            seen[cur] = true;
            cur = next[cur] as usize;
        }
        assert_eq!(cur, 0, "should return to start after n steps");
    }

    #[test]
    fn generators_are_deterministic() {
        let mut b1 = ProgramBuilder::new("a");
        let mut b2 = ProgramBuilder::new("b");
        init_f64_array(&mut b1, 0x1000, 16, 0.0, 1.0, 7);
        init_f64_array(&mut b2, 0x1000, 16, 0.0, 1.0, 7);
        b1.halt();
        b2.halt();
        assert_eq!(b1.build().unwrap().data, b2.build().unwrap().data);
    }

    #[test]
    fn sorted_array_ascends() {
        let mut b = ProgramBuilder::new("t");
        init_sorted_array(&mut b, 0x1000, 32, 5, 3);
        b.halt();
        let p = b.build().unwrap();
        let vals: Vec<i64> = p.data[0]
            .bytes
            .chunks(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert!(vals.windows(2).all(|w| w[0] < w[1]));
    }
}
