//! TPC-H query analogues: scan/aggregate (Q1) and lookup-join (Q2) —
//! database kernels with predicates over columnar data.

use prism_isa::{Program, ProgramBuilder, Reg};

use crate::helpers::{init_f64_array, init_i64_array, Alloc};

/// Q1 analogue: predicated scan-aggregate over a lineitem-like column set:
/// `WHERE shipdate <= D` then `SUM(price·(1-discount))` per flag group.
#[must_use]
pub fn q1(n: u32) -> Program {
    let n = i64::from(n);
    let groups = 4i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("tpch1");
    let shipdate = a.words(n as u64);
    let flag = a.words(n as u64);
    let price = a.words(n as u64);
    let discount = a.words(n as u64);
    let sums = a.words(groups as u64);
    init_i64_array(&mut b, shipdate, n as usize, 0, 1000, 0xB0);
    init_i64_array(&mut b, flag, n as usize, 0, groups, 0xB1);
    init_f64_array(&mut b, price, n as usize, 1.0, 100.0, 0xB2);
    init_f64_array(&mut b, discount, n as usize, 0.0, 0.1, 0xB3);

    let (pd, pf, pp, pc, ps, i, date, g) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
    );
    let (pr, di, rev, cur, one) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3), Reg::fp(10));
    b.init_reg(pd, shipdate as i64);
    b.init_reg(pf, flag as i64);
    b.init_reg(pp, price as i64);
    b.init_reg(pc, discount as i64);
    b.init_reg(ps, sums as i64);
    b.init_reg(i, n);
    b.fli(one, 1.0);
    let head = b.bind_new_label();
    let skip = b.label();
    b.ld(date, pd, 0);
    b.slti(date, date, 900); // predicate: ~90% selectivity
    b.beq_label(date, Reg::ZERO, skip);
    b.fld(pr, pp, 0);
    b.fld(di, pc, 0);
    b.fsub(rev, one, di);
    b.fmul(rev, rev, pr);
    b.ld(g, pf, 0);
    b.shli(g, g, 3);
    b.add(g, g, ps);
    b.fld(cur, g, 0);
    b.fadd(cur, cur, rev);
    b.fst(cur, g, 0);
    b.bind(skip);
    b.addi(pd, pd, 8);
    b.addi(pf, pf, 8);
    b.addi(pp, pp, 8);
    b.addi(pc, pc, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("tpch q1")
}

/// Q2 analogue: foreign-key lookup join — for each supplier row, probe a
/// hash-bucketed part table and keep the min cost (irregular gathers).
#[must_use]
pub fn q2(n: u32) -> Program {
    let n = i64::from(n);
    let buckets = 1024i64;
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("tpch2");
    let keys = a.words(n as u64);
    let table = a.words(buckets as u64);
    let mincost = a.words(1);
    init_i64_array(&mut b, keys, n as usize, 0, 1_000_000, 0xB4);
    init_i64_array(&mut b, table, buckets as usize, 1, 10_000, 0xB5);

    let (pk, pt, pm, i, k, h, cost, best) = (
        Reg::int(1),
        Reg::int(2),
        Reg::int(3),
        Reg::int(4),
        Reg::int(5),
        Reg::int(6),
        Reg::int(7),
        Reg::int(8),
    );
    b.init_reg(pk, keys as i64);
    b.init_reg(pt, table as i64);
    b.init_reg(pm, mincost as i64);
    b.init_reg(i, n);
    b.li(best, i64::MAX / 2);
    let head = b.bind_new_label();
    let worse = b.label();
    b.ld(k, pk, 0);
    // Multiplicative hash into buckets.
    b.li(h, 0x9E37);
    b.mul(h, h, k);
    b.shri(h, h, 4);
    b.andi(h, h, buckets - 1);
    b.shli(h, h, 3);
    b.add(h, h, pt);
    b.ld(cost, h, 0); // probe
    b.bge_label(cost, best, worse);
    b.mov(best, cost);
    b.bind(worse);
    b.addi(pk, pk, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.st(best, pm, 0);
    b.halt();
    b.build().expect("tpch q2")
}
