//! Vertical microbenchmarks \[2\]: tiny kernels that each stress a single
//! microarchitectural mechanism, used (as in the paper's core validation)
//! to pin down where a model and a reference simulator disagree.
//!
//! These are *not* part of the workload registry used by the design-space
//! exploration; they are exposed through [`MICRO`](crate::MICRO).

use prism_isa::{Program, ProgramBuilder, Reg};

use crate::helpers::{init_chase_array, init_i64_array, Alloc};

/// Pure fetch/decode bandwidth: long chains of independent 1-cycle ALU ops.
#[must_use]
pub fn fetch_bound(n: u32) -> Program {
    let n = i64::from(n);
    let mut b = ProgramBuilder::new("micro-fetch");
    let i = Reg::int(1);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    for k in 0..12u8 {
        let r = Reg::int(2 + (k % 6));
        b.addi(r, r, 1); // all independent across names
    }
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("fetch_bound")
}

/// A single serial dependence chain: ILP = 1 regardless of core width.
#[must_use]
pub fn chain_bound(n: u32) -> Program {
    let n = i64::from(n);
    let mut b = ProgramBuilder::new("micro-chain");
    let (x, i) = (Reg::int(1), Reg::int(2));
    b.init_reg(x, 1);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    for _ in 0..8 {
        b.addi(x, x, 3);
    }
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("chain_bound")
}

/// Multiply-unit contention: more concurrent muls than any core has units.
#[must_use]
pub fn muldiv_bound(n: u32) -> Program {
    let n = i64::from(n);
    let mut b = ProgramBuilder::new("micro-muldiv");
    let i = Reg::int(1);
    b.init_reg(i, n);
    for k in 0..6u8 {
        b.li(Reg::int(2 + k), 3 + i64::from(k));
    }
    let head = b.bind_new_label();
    for k in 0..6u8 {
        let r = Reg::int(2 + k);
        b.mul(r, r, r);
        b.ori(r, r, 1); // keep values from collapsing to 0/1 chains
    }
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("muldiv_bound")
}

/// Memory-latency bound: a dependent pointer chase with a cache-resident
/// footprint (exposes pure L1 latency).
#[must_use]
pub fn latency_bound(n: u32) -> Program {
    let nodes = 64u64; // 512 B: L1-resident after the first lap
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("micro-latency");
    let next = a.words(nodes);
    init_chase_array(&mut b, next, nodes as usize, 0xE0);
    let (pn, i, cur, t) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    b.init_reg(pn, next as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    b.shli(t, cur, 3);
    b.add(t, t, pn);
    b.ld(cur, t, 0);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("latency_bound")
}

/// Mispredict bound: a branch on effectively-random data every iteration.
#[must_use]
pub fn mispredict_bound(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("micro-mispredict");
    let noise = a.words(n as u64);
    init_i64_array(&mut b, noise, n as usize, 0, 2, 0xE1);
    let (pn, i, v, acc) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    b.init_reg(pn, noise as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    let skip = b.label();
    b.ld(v, pn, 0);
    b.beq_label(v, Reg::ZERO, skip);
    b.addi(acc, acc, 1);
    b.bind(skip);
    b.addi(pn, pn, 8);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("mispredict_bound")
}

/// Window-pressure bound: long-latency loads with a trail of dependents —
/// performance tracks the issue-window size.
#[must_use]
pub fn window_bound(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("micro-window");
    // Large footprint with a non-unit stride the prefetcher can still
    // follow but whose lines miss to DRAM periodically.
    let data = a.words(1 << 16);
    let (p, i, v, acc) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
    b.init_reg(p, data as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    b.ld(v, p, 0);
    // Six dependents of the load occupy window slots.
    for _ in 0..6 {
        b.addi(v, v, 1);
    }
    b.add(acc, acc, v);
    b.addi(p, p, 8 * 40); // stride past the prefetch degree
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("window_bound")
}

/// Store→load forwarding bound: every load reads the previous store.
#[must_use]
pub fn forwarding_bound(n: u32) -> Program {
    let n = i64::from(n);
    let mut a = Alloc::new();
    let mut b = ProgramBuilder::new("micro-forward");
    let slot = a.words(4);
    let (p, i, v) = (Reg::int(1), Reg::int(2), Reg::int(3));
    b.init_reg(p, slot as i64);
    b.init_reg(i, n);
    let head = b.bind_new_label();
    b.ld(v, p, 0);
    b.addi(v, v, 1);
    b.st(v, p, 0);
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("forwarding_bound")
}

/// FP throughput bound: independent FP multiplies saturating the FPUs.
#[must_use]
pub fn fp_bound(n: u32) -> Program {
    let n = i64::from(n);
    let mut b = ProgramBuilder::new("micro-fp");
    let i = Reg::int(1);
    b.init_reg(i, n);
    for k in 0..6u8 {
        b.fli(Reg::fp(k), 1.0001 + f64::from(k) * 0.1);
    }
    let head = b.bind_new_label();
    for k in 0..6u8 {
        let r = Reg::fp(k);
        b.fmul(r, r, r);
    }
    b.addi(i, i, -1);
    b.bne_label(i, Reg::ZERO, head);
    b.halt();
    b.build().expect("fp_bound")
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_udg::{simulate_trace, CoreConfig};

    fn ipc(p: &Program, cfg: &CoreConfig) -> f64 {
        simulate_trace(&prism_sim::trace(p).unwrap(), cfg).ipc()
    }

    #[test]
    fn fetch_bound_scales_with_width() {
        let p = fetch_bound(400);
        let two = ipc(&p, &CoreConfig::ooo2());
        let six = ipc(&p, &CoreConfig::ooo6());
        assert!(two > 1.5, "OOO2 should sustain ~2 IPC: {two:.2}");
        assert!(
            six > 2.0 * two * 0.8,
            "width should pay off: {six:.2} vs {two:.2}"
        );
    }

    #[test]
    fn chain_bound_is_width_insensitive() {
        let p = chain_bound(400);
        let two = ipc(&p, &CoreConfig::ooo2());
        let six = ipc(&p, &CoreConfig::ooo6());
        assert!(
            (six / two) < 1.15,
            "chain must not scale: {two:.2} → {six:.2}"
        );
        assert!(two < 1.3, "serial chain IPC near 1: {two:.2}");
    }

    #[test]
    fn muldiv_bound_tracks_unit_count() {
        let p = muldiv_bound(400);
        // OOO2 has 1 mul unit, OOO4 has 2: muls/cycle should ~double.
        let c2 = simulate_trace(&prism_sim::trace(&p).unwrap(), &CoreConfig::ooo2()).cycles;
        let c4 = simulate_trace(&prism_sim::trace(&p).unwrap(), &CoreConfig::ooo4()).cycles;
        // Six 3-cycle self-chains: OOO2's single unit needs 6 cycles/iter,
        // OOO4's two units come down toward the chain bound of 3.
        let ratio = c2 as f64 / c4 as f64;
        assert!(ratio > 1.4, "2nd mul unit should show: {ratio:.2}");
    }

    #[test]
    fn latency_bound_ipc_matches_l1_latency() {
        // One chase = shl+add+ld(4cy)+2 loop ops ≈ 6-7 cycles per 5 insts.
        let p = latency_bound(500);
        let v = ipc(&p, &CoreConfig::ooo6());
        assert!(
            (0.5..1.2).contains(&v),
            "chase IPC {v:.2} outside L1-latency band"
        );
    }

    #[test]
    fn mispredict_bound_hurts_all_cores() {
        let p = mispredict_bound(600);
        let t = prism_sim::trace(&p).unwrap();
        // ~50% of iterations mispredict.
        assert!(t.stats.mispredicts as f64 > 0.25 * t.stats.cond_branches as f64 / 2.0);
        let v = simulate_trace(&t, &CoreConfig::ooo6()).ipc();
        assert!(v < 2.0, "random branches must cap IPC: {v:.2}");
    }

    #[test]
    fn window_bound_rewards_bigger_windows() {
        let p = window_bound(400);
        let t = prism_sim::trace(&p).unwrap();
        let mut small = CoreConfig::ooo4();
        small.window_size = 8;
        small.name = "OOO4w8".into();
        let cs = simulate_trace(&t, &small).cycles;
        let cb = simulate_trace(&t, &CoreConfig::ooo4()).cycles;
        assert!(cs > cb, "tiny window should be slower: {cs} vs {cb}");
    }

    #[test]
    fn forwarding_bound_serializes_through_memory() {
        let p = forwarding_bound(400);
        let v = ipc(&p, &CoreConfig::ooo6());
        assert!(v < 1.8, "store→load chain must serialize: {v:.2}");
    }

    #[test]
    fn fp_bound_tracks_fpu_count() {
        let p = fp_bound(400);
        let t = prism_sim::trace(&p).unwrap();
        let c2 = simulate_trace(&t, &CoreConfig::ooo2()).cycles; // 1 FPU
        let c6 = simulate_trace(&t, &CoreConfig::ooo6()).cycles; // 3 FPUs
                                                                 // Six 4-cycle self-chains: OOO2 is FPU-bound at 6 cycles/iter;
                                                                 // OOO6 reaches the 4-cycle chain bound — a 1.5x gap.
        assert!(
            c2 as f64 / c6 as f64 > 1.4,
            "FPU count should show: {c2} vs {c6}"
        );
    }
}
