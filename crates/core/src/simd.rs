//! The SIMD (loop auto-vectorization) TDG model — paper §3.2.
//!
//! **Analysis**: a loop vectorizes if consecutive iterations are
//! independent (no loop-carried memory dependences; carried registers are
//! only inductions/reductions), and the transformed body is expected to
//! stay under 2× the original dynamic instructions per iteration.
//!
//! **Transform**: µDG nodes from `VL` iterations are buffered; the first
//! becomes the vectorized iteration and the others are elided. If-converted
//! control becomes predicate/mask instructions, non-contiguous accesses are
//! scalarized (no scatter/gather hardware), and observed memory latency is
//! re-mapped onto the vector access (max over lanes).

use std::collections::{BTreeMap, HashMap, HashSet};

use prism_ir::{AccessPattern, Loop, LoopId, ProgramIr};
use prism_isa::{FuClass, StaticId};
use prism_sim::{DynInst, MemLevel};
use prism_udg::{CoreModel, ModelDep, ModelInst};

use crate::ExecCtx;

/// Hardware vector length in 64-bit lanes (256-bit SIMD, Table 4).
pub const VECTOR_LENGTH: usize = 4;

/// The SIMD analysis plan for one vectorizable loop.
#[derive(Debug, Clone)]
pub struct SimdPlan {
    /// The target loop.
    pub loop_id: LoopId,
    /// Vector length in lanes.
    pub vl: usize,
    /// Static memory ops with contiguous per-iteration access.
    pub contiguous: HashSet<StaticId>,
    /// Latch branch sids (kept, one per vector group).
    pub latch_branches: HashSet<StaticId>,
    /// Number of reduction registers (adds a short horizontal-reduce tail).
    pub reductions: u32,
    /// Expected dynamic instructions per original iteration after
    /// vectorization (profitability metric).
    pub est_insts_per_iter: f64,
    /// Original dynamic instructions per iteration.
    pub orig_insts_per_iter: f64,
}

impl SimdPlan {
    /// Static speedup estimate used by the Amdahl-tree scheduler.
    #[must_use]
    pub fn est_speedup(&self) -> f64 {
        (self.orig_insts_per_iter / self.est_insts_per_iter.max(0.25)).max(1.0)
    }
}

/// Runs the SIMD analyzer over every innermost loop (the paper's
/// `TDG Analysis` step), returning plans for the legal & profitable ones.
#[must_use]
pub fn analyze_simd(ir: &ProgramIr) -> HashMap<LoopId, SimdPlan> {
    let mut plans = HashMap::new();
    for l in ir.loops.innermost() {
        if let Some(plan) = analyze_loop(ir, l) {
            plans.insert(l.id, plan);
        }
    }
    plans
}

fn analyze_loop(ir: &ProgramIr, l: &Loop) -> Option<SimdPlan> {
    let mem = ir.mem.get(&l.id)?;
    let regs = ir.regs.get(&l.id)?;
    let paths = ir.paths.get(&l.id)?;
    // Legality: independent iterations.
    if !mem.vectorizable_memory() || !regs.vectorizable_dataflow() {
        return None;
    }
    // Need at least one full vector group on average.
    if l.avg_trip_count() < (2 * VECTOR_LENGTH) as f64 {
        return None;
    }
    if paths.iterations == 0 {
        return None;
    }

    // Classify memory ops and find latch branches.
    let mut contiguous = HashSet::new();
    let mut scalarized = 0u32;
    let mut mem_ops = 0u32;
    for &b in &l.blocks {
        for sid in ir.cfg.blocks[b as usize].inst_ids() {
            let inst = ir.program.inst(sid);
            if inst.op.is_mem() {
                mem_ops += 1;
                let pat = mem.pattern(sid);
                if pat.is_contiguous(inst.width) || pat == AccessPattern::Constant {
                    contiguous.insert(sid);
                } else {
                    scalarized += 1;
                }
            }
        }
    }
    let mut latch_branches = HashSet::new();
    for &latch in &l.latches {
        let end = ir.cfg.blocks[latch as usize].end;
        if ir.program.inst(end).op.is_cond_branch() {
            latch_branches.insert(end);
        }
    }

    // Profitability: expected post-transform instructions per iteration.
    // Vector group executes the union of the lanes' paths once, plus masks
    // for path divergence, plus VL scalar ops per scalarized access.
    let body_size = f64::from(l.static_size(&ir.cfg));
    let distinct_paths = paths.paths.len().max(1) as f64;
    let union_est = body_size
        .min(paths.avg_blocks_per_iter() / paths.paths[0].0.len().max(1) as f64 * body_size);
    let masks = (distinct_paths - 1.0).min(6.0);
    let scalar_extra = f64::from(scalarized) * (VECTOR_LENGTH as f64 - 1.0 + 1.0);
    let est_group = union_est + masks + scalar_extra;
    let est_insts_per_iter = est_group / VECTOR_LENGTH as f64;
    let orig = l.dyn_insts as f64 / l.iterations.max(1) as f64;
    if est_insts_per_iter > 2.0 * orig {
        return None; // the paper's 2× blow-up cutoff
    }
    let _ = mem_ops;

    let reductions = regs
        .carried
        .values()
        .filter(|c| matches!(c, prism_ir::CarriedClass::Reduction { .. }))
        .count() as u32;

    Some(SimdPlan {
        loop_id: l.id,
        vl: VECTOR_LENGTH,
        contiguous,
        latch_branches,
        reductions,
        est_insts_per_iter,
        orig_insts_per_iter: orig,
    })
}

/// Executes one loop-invocation region under the SIMD transform.
///
/// `region` must be the contiguous dynamic instructions of one invocation
/// of the planned loop. Core-pipeline effects go through `core`; value
/// availability and energy flow through `ctx`.
pub fn execute_simd(
    region: &[DynInst],
    plan: &SimdPlan,
    l: &Loop,
    ir: &ProgramIr,
    ctx: &mut ExecCtx<'_>,
    core: &mut CoreModel,
) {
    let header_start = ir.cfg.blocks[l.header as usize].start;
    // Split into iterations at header executions.
    let mut iters: Vec<(usize, usize)> = Vec::new();
    let mut cur = 0usize;
    for (i, d) in region.iter().enumerate() {
        if d.sid == header_start && i != cur {
            iters.push((cur, i));
            cur = i;
        }
    }
    iters.push((cur, region.len()));

    let mut idx = 0;
    while idx < iters.len() {
        let remaining = iters.len() - idx;
        if remaining >= plan.vl {
            let group = &iters[idx..idx + plan.vl];
            execute_group(region, group, plan, ctx, core);
            // Between groups every future dependence resolves through a
            // current last writer, so the window can be trimmed.
            ctx.trim_times_bounded();
            idx += plan.vl;
        } else {
            // Scalar epilogue: fewer than VL iterations remain.
            let (s, _) = iters[idx];
            let e = iters.last().unwrap().1;
            for d in &region[s..e] {
                let mi = ctx.model_inst(d);
                let t = core.issue(&mi);
                ctx.retire(d, t.complete);
            }
            break;
        }
    }

    // Horizontal reduction tail: log2(VL) shuffle+op pairs per reduction.
    for _ in 0..plan.reductions {
        for _ in 0..2 {
            let mi = ModelInst {
                fu: FuClass::Fp,
                latency: 3,
                deps: vec![ModelDep::data(core.now())],
                reads: 2,
                writes: 1,
                ..ModelInst::default()
            };
            core.issue(&mi);
            ctx.events.accel.vector_lane_ops += plan.vl as u64 / 2;
        }
    }
}

fn execute_group(
    region: &[DynInst],
    group: &[(usize, usize)],
    plan: &SimdPlan,
    ctx: &mut ExecCtx<'_>,
    core: &mut CoreModel,
) {
    let (g_start, g_end) = (group[0].0, group[group.len() - 1].1);
    let group_seq_range = (region[g_start].seq, region[g_end - 1].seq);

    // Pre-pass in original order: producer seqs per dyn inst, retiring
    // registers as we go so in-group dataflow resolves to in-group seqs.
    let mut dep_seqs: Vec<Vec<u64>> = Vec::with_capacity(g_end - g_start);
    for d in &region[g_start..g_end] {
        let inst = ctx.static_inst(d);
        dep_seqs.push(ctx.regs.sources(inst));
        ctx.regs.retire(inst, d.seq);
    }

    // Union of static instructions touched by the group's lanes, with the
    // lanes (dyn insts) per sid, in program (≈ topological body) order.
    let mut by_sid: BTreeMap<StaticId, Vec<usize>> = BTreeMap::new();
    let mut paths: HashSet<Vec<StaticId>> = HashSet::new();
    for (s, e) in group {
        let mut path = Vec::new();
        for (i, elem) in region.iter().enumerate().take(*e).skip(*s) {
            by_sid.entry(elem.sid).or_default().push(i);
            path.push(elem.sid);
        }
        paths.insert(path);
    }

    // Map a producer seq to an edge, applying the elision rule: in-group
    // forward references are the cross-lane dependences that vectorization
    // removes, so unset in-group producers contribute no edge.
    let resolve = |ctx: &ExecCtx<'_>, seq: u64| -> Option<ModelDep> {
        match ctx.p_time(seq) {
            Some(t) => Some(ModelDep::data(t)),
            None if seq >= group_seq_range.0 && seq <= group_seq_range.1 => None,
            None => None,
        }
    };

    for (&sid, lanes) in &by_sid {
        let inst = *ctx.program.inst(sid);
        let lane_count = lanes.len();

        // Merge (and dedup) the lanes' resolvable dependences.
        let mut deps: Vec<ModelDep> = Vec::new();
        let mut load_dep: Option<u64> = None;
        for &li in lanes {
            for &s in &dep_seqs[li - g_start] {
                if let Some(dep) = resolve(ctx, s) {
                    if !deps.contains(&dep) {
                        deps.push(dep);
                    }
                }
            }
            if let Some(m) = &region[li].mem {
                if !m.is_store {
                    if let Some(r) = ctx.mems.load_dependence(m.addr, m.width) {
                        load_dep = Some(load_dep.map_or(r, |c: u64| c.max(r)));
                    }
                }
            }
        }
        if let Some(r) = load_dep {
            deps.push(ModelDep::memory(r));
        }

        let complete;
        if inst.op.is_cond_branch() && !plan.latch_branches.contains(&sid) {
            // If-converted: becomes one predicate-setting instruction.
            let mi = ModelInst {
                fu: FuClass::Alu,
                latency: 1,
                deps,
                reads: 2,
                writes: 1,
                ..ModelInst::default()
            };
            complete = core.issue(&mi).complete;
            ctx.events.accel.mask_ops += 1;
        } else if inst.op.is_cond_branch() {
            // Latch branch: kept once per group.
            let mispredicted = lanes
                .iter()
                .any(|&li| region[li].branch.is_some_and(|b| b.mispredicted));
            let taken = lanes
                .iter()
                .any(|&li| region[li].branch.is_some_and(|b| b.taken));
            let mi = ModelInst {
                fu: FuClass::Alu,
                latency: 1,
                deps,
                is_cond_branch: true,
                mispredicted,
                branch_taken: taken,
                reads: 2,
                writes: 0,
                ..ModelInst::default()
            };
            complete = core.issue(&mi).complete;
        } else if inst.op.is_mem() && !plan.contiguous.contains(&sid) {
            // Scalarized access: one op per lane plus a shuffle. One
            // ModelInst is reused across lanes so the dep list is never
            // cloned; only the memory-dependent fields change per lane.
            let mut mi = ModelInst {
                fu: FuClass::Mem,
                deps,
                reads: 2,
                ..ModelInst::default()
            };
            let mut last = 0;
            for &li in lanes {
                let m = region[li].mem.expect("memory op");
                mi.latency = if m.is_store { 1 } else { u64::from(m.latency) };
                mi.mem_level = Some(m.level);
                mi.is_store = m.is_store;
                mi.writes = u8::from(!m.is_store);
                last = core.issue(&mi).complete;
            }
            let shuffle = ModelInst {
                fu: FuClass::Fp,
                latency: 1,
                deps: vec![ModelDep::data(last)],
                reads: 1,
                writes: 1,
                ..ModelInst::default()
            };
            complete = core.issue(&shuffle).complete;
            ctx.events.accel.mask_ops += 1;
        } else if inst.op.is_mem() {
            // One wide access: latency/level of the worst lane.
            let mut latency = 1u64;
            let mut level = MemLevel::L1;
            let mut is_store = false;
            for &li in lanes {
                let m = region[li].mem.expect("memory op");
                is_store = m.is_store;
                if !m.is_store {
                    latency = latency.max(u64::from(m.latency));
                }
                level = worst_level(level, m.level);
            }
            let mi = ModelInst {
                fu: FuClass::Mem,
                latency,
                deps,
                mem_level: Some(level),
                is_store,
                reads: 2,
                writes: u8::from(!is_store),
                ..ModelInst::default()
            };
            complete = core.issue(&mi).complete;
        } else {
            // Vector ALU/FP op (or a group-wide induction update).
            let mi = ModelInst {
                fu: inst.fu_class(),
                latency: u64::from(inst.op.latency()),
                deps,
                vector: lane_count > 1,
                reads: inst.sources().count() as u8,
                writes: u8::from(inst.dest().is_some()),
                ..ModelInst::default()
            };
            complete = core.issue(&mi).complete;
            ctx.events.accel.vector_lane_ops += lane_count as u64;
        }

        // All lanes' values become available at the vector op's completion.
        for &li in lanes {
            let d = &region[li];
            ctx.set_time(d.seq, complete);
            if let Some(m) = &d.mem {
                if m.is_store {
                    ctx.mems.record_store(m.addr, m.width, complete);
                }
            }
        }
    }

    // Mask/blend ops for path divergence within the group.
    for _ in 1..paths.len() {
        let mi = ModelInst {
            fu: FuClass::Fp,
            latency: 1,
            deps: vec![ModelDep::data(core.now())],
            reads: 2,
            writes: 1,
            ..ModelInst::default()
        };
        core.issue(&mi);
        ctx.events.accel.mask_ops += 1;
    }
}

/// Max of two memory levels (Dram > L2 > L1) — shared with the DP-CGRA
/// model's vectorized access collapsing.
pub(crate) fn worst_level_pub(a: MemLevel, b: MemLevel) -> MemLevel {
    worst_level(a, b)
}

fn worst_level(a: MemLevel, b: MemLevel) -> MemLevel {
    use MemLevel::*;
    match (a, b) {
        (Dram, _) | (_, Dram) => Dram,
        (L2, _) | (_, L2) => L2,
        _ => L1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    fn ir_of(build: impl FnOnce(&mut ProgramBuilder)) -> ProgramIr {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        ProgramIr::analyze(&t)
    }

    /// Streaming loop: out[i] = in[i] * 2.0
    fn streaming(b: &mut ProgramBuilder, n: i64) {
        let (pi, po, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let (x, k) = (Reg::fp(0), Reg::fp(1));
        b.init_reg(pi, 0x10000);
        b.init_reg(po, 0x24000);
        b.init_reg(i, n);
        b.fli(k, 2.0);
        let head = b.bind_new_label();
        b.fld(x, pi, 0);
        b.fmul(x, x, k);
        b.fst(x, po, 0);
        b.addi(pi, pi, 8);
        b.addi(po, po, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
    }

    #[test]
    fn streaming_loop_vectorizes_with_contiguous_accesses() {
        let ir = ir_of(|b| streaming(b, 64));
        let plans = analyze_simd(&ir);
        assert_eq!(plans.len(), 1);
        let plan = plans.values().next().unwrap();
        assert_eq!(plan.vl, VECTOR_LENGTH);
        assert_eq!(plan.contiguous.len(), 2, "both fld and fst are unit-stride");
        assert_eq!(plan.latch_branches.len(), 1);
        assert_eq!(plan.reductions, 0);
        assert!(plan.est_speedup() > 1.5, "est {:.2}", plan.est_speedup());
    }

    #[test]
    fn short_trip_count_loops_rejected() {
        // avg trip 4 < 2×VL: not worth vectorizing.
        let ir = ir_of(|b| streaming(b, 4));
        assert!(analyze_simd(&ir).is_empty());
    }

    #[test]
    fn recurrence_loops_rejected() {
        let ir = ir_of(|b| {
            let (x, i) = (Reg::int(1), Reg::int(2));
            b.init_reg(x, 3);
            b.init_reg(i, 64);
            let head = b.bind_new_label();
            b.mul(x, x, x);
            b.addi(x, x, 1);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert!(analyze_simd(&ir).is_empty());
    }

    #[test]
    fn gather_loop_plans_with_scalarized_access() {
        // Indexed gather: vectorizable dataflow, non-contiguous loads.
        let ir = ir_of(|b| {
            let (pidx, pv, i, idx) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
            let (x, acc) = (Reg::fp(0), Reg::fp(1));
            b.init_reg(pidx, 0x10000);
            b.init_reg(pv, 0x24000);
            b.init_reg(i, 64);
            // Pseudo-random-ish indices baked into memory.
            crateless_init(b, 0x10000, 64);
            let head = b.bind_new_label();
            b.ld(idx, pidx, 0);
            b.shli(idx, idx, 3);
            b.add(idx, idx, pv);
            b.fld(x, idx, 0);
            b.fadd(acc, acc, x);
            b.addi(pidx, pidx, 8);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        let plans = analyze_simd(&ir);
        assert_eq!(plans.len(), 1);
        let plan = plans.values().next().unwrap();
        // The index load is contiguous; the gather is not.
        assert_eq!(plan.contiguous.len(), 1);
        assert_eq!(plan.reductions, 1, "acc is a reduction");
    }

    fn crateless_init(b: &mut ProgramBuilder, addr: u64, n: usize) {
        let vals: Vec<i64> = (0..n as i64).map(|k| (k * 17 + 5) % 61).collect();
        b.init_words(addr, &vals);
    }

    #[test]
    fn worst_level_ordering() {
        use prism_sim::MemLevel::*;
        assert_eq!(worst_level(L1, L2), L2);
        assert_eq!(worst_level(Dram, L1), Dram);
        assert_eq!(worst_level(L1, L1), L1);
        assert_eq!(worst_level(L2, Dram), Dram);
    }
}
