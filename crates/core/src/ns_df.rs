//! The Non-Speculative Dataflow (SEED-like) TDG model — paper §3.2.
//!
//! **Analysis**: find fully-inlinable loops or loop nests that fit the
//! hardware budget (≤ 256 static compound instructions, no calls). Control
//! is converted to data dependences ("switch" instructions) via the
//! program dependence graph; instructions are scheduled onto compound
//! functional units (CFUs).
//!
//! **Transform**: the region leaves the core entirely (the core is
//! power-gated). Each instruction executes when its operands are ready
//! *and* its controlling branch has resolved — the non-speculative
//! serialization that is this BSA's drawback on control-critical code.
//! Extra edges model writeback-bus capacity and live-value transfer at
//! region boundaries.

use std::collections::HashMap;

use prism_ir::{Loop, LoopId, ProgramIr};
use prism_sim::DynInst;
use prism_udg::{CoreModel, ModelDep, ResourceTable};

use crate::ExecCtx;

/// Static compound-instruction budget (paper §3.1: "256 static compound
/// instructions").
pub const MAX_STATIC_OPS: u32 = 256;
/// Compound-FU issue slots per cycle.
pub const CFU_SLOTS: u32 = 8;
/// Cache ports on the NS-DF's own memory interface.
pub const MEM_PORTS: u32 = 2;
/// Writeback-bus transfers per cycle (banked, as in SEED).
pub const BUS_WIDTH: u32 = 4;
/// Instructions fused per compound op (size-based grouping, as in the
/// paper's BERET validation).
pub const GROUP_SIZE: u64 = 3;
/// Cycles to transfer live values at region entry/exit.
pub const LIVE_XFER: u64 = 8;

/// The NS-DF plan for one target loop (nest).
#[derive(Debug, Clone)]
pub struct NsDfPlan {
    /// The target loop (may be a non-innermost nest root).
    pub loop_id: LoopId,
    /// Static instructions in the nest.
    pub static_ops: u32,
    /// Longest dependence chain through one iteration's body.
    pub depth: u32,
    /// Static speedup estimate for the Amdahl-tree scheduler.
    pub est_speedup: f64,
    /// Cycles to transfer live values at region entry/exit (ablatable;
    /// defaults to [`LIVE_XFER`]).
    pub live_xfer: u64,
    /// Spill/fill memory ops bypassed by the fabric's operand storage
    /// (paper §2.7): these skip the memory ports entirely.
    pub spill_ops: std::collections::HashSet<prism_isa::StaticId>,
}

/// Runs the NS-DF analyzer over every loop (nests included).
#[must_use]
pub fn analyze_ns_df(ir: &ProgramIr) -> HashMap<LoopId, NsDfPlan> {
    let mut plans = HashMap::new();
    for l in &ir.loops.loops {
        if let Some(plan) = analyze_loop(ir, l) {
            plans.insert(l.id, plan);
        }
    }
    plans
}

fn analyze_loop(ir: &ProgramIr, l: &Loop) -> Option<NsDfPlan> {
    let static_ops = l.static_size(&ir.cfg);
    if static_ops > MAX_STATIC_OPS || l.has_calls(&ir.cfg, &ir.program) {
        return None;
    }
    if l.iterations < 8 || l.dyn_insts < 64 {
        return None; // not worth a region switch
    }
    // Depth of the body dependence chain (rough ILP measure).
    let mut def: HashMap<prism_isa::Reg, u32> = HashMap::new();
    let mut max_depth = 1u32;
    for &b in &l.blocks {
        for sid in ir.cfg.blocks[b as usize].inst_ids() {
            let inst = ir.program.inst(sid);
            let d = inst
                .sources()
                .filter_map(|s| def.get(&s))
                .max()
                .copied()
                .unwrap_or(0)
                + 1;
            if let Some(dst) = inst.dest() {
                def.insert(dst, d);
            }
            max_depth = max_depth.max(d);
        }
    }
    // Static estimate: dataflow exposes body_size/depth ILP, capped by CFU
    // slots; the Amdahl tree compares this against the core's width.
    let ilp = f64::from(static_ops) / f64::from(max_depth);
    let est_speedup = (ilp / 2.0).clamp(0.8, 3.0);
    let spill_ops = prism_ir::find_spills(&ir.program, &ir.cfg, l)
        .into_iter()
        .flat_map(|p| [p.store, p.load])
        .collect();
    Some(NsDfPlan {
        loop_id: l.id,
        static_ops,
        depth: max_depth,
        est_speedup,
        live_xfer: LIVE_XFER,
        spill_ops,
    })
}

/// How strongly an instruction is tied to control in dataflow mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlDep {
    /// Speculative: ignores control entirely (Trace-P hot path).
    None,
    /// Executes every iteration: waits only for the previous iteration's
    /// loop-continuation decision (the PDG places no other control
    /// dependence on it).
    IterationOnly,
    /// Control-dependent: waits for the most recent control decision.
    Full,
}

/// The shared dataflow timing engine: CFU slots, memory ports, and the
/// writeback bus. Used by both NS-DF (control enforced) and Trace-P
/// (speculative).
#[derive(Debug)]
pub struct DataflowEngine {
    cfus: ResourceTable,
    mem_ports: ResourceTable,
    bus: ResourceTable,
    /// Completion of the most recent control decision.
    pub last_ctrl: u64,
    /// Completion of the previous iteration's latch decision.
    pub iter_ctrl: u64,
    /// Region start (after live-in transfer).
    pub start: u64,
}

impl DataflowEngine {
    /// Creates an engine whose first op may not start before `start`.
    #[must_use]
    pub fn new(start: u64) -> Self {
        DataflowEngine {
            cfus: ResourceTable::new(CFU_SLOTS),
            mem_ports: ResourceTable::new(MEM_PORTS),
            bus: ResourceTable::new(BUS_WIDTH),
            last_ctrl: start,
            iter_ctrl: start,
            start,
        }
    }

    /// Marks an iteration boundary: the latch decision that permits the
    /// next iteration has completion time `latch_complete`.
    pub fn begin_iteration(&mut self, latch_complete: u64) {
        self.iter_ctrl = self.iter_ctrl.max(latch_complete);
    }

    /// Times one dynamic instruction in dataflow mode and returns its
    /// completion. `control` selects which control decision (if any) the
    /// instruction must wait for.
    pub fn issue(
        &mut self,
        d: &DynInst,
        deps: &[ModelDep],
        control: ControlDep,
        ctx: &mut ExecCtx<'_>,
    ) -> u64 {
        self.issue_with(d, deps, control, false, ctx)
    }

    /// Like [`DataflowEngine::issue`]; `bypass_mem` keeps an identified
    /// spill/fill in the fabric's operand storage instead of the cache.
    pub fn issue_with(
        &mut self,
        d: &DynInst,
        deps: &[ModelDep],
        control: ControlDep,
        bypass_mem: bool,
        ctx: &mut ExecCtx<'_>,
    ) -> u64 {
        let inst = *ctx.static_inst(d);
        let mut ready = self.start;
        for dep in deps {
            ready = ready.max(dep.ready);
        }
        match control {
            ControlDep::None => {}
            ControlDep::IterationOnly => ready = ready.max(self.iter_ctrl),
            ControlDep::Full => ready = ready.max(self.last_ctrl),
        }

        let (issue_at, latency) = if bypass_mem {
            // Spill bypass: the value never leaves operand storage.
            (self.cfus.acquire(ready), 1)
        } else if let Some(m) = &d.mem {
            let at = self.mem_ports.acquire(ready);
            let lat = if m.is_store { 1 } else { u64::from(m.latency) };
            // Shared cache hierarchy: accesses cost dcache energy.
            ctx.events.core.dcache_accesses += 1;
            match m.level {
                prism_sim::MemLevel::L1 => {}
                prism_sim::MemLevel::L2 => ctx.events.core.l2_accesses += 1,
                prism_sim::MemLevel::Dram => {
                    ctx.events.core.l2_accesses += 1;
                    ctx.events.core.dram_accesses += 1;
                }
            }
            (at, lat)
        } else {
            (self.cfus.acquire(ready), u64::from(inst.op.latency()))
        };

        // Writeback bus capacity.
        let complete = self.bus.acquire(issue_at + latency);

        if inst.op.is_control() {
            // Control→data conversion: a switch op steers dependents.
            self.last_ctrl = self.last_ctrl.max(complete);
            ctx.events.accel.cfu_ops += 1; // the switch op itself
        }
        ctx.events.accel.op_storage_accesses += 2;
        ctx.events.accel.writeback_bus_ops += 1;
        complete
    }
}

/// Executes one loop-nest region on the NS-DF unit.
///
/// Returns the region's completion cycle; the caller resumes the core at
/// `end + LIVE_XFER`.
pub fn execute_ns_df(
    region: &[DynInst],
    plan: &NsDfPlan,
    l: &prism_ir::Loop,
    ir: &prism_ir::ProgramIr,
    ctx: &mut ExecCtx<'_>,
    core: &mut CoreModel,
) -> u64 {
    let start = core.now() + plan.live_xfer;
    let mut engine = DataflowEngine::new(start);
    let mut arith_ops = 0u64;
    let mut end = start;

    // PDG approximation: blocks that execute on (essentially) every visit
    // to the region's header are control-dependent only on the iteration
    // decision; the rest wait for the most recent branch.
    let header_count = ir.cfg.blocks[l.header as usize].exec_count.max(1);
    let always_exec: std::collections::HashSet<prism_ir::BlockId> = l
        .blocks
        .iter()
        .copied()
        .filter(|&b| ir.cfg.blocks[b as usize].exec_count * 1000 >= header_count * 999)
        .collect();
    let header_start = ir.cfg.blocks[l.header as usize].start;

    for d in region {
        let inst = *ctx.static_inst(d);
        if d.sid == header_start {
            // New iteration: permitted once the previous latch resolved.
            engine.begin_iteration(engine.last_ctrl);
            // Dependences resolve per instruction against current last
            // writers, so the window can be trimmed between iterations.
            ctx.trim_times_bounded();
        }
        let mut deps: Vec<ModelDep> = ctx
            .producer_seqs(d.sid)
            .into_iter()
            .filter_map(|s| ctx.p_time(s).map(ModelDep::data))
            .collect();
        if let Some(m) = &d.mem {
            if !m.is_store {
                if let Some(r) = ctx.mems.load_dependence(m.addr, m.width) {
                    deps.push(ModelDep::memory(r));
                }
            }
        }
        let block = ir.cfg.block_of[d.sid as usize];
        let control = if always_exec.contains(&block) {
            ControlDep::IterationOnly
        } else {
            ControlDep::Full
        };
        let bypass = plan.spill_ops.contains(&d.sid);
        let complete = engine.issue_with(d, &deps, control, bypass, ctx);
        ctx.retire(d, complete);
        if !inst.op.is_mem() && !inst.op.is_control() {
            arith_ops += 1;
        }
        end = end.max(complete);
    }

    // Size-based compound grouping amortizes per-op energy.
    ctx.events.accel.cfu_ops += arith_ops.div_ceil(GROUP_SIZE);

    let resume = end + plan.live_xfer;
    core.stall_fetch_until(resume);
    resume
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    fn ir_of(build: impl FnOnce(&mut ProgramBuilder)) -> ProgramIr {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        ProgramIr::analyze(&t)
    }

    #[test]
    fn nested_loop_qualifies_as_a_whole() {
        let ir = ir_of(|b| {
            let (i, j, acc) = (Reg::int(1), Reg::int(2), Reg::int(3));
            b.init_reg(i, 16);
            let oh = b.bind_new_label();
            b.li(j, 16);
            let ih = b.bind_new_label();
            b.add(acc, acc, j);
            b.addi(j, j, -1);
            b.bne_label(j, Reg::ZERO, ih);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, oh);
            b.halt();
        });
        let plans = analyze_ns_df(&ir);
        // Both the nest root and the inner loop are candidates.
        assert_eq!(plans.len(), 2);
        for p in plans.values() {
            assert!(p.static_ops <= MAX_STATIC_OPS);
            assert!(p.est_speedup >= 0.8);
        }
    }

    #[test]
    fn loops_with_calls_rejected() {
        let ir = ir_of(|b| {
            let (i, lr) = (Reg::int(1), Reg::int(31));
            b.init_reg(i, 32);
            let f = b.label();
            let head = b.bind_new_label();
            b.call_label(lr, f);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
            b.bind(f);
            b.ret(lr);
        });
        let plans = analyze_ns_df(&ir);
        assert!(
            plans
                .values()
                .all(|p| { !ir.loops.loops[p.loop_id as usize].has_calls(&ir.cfg, &ir.program) }),
            "call-containing loops must not plan"
        );
    }

    #[test]
    fn dataflow_engine_respects_control_levels() {
        let t = {
            let mut b = ProgramBuilder::new("x");
            b.init_reg(Reg::int(1), 4);
            let head = b.bind_new_label();
            b.addi(Reg::int(1), Reg::int(1), -1);
            b.bne_label(Reg::int(1), Reg::ZERO, head);
            b.halt();
            prism_sim::trace(&b.build().unwrap()).unwrap()
        };
        let mut ctx = crate::ExecCtx::new(&t.program);
        let mut e = DataflowEngine::new(100);
        // A branch resolves late…
        let branch = &t.insts[1]; // the bne
        let c = e.issue(
            branch,
            &[ModelDep::data(150)],
            ControlDep::IterationOnly,
            &mut ctx,
        );
        assert!(c >= 150);
        assert!(e.last_ctrl >= c, "branch updates last_ctrl");
        // …full-control ops wait for it; iteration-only ops do not.
        let op = &t.insts[0];
        let full = e.issue(op, &[], ControlDep::Full, &mut ctx);
        assert!(full >= e.last_ctrl);
        let mut e2 = DataflowEngine::new(100);
        let free = e2.issue(op, &[], ControlDep::IterationOnly, &mut ctx);
        assert!(
            free < 150,
            "iteration-only op must not wait for unrelated control"
        );
    }

    #[test]
    fn bus_width_caps_throughput() {
        let t = {
            let mut b = ProgramBuilder::new("x");
            b.init_reg(Reg::int(1), 2);
            let head = b.bind_new_label();
            b.addi(Reg::int(1), Reg::int(1), -1);
            b.bne_label(Reg::int(1), Reg::ZERO, head);
            b.halt();
            prism_sim::trace(&b.build().unwrap()).unwrap()
        };
        let mut ctx = crate::ExecCtx::new(&t.program);
        let mut e = DataflowEngine::new(0);
        let op = &t.insts[0];
        // 4×BUS_WIDTH independent 1-cycle ops cannot all complete in one
        // cycle: the writeback bus spreads them.
        let mut completions = std::collections::HashMap::new();
        for _ in 0..(4 * BUS_WIDTH) {
            let c = e.issue(op, &[], ControlDep::None, &mut ctx);
            *completions.entry(c).or_insert(0u32) += 1;
        }
        for (cycle, n) in completions {
            assert!(n <= BUS_WIDTH, "cycle {cycle} wrote back {n} > {BUS_WIDTH}");
        }
    }
}

#[cfg(test)]
mod spill_tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    /// A loop that spills/fills through a frame slot every iteration.
    fn spilly_trace() -> prism_sim::Trace {
        let (sp, i, x, y) = (Reg::int(29), Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new("spilly");
        b.init_reg(sp, 0x8000);
        b.init_reg(i, 64);
        let head = b.bind_new_label();
        b.st(x, sp, -8);
        b.add(x, i, i);
        b.add(y, y, x);
        b.ld(x, sp, -8);
        b.add(y, y, x);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        prism_sim::trace(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn spill_pairs_enter_the_plan_and_bypass_the_cache() {
        let t = spilly_trace();
        let ir = prism_ir::ProgramIr::analyze(&t);
        let plans = analyze_ns_df(&ir);
        let plan = plans.values().next().expect("spilly loop plans");
        assert_eq!(plan.spill_ops.len(), 2, "store+load pair identified");

        // With the bypass, the NS-DF run performs far fewer dcache
        // accesses than the loop's dynamic memory ops.
        let mut a = crate::Assignment::none();
        a.set(plan.loop_id, crate::BsaKind::NsDf);
        let run = crate::run_exocore(
            &t,
            &ir,
            &prism_udg::CoreConfig::ooo2(),
            &crate::AccelPlans {
                ns_df: plans.clone(),
                ..crate::AccelPlans::default()
            },
            &a,
            &[crate::BsaKind::NsDf],
        );
        // 128 dynamic spill/fill ops exist; none should touch the cache.
        assert_eq!(
            run.events.core.dcache_accesses, 0,
            "spill traffic must stay in operand storage"
        );
    }
}
