//! Combined analysis plans and BSA→region assignments.

use std::collections::HashMap;

use prism_ir::{LoopId, ProgramIr};

use crate::dp_cgra::CgraPlan;
use crate::ns_df::NsDfPlan;
use crate::simd::SimdPlan;
use crate::trace_p::TracePPlan;
use crate::BsaKind;

/// The analysis plans of all four BSAs for one traced program.
#[derive(Debug, Clone, Default)]
pub struct AccelPlans {
    /// SIMD plans per vectorizable innermost loop.
    pub simd: HashMap<LoopId, SimdPlan>,
    /// DP-CGRA plans per sliceable loop.
    pub dp_cgra: HashMap<LoopId, CgraPlan>,
    /// NS-DF plans per offloadable loop nest.
    pub ns_df: HashMap<LoopId, NsDfPlan>,
    /// Trace-P plans per hot-trace loop.
    pub trace_p: HashMap<LoopId, TracePPlan>,
}

impl AccelPlans {
    /// Runs all four analyzers.
    #[must_use]
    pub fn analyze(ir: &ProgramIr) -> Self {
        AccelPlans {
            simd: crate::simd::analyze_simd(ir),
            dp_cgra: crate::dp_cgra::analyze_dp_cgra(ir),
            ns_df: crate::ns_df::analyze_ns_df(ir),
            trace_p: crate::trace_p::analyze_trace_p(ir),
        }
    }

    /// Whether BSA `kind` has a plan for loop `lid`.
    #[must_use]
    pub fn has(&self, kind: BsaKind, lid: LoopId) -> bool {
        match kind {
            BsaKind::Simd => self.simd.contains_key(&lid),
            BsaKind::DpCgra => self.dp_cgra.contains_key(&lid),
            BsaKind::NsDf => self.ns_df.contains_key(&lid),
            BsaKind::TraceP => self.trace_p.contains_key(&lid),
        }
    }

    /// The static speedup estimate a plan advertises (for the Amdahl tree).
    #[must_use]
    pub fn est_speedup(&self, kind: BsaKind, lid: LoopId) -> Option<f64> {
        match kind {
            BsaKind::Simd => self.simd.get(&lid).map(SimdPlan::est_speedup),
            BsaKind::DpCgra => self.dp_cgra.get(&lid).map(CgraPlan::est_speedup),
            BsaKind::NsDf => self.ns_df.get(&lid).map(|p| p.est_speedup),
            BsaKind::TraceP => self.trace_p.get(&lid).map(|p| p.est_speedup),
        }
    }
}

/// A scheduler's decision: which BSA (if any) executes each loop.
///
/// Assignments must be non-overlapping in the loop forest: if a loop is
/// assigned, none of its ancestors or descendants may be.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    /// Loop → chosen BSA.
    pub map: HashMap<LoopId, BsaKind>,
}

impl Assignment {
    /// Creates an empty (all-GPP) assignment.
    #[must_use]
    pub fn none() -> Self {
        Assignment::default()
    }

    /// Assigns loop `lid` to `kind`.
    pub fn set(&mut self, lid: LoopId, kind: BsaKind) {
        self.map.insert(lid, kind);
    }

    /// Checks the non-overlap invariant against the loop forest.
    #[must_use]
    pub fn is_well_formed(&self, ir: &ProgramIr) -> bool {
        for &lid in self.map.keys() {
            let mut cur = ir.loops.loops[lid as usize].parent;
            while let Some(p) = cur {
                if self.map.contains_key(&p) {
                    return false;
                }
                cur = ir.loops.loops[p as usize].parent;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    fn nested_trace() -> prism_sim::Trace {
        let (i, j, acc) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new("nest");
        b.init_reg(i, 8);
        let oh = b.bind_new_label();
        b.li(j, 16);
        let ih = b.bind_new_label();
        b.add(acc, acc, j);
        b.addi(j, j, -1);
        b.bne_label(j, Reg::ZERO, ih);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, oh);
        b.halt();
        prism_sim::trace(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn nested_assignment_violates_well_formedness() {
        let t = nested_trace();
        let ir = prism_ir::ProgramIr::analyze(&t);
        let inner = ir.loops.innermost().next().unwrap().id;
        let outer = ir
            .loops
            .loops
            .iter()
            .find(|l| !l.is_innermost())
            .unwrap()
            .id;
        let mut a = Assignment::none();
        a.set(inner, BsaKind::Simd);
        assert!(a.is_well_formed(&ir));
        a.set(outer, BsaKind::NsDf);
        assert!(!a.is_well_formed(&ir));
    }

    #[test]
    fn analyze_all_produces_nsdf_for_nest() {
        let t = nested_trace();
        let ir = prism_ir::ProgramIr::analyze(&t);
        let plans = AccelPlans::analyze(&ir);
        // The counted accumulation nest qualifies for NS-DF (small, no
        // calls) at both levels, and Trace-P for the inner loop (monotone
        // back edge).
        assert!(!plans.ns_df.is_empty());
        let inner = ir.loops.innermost().next().unwrap().id;
        assert!(plans.has(BsaKind::TraceP, inner));
        // The inner loop carries `acc = acc + j` (a reduction) and `j`
        // (induction): SIMD-legal dataflow, so a SIMD plan exists too.
        assert!(plans.has(BsaKind::Simd, inner));
        for kind in BsaKind::ALL {
            if plans.has(kind, inner) {
                assert!(plans.est_speedup(kind, inner).unwrap() > 0.0);
            }
        }
    }
}
