//! Execution units of an ExoCore and the BSA taxonomy of the paper's
//! Table 2.

use std::fmt;

/// The four behavior-specialized accelerators studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BsaKind {
    /// Short-vector SIMD: data-parallel loops with little control.
    Simd,
    /// Data-parallel CGRA (DySER-like): parallel loops with separable
    /// compute and memory.
    DpCgra,
    /// Non-speculative dataflow (SEED-like): nested loops with non-critical
    /// control.
    NsDf,
    /// Trace-speculative processor (BERET-like): inner loops with one hot
    /// path.
    TraceP,
}

impl BsaKind {
    /// All four BSAs, in the paper's S/D/N/T order.
    pub const ALL: [BsaKind; 4] = [
        BsaKind::Simd,
        BsaKind::DpCgra,
        BsaKind::NsDf,
        BsaKind::TraceP,
    ];

    /// One-letter code used in the paper's Figure 12 labels
    /// (S: SIMD, D: DP-CGRA, N: NS-DF, T: Trace-P).
    #[must_use]
    pub fn code(self) -> char {
        match self {
            BsaKind::Simd => 'S',
            BsaKind::DpCgra => 'D',
            BsaKind::NsDf => 'N',
            BsaKind::TraceP => 'T',
        }
    }

    /// The execution unit this BSA runs on.
    #[must_use]
    pub fn unit(self) -> ExecUnit {
        match self {
            BsaKind::Simd => ExecUnit::Simd,
            BsaKind::DpCgra => ExecUnit::DpCgra,
            BsaKind::NsDf => ExecUnit::NsDf,
            BsaKind::TraceP => ExecUnit::TraceP,
        }
    }
}

impl fmt::Display for BsaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BsaKind::Simd => "SIMD",
            BsaKind::DpCgra => "DP-CGRA",
            BsaKind::NsDf => "NS-DF",
            BsaKind::TraceP => "Trace-P",
        };
        f.write_str(s)
    }
}

/// Where a region of the program executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum ExecUnit {
    /// The general-purpose core.
    Gpp = 0,
    /// The SIMD datapath.
    Simd = 1,
    /// The data-parallel CGRA.
    DpCgra = 2,
    /// The non-speculative dataflow unit.
    NsDf = 3,
    /// The trace processor.
    TraceP = 4,
}

impl ExecUnit {
    /// Number of unit kinds.
    pub const COUNT: usize = 5;

    /// All units in breakdown order (GPP first, as in Fig. 13's legend).
    pub const ALL: [ExecUnit; ExecUnit::COUNT] = [
        ExecUnit::Gpp,
        ExecUnit::Simd,
        ExecUnit::DpCgra,
        ExecUnit::NsDf,
        ExecUnit::TraceP,
    ];
}

impl fmt::Display for ExecUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecUnit::Gpp => "GPP",
            ExecUnit::Simd => "SIMD",
            ExecUnit::DpCgra => "DP-CGRA",
            ExecUnit::NsDf => "NS-DF",
            ExecUnit::TraceP => "Trace-P",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_figure12_legend() {
        let codes: String = BsaKind::ALL.iter().map(|b| b.code()).collect();
        assert_eq!(codes, "SDNT");
    }

    #[test]
    fn units_are_distinct() {
        use std::collections::HashSet;
        let set: HashSet<usize> = ExecUnit::ALL.iter().map(|u| *u as usize).collect();
        assert_eq!(set.len(), ExecUnit::COUNT);
    }

    #[test]
    fn display_names() {
        assert_eq!(BsaKind::NsDf.to_string(), "NS-DF");
        assert_eq!(ExecUnit::Gpp.to_string(), "GPP");
        assert_eq!(BsaKind::TraceP.unit(), ExecUnit::TraceP);
    }
}
