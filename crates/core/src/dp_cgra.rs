//! The Data-Parallel CGRA (DySER-like) TDG model — paper §3.2.
//!
//! **Analysis**: a slicing pass separates each target loop's body into a
//! *computation subgraph* (offloaded to the CGRA) and an *access slice*
//! (loads, stores, address arithmetic, and control, which stay on the
//! core). Values crossing the interface become explicit communication
//! instructions. Loops with more communication than offloaded computation
//! are rejected. Vectorization legality is borrowed from SIMD; when legal,
//! the computation is cloned across iterations until the 64-FU fabric
//! fills.
//!
//! **Transform**: the core executes the access slice plus `comm.send` /
//! `comm.recv` instructions; the CGRA executes the computation subgraph in
//! a pipelined fashion. Two extra edge families model accelerator
//! pipelining (initiation interval between computation instances, in-order
//! completion), and dependence edges carry scheduling/routing delay. A
//! small configuration cache is modeled: entering a loop whose
//! configuration is not resident stalls the core while it loads.

use std::collections::{BTreeMap, HashMap, HashSet};

use prism_ir::{Loop, LoopId, ProgramIr};
use prism_isa::{FuClass, StaticId};
use prism_sim::DynInst;
use prism_udg::{CoreModel, ModelDep, ModelInst};

use crate::simd::VECTOR_LENGTH;
use crate::ExecCtx;

/// Number of functional units in the CGRA fabric (paper §3.1).
pub const CGRA_FUS: u32 = 64;
/// Per-hop scheduling/routing delay added on CGRA dependence edges.
pub const ROUTE_DELAY: u64 = 1;
/// Configurations resident in the config cache.
pub const CONFIG_CACHE_ENTRIES: usize = 4;
/// Cycles to load one configuration word; total config stall is
/// `offloaded ops × this`.
pub const CONFIG_CYCLES_PER_OP: u64 = 2;

/// The DP-CGRA plan for one target loop.
#[derive(Debug, Clone)]
pub struct CgraPlan {
    /// The target loop.
    pub loop_id: LoopId,
    /// Static instructions offloaded to the CGRA.
    pub offloaded: HashSet<StaticId>,
    /// Core→CGRA operand transfers needed per iteration (static count).
    pub sends: u32,
    /// CGRA→core result transfers needed per iteration.
    pub recvs: u32,
    /// Whether the loop is vectorizable (computation cloned across lanes).
    pub vectorized: bool,
    /// Lanes processed per computation instance.
    pub lanes: usize,
    /// Depth of the computation subgraph (longest dependence chain).
    pub depth: u32,
    /// Original dynamic instructions per iteration.
    pub orig_insts_per_iter: f64,
    /// Expected core instructions per iteration after offload.
    pub est_core_insts_per_iter: f64,
}

impl CgraPlan {
    /// Static speedup estimate for the Amdahl-tree scheduler.
    #[must_use]
    pub fn est_speedup(&self) -> f64 {
        (self.orig_insts_per_iter / self.est_core_insts_per_iter.max(0.25)).max(1.0)
    }
}

/// Runs the DP-CGRA analyzer over every innermost loop.
#[must_use]
pub fn analyze_dp_cgra(ir: &ProgramIr) -> HashMap<LoopId, CgraPlan> {
    let simd_legal = crate::simd::analyze_simd(ir);
    let mut plans = HashMap::new();
    for l in ir.loops.innermost() {
        if let Some(plan) = analyze_loop(ir, l, simd_legal.contains_key(&l.id)) {
            plans.insert(l.id, plan);
        }
    }
    plans
}

fn analyze_loop(ir: &ProgramIr, l: &Loop, vectorizable: bool) -> Option<CgraPlan> {
    let paths = ir.paths.get(&l.id)?;
    if paths.iterations == 0 || l.avg_trip_count() < 4.0 {
        return None;
    }
    // Table 2: DP-CGRA targets *parallel* loops with separable compute and
    // memory — iteration-serial loops cannot pipeline the fabric.
    if !vectorizable {
        return None;
    }
    let body: Vec<StaticId> = l
        .blocks
        .iter()
        .flat_map(|&b| ir.cfg.blocks[b as usize].inst_ids())
        .collect();
    if body.len() > 3 * CGRA_FUS as usize {
        return None; // cannot possibly fit
    }

    // Slicing: memory ops, branches, and (transitively) address-feeding
    // arithmetic stay on the core; the rest offloads.
    let mut on_core: HashSet<StaticId> = HashSet::new();
    for &sid in &body {
        let inst = ir.program.inst(sid);
        if inst.op.is_mem() || inst.op.is_control() {
            on_core.insert(sid);
        }
    }
    // Transitive closure: producers of core-side *addresses* and of branch
    // conditions move to the core. The def map is seeded with end-of-body
    // definitions so loop-carried producers (induction updates feeding the
    // next iteration's addresses) are found too. Iterate to fixpoint.
    let mut def_end: HashMap<prism_isa::Reg, StaticId> = HashMap::new();
    for &sid in &body {
        if let Some(d) = ir.program.inst(sid).dest() {
            def_end.insert(d, sid);
        }
    }
    loop {
        let mut changed = false;
        let mut def = def_end.clone(); // carried definitions visible first
        for &sid in &body {
            let inst = ir.program.inst(sid);
            // Core-side memory ops pin their address producers; core-side
            // control ops pin their condition producers.
            let pinned_srcs: Vec<prism_isa::Reg> = if on_core.contains(&sid) {
                if inst.op.is_mem() {
                    inst.src1.into_iter().collect()
                } else {
                    // Control: pin condition producers; arith: keep producers.
                    inst.sources().collect()
                }
            } else {
                Vec::new()
            };
            for src in pinned_srcs {
                if let Some(&p) = def.get(&src) {
                    if !on_core.contains(&p) && !ir.program.inst(p).op.is_mem() {
                        on_core.insert(p);
                        changed = true;
                    }
                }
            }
            if let Some(d) = inst.dest() {
                def.insert(d, sid);
            }
        }
        if !changed {
            break;
        }
    }
    let offloaded: HashSet<StaticId> = body
        .iter()
        .copied()
        .filter(|sid| !on_core.contains(sid))
        .collect();
    if offloaded.is_empty() {
        return None;
    }

    // Interface edges: each *value* crossing the boundary costs one
    // transfer per iteration, however many consumers it has on the other
    // side (the CGRA's operand network and the core's register file fan
    // out internally).
    let mut sent: HashSet<StaticId> = HashSet::new();
    let mut received: HashSet<StaticId> = HashSet::new();
    let mut def_side: HashMap<prism_isa::Reg, (StaticId, bool)> = HashMap::new();
    for &sid in &body {
        let inst = ir.program.inst(sid);
        let here_off = offloaded.contains(&sid);
        for src in inst.sources() {
            if let Some(&(producer, prod_off)) = def_side.get(&src) {
                if prod_off != here_off {
                    if here_off {
                        sent.insert(producer);
                    } else {
                        received.insert(producer);
                    }
                }
            }
            // Live-ins from outside the loop are sent once at region
            // entry and pipelined; ignored statically.
        }
        if let Some(d) = inst.dest() {
            def_side.insert(d, (sid, here_off));
        }
    }
    let (sends, recvs) = (sent.len() as u32, received.len() as u32);

    // Reject when communication dominates offloaded computation (§3.2).
    if u64::from(sends + recvs) > offloaded.len() as u64 {
        return None;
    }

    // Depth of the offloaded dependence chain.
    let mut depth_of: HashMap<StaticId, u32> = HashMap::new();
    let mut def: HashMap<prism_isa::Reg, StaticId> = HashMap::new();
    let mut max_depth = 1;
    for &sid in &body {
        let inst = ir.program.inst(sid);
        if offloaded.contains(&sid) {
            let d = inst
                .sources()
                .filter_map(|s| def.get(&s).and_then(|p| depth_of.get(p)))
                .max()
                .copied()
                .unwrap_or(0)
                + 1;
            depth_of.insert(sid, d);
            max_depth = max_depth.max(d);
        }
        if let Some(dst) = inst.dest() {
            def.insert(dst, sid);
        }
    }

    let lanes = if vectorizable {
        // Clone until the fabric fills or the max vector length is hit.
        let per_lane = offloaded.len().max(1);
        (CGRA_FUS as usize / per_lane).clamp(1, VECTOR_LENGTH)
    } else {
        1
    };

    let orig = l.dyn_insts as f64 / l.iterations.max(1) as f64;
    let core_side = (body.len() - offloaded.len()) as f64 + f64::from(sends + recvs);
    let est_core = if vectorizable {
        // Memory side also vectorizes (shared with the SIMD datapath).
        core_side / lanes as f64 + 1.0
    } else {
        core_side
    };

    Some(CgraPlan {
        loop_id: l.id,
        offloaded,
        sends,
        recvs,
        vectorized: vectorizable && lanes > 1,
        lanes,
        depth: max_depth,
        orig_insts_per_iter: orig,
        est_core_insts_per_iter: est_core,
    })
}

/// Runtime state of the DP-CGRA (configuration cache), persisted across
/// regions of one run.
#[derive(Debug, Clone, Default)]
pub struct CgraState {
    /// LRU list of resident loop configurations (most recent last).
    resident: Vec<LoopId>,
}

impl CgraState {
    /// Creates an empty configuration cache.
    #[must_use]
    pub fn new() -> Self {
        CgraState::default()
    }

    /// Touches `lid`; returns `true` if its configuration had to be loaded.
    pub fn touch(&mut self, lid: LoopId) -> bool {
        if let Some(pos) = self.resident.iter().position(|&l| l == lid) {
            self.resident.remove(pos);
            self.resident.push(lid);
            false
        } else {
            if self.resident.len() == CONFIG_CACHE_ENTRIES {
                self.resident.remove(0);
            }
            self.resident.push(lid);
            true
        }
    }
}

/// Executes one loop-invocation region under the DP-CGRA transform.
pub fn execute_dp_cgra(
    region: &[DynInst],
    plan: &CgraPlan,
    l: &Loop,
    ir: &ProgramIr,
    ctx: &mut ExecCtx<'_>,
    core: &mut CoreModel,
    state: &mut CgraState,
) {
    // Configuration check: a miss stalls the core while config streams in.
    if state.touch(plan.loop_id) {
        let stall = plan.offloaded.len() as u64 * CONFIG_CYCLES_PER_OP;
        core.stall_fetch_until(core.now() + stall);
        ctx.events.accel.cgra_config_words += plan.offloaded.len() as u64;
    }

    let header_start = ir.cfg.blocks[l.header as usize].start;
    let mut iters: Vec<(usize, usize)> = Vec::new();
    let mut cur = 0usize;
    for (i, d) in region.iter().enumerate() {
        if d.sid == header_start && i != cur {
            iters.push((cur, i));
            cur = i;
        }
    }
    iters.push((cur, region.len()));

    let group_size = if plan.vectorized { plan.lanes } else { 1 };
    // Pipelining edges: initiation interval between computation instances
    // and in-order completion (paper: "two additional edges").
    let ii = (plan.offloaded.len() as u64 / u64::from(CGRA_FUS).max(1)).max(1);
    let mut last_start = 0u64;
    let mut last_complete = 0u64;

    let mut idx = 0;
    while idx < iters.len() {
        let take = group_size.min(iters.len() - idx);
        let group = &iters[idx..idx + take];
        idx += take;
        let (g_start, g_end) = (group[0].0, group[group.len() - 1].1);
        let group_lo_seq = region[g_start].seq;
        let group_hi_seq = region[g_end - 1].seq;

        // Producer seqs with in-order register retirement.
        let mut dep_seqs: Vec<Vec<u64>> = Vec::with_capacity(g_end - g_start);
        for d in &region[g_start..g_end] {
            let inst = ctx.static_inst(d);
            dep_seqs.push(ctx.regs.sources(inst));
            ctx.regs.retire(inst, d.seq);
        }
        let resolve = |ctx: &ExecCtx<'_>, s: u64| -> Option<u64> {
            match ctx.p_time(s) {
                Some(t) => Some(t),
                None if s >= group_lo_seq && s <= group_hi_seq => None,
                None => None,
            }
        };

        // Union by sid, lanes per sid.
        let mut by_sid: BTreeMap<StaticId, Vec<usize>> = BTreeMap::new();
        for (s, e) in group {
            for (i, elem) in region.iter().enumerate().take(*e).skip(*s) {
                by_sid.entry(elem.sid).or_default().push(i);
            }
        }

        // Pass 1: core-side ops (access slice) that do not consume CGRA
        // results execute on the pipeline; consumers of offloaded values
        // (e.g. stores of results) are deferred until the CGRA instance
        // completes. Track the CGRA inputs' ready time from the values
        // actually produced here — not the core clock — so successive
        // groups pipeline.
        let mut cgra_input_ready = last_start; // II edge floor
        let mut core_value: HashMap<u64, u64> = HashMap::new();
        let consumes_offloaded = |lanes: &Vec<usize>, dep_seqs: &Vec<Vec<u64>>| -> bool {
            lanes.iter().any(|&li| {
                dep_seqs[li - g_start].iter().any(|&s| {
                    s >= group_lo_seq
                        && s <= group_hi_seq
                        && plan
                            .offloaded
                            .contains(&region[(s - group_lo_seq) as usize + g_start].sid)
                })
            })
        };
        let mut deferred: Vec<StaticId> = Vec::new();
        for (&sid, lanes) in &by_sid {
            if plan.offloaded.contains(&sid) {
                continue;
            }
            if consumes_offloaded(lanes, &dep_seqs) {
                deferred.push(sid);
                continue;
            }
            let inst = *ctx.program.inst(sid);
            let mut deps: Vec<ModelDep> = Vec::new();
            let mut load_dep: Option<u64> = None;
            for &li in lanes {
                for &s in &dep_seqs[li - g_start] {
                    if let Some(t) = resolve(ctx, s) {
                        let dep = ModelDep::data(t);
                        if !deps.contains(&dep) {
                            deps.push(dep);
                        }
                    }
                }
                if let Some(m) = &region[li].mem {
                    if !m.is_store {
                        if let Some(r) = ctx.mems.load_dependence(m.addr, m.width) {
                            load_dep = Some(load_dep.map_or(r, |c: u64| c.max(r)));
                        }
                    }
                }
            }
            if let Some(r) = load_dep {
                deps.push(ModelDep::memory(r));
            }

            // Vectorized memory ops collapse like SIMD; scalar otherwise.
            let collapse = plan.vectorized && inst.op.is_mem();
            let complete = if collapse || !inst.op.is_mem() {
                let (latency, mem_level, is_store) = if inst.op.is_mem() {
                    let mut lat = 1u64;
                    let mut lvl = prism_sim::MemLevel::L1;
                    let mut st = false;
                    for &li in lanes {
                        let m = region[li].mem.expect("mem op");
                        st = m.is_store;
                        if !m.is_store {
                            lat = lat.max(u64::from(m.latency));
                        }
                        lvl = crate::simd::worst_level_pub(lvl, m.level);
                    }
                    (lat, Some(lvl), st)
                } else {
                    (u64::from(inst.op.latency()), None, false)
                };
                let mispredicted = inst.op.is_cond_branch()
                    && lanes
                        .iter()
                        .any(|&li| region[li].branch.is_some_and(|b| b.mispredicted));
                let branch_taken = lanes
                    .iter()
                    .any(|&li| region[li].branch.is_some_and(|b| b.taken));
                let mi = ModelInst {
                    fu: inst.fu_class(),
                    latency,
                    deps,
                    mem_level,
                    is_store,
                    is_cond_branch: inst.op.is_cond_branch(),
                    mispredicted,
                    branch_taken,
                    reads: inst.sources().count() as u8,
                    writes: u8::from(inst.dest().is_some()),
                    ..ModelInst::default()
                };
                core.issue(&mi).complete
            } else {
                let mut last = 0;
                for &li in lanes {
                    let d = &region[li];
                    let mut mi = ctx.model_inst(d);
                    mi.deps.clear();
                    mi.deps.extend_from_slice(&deps);
                    if let Some(m) = &d.mem {
                        if !m.is_store {
                            if let Some(r) = ctx.mems.load_dependence(m.addr, m.width) {
                                mi.deps.push(ModelDep::memory(r));
                            }
                        }
                    }
                    last = core.issue(&mi).complete;
                }
                last
            };

            for &li in lanes {
                let d = &region[li];
                ctx.set_time(d.seq, complete);
                core_value.insert(d.seq, complete);
                cgra_input_ready = cgra_input_ready.max(complete);
                if let Some(m) = &d.mem {
                    if m.is_store {
                        ctx.mems.record_store(m.addr, m.width, complete);
                    }
                }
            }
        }

        // Sends: one comm instruction per interface value, dependent on
        // the values produced by this group's access slice.
        for _ in 0..plan.sends {
            let mi = ModelInst {
                fu: FuClass::Alu,
                latency: 1,
                deps: vec![ModelDep::data(cgra_input_ready)],
                reads: 1,
                writes: 0,
                ..ModelInst::default()
            };
            let t = core.issue(&mi).complete;
            cgra_input_ready = cgra_input_ready.max(t);
            ctx.events.accel.comm_sends += 1;
        }

        // Pass 2: the CGRA computation instance. Start respects the II
        // edge; completion adds per-hop routing delay along the depth.
        let start = cgra_input_ready.max(last_start + ii);
        let compute_latency: u64 = u64::from(plan.depth) * (1 + ROUTE_DELAY);
        let complete = (start + compute_latency).max(last_complete); // in-order completion
        last_start = start;
        last_complete = complete;
        for (&sid, lanes) in &by_sid {
            if !plan.offloaded.contains(&sid) {
                continue;
            }
            ctx.events.accel.cgra_ops += lanes.len() as u64;
            for &li in lanes {
                ctx.set_time(region[li].seq, complete);
            }
        }

        // Recvs: results return to the core.
        let mut recv_done = complete;
        for _ in 0..plan.recvs {
            let mi = ModelInst {
                fu: FuClass::Alu,
                latency: 1,
                deps: vec![ModelDep::data(complete)],
                reads: 0,
                writes: 1,
                ..ModelInst::default()
            };
            recv_done = recv_done.max(core.issue(&mi).complete);
            ctx.events.accel.comm_recvs += 1;
        }

        // Pass 2b: deferred consumers of the CGRA's results (typically the
        // result stores), now that offloaded values have times.
        for sid in deferred {
            let lanes = &by_sid[&sid];
            let inst = *ctx.program.inst(sid);
            let mut deps: Vec<ModelDep> = vec![ModelDep::data(recv_done)];
            for &li in lanes {
                for &s in &dep_seqs[li - g_start] {
                    if let Some(t) = resolve(ctx, s) {
                        let dep = ModelDep::data(t);
                        if !deps.contains(&dep) {
                            deps.push(dep);
                        }
                    }
                }
            }
            let collapse = plan.vectorized && inst.op.is_mem();
            // One ModelInst reused across lanes: only the memory-dependent
            // fields change per lane, so the dep list is never cloned.
            let mut mi = ModelInst {
                fu: inst.fu_class(),
                deps,
                reads: inst.sources().count() as u8,
                writes: u8::from(inst.dest().is_some()),
                ..ModelInst::default()
            };
            let lane_mem = |mi: &mut ModelInst, m: Option<&prism_sim::MemRecord>| {
                (mi.latency, mi.mem_level, mi.is_store) = match m {
                    Some(m) if m.is_store => (1, Some(m.level), true),
                    Some(m) => (u64::from(m.latency), Some(m.level), false),
                    None => (u64::from(inst.op.latency()), None, false),
                };
            };
            let complete = if collapse {
                lane_mem(&mut mi, region[lanes[0]].mem.as_ref());
                core.issue(&mi).complete
            } else {
                let mut last = 0;
                for &li in lanes {
                    lane_mem(&mut mi, region[li].mem.as_ref());
                    last = core.issue(&mi).complete;
                }
                last
            };
            for &li in lanes {
                let d = &region[li];
                ctx.set_time(d.seq, complete);
                if let Some(m) = &d.mem {
                    if m.is_store {
                        ctx.mems.record_store(m.addr, m.width, complete);
                    }
                }
            }
        }

        // Between groups every future dependence resolves through a
        // current last writer, so the window can be trimmed.
        ctx.trim_times_bounded();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    fn ir_of(build: impl FnOnce(&mut ProgramBuilder)) -> ProgramIr {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        ProgramIr::analyze(&t)
    }

    /// Compute-heavy data-parallel loop (good CGRA target).
    fn separable(b: &mut ProgramBuilder, n: i64) {
        let (pi, po, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let (x, y, z) = (Reg::fp(0), Reg::fp(1), Reg::fp(2));
        b.init_reg(pi, 0x10000);
        b.init_reg(po, 0x24000);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        b.fld(x, pi, 0);
        b.fmul(y, x, x);
        b.fadd(y, y, x);
        b.fmul(z, y, y);
        b.fsub(z, z, x);
        b.fst(z, po, 0);
        b.addi(pi, pi, 8);
        b.addi(po, po, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
    }

    #[test]
    fn separable_loop_slices_correctly() {
        let ir = ir_of(|b| separable(b, 64));
        let plans = analyze_dp_cgra(&ir);
        assert_eq!(plans.len(), 1);
        let p = plans.values().next().unwrap();
        // The four FP arithmetic ops offload; memory + control + induction
        // address arithmetic stays on the core.
        assert_eq!(p.offloaded.len(), 4, "offloaded: {:?}", p.offloaded);
        assert!(
            p.vectorized && p.lanes > 1,
            "data-parallel loop should clone lanes"
        );
        assert!(
            p.depth >= 3,
            "fmul→fadd→fmul→fsub chain has depth ≥3, got {}",
            p.depth
        );
        assert!(u64::from(p.sends + p.recvs) <= p.offloaded.len() as u64);
        assert!(p.est_speedup() > 1.0);
    }

    #[test]
    fn serial_loop_rejected_as_not_data_parallel() {
        // Table 2: DP-CGRA needs parallel loops.
        let ir = ir_of(|b| {
            let (x, i) = (Reg::fp(0), Reg::int(1));
            b.init_reg(i, 64);
            b.fli(x, 1.0);
            let head = b.bind_new_label();
            b.fmul(x, x, x);
            b.fadd(x, x, x);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert!(analyze_dp_cgra(&ir).is_empty());
    }

    #[test]
    fn communication_dominated_loop_rejected() {
        // One offloadable op but two interface crossings per iteration:
        // comm > compute ⇒ reject (§3.2).
        let ir = ir_of(|b| {
            let (pi, po, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
            let (x,) = (Reg::fp(0),);
            b.init_reg(pi, 0x10000);
            b.init_reg(po, 0x24000);
            b.init_reg(i, 64);
            let head = b.bind_new_label();
            b.fld(x, pi, 0);
            b.fmul(x, x, x); // single compute op between load and store
            b.fst(x, po, 0);
            b.addi(pi, pi, 8);
            b.addi(po, po, 8);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert!(
            analyze_dp_cgra(&ir).is_empty(),
            "1 offloaded op with 2 comm crossings must be rejected"
        );
    }

    #[test]
    fn config_cache_is_lru() {
        let mut st = CgraState::new();
        for lid in 0..CONFIG_CACHE_ENTRIES as u32 {
            assert!(st.touch(lid), "cold config loads");
        }
        // All resident; touching again hits.
        for lid in 0..CONFIG_CACHE_ENTRIES as u32 {
            assert!(!st.touch(lid));
        }
        // A new entry evicts the least recently used (loop 0).
        assert!(st.touch(99));
        assert!(st.touch(0), "loop 0 was evicted");
        // 1 was evicted by re-loading 0; 2 and 3 remain.
        assert!(!st.touch(3));
    }
}
