//! # prism-tdg
//!
//! The **Transformable Dependence Graph** — the central contribution of
//! *Analyzing Behavior Specialized Acceleration* (ASPLOS 2016),
//! reimplemented in Rust.
//!
//! A TDG couples the µDG of a recorded execution (`prism-udg`) with the
//! reconstructed program IR (`prism-ir`). Modeling an accelerator is then a
//! *graph transformation*: an analyzer pass decides which regions can
//! legally and profitably specialize (the "plan"), and a transform rewrites
//! the region's dependences to model the accelerated execution.
//!
//! This crate provides the analyzer+transform pairs for:
//!
//! * [`fma`] — the paper's Figure 4 worked example,
//! * [`simd`] — loop auto-vectorization (§3.2 "SIMD TDG"),
//! * [`dp_cgra`] — the DySER-like data-parallel CGRA,
//! * [`ns_df`] — the SEED-like non-speculative dataflow unit,
//! * [`trace_p`] — the BERET-like trace-speculative processor,
//!
//! plus the combined-run machinery ([`run_exocore`]) that stitches core and
//! accelerator regions into one timeline — the paper's "Core+Accelerator
//! TDG".

#![warn(missing_docs)]

mod ctx;
pub mod dp_cgra;
pub mod fma;
pub mod ns_df;
mod plan;
mod runner;
pub mod simd;
pub mod trace_p;
mod unit;

pub use ctx::{ExecCtx, TimelineSample};
pub use plan::{AccelPlans, Assignment};
pub use runner::{price_exocore, run_exocore, run_exocore_timing, ExoRunResult, ExoTiming};
pub use unit::{BsaKind, ExecUnit};
