//! The combined Core+Accelerator TDG evaluation: stitches general-core and
//! BSA regions into one timeline (the paper's Fig. 4(e) at program scale).

use prism_energy::{AccelAreas, EnergyBreakdown, EnergyEvents, EnergyModel};
use prism_ir::{BlockId, LoopId, ProgramIr};
use prism_sim::Trace;
use prism_udg::{CoreConfig, CoreModel};

use crate::dp_cgra::CgraState;
use crate::{AccelPlans, Assignment, BsaKind, ExecCtx, ExecUnit, TimelineSample};

/// Cycles charged when execution migrates between the core and an offload
/// BSA (in addition to live-value transfer inside the BSA models).
const SWITCH_PENALTY: u64 = 4;

/// GPP instructions between completion-time window trims. Trimming is only
/// legal where no region model holds captured producer seqs, i.e. in the
/// plain-core stream and at region boundaries.
const GPP_TRIM_INTERVAL: u64 = 4096;

/// Result of a combined core+accelerator run.
#[derive(Debug, Clone)]
pub struct ExoRunResult {
    /// Core configuration name.
    pub config_name: String,
    /// BSAs present in the design (for area/leakage accounting).
    pub accels_present: Vec<BsaKind>,
    /// Total cycles.
    pub cycles: u64,
    /// Original-trace instructions covered.
    pub insts: u64,
    /// Accumulated energy events (core + accelerators).
    pub events: EnergyEvents,
    /// Priced energy.
    pub energy: EnergyBreakdown,
    /// Total design area (core + present BSAs), mm².
    pub area_mm2: f64,
    /// Cycles attributed per unit (Fig. 13 exec-time breakdown).
    pub unit_cycles: [u64; ExecUnit::COUNT],
    /// Original instructions attributed per unit.
    pub unit_insts: [u64; ExecUnit::COUNT],
    /// Energy attributed per unit (Fig. 13 energy breakdown): region-level
    /// core-pipeline + accelerator dynamic energy, plus a cycle-share of
    /// leakage.
    pub unit_energy: [f64; ExecUnit::COUNT],
    /// Region-end samples (Fig. 14 switching timeline).
    pub timeline: Vec<TimelineSample>,
    /// Trace-P iterations replayed on the host.
    pub trace_replays: u64,
}

impl ExoRunResult {
    /// Instructions per cycle (relative to original-trace instructions).
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Fraction of original instructions left on the general core.
    #[must_use]
    pub fn unaccelerated_fraction(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.unit_insts[ExecUnit::Gpp as usize] as f64 / self.insts as f64
        }
    }
}

/// The accelerator-independent half of an ExoCore evaluation: everything
/// [`run_exocore`] computes that depends only on the (workload, core,
/// assignment) triple — node times, cycle/instruction attribution, energy
/// *events*, and the switching timeline — but not on which BSAs are
/// physically present. Pricing (area, leakage, energy) is layered on by
/// [`price_exocore`].
///
/// Because Oracle scheduling picks the same assignment for many of the 16
/// BSA subsets of a core, a DSE can compute one `ExoTiming` per distinct
/// assignment and re-price it per subset instead of re-walking the trace.
#[derive(Debug, Clone)]
pub struct ExoTiming {
    /// Total cycles.
    pub cycles: u64,
    /// Original-trace instructions covered.
    pub insts: u64,
    /// Accumulated energy events (core + accelerators).
    pub events: EnergyEvents,
    /// Cycles attributed per unit (GPP already holds the remainder).
    pub unit_cycles: [u64; ExecUnit::COUNT],
    /// Original instructions attributed per unit.
    pub unit_insts: [u64; ExecUnit::COUNT],
    /// Per-unit accelerator events.
    pub unit_accel: [prism_energy::AccelEvents; ExecUnit::COUNT],
    /// Per-unit core-pipeline events (GPP holds total minus claimed).
    pub unit_core: [prism_energy::CoreEvents; ExecUnit::COUNT],
    /// Region-end samples (Fig. 14 switching timeline).
    pub timeline: Vec<TimelineSample>,
    /// Trace-P iterations replayed on the host.
    pub trace_replays: u64,
}

/// Evaluates `trace` on an ExoCore: `core_cfg` plus the BSAs in
/// `accels_present`, with regions assigned per `assignment`.
///
/// Equivalent to [`run_exocore_timing`] followed by [`price_exocore`]
/// (bit-identical, including float-operation order).
///
/// # Panics
///
/// Panics if the assignment is not well-formed (overlapping loops) or
/// assigns a BSA without a plan.
#[must_use]
pub fn run_exocore(
    trace: &Trace,
    ir: &ProgramIr,
    core_cfg: &CoreConfig,
    plans: &AccelPlans,
    assignment: &Assignment,
    accels_present: &[BsaKind],
) -> ExoRunResult {
    for &kind in assignment.map.values() {
        assert!(
            accels_present.contains(&kind),
            "assignment to absent accelerator {kind}"
        );
    }
    let timing = run_exocore_timing(trace, ir, core_cfg, plans, assignment);
    price_exocore(&timing, core_cfg, accels_present)
}

/// The trace-walking half of [`run_exocore`]: computes every
/// accelerator-presence-independent quantity for one
/// (trace, core, assignment) triple.
///
/// # Panics
///
/// Panics if the assignment is not well-formed (overlapping loops) or
/// assigns a BSA without a plan.
#[must_use]
pub fn run_exocore_timing(
    trace: &Trace,
    ir: &ProgramIr,
    core_cfg: &CoreConfig,
    plans: &AccelPlans,
    assignment: &Assignment,
) -> ExoTiming {
    assert!(assignment.is_well_formed(ir), "overlapping loop assignment");
    for (&lid, &kind) in &assignment.map {
        assert!(
            plans.has(kind, lid),
            "assignment without plan: {kind} @ loop {lid}"
        );
    }

    // Per-block: the assigned (loop, BSA) whose region the block belongs
    // to, resolved to the outermost assigned ancestor.
    let mut assigned_of_block: Vec<Option<(LoopId, BsaKind)>> = vec![None; ir.cfg.len()];
    for (b, slot) in assigned_of_block.iter_mut().enumerate() {
        let mut cur = ir.loops.loop_of_block[b];
        let mut found = None;
        while let Some(l) = cur {
            if let Some(&kind) = assignment.map.get(&l) {
                found = Some((l, kind));
            }
            cur = ir.loops.loops[l as usize].parent;
        }
        *slot = found;
    }
    let block_of = |sid: u32| -> BlockId { ir.cfg.block_of[sid as usize] };
    let in_loop = |lid: LoopId, b: BlockId| -> bool {
        ir.loops.loops[lid as usize]
            .blocks
            .binary_search(&b)
            .is_ok()
    };

    let mut core = CoreModel::new(core_cfg);
    let mut ctx = ExecCtx::new(&trace.program);
    let mut scratch = prism_udg::ModelInst::default();
    let mut cgra_state = CgraState::new();
    let mut trace_replays = 0u64;
    let mut last_accel_end = 0u64;
    let mut unit_accel = [prism_energy::AccelEvents::default(); ExecUnit::COUNT];
    let mut unit_core = [prism_energy::CoreEvents::default(); ExecUnit::COUNT];
    let mut gpp_seg_start_cycle = 0u64;
    let mut gpp_seg_insts = 0u64;

    let mut i = 0usize;
    while i < trace.insts.len() {
        let d = &trace.insts[i];
        let b = block_of(d.sid);
        if let Some((lid, kind)) = assigned_of_block[b as usize] {
            // Close the open GPP segment.
            let now = core.now();
            if gpp_seg_insts > 0 {
                ctx.attribute(
                    ExecUnit::Gpp,
                    gpp_seg_insts,
                    d.seq.saturating_sub(1),
                    gpp_seg_start_cycle,
                    now,
                );
                gpp_seg_insts = 0;
            }

            // Find the contiguous region: all insts while inside the loop.
            let start_idx = i;
            let mut end_idx = i;
            while end_idx < trace.insts.len() && in_loop(lid, block_of(trace.insts[end_idx].sid)) {
                end_idx += 1;
            }
            let region = &trace.insts[start_idx..end_idx];
            let l = &ir.loops.loops[lid as usize];
            let start_cycle = core.now();
            let accel_before = ctx.events.accel;
            let shared_core_before = ctx.events.core;
            let pipe_before = *core.events();

            let end_cycle = match kind {
                BsaKind::Simd => {
                    let plan = &plans.simd[&lid];
                    crate::simd::execute_simd(region, plan, l, ir, &mut ctx, &mut core);
                    core.now()
                }
                BsaKind::DpCgra => {
                    let plan = &plans.dp_cgra[&lid];
                    crate::dp_cgra::execute_dp_cgra(
                        region,
                        plan,
                        l,
                        ir,
                        &mut ctx,
                        &mut core,
                        &mut cgra_state,
                    );
                    core.now()
                }
                BsaKind::NsDf => {
                    core.stall_fetch_until(core.now() + SWITCH_PENALTY);
                    let plan = &plans.ns_df[&lid];
                    crate::ns_df::execute_ns_df(region, plan, l, ir, &mut ctx, &mut core)
                }
                BsaKind::TraceP => {
                    core.stall_fetch_until(core.now() + SWITCH_PENALTY);
                    let plan = &plans.trace_p[&lid];
                    let (end, replays) =
                        crate::trace_p::execute_trace_p(region, plan, l, ir, &mut ctx, &mut core);
                    trace_replays += replays;
                    end
                }
            };
            last_accel_end = last_accel_end.max(end_cycle);
            let u = kind.unit() as usize;
            unit_accel[u].merge(&ctx.events.accel.since(&accel_before));
            unit_core[u].merge(&ctx.events.core.since(&shared_core_before));
            unit_core[u].merge(&core.events().since(&pipe_before));
            ctx.attribute(
                kind.unit(),
                region.len() as u64,
                region.last().map_or(d.seq, |r| r.seq),
                start_cycle,
                end_cycle,
            );
            gpp_seg_start_cycle = end_cycle;
            ctx.trim_times();
            i = end_idx;
        } else {
            ctx.model_inst_into(d, &mut scratch);
            let t = core.issue(&scratch);
            ctx.retire(d, t.complete);
            gpp_seg_insts += 1;
            if gpp_seg_insts.is_multiple_of(GPP_TRIM_INTERVAL) {
                ctx.trim_times();
            }
            i += 1;
        }
    }
    let cycles = core.now().max(last_accel_end);
    if gpp_seg_insts > 0 {
        ctx.attribute(
            ExecUnit::Gpp,
            gpp_seg_insts,
            trace.insts.last().map_or(0, |d| d.seq),
            gpp_seg_start_cycle,
            cycles,
        );
    }

    // GPP cycles = remainder, so the breakdown sums to the total.
    let accel_cycles: u64 = ctx.unit_cycles[1..].iter().sum();
    ctx.unit_cycles[ExecUnit::Gpp as usize] = cycles.saturating_sub(accel_cycles);

    // Energy events: core pipeline events from the model, accelerator +
    // shared-cache events from the context.
    let mut events = ctx.events;
    events.core.merge(core.events());
    // GPP's core events = total minus what regions claimed.
    {
        let mut claimed = prism_energy::CoreEvents::default();
        for unit in unit_core.iter().take(ExecUnit::COUNT).skip(1) {
            claimed.merge(unit);
        }
        unit_core[ExecUnit::Gpp as usize] = events.core.since(&claimed);
    }

    ExoTiming {
        cycles,
        insts: trace.len() as u64,
        events,
        unit_cycles: ctx.unit_cycles,
        unit_insts: ctx.unit_insts,
        unit_accel,
        unit_core,
        timeline: ctx.timeline,
        trace_replays,
    }
}

/// Prices an [`ExoTiming`] for a design where `accels_present` are
/// physically present: area, leakage with dark-silicon gating, the energy
/// breakdown, and the per-unit energy attribution. Pure arithmetic — no
/// trace walk — and bit-identical to the corresponding [`run_exocore`]
/// tail (same float operations in the same order).
#[must_use]
pub fn price_exocore(
    timing: &ExoTiming,
    core_cfg: &CoreConfig,
    accels_present: &[BsaKind],
) -> ExoRunResult {
    let cycles = timing.cycles;
    let events = timing.events;
    let unit_core = &timing.unit_core;
    let unit_accel = &timing.unit_accel;
    let model = EnergyModel::new();
    let areas = AccelAreas::new();
    let core_area = core_cfg.area_mm2();
    let accel_area: f64 = accels_present
        .iter()
        .map(|k| match k {
            BsaKind::Simd => areas.simd,
            BsaKind::DpCgra => areas.dp_cgra,
            BsaKind::NsDf => areas.ns_df,
            BsaKind::TraceP => areas.trace_p,
        })
        .sum();
    // Leakage with dark-silicon power gating: the core is partially gated
    // while NS-DF / Trace-P regions run; each accelerator leaks fully only
    // while active and retains 10% sleep leakage otherwise.
    let offload_cycles = (timing.unit_cycles[ExecUnit::NsDf as usize]
        + timing.unit_cycles[ExecUnit::TraceP as usize])
        .min(cycles);
    let mut leakage =
        model.leakage(core_area, cycles) - model.leakage(core_area * 0.65, offload_cycles);
    let areas_of = |k: &BsaKind| match k {
        BsaKind::Simd => areas.simd,
        BsaKind::DpCgra => areas.dp_cgra,
        BsaKind::NsDf => areas.ns_df,
        BsaKind::TraceP => areas.trace_p,
    };
    for k in accels_present {
        let active = timing.unit_cycles[k.unit() as usize].min(cycles);
        leakage +=
            model.leakage(areas_of(k), active) + 0.1 * model.leakage(areas_of(k), cycles - active);
    }
    let energy = EnergyBreakdown {
        core_dynamic: model.core_dynamic(&events.core, &core_cfg.energy_config()),
        accel_dynamic: model.accel_dynamic(&events.accel),
        leakage: leakage.max(0.0),
    };

    // Per-unit energy: each unit's pipeline + accelerator dynamic energy
    // plus a cycle-proportional share of leakage.
    let mut unit_energy = [0.0f64; ExecUnit::COUNT];
    let ecfg = core_cfg.energy_config();
    for u in 0..ExecUnit::COUNT {
        let share = if cycles == 0 {
            0.0
        } else {
            timing.unit_cycles[u] as f64 / cycles as f64
        };
        unit_energy[u] = model.core_dynamic(&unit_core[u], &ecfg)
            + model.accel_dynamic(&unit_accel[u])
            + energy.leakage * share;
    }

    ExoRunResult {
        config_name: core_cfg.name.clone(),
        accels_present: accels_present.to_vec(),
        cycles,
        insts: timing.insts,
        events,
        energy,
        area_mm2: core_area + accel_area,
        unit_cycles: timing.unit_cycles,
        unit_insts: timing.unit_insts,
        unit_energy,
        timeline: timing.timeline.clone(),
        trace_replays: timing.trace_replays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{Program, ProgramBuilder, Reg};
    use prism_udg::simulate_trace;

    /// Vectorizable streaming kernel: c[i] = a[i]*b[i] + c[i].
    fn dp_kernel(n: i64) -> Program {
        let (pa, pb, pc, i) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let (fa, fb, fc, ft) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3));
        let mut b = ProgramBuilder::new("dp");
        b.init_reg(pa, 0x10000);
        b.init_reg(pb, 0x24000);
        b.init_reg(pc, 0x38000);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        b.fld(fa, pa, 0);
        b.fld(fb, pb, 0);
        b.fmul(ft, fa, fb);
        b.fld(fc, pc, 0);
        b.fadd(fc, ft, fc);
        b.fst(fc, pc, 0);
        b.addi(pa, pa, 8);
        b.addi(pb, pb, 8);
        b.addi(pc, pc, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    /// Irregular-control kernel with a data-dependent recurrence (not
    /// vectorizable, suits NS-DF/Trace-P).
    fn irregular_kernel(n: i64) -> Program {
        let (x, i, t, acc) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let mut b = ProgramBuilder::new("irr");
        b.init_reg(x, 987654321);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        let skip = b.label();
        b.andi(t, x, 7);
        b.bne_label(t, Reg::ZERO, skip); // biased: taken 7/8 of the time
        b.addi(acc, acc, 13);
        b.bind(skip);
        b.shri(t, x, 3);
        b.xor(x, x, t);
        b.addi(x, x, 12345);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    fn setup(p: &Program) -> (prism_sim::Trace, prism_ir::ProgramIr, AccelPlans) {
        let t = prism_sim::trace(p).unwrap();
        let ir = prism_ir::ProgramIr::analyze(&t);
        let plans = AccelPlans::analyze(&ir);
        (t, ir, plans)
    }

    #[test]
    fn empty_assignment_matches_plain_core_model() {
        let p = dp_kernel(100);
        let (t, ir, plans) = setup(&p);
        let base = simulate_trace(&t, &CoreConfig::ooo2());
        let run = run_exocore(
            &t,
            &ir,
            &CoreConfig::ooo2(),
            &plans,
            &Assignment::none(),
            &[],
        );
        assert_eq!(run.cycles, base.cycles);
        assert_eq!(run.events.core, base.events.core);
        assert_eq!(run.unit_insts[ExecUnit::Gpp as usize], t.len() as u64);
        assert!((run.unaccelerated_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simd_accelerates_data_parallel_loop() {
        let p = dp_kernel(400);
        let (t, ir, plans) = setup(&p);
        let lid = *plans.simd.keys().next().expect("vectorizable loop");
        let mut a = Assignment::none();
        a.set(lid, BsaKind::Simd);
        let cfg = CoreConfig::ooo2().with_simd();
        let base = simulate_trace(&t, &CoreConfig::ooo2());
        let run = run_exocore(&t, &ir, &cfg, &plans, &a, &[BsaKind::Simd]);
        let speedup = base.cycles as f64 / run.cycles as f64;
        assert!(speedup > 1.8, "SIMD speedup = {speedup}");
        // Vectorization elides most fetches.
        assert!(run.events.core.fetches < base.events.core.fetches / 2);
        assert!(run.events.accel.vector_lane_ops > 0);
        // Most instructions attributed to the SIMD unit.
        assert!(run.unaccelerated_fraction() < 0.05);
    }

    #[test]
    fn ns_df_offloads_irregular_loop_and_saves_energy() {
        let p = irregular_kernel(500);
        let (t, ir, plans) = setup(&p);
        assert!(plans.simd.is_empty(), "recurrence must not vectorize");
        let lid = *plans.ns_df.keys().next().expect("NS-DF-able loop");
        let mut a = Assignment::none();
        a.set(lid, BsaKind::NsDf);
        let cfg = CoreConfig::ooo2();
        let base = simulate_trace(&t, &cfg);
        let run = run_exocore(&t, &ir, &cfg, &plans, &a, &[BsaKind::NsDf]);
        // Offload removes fetch/rename/window energy.
        assert!(
            run.energy.core_dynamic < 0.5 * base.energy.core_dynamic,
            "core dynamic {} vs {}",
            run.energy.core_dynamic,
            base.energy.core_dynamic
        );
        assert!(run.events.accel.cfu_ops > 0);
        assert!(run.unit_cycles[ExecUnit::NsDf as usize] > 0);
    }

    #[test]
    fn trace_p_replays_divergent_iterations() {
        let p = irregular_kernel(800);
        let (t, ir, plans) = setup(&p);
        let lid = *plans.trace_p.keys().next().expect("hot-trace loop");
        let mut a = Assignment::none();
        a.set(lid, BsaKind::TraceP);
        let cfg = CoreConfig::ooo2();
        let run = run_exocore(&t, &ir, &cfg, &plans, &a, &[BsaKind::TraceP]);
        // The 1-in-8 off-path iterations replay on the host.
        assert!(run.trace_replays > 50, "replays = {}", run.trace_replays);
        assert!(run.trace_replays < 200, "replays = {}", run.trace_replays);
        assert!(run.events.accel.store_buffer_accesses == 0); // no stores in loop
        assert!(run.events.accel.trace_replays == run.trace_replays);
    }

    /// Compute-heavy data-parallel kernel: 5 FP ops per load/store pair,
    /// fat enough for the DP-CGRA's comm-vs-compute rule.
    fn cgra_kernel(n: i64) -> Program {
        let (pi, po, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let (x, y, z) = (Reg::fp(0), Reg::fp(1), Reg::fp(2));
        let mut b = ProgramBuilder::new("cgra");
        b.init_reg(pi, 0x10000);
        b.init_reg(po, 0x24000);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        b.fld(x, pi, 0);
        b.fmul(y, x, x);
        b.fadd(y, y, x);
        b.fmul(z, y, y);
        b.fsub(z, z, x);
        b.fmul(z, z, y);
        b.fst(z, po, 0);
        b.addi(pi, pi, 8);
        b.addi(po, po, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn dp_cgra_offloads_compute_slice() {
        let p = cgra_kernel(400);
        let (t, ir, plans) = setup(&p);
        let Some((&lid, _)) = plans.dp_cgra.iter().next() else {
            panic!("compute-heavy kernel should be CGRA-sliceable");
        };
        let mut a = Assignment::none();
        a.set(lid, BsaKind::DpCgra);
        let cfg = CoreConfig::ooo2();
        let base = simulate_trace(&t, &cfg);
        let run = run_exocore(&t, &ir, &cfg, &plans, &a, &[BsaKind::DpCgra]);
        assert!(run.events.accel.cgra_ops > 0);
        assert!(run.events.accel.cgra_config_words > 0, "config loaded once");
        assert!(
            run.cycles < base.cycles,
            "{} !< {}",
            run.cycles,
            base.cycles
        );
    }

    #[test]
    fn unit_cycle_breakdown_sums_to_total() {
        let p = dp_kernel(200);
        let (t, ir, plans) = setup(&p);
        let lid = *plans.simd.keys().next().unwrap();
        let mut a = Assignment::none();
        a.set(lid, BsaKind::Simd);
        let run = run_exocore(&t, &ir, &CoreConfig::ooo2(), &plans, &a, &[BsaKind::Simd]);
        let sum: u64 = run.unit_cycles.iter().sum();
        assert_eq!(sum, run.cycles);
        let isum: u64 = run.unit_insts.iter().sum();
        assert_eq!(isum, run.insts);
        assert!(!run.timeline.is_empty());
    }

    #[test]
    #[should_panic(expected = "absent accelerator")]
    fn assignment_to_absent_accelerator_panics() {
        let p = dp_kernel(100);
        let (t, ir, plans) = setup(&p);
        let lid = *plans.simd.keys().next().unwrap();
        let mut a = Assignment::none();
        a.set(lid, BsaKind::Simd);
        let _ = run_exocore(&t, &ir, &CoreConfig::ooo2(), &plans, &a, &[]);
    }
}
