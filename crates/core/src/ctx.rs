//! Shared execution context threaded through core and accelerator region
//! models during a combined (core + accelerator) TDG evaluation.

use prism_energy::EnergyEvents;
use prism_isa::StaticId;
use prism_sim::{DynInst, RegDepTracker, Trace};

pub use crate::unit::ExecUnit;

/// Sentinel for "completion time not yet assigned".
pub const UNSET: u64 = u64::MAX;

/// Streaming state shared by every region model of a combined TDG run.
///
/// Holds the per-dynamic-instruction completion times (`p_times`), the
/// register/memory dependence trackers, accumulated energy events, and the
/// per-unit cycle/instruction attribution used for the paper's Figure 13
/// breakdowns.
#[derive(Debug)]
pub struct ExecCtx<'t> {
    /// The trace being modeled.
    pub trace: &'t Trace,
    /// Completion time of each dynamic instruction ([`UNSET`] until its
    /// region model assigns it).
    pub p_times: Vec<u64>,
    /// Register last-writer tracking over the *original* stream.
    pub regs: RegDepTracker,
    /// Store→load dependence tracking over the original stream.
    pub mems: prism_udg::MemDepTracker,
    /// Accumulated energy events.
    pub events: EnergyEvents,
    /// Cycles attributed to each execution unit.
    pub unit_cycles: [u64; ExecUnit::COUNT],
    /// Original-program dynamic instructions attributed to each unit.
    pub unit_insts: [u64; ExecUnit::COUNT],
    /// Region-end samples for dynamic-switching timelines (Fig. 14).
    pub timeline: Vec<TimelineSample>,
}

/// One region's endpoint in the switching timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSample {
    /// Last original-trace seq of the region.
    pub end_seq: u64,
    /// Cycle at which the region finished.
    pub end_cycle: u64,
    /// The unit that executed the region.
    pub unit: ExecUnit,
}

impl<'t> ExecCtx<'t> {
    /// Creates a context for `trace`.
    #[must_use]
    pub fn new(trace: &'t Trace) -> Self {
        ExecCtx {
            trace,
            p_times: vec![UNSET; trace.len()],
            regs: RegDepTracker::new(),
            mems: prism_udg::MemDepTracker::new(),
            events: EnergyEvents::new(),
            unit_cycles: [0; ExecUnit::COUNT],
            unit_insts: [0; ExecUnit::COUNT],
            timeline: Vec::new(),
        }
    }

    /// The completion time of dynamic instruction `seq`, if assigned.
    #[must_use]
    pub fn p_time(&self, seq: u64) -> Option<u64> {
        let t = self.p_times[seq as usize];
        (t != UNSET).then_some(t)
    }

    /// Records that dynamic instruction `d` completed at `complete`:
    /// assigns its `p_time`, retires it in the register tracker, and
    /// records stores in the memory tracker.
    pub fn retire(&mut self, d: &DynInst, complete: u64) {
        self.p_times[d.seq as usize] = complete;
        let inst = self.trace.static_inst(d);
        self.regs.retire(inst, d.seq);
        if let Some(m) = &d.mem {
            if m.is_store {
                self.mems.record_store(m.addr, m.width, complete);
            }
        }
    }

    /// Attributes `insts` original instructions and `cycles` cycles to a
    /// unit and appends a timeline sample.
    pub fn attribute(&mut self, unit: ExecUnit, insts: u64, end_seq: u64, start: u64, end: u64) {
        self.unit_insts[unit as usize] += insts;
        self.unit_cycles[unit as usize] += end.saturating_sub(start);
        self.timeline.push(TimelineSample {
            end_seq,
            end_cycle: end,
            unit,
        });
    }

    /// Resolves the register-dependence producer seqs of `inst`, as of the
    /// current tracker state (callers must not yet have retired `d`).
    #[must_use]
    pub fn producer_seqs(&self, sid: StaticId) -> Vec<u64> {
        self.regs.sources(self.trace.program.inst(sid))
    }

    /// Builds the [`ModelInst`](prism_udg::ModelInst) for `d` as the plain
    /// core would execute it, resolving register dependences through the
    /// context's `p_times` (unassigned producers contribute no edge) and
    /// memory dependences through the store tracker.
    #[must_use]
    pub fn model_inst(&self, d: &DynInst) -> prism_udg::ModelInst {
        use prism_udg::ModelDep;
        let inst = self.trace.static_inst(d);
        let mut deps: Vec<ModelDep> = self
            .regs
            .sources(inst)
            .into_iter()
            .filter_map(|s| self.p_time(s).map(ModelDep::data))
            .collect();
        let mut latency = u64::from(inst.op.latency());
        let mut mem_level = None;
        let mut is_store = false;
        if let Some(m) = &d.mem {
            mem_level = Some(m.level);
            if m.is_store {
                is_store = true;
                latency = 1;
            } else {
                latency = u64::from(m.latency);
                if let Some(ready) = self.mems.load_dependence(m.addr, m.width) {
                    deps.push(ModelDep::memory(ready));
                }
            }
        }
        prism_udg::ModelInst {
            fu: inst.fu_class(),
            latency,
            deps,
            mem_level,
            is_store,
            is_cond_branch: inst.op.is_cond_branch(),
            mispredicted: d.branch.is_some_and(|b| b.mispredicted),
            branch_taken: d.branch.is_some_and(|b| b.taken),
            vector: false,
            reads: inst.sources().count() as u8,
            writes: u8::from(inst.dest().is_some()),
        }
    }
}
