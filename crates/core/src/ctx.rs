//! Shared execution context threaded through core and accelerator region
//! models during a combined (core + accelerator) TDG evaluation.

use prism_energy::EnergyEvents;
use prism_isa::{Inst, Program, StaticId};
use prism_sim::{DynInst, RegDepTracker};
use prism_udg::SeqTable;

pub use crate::unit::ExecUnit;

/// Streaming state shared by every region model of a combined TDG run.
///
/// Holds the *windowed* per-dynamic-instruction completion times, the
/// register/memory dependence trackers, accumulated energy events, and the
/// per-unit cycle/instruction attribution used for the paper's Figure 13
/// breakdowns.
///
/// Completion times live in a windowed, seq-indexed [`SeqTable`], not an
/// O(trace) vector: callers resolve dependences only against *current*
/// last writers, so the runner may call [`ExecCtx::trim_times`] at region
/// boundaries to drop everything outside the live register frontier.
/// Region models that capture producer seqs early (e.g. the DP-CGRA
/// pre-pass) must not trim between capture and resolution — the runner
/// never does.
#[derive(Debug)]
pub struct ExecCtx<'t> {
    /// The static program the trace stream was recorded from.
    pub program: &'t Program,
    /// Completion time of each dynamic instruction, present once its
    /// region model assigns it and until trimmed.
    p_times: SeqTable,
    /// Register last-writer tracking over the *original* stream.
    pub regs: RegDepTracker,
    /// Store→load dependence tracking over the original stream.
    pub mems: prism_udg::MemDepTracker,
    /// Accumulated energy events.
    pub events: EnergyEvents,
    /// Cycles attributed to each execution unit.
    pub unit_cycles: [u64; ExecUnit::COUNT],
    /// Original-program dynamic instructions attributed to each unit.
    pub unit_insts: [u64; ExecUnit::COUNT],
    /// Region-end samples for dynamic-switching timelines (Fig. 14).
    pub timeline: Vec<TimelineSample>,
}

/// One region's endpoint in the switching timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSample {
    /// Last original-trace seq of the region.
    pub end_seq: u64,
    /// Cycle at which the region finished.
    pub end_cycle: u64,
    /// The unit that executed the region.
    pub unit: ExecUnit,
}

impl<'t> ExecCtx<'t> {
    /// Creates a context for a dynamic stream of `program`.
    #[must_use]
    pub fn new(program: &'t Program) -> Self {
        ExecCtx {
            program,
            p_times: SeqTable::new(),
            regs: RegDepTracker::new(),
            mems: prism_udg::MemDepTracker::new(),
            events: EnergyEvents::new(),
            unit_cycles: [0; ExecUnit::COUNT],
            unit_insts: [0; ExecUnit::COUNT],
            timeline: Vec::new(),
        }
    }

    /// The static instruction behind dynamic record `d`.
    #[must_use]
    pub fn static_inst(&self, d: &DynInst) -> &'t Inst {
        self.program.inst(d.sid)
    }

    /// The completion time of dynamic instruction `seq`, if assigned.
    #[must_use]
    pub fn p_time(&self, seq: u64) -> Option<u64> {
        self.p_times.get(seq)
    }

    /// Assigns the completion time of dynamic instruction `seq` without
    /// retiring it (used by region models that defer retirement).
    pub fn set_time(&mut self, seq: u64, complete: u64) {
        self.p_times.insert(seq, complete);
    }

    /// Number of completion times currently held (the live window).
    #[must_use]
    pub fn times_len(&self) -> usize {
        self.p_times.len()
    }

    /// Drops completion times outside the live register frontier.
    ///
    /// Safe only when no region model holds previously captured producer
    /// seqs: after this call, only current last-writer seqs resolve.
    pub fn trim_times(&mut self) {
        self.p_times.trim(self.regs.writers());
    }

    /// [`trim_times`](Self::trim_times) once the window exceeds a fixed
    /// floor — the cheap form region models call at group/iteration
    /// boundaries (where every future dependence resolves through current
    /// last writers), keeping a region's window O(group), not O(region).
    pub fn trim_times_bounded(&mut self) {
        const REGION_TRIM_FLOOR: usize = 4096;
        if self.p_times.len() >= REGION_TRIM_FLOOR {
            self.trim_times();
        }
    }

    /// Records that dynamic instruction `d` completed at `complete`:
    /// assigns its `p_time`, retires it in the register tracker, and
    /// records stores in the memory tracker.
    pub fn retire(&mut self, d: &DynInst, complete: u64) {
        self.p_times.insert(d.seq, complete);
        let inst = self.program.inst(d.sid);
        self.regs.retire(inst, d.seq);
        if let Some(m) = &d.mem {
            if m.is_store {
                self.mems.record_store(m.addr, m.width, complete);
            }
        }
    }

    /// Attributes `insts` original instructions and `cycles` cycles to a
    /// unit and appends a timeline sample.
    pub fn attribute(&mut self, unit: ExecUnit, insts: u64, end_seq: u64, start: u64, end: u64) {
        self.unit_insts[unit as usize] += insts;
        self.unit_cycles[unit as usize] += end.saturating_sub(start);
        self.timeline.push(TimelineSample {
            end_seq,
            end_cycle: end,
            unit,
        });
    }

    /// Resolves the register-dependence producer seqs of `inst`, as of the
    /// current tracker state (callers must not yet have retired `d`).
    #[must_use]
    pub fn producer_seqs(&self, sid: StaticId) -> Vec<u64> {
        self.regs.sources(self.program.inst(sid))
    }

    /// Builds the [`ModelInst`](prism_udg::ModelInst) for `d` as the plain
    /// core would execute it, resolving register dependences through the
    /// windowed completion times (unassigned producers contribute no edge)
    /// and memory dependences through the store tracker.
    #[must_use]
    pub fn model_inst(&self, d: &DynInst) -> prism_udg::ModelInst {
        let mut mi = prism_udg::ModelInst::default();
        self.model_inst_into(d, &mut mi);
        mi
    }

    /// [`ExecCtx::model_inst`] into a caller-owned scratch buffer: every
    /// field is overwritten and the dependence vector is reused, so the
    /// plain-core hot loop allocates nothing per instruction.
    pub fn model_inst_into(&self, d: &DynInst, mi: &mut prism_udg::ModelInst) {
        use prism_udg::ModelDep;
        let inst = self.program.inst(d.sid);
        mi.deps.clear();
        for r in inst.sources() {
            if let Some(s) = self.regs.writer_of(r) {
                if let Some(t) = self.p_time(s) {
                    mi.deps.push(ModelDep::data(t));
                }
            }
        }
        let mut latency = u64::from(inst.op.latency());
        let mut mem_level = None;
        let mut is_store = false;
        if let Some(m) = &d.mem {
            mem_level = Some(m.level);
            if m.is_store {
                is_store = true;
                latency = 1;
            } else {
                latency = u64::from(m.latency);
                if let Some(ready) = self.mems.load_dependence(m.addr, m.width) {
                    mi.deps.push(ModelDep::memory(ready));
                }
            }
        }
        mi.fu = inst.fu_class();
        mi.latency = latency;
        mi.mem_level = mem_level;
        mi.is_store = is_store;
        mi.is_cond_branch = inst.op.is_cond_branch();
        mi.mispredicted = d.branch.is_some_and(|b| b.mispredicted);
        mi.branch_taken = d.branch.is_some_and(|b| b.taken);
        mi.vector = false;
        mi.reads = inst.sources().count() as u8;
        mi.writes = u8::from(inst.dest().is_some());
    }
}
