//! The Trace-Speculative Processor (BERET-like) TDG model — paper §3.2.
//!
//! **Analysis**: eligible inner loops have a loop-back probability ≥ 80%
//! (found via path profiling) and a hot-path configuration that fits the
//! hardware limit. Compound instructions may cross control boundaries, so
//! Trace-P has larger CFUs and half the operand storage of NS-DF.
//!
//! **Transform**: iterations that follow the hot trace execute on the
//! accelerator in *speculative* dataflow mode — control dependences are
//! not enforced. Stores go to an iteration-versioned store buffer.
//! Iterations that diverge from the trace are squashed and replayed on the
//! host core, which is the mechanism's cost.

use std::collections::HashMap;

use prism_ir::{Loop, LoopId, ProgramIr};
use prism_isa::StaticId;
use prism_sim::DynInst;
use prism_udg::{CoreModel, ModelDep};

use crate::ns_df::{DataflowEngine, LIVE_XFER};
use crate::ExecCtx;

/// Minimum loop-back probability (paper §3.2: 80%).
pub const MIN_LOOP_BACK_PROB: f64 = 0.8;
/// Static hot-trace budget: half of NS-DF's operand storage (§3.1).
pub const MAX_TRACE_OPS: u32 = 128;
/// Instructions fused per compound op — larger than NS-DF because
/// compound ops cross control boundaries (§3.1).
pub const GROUP_SIZE: u64 = 4;
/// Pipeline-flush style penalty (cycles) when a diverged iteration must be
/// replayed on the host core.
pub const REPLAY_PENALTY: u64 = 10;

/// The Trace-P plan for one target loop.
#[derive(Debug, Clone)]
pub struct TracePPlan {
    /// The target loop.
    pub loop_id: LoopId,
    /// Static instruction sequence of the hot path (per iteration).
    pub hot_path_sids: Vec<StaticId>,
    /// Fraction of iterations on the hot path (from profiling).
    pub hot_fraction: f64,
    /// Static speedup estimate for the Amdahl-tree scheduler.
    pub est_speedup: f64,
}

/// Runs the Trace-P analyzer over every innermost loop.
#[must_use]
pub fn analyze_trace_p(ir: &ProgramIr) -> HashMap<LoopId, TracePPlan> {
    let mut plans = HashMap::new();
    for l in ir.loops.innermost() {
        if let Some(plan) = analyze_loop(ir, l) {
            plans.insert(l.id, plan);
        }
    }
    plans
}

fn analyze_loop(ir: &ProgramIr, l: &Loop) -> Option<TracePPlan> {
    let paths = ir.paths.get(&l.id)?;
    if paths.loop_back_probability() < MIN_LOOP_BACK_PROB || l.iterations < 8 {
        return None;
    }
    let (hot_blocks, hot_count) = paths.hot_path()?;
    let hot_fraction = *hot_count as f64 / paths.iterations.max(1) as f64;
    if hot_fraction < 0.6 {
        return None; // too divergent: replays would dominate
    }
    let hot_path_sids: Vec<StaticId> = hot_blocks
        .iter()
        .flat_map(|&b| ir.cfg.blocks[b as usize].inst_ids())
        .collect();
    if hot_path_sids.len() as u32 > MAX_TRACE_OPS {
        return None;
    }

    // Static estimate: speculative dataflow exposes the trace's ILP, paid
    // back by the replay fraction.
    let mut def: HashMap<prism_isa::Reg, u32> = HashMap::new();
    let mut depth = 1u32;
    for &sid in &hot_path_sids {
        let inst = ir.program.inst(sid);
        let d = inst
            .sources()
            .filter_map(|s| def.get(&s))
            .max()
            .copied()
            .unwrap_or(0)
            + 1;
        if let Some(dst) = inst.dest() {
            def.insert(dst, d);
        }
        depth = depth.max(d);
    }
    let ilp = hot_path_sids.len() as f64 / f64::from(depth);
    let raw = (ilp / 2.0).clamp(0.8, 3.5);
    let est_speedup = raw * hot_fraction + 0.5 * (1.0 - hot_fraction);

    Some(TracePPlan {
        loop_id: l.id,
        hot_path_sids,
        hot_fraction,
        est_speedup: est_speedup.max(0.5),
    })
}

/// Executes one loop-invocation region on the Trace-P unit.
///
/// Returns `(end_cycle, replays)`; the caller resumes the core at
/// `end + LIVE_XFER`.
pub fn execute_trace_p(
    region: &[DynInst],
    plan: &TracePPlan,
    l: &Loop,
    ir: &ProgramIr,
    ctx: &mut ExecCtx<'_>,
    core: &mut CoreModel,
) -> (u64, u64) {
    let header_start = ir.cfg.blocks[l.header as usize].start;
    let mut iters: Vec<(usize, usize)> = Vec::new();
    let mut cur = 0usize;
    for (i, d) in region.iter().enumerate() {
        if d.sid == header_start && i != cur {
            iters.push((cur, i));
            cur = i;
        }
    }
    iters.push((cur, region.len()));

    let start = core.now() + LIVE_XFER;
    let mut engine = DataflowEngine::new(start);
    let mut end = start;
    let mut replays = 0u64;
    let mut arith_ops = 0u64;

    for (s, e) in iters {
        let iter_insts = &region[s..e];
        // Dependences resolve per instruction against current last
        // writers, so the window can be trimmed between iterations.
        ctx.trim_times_bounded();
        let on_trace = iter_insts
            .iter()
            .map(|d| d.sid)
            .eq(plan.hot_path_sids.iter().copied())
            || iter_insts.len() == plan.hot_path_sids.len()
                && iter_insts
                    .iter()
                    .zip(&plan.hot_path_sids)
                    .all(|(d, &sid)| d.sid == sid);

        if on_trace {
            // Speculative dataflow over the hot trace.
            for d in iter_insts {
                let inst = *ctx.static_inst(d);
                let mut deps: Vec<ModelDep> = ctx
                    .producer_seqs(d.sid)
                    .into_iter()
                    .filter_map(|q| ctx.p_time(q).map(ModelDep::data))
                    .collect();
                if let Some(m) = &d.mem {
                    if !m.is_store {
                        if let Some(r) = ctx.mems.load_dependence(m.addr, m.width) {
                            deps.push(ModelDep::memory(r));
                        }
                    } else {
                        // Iteration-versioned store buffer.
                        ctx.events.accel.store_buffer_accesses += 1;
                    }
                }
                let complete = engine.issue(d, &deps, crate::ns_df::ControlDep::None, ctx);
                ctx.retire(d, complete);
                if !inst.op.is_mem() && !inst.op.is_control() {
                    arith_ops += 1;
                }
                end = end.max(complete);
            }
        } else {
            // Trace mispeculation: squash and replay the iteration on the
            // host core (paper Fig. 8: "replay w/ GPP").
            replays += 1;
            ctx.events.accel.trace_replays += 1;
            core.stall_fetch_until(end + REPLAY_PENALTY);
            for d in iter_insts {
                let mi = ctx.model_inst(d);
                let t = core.issue(&mi);
                ctx.retire(d, t.complete);
                end = end.max(t.complete);
            }
            // The accelerator resumes after the replayed iteration.
            engine.start = engine.start.max(end + 2);
        }
    }

    ctx.events.accel.cfu_ops += arith_ops.div_ceil(GROUP_SIZE);
    let resume = end + LIVE_XFER;
    core.stall_fetch_until(resume);
    (resume, replays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    fn ir_of(build: impl FnOnce(&mut ProgramBuilder)) -> ProgramIr {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        ProgramIr::analyze(&t)
    }

    /// Loop with a biased branch: 1 in `period` iterations diverges.
    fn biased(b: &mut ProgramBuilder, n: i64, period: i64) {
        let (x, i, t, acc) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        b.init_reg(x, 0);
        b.init_reg(i, n);
        let head = b.bind_new_label();
        let rare = b.label();
        let join = b.label();
        b.addi(x, x, 1);
        b.rem(t, x, Reg::int(5));
        b.init_reg(Reg::int(5), period);
        b.beq_label(t, Reg::ZERO, rare);
        b.addi(acc, acc, 1);
        b.jmp_label(join);
        b.bind(rare);
        b.addi(acc, acc, 100);
        b.bind(join);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
    }

    #[test]
    fn biased_loop_plans_with_hot_path() {
        let ir = ir_of(|b| biased(b, 64, 8));
        let plans = analyze_trace_p(&ir);
        assert_eq!(plans.len(), 1);
        let p = plans.values().next().unwrap();
        assert!(
            (0.8..=0.95).contains(&p.hot_fraction),
            "hot {:.2}",
            p.hot_fraction
        );
        assert!(!p.hot_path_sids.is_empty());
        assert!(p.est_speedup > 0.5);
    }

    #[test]
    fn unbiased_loop_rejected() {
        // 50/50 divergence: replays would dominate.
        let ir = ir_of(|b| biased(b, 64, 2));
        assert!(analyze_trace_p(&ir).is_empty());
    }

    #[test]
    fn low_loop_back_probability_rejected() {
        // An inner loop that usually runs one iteration (early exit).
        let ir = ir_of(|b| {
            let (i, j) = (Reg::int(1), Reg::int(2));
            b.init_reg(i, 64);
            let outer = b.bind_new_label();
            b.li(j, 1);
            let inner = b.bind_new_label();
            b.addi(j, j, -1);
            b.bne_label(j, Reg::ZERO, inner); // never loops back
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, outer);
            b.halt();
        });
        let plans = analyze_trace_p(&ir);
        // The inner loop (lbp ≈ 0) must not plan; the outer may.
        for p in plans.values() {
            let prof = &ir.paths[&p.loop_id];
            assert!(prof.loop_back_probability() >= MIN_LOOP_BACK_PROB);
        }
    }

    #[test]
    fn oversized_hot_trace_rejected() {
        let ir = ir_of(|b| {
            let i = Reg::int(1);
            b.init_reg(i, 32);
            let head = b.bind_new_label();
            // > MAX_TRACE_OPS static instructions in the body.
            for k in 0..140 {
                b.addi(Reg::int(2 + (k % 8) as u8), Reg::int(2 + (k % 8) as u8), 1);
            }
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert!(analyze_trace_p(&ir).is_empty());
    }
}
