//! The paper's worked example (Figure 4): transparently fusing a
//! multiply–add pair into a single `fma` instruction via a TDG transform.
//!
//! *Analysis* (Fig. 4c): inside each basic block, find an `fadd` whose
//! `fmul` operand is produced in the same block and used exactly once.
//! *Transform* (Fig. 4d): the `fmul` becomes a 4-cycle `fma`, the `fadd` is
//! elided, and the `fadd`'s remaining data dependences attach to the `fma`.
//!
//! Kept deliberately simple — it exists to demonstrate (and test) the
//! analysis → plan → transform pipeline on which the real BSA models are
//! built.

use std::collections::HashMap;

use prism_isa::{Opcode, StaticId};
use prism_sim::Trace;
use prism_udg::{finish_run, CoreConfig, CoreModel, CoreRun, ModelDep, ModelInst};

use crate::ctx::ExecCtx;

/// The fma analysis "plan": which `fadd` fuses with which `fmul`.
#[derive(Debug, Clone, Default)]
pub struct FmaPlan {
    /// `fadd` static id → fused `fmul` static id.
    pub fused: HashMap<StaticId, StaticId>,
}

impl FmaPlan {
    /// Number of fused pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fused.len()
    }

    /// Whether no pairs were found.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fused.is_empty()
    }
}

/// The TDG-analyzer pass of Fig. 4(c): per basic block, match `fmul`s with
/// a single dependent `fadd`.
#[must_use]
pub fn analyze_fma(ir: &prism_ir::ProgramIr, trace: &Trace) -> FmaPlan {
    let program = &trace.program;
    let mut plan = FmaPlan::default();
    for bb in &ir.cfg.blocks {
        for fadd_id in bb.inst_ids() {
            let fadd = program.inst(fadd_id);
            if fadd.op != Opcode::FAdd {
                continue;
            }
            // Look backwards in the block for the producing fmul.
            for cand_id in (bb.start..fadd_id).rev() {
                let cand = program.inst(cand_id);
                let Some(dest) = cand.dest() else { continue };
                let feeds_fadd = fadd.sources().any(|s| s == dest);
                if !feeds_fadd {
                    continue;
                }
                if cand.op != Opcode::FMul {
                    break; // nearest producer is not an fmul
                }
                // Single use: dest must not be read by any other inst in
                // the block after the fmul (before redefinition), nor be
                // one of the fadd's two sources twice.
                let mut uses = 0;
                for i in (cand_id + 1)..=bb.end {
                    let inst = program.inst(i);
                    uses += inst.sources().filter(|&s| s == dest).count();
                    if inst.dest() == Some(dest) {
                        break; // redefined (possibly by the fadd itself)
                    }
                }
                if uses == 1 {
                    plan.fused.insert(fadd_id, cand_id);
                }
                break;
            }
        }
    }
    plan
}

/// The TDG-transform + evaluation of Fig. 4(d/e): models `trace` on
/// `config` with the fma plan applied, returning the combined
/// core+accelerator run (here the "accelerator" is just the fused FU).
#[must_use]
pub fn simulate_with_fma(trace: &Trace, config: &CoreConfig, plan: &FmaPlan) -> CoreRun {
    let mut core = CoreModel::new(config);
    let mut ctx = ExecCtx::new(&trace.program);
    // Deferred fmul deps, keyed by the fmul's dyn seq.
    let mut pending_mul: HashMap<u64, Vec<ModelDep>> = HashMap::new();
    let fused_muls: std::collections::HashSet<StaticId> = plan.fused.values().copied().collect();

    for d in &trace.insts {
        let inst = trace.static_inst(d);
        let dep_seqs = ctx.producer_seqs(d.sid);
        let deps: Vec<ModelDep> = dep_seqs
            .iter()
            .filter_map(|&s| ctx.p_time(s).map(ModelDep::data))
            .collect();

        if fused_muls.contains(&d.sid) {
            // Elide for now; its deps ride along to the fma.
            pending_mul.insert(d.seq, deps);
            // Completion assigned when the fma issues; consumers other
            // than the fused fadd do not exist (single-use).
            ctx.regs.retire(inst, d.seq);
            continue;
        }

        if let Some(&mul_sid) = plan.fused.get(&d.sid) {
            // This fadd becomes the fma: merge deps of the pending fmul.
            let mut all = deps;
            // The fadd's dep on the fmul itself is unresolvable (fmul has
            // no p_time) and is replaced by the fmul's own deps.
            if let Some(mul_seq) = dep_seqs
                .iter()
                .find(|&&s| trace.insts[s as usize].sid == mul_sid)
            {
                if let Some(mul_deps) = pending_mul.remove(mul_seq) {
                    all.extend(mul_deps);
                }
            }
            let mi = ModelInst {
                fu: prism_isa::FuClass::Fp,
                latency: u64::from(Opcode::Fma.latency()),
                deps: all,
                reads: 3,
                writes: 1,
                ..ModelInst::default()
            };
            let times = core.issue(&mi);
            ctx.retire(d, times.complete);
            continue;
        }

        // Normal path (set_inst_deps in Fig. 4d).
        let mi = ctx.model_inst(d);
        let times = core.issue(&mi);
        ctx.retire(d, times.complete);
    }

    finish_run(core, config, trace.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};
    use prism_udg::simulate_trace;

    /// The paper's Fig. 4 example loop:
    /// I0: fmul (invariant), I1: ld, I2: fmul, I3: fadd, I4: sub, I5: brnz.
    fn fig4_program(n: i64) -> prism_sim::Trace {
        let (r0, r1) = (Reg::int(1), Reg::int(2));
        let (f2, f3, f4, f5) = (Reg::fp(2), Reg::fp(3), Reg::fp(4), Reg::fp(5));
        let mut b = ProgramBuilder::new("fig4");
        b.init_reg(r0, 0x1000);
        b.init_reg(r1, n * 8);
        b.fli(f3, 2.0);
        b.fmul(f5, f3, f3); // I0-like: fmul whose result is the accumulator seed
        let head = b.bind_new_label();
        b.emit(prism_isa::Inst::load(prism_isa::Opcode::FLd, f2, r0, 0, 8)); // I1
        b.fmul(f4, f2, f3); // I2
        b.fadd(f5, f4, f5); // I3 — fuses with I2
        b.addi(r0, r0, 8);
        b.addi(r1, r1, -8); // I4
        b.bne_label(r1, Reg::ZERO, head); // I5
        b.halt();
        prism_sim::trace(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn analyzer_finds_the_fig4_pair() {
        let t = fig4_program(10);
        let ir = prism_ir::ProgramIr::analyze(&t);
        let plan = analyze_fma(&ir, &t);
        assert_eq!(plan.len(), 1);
        let (&fadd, &fmul) = plan.fused.iter().next().unwrap();
        assert_eq!(t.program.inst(fadd).op, Opcode::FAdd);
        assert_eq!(t.program.inst(fmul).op, Opcode::FMul);
        assert_eq!(fadd, fmul + 1);
    }

    #[test]
    fn analyzer_rejects_multi_use_fmul() {
        let (f1, f2, f3, f4) = (Reg::fp(1), Reg::fp(2), Reg::fp(3), Reg::fp(4));
        let mut b = ProgramBuilder::new("multiuse");
        b.fli(f1, 1.0);
        b.fmul(f2, f1, f1);
        b.fadd(f3, f2, f1);
        b.fadd(f4, f2, f2); // second use of f2
        b.halt();
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let ir = prism_ir::ProgramIr::analyze(&t);
        let plan = analyze_fma(&ir, &t);
        assert!(plan.is_empty());
    }

    /// Per-element mul-add (`c[i] = a[i]*k + m`): the fusion target where
    /// fma genuinely helps (shorter per-element latency, one fewer inst).
    fn elementwise_program(n: i64) -> prism_sim::Trace {
        let (pa, pc, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let (fa, fk, fm, ft) = (Reg::fp(1), Reg::fp(2), Reg::fp(3), Reg::fp(4));
        let mut b = ProgramBuilder::new("elemwise");
        b.init_reg(pa, 0x1000);
        b.init_reg(pc, 0x9000);
        b.init_reg(i, n);
        b.fli(fk, 3.0);
        b.fli(fm, 1.0);
        let head = b.bind_new_label();
        b.fld(fa, pa, 0);
        b.fmul(ft, fa, fk);
        b.fadd(ft, ft, fm);
        b.fst(ft, pc, 0);
        b.addi(pa, pa, 8);
        b.addi(pc, pc, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        prism_sim::trace(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn transform_elides_one_inst_and_speeds_up_elementwise() {
        let t = elementwise_program(200);
        let ir = prism_ir::ProgramIr::analyze(&t);
        let plan = analyze_fma(&ir, &t);
        assert_eq!(plan.len(), 1);
        let cfg = CoreConfig::io2();
        let base = simulate_trace(&t, &cfg);
        let fused = simulate_with_fma(&t, &cfg, &plan);
        // In-order core: per-element latency 4+3 → 4 and one fewer inst.
        let speedup = base.cycles as f64 / fused.cycles as f64;
        assert!(speedup > 1.05, "speedup = {speedup}");
        // One fewer FP op flows through the pipeline per iteration.
        assert!(fused.events.core.fp_ops < base.events.core.fp_ops);
    }

    #[test]
    fn fusing_a_reduction_chain_can_hurt_ooo_cores() {
        // Insight the model captures: on the Fig. 4 accumulator loop, the
        // fmul is latency-hidden by the OOO core, and fusing it onto the
        // 3-cycle fadd recurrence stretches the chain to 4 cycles per
        // iteration — fma is *not* free lunch.
        let t = fig4_program(200);
        let ir = prism_ir::ProgramIr::analyze(&t);
        let plan = analyze_fma(&ir, &t);
        assert_eq!(plan.len(), 1);
        let cfg = CoreConfig::ooo4();
        let base = simulate_trace(&t, &cfg);
        let fused = simulate_with_fma(&t, &cfg, &plan);
        assert!(
            fused.cycles > base.cycles,
            "expected the stretched recurrence to show: {} vs {}",
            fused.cycles,
            base.cycles
        );
    }

    #[test]
    fn empty_plan_matches_baseline_exactly() {
        let t = fig4_program(50);
        let cfg = CoreConfig::ooo2();
        let base = simulate_trace(&t, &cfg);
        let same = simulate_with_fma(&t, &cfg, &FmaPlan::default());
        assert_eq!(base.cycles, same.cycles);
        assert_eq!(base.events.core, same.events.core);
    }
}
