//! Typed `host:port` list parsing for `--hosts` / `PRISM_HOSTS`.

use std::fmt;

/// Environment variable holding the remote worker host list — the
/// fallback when `prism grid` is run without an explicit `--hosts` flag.
/// Grammar: a comma-separated `host:port` list, e.g.
/// `127.0.0.1:7761,box2:7761`.
pub const HOSTS_ENV: &str = "PRISM_HOSTS";

/// One remote worker endpoint (`host:port`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpec {
    /// Hostname or IP address (never empty).
    pub host: String,
    /// TCP port of the `prism worker --listen` daemon.
    pub port: u16,
}

impl HostSpec {
    /// The dialable `host:port` address string.
    #[must_use]
    pub fn addr(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }
}

impl fmt::Display for HostSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// Why a `--hosts` / [`HOSTS_ENV`] value failed to parse. Mirrors the
/// typed-error style of the fault-spec parsers: each variant names the
/// offending entry so the message is actionable without a stack trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostSpecError {
    /// The whole list was empty (or only commas/whitespace).
    Empty,
    /// One comma-separated entry was empty.
    EmptyEntry {
        /// 0-based position of the empty entry in the list.
        index: usize,
    },
    /// An entry had no `:port` suffix.
    MissingPort(String),
    /// An entry's host part was empty (e.g. `:7761`).
    MissingHost(String),
    /// An entry's port was not a valid non-zero u16.
    BadPort(String),
    /// The same `host:port` appeared twice.
    Duplicate(String),
}

impl fmt::Display for HostSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostSpecError::Empty => write!(f, "empty host list"),
            HostSpecError::EmptyEntry { index } => {
                write!(f, "empty host entry at position {index}")
            }
            HostSpecError::MissingPort(entry) => {
                write!(f, "missing `:port` in host entry `{entry}`")
            }
            HostSpecError::MissingHost(entry) => {
                write!(f, "missing host in entry `{entry}`")
            }
            HostSpecError::BadPort(entry) => {
                write!(f, "bad port in host entry `{entry}` (want 1-65535)")
            }
            HostSpecError::Duplicate(entry) => {
                write!(f, "duplicate host entry `{entry}`")
            }
        }
    }
}

impl std::error::Error for HostSpecError {}

/// Parses a comma-separated `host:port` list. Entries are trimmed; the
/// list must be non-empty, every entry must name a host and a non-zero
/// port, and duplicates are rejected (a duplicate shard would silently
/// halve the intended capacity).
///
/// # Errors
///
/// Returns a [`HostSpecError`] naming the first offending entry.
pub fn parse_hosts(text: &str) -> Result<Vec<HostSpec>, HostSpecError> {
    // A fully blank value (only commas/whitespace) is `Empty`; an empty
    // slot inside an otherwise populated list is a typo worth naming.
    if text.split(',').all(|raw| raw.trim().is_empty()) {
        return Err(HostSpecError::Empty);
    }
    let mut hosts: Vec<HostSpec> = Vec::new();
    for (index, raw) in text.split(',').enumerate() {
        let entry = raw.trim();
        if entry.is_empty() {
            return Err(HostSpecError::EmptyEntry { index });
        }
        let (host, port) = entry
            .rsplit_once(':')
            .ok_or_else(|| HostSpecError::MissingPort(entry.to_string()))?;
        let host = host.trim();
        if host.is_empty() {
            return Err(HostSpecError::MissingHost(entry.to_string()));
        }
        let port: u16 = port
            .trim()
            .parse()
            .ok()
            .filter(|&p| p != 0)
            .ok_or_else(|| HostSpecError::BadPort(entry.to_string()))?;
        let spec = HostSpec {
            host: host.to_string(),
            port,
        };
        if hosts.contains(&spec) {
            return Err(HostSpecError::Duplicate(entry.to_string()));
        }
        hosts.push(spec);
    }
    Ok(hosts)
}

/// Reads and parses [`HOSTS_ENV`]; an unset or blank variable is an
/// empty host list (all-local grid), not an error.
///
/// # Errors
///
/// Returns the parse error when the variable is set but malformed.
pub fn hosts_from_env() -> Result<Vec<HostSpec>, HostSpecError> {
    match std::env::var(HOSTS_ENV) {
        Ok(raw) if !raw.trim().is_empty() => parse_hosts(&raw),
        _ => Ok(Vec::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_host_list() {
        let hosts = parse_hosts(" 127.0.0.1:7761 , box2:80 ").unwrap();
        assert_eq!(
            hosts,
            vec![
                HostSpec {
                    host: "127.0.0.1".into(),
                    port: 7761
                },
                HostSpec {
                    host: "box2".into(),
                    port: 80
                },
            ]
        );
        assert_eq!(hosts[0].addr(), "127.0.0.1:7761");
        assert_eq!(hosts[1].to_string(), "box2:80");
    }

    #[test]
    fn empty_list_is_a_typed_error() {
        assert_eq!(parse_hosts(""), Err(HostSpecError::Empty));
        assert_eq!(parse_hosts("  , ,"), Err(HostSpecError::Empty));
    }

    #[test]
    fn empty_entry_inside_a_list_is_rejected() {
        assert_eq!(
            parse_hosts("a:1,,b:2"),
            Err(HostSpecError::EmptyEntry { index: 1 })
        );
    }

    #[test]
    fn missing_or_bad_parts_are_typed_errors() {
        assert_eq!(
            parse_hosts("justahost"),
            Err(HostSpecError::MissingPort("justahost".into()))
        );
        assert_eq!(
            parse_hosts(":7761"),
            Err(HostSpecError::MissingHost(":7761".into()))
        );
        for bad in ["h:0", "h:65536", "h:port", "h:"] {
            assert_eq!(
                parse_hosts(bad),
                Err(HostSpecError::BadPort(bad.into())),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn duplicates_are_rejected() {
        assert_eq!(
            parse_hosts("a:1,b:2,a:1"),
            Err(HostSpecError::Duplicate("a:1".into()))
        );
    }

    #[test]
    fn error_messages_name_the_entry() {
        let msg = HostSpecError::BadPort("h:99999".into()).to_string();
        assert!(msg.contains("h:99999"), "{msg}");
        let msg = HostSpecError::Duplicate("a:1".into()).to_string();
        assert!(msg.contains("a:1"), "{msg}");
    }
}
