//! Deterministic network fault injection for multi-host chaos tests.
//!
//! `PRISM_GRID_FAULTS` models a *worker* misbehaving (crash, hang,
//! quarantine). `PRISM_NET_FAULTS` models the *wire* misbehaving, in the
//! same spec style:
//!
//! ```text
//! PRISM_NET_FAULTS=drop:0@3,delay:1@2,disconnect:1@5
//! ```
//!
//! Each spec is `kind:<shard>@<n>` — the fault fires on the coordinator's
//! link to shard `<shard>` at its `<n>`-th inbound protocol frame
//! (0-based, counted across reconnects so a plan fires exactly once):
//!
//! - `drop` — discard that frame and cut the connection, modeling a lost
//!   packet followed by a broken link.
//! - `delay` — deliver that frame 750 ms late, modeling a stall long
//!   enough to trip heartbeat supervision.
//! - `disconnect` — deliver that frame, then cut the connection cleanly,
//!   modeling a network partition mid-sweep.

use std::fmt;

/// Environment variable holding the network fault spec.
pub const NET_FAULTS_ENV: &str = "PRISM_NET_FAULTS";

/// How long a `delay` fault holds a frame before delivering it — long
/// enough to trip any realistic heartbeat timeout in tests.
pub(crate) const DELAY_FAULT: std::time::Duration = std::time::Duration::from_millis(750);

/// What an injected network fault does to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// Discard the frame, then cut the connection.
    Drop,
    /// Deliver the frame late.
    Delay,
    /// Deliver the frame, then cut the connection.
    Disconnect,
}

impl fmt::Display for NetFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetFaultKind::Drop => "drop",
            NetFaultKind::Delay => "delay",
            NetFaultKind::Disconnect => "disconnect",
        })
    }
}

/// Why a [`NET_FAULTS_ENV`] value failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFaultSpecError {
    /// The whole spec was empty (unset the variable instead).
    Empty,
    /// An entry was not `kind:<shard>@<n>`.
    Malformed(String),
    /// An entry named an unknown fault kind.
    UnknownKind(String),
}

impl fmt::Display for NetFaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetFaultSpecError::Empty => write!(
                f,
                "empty net fault spec (name at least one fault, or unset {NET_FAULTS_ENV})"
            ),
            NetFaultSpecError::Malformed(part) => {
                write!(f, "bad net fault `{part}`: expected kind:<shard>@<n>")
            }
            NetFaultSpecError::UnknownKind(part) => write!(
                f,
                "bad net fault `{part}`: unknown kind (expected drop, delay, or disconnect)"
            ),
        }
    }
}

impl std::error::Error for NetFaultSpecError {}

/// A parsed `PRISM_NET_FAULTS` plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    faults: Vec<(NetFaultKind, usize, u64)>,
}

impl NetFaultPlan {
    /// Parses a comma-separated list of `kind:<shard>@<n>` specs.
    ///
    /// # Errors
    ///
    /// Returns a typed error for the first malformed spec; an empty or
    /// all-whitespace value is an error (unset the variable instead).
    pub fn parse(spec: &str) -> Result<Self, NetFaultSpecError> {
        let mut faults = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind, rest) = part
                .split_once(':')
                .ok_or_else(|| NetFaultSpecError::Malformed(part.to_string()))?;
            let kind = match kind {
                "drop" => NetFaultKind::Drop,
                "delay" => NetFaultKind::Delay,
                "disconnect" => NetFaultKind::Disconnect,
                _ => return Err(NetFaultSpecError::UnknownKind(part.to_string())),
            };
            let (shard, frame) = rest
                .split_once('@')
                .ok_or_else(|| NetFaultSpecError::Malformed(part.to_string()))?;
            let shard = shard
                .parse::<usize>()
                .map_err(|_| NetFaultSpecError::Malformed(part.to_string()))?;
            let frame = frame
                .parse::<u64>()
                .map_err(|_| NetFaultSpecError::Malformed(part.to_string()))?;
            faults.push((kind, shard, frame));
        }
        if faults.is_empty() {
            return Err(NetFaultSpecError::Empty);
        }
        Ok(NetFaultPlan { faults })
    }

    /// Reads the plan from [`NET_FAULTS_ENV`]; an empty plan when unset.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — a typo must not silently disable the
    /// chaos test.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(NET_FAULTS_ENV) {
            Ok(spec) => Self::parse(&spec).unwrap_or_else(|e| panic!("{NET_FAULTS_ENV}: {e}")),
            Err(_) => NetFaultPlan::default(),
        }
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault (if any) that fires on `shard`'s `frame`-th inbound
    /// protocol frame (0-based).
    #[must_use]
    pub fn action(&self, shard: usize, frame: u64) -> Option<NetFaultKind> {
        self.faults
            .iter()
            .find(|&&(_, s, n)| s == shard && n == frame)
            .map(|&(kind, _, _)| kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_fault_specs() {
        let plan = NetFaultPlan::parse("drop:0@3, delay:1@2 ,disconnect:1@5").unwrap();
        assert_eq!(plan.action(0, 3), Some(NetFaultKind::Drop));
        assert_eq!(plan.action(1, 2), Some(NetFaultKind::Delay));
        assert_eq!(plan.action(1, 5), Some(NetFaultKind::Disconnect));
        assert_eq!(plan.action(0, 0), None);
        assert_eq!(plan.action(2, 3), None);
        assert!(!plan.is_empty());
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        assert_eq!(NetFaultPlan::parse(""), Err(NetFaultSpecError::Empty));
        assert_eq!(NetFaultPlan::parse(" , "), Err(NetFaultSpecError::Empty));
        assert_eq!(
            NetFaultPlan::parse("drop"),
            Err(NetFaultSpecError::Malformed("drop".into()))
        );
        assert_eq!(
            NetFaultPlan::parse("drop:0"),
            Err(NetFaultSpecError::Malformed("drop:0".into()))
        );
        assert_eq!(
            NetFaultPlan::parse("drop:x@1"),
            Err(NetFaultSpecError::Malformed("drop:x@1".into()))
        );
        assert_eq!(
            NetFaultPlan::parse("sever:0@1"),
            Err(NetFaultSpecError::UnknownKind("sever:0@1".into()))
        );
    }

    #[test]
    fn default_plan_is_empty() {
        assert!(NetFaultPlan::default().is_empty());
        assert_eq!(NetFaultPlan::default().action(0, 0), None);
    }
}
