//! Multi-host sweep fabric: TCP transport for the grid protocol.
//!
//! The grid layer (`prism-grid`) speaks a line-framed NDJSON protocol
//! between a coordinator and its shard workers. This crate lifts that
//! protocol onto the network without knowing anything about its frame
//! *contents*: every abstraction here ships opaque lines.
//!
//! - [`ShardLink`] — the transport trait: one bidirectional, line-framed
//!   channel to a shard worker. Implementations:
//!   [`StdioLink`] (local subprocess over stdin/stdout, the original
//!   grid transport), [`TcpLink`] (remote daemon over TCP with
//!   bounded-backoff [`ShardLink::reconnect`]), and [`DeadLink`] (a
//!   permanently dead placeholder that keeps shard == slot-index
//!   invariants intact when a spawn or connect fails).
//! - [`serve`] — the daemon side: accept loop + handshake that hands
//!   authenticated connections to a caller-supplied session handler
//!   (`prism worker --listen` plugs the grid worker loop in here).
//! - A shared-secret handshake ([`NET_TOKEN_ENV`]) that runs *before*
//!   any grid-protocol frame crosses the wire.
//! - [`HostSpec`] / [`parse_hosts`] — typed `host:port` list parsing for
//!   `--hosts` / [`HOSTS_ENV`].
//! - [`NetFaultPlan`] — deterministic network fault injection
//!   ([`NET_FAULTS_ENV`]), in the style of `PRISM_GRID_FAULTS`.
//!
//! Byte-framing contract: the grid protocol escapes all control
//! characters inside JSON strings, so a frame never spans lines and a
//! line reader on either end recovers frame boundaries exactly.

#![warn(missing_docs)]

mod fault;
mod handshake;
mod host;
mod link;

pub use fault::{NetFaultKind, NetFaultPlan, NetFaultSpecError, NET_FAULTS_ENV};
pub use handshake::{client_handshake, NET_HANDSHAKE_VERSION, NET_TOKEN_ENV};
pub use host::{hosts_from_env, parse_hosts, HostSpec, HostSpecError, HOSTS_ENV};
pub use link::{DeadLink, LinkEvent, ShardLink, StdioLink, TcpLink};

use std::net::TcpListener;
use std::sync::Arc;

/// Runs a worker daemon accept loop forever: each inbound connection is
/// authenticated with the shared-secret handshake (see [`NET_TOKEN_ENV`])
/// and then handed to `handler` on its own thread, so a coordinator
/// reconnect can race a still-draining previous session without blocking
/// the accept loop. Rejected or failed connections are logged to stderr
/// and dropped; the loop itself never returns.
pub fn serve<F>(listener: TcpListener, token: String, handler: F) -> !
where
    F: Fn(std::net::TcpStream, usize) + Send + Sync + 'static,
{
    let handler = Arc::new(handler);
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) => {
                eprintln!("[prism-net] accept failed: {e}");
                continue;
            }
        };
        let token = token.clone();
        let handler = Arc::clone(&handler);
        std::thread::spawn(move || match handshake::accept_handshake(&stream, &token) {
            Ok(shard) => handler(stream, shard),
            Err(e) => eprintln!("[prism-net] rejected connection: {e}"),
        });
    }
}
