//! Shared-secret connection handshake, run before any grid-protocol
//! frame crosses the wire.
//!
//! One NDJSON line each way:
//!
//! ```text
//! coordinator → daemon   {"type":"net-hello","net":1,"shard":3,"token":"..."}
//! daemon → coordinator   {"type":"net-ack","net":1}
//!                     or {"type":"net-reject","reason":"..."}
//! ```
//!
//! The token comes from [`NET_TOKEN_ENV`] on both sides; both sides
//! leaving it unset (empty token) is accepted — the token is a
//! mis-wiring/mis-deploy guard for trusted lab networks, not a
//! cryptographic channel. A reject closes the connection without ever
//! reaching the grid protocol, so an old or foreign peer cannot make a
//! v2 worker mis-parse frames.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use prism_pipeline::Json;

/// Environment variable holding the shared handshake secret. Must match
/// between `prism grid --hosts` and every `prism worker --listen` daemon
/// it dials; unset on both sides is accepted.
pub const NET_TOKEN_ENV: &str = "PRISM_NET_TOKEN";

/// Version of the net handshake itself (independent of the grid wire
/// protocol version, which is negotiated afterwards by `Hello`).
pub const NET_HANDSHAKE_VERSION: u64 = 1;

/// How long either side waits for the peer's single handshake line
/// before giving up — keeps a daemon from wedging an accept-handler
/// thread on a silent port scanner.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Constant-time-ish token comparison: always scans both strings fully
/// so the comparison time does not leak the first mismatching byte.
fn tokens_match(a: &str, b: &str) -> bool {
    let a = a.as_bytes();
    let b = b.as_bytes();
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

fn io_err(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Reads exactly one `\n`-terminated line, byte by byte. Deliberately
/// unbuffered: a `BufReader` here could swallow protocol frames that
/// arrive right behind the handshake line, and those bytes would be
/// lost when the buffer is dropped.
fn read_handshake_line(stream: &TcpStream) -> std::io::Result<String> {
    stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
    let mut reader = stream.try_clone()?;
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    let got = loop {
        match reader.read(&mut byte) {
            Ok(0) => break Err(io_err("connection closed during handshake".into())),
            Ok(_) if byte[0] == b'\n' => break Ok(()),
            Ok(_) => {
                line.push(byte[0]);
                if line.len() > 64 * 1024 {
                    break Err(io_err("handshake line too long".into()));
                }
            }
            Err(e) => break Err(e),
        }
    };
    // Clear the timeout before propagating: the grid protocol relies on
    // blocking reads plus heartbeat supervision, not socket timeouts.
    stream.set_read_timeout(None)?;
    got?;
    Ok(String::from_utf8_lossy(&line).into_owned())
}

/// Client (coordinator) side: sends `net-hello` for `shard` and waits
/// for the daemon's ack.
///
/// # Errors
///
/// Returns an error on I/O failure, timeout, a malformed reply, or an
/// explicit `net-reject` (whose reason is included in the message).
pub fn client_handshake(stream: &TcpStream, shard: usize, token: &str) -> std::io::Result<()> {
    let hello = Json::Obj(vec![
        ("type".into(), Json::Str("net-hello".into())),
        ("net".into(), Json::U64(NET_HANDSHAKE_VERSION)),
        ("shard".into(), Json::U64(shard as u64)),
        ("token".into(), Json::Str(token.into())),
    ]);
    let mut w = stream.try_clone()?;
    writeln!(w, "{hello}")?;
    w.flush()?;
    let line = read_handshake_line(stream)?;
    let reply = Json::parse(&line).map_err(|e| io_err(format!("bad handshake reply: {e}")))?;
    match reply.get("type").and_then(Json::as_str) {
        Some("net-ack") => Ok(()),
        Some("net-reject") => {
            let reason = reply
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified");
            Err(io_err(format!("handshake rejected: {reason}")))
        }
        _ => Err(io_err(format!(
            "unexpected handshake reply: {}",
            line.trim()
        ))),
    }
}

/// Daemon side: reads the client's `net-hello`, checks version and
/// token, and replies with `net-ack` (returning the client's shard id)
/// or `net-reject` (returning an error after telling the peer why).
///
/// # Errors
///
/// Returns an error on I/O failure, timeout, malformed hello, version
/// mismatch, or token mismatch.
pub fn accept_handshake(stream: &TcpStream, token: &str) -> std::io::Result<usize> {
    let line = read_handshake_line(stream)?;
    let reject = |stream: &TcpStream, reason: &str| -> std::io::Result<usize> {
        let frame = Json::Obj(vec![
            ("type".into(), Json::Str("net-reject".into())),
            ("reason".into(), Json::Str(reason.into())),
        ]);
        if let Ok(mut w) = stream.try_clone() {
            let _ = writeln!(w, "{frame}");
            let _ = w.flush();
        }
        Err(io_err(format!("handshake rejected: {reason}")))
    };
    let Ok(hello) = Json::parse(&line) else {
        return reject(stream, "malformed net-hello");
    };
    if hello.get("type").and_then(Json::as_str) != Some("net-hello") {
        return reject(stream, "expected net-hello");
    }
    let version = hello.get("net").and_then(Json::as_u64);
    if version != Some(NET_HANDSHAKE_VERSION) {
        return reject(
            stream,
            &format!(
                "net handshake version mismatch (want {NET_HANDSHAKE_VERSION}, got {})",
                version.map_or_else(|| "none".into(), |v| v.to_string())
            ),
        );
    }
    let offered = hello.get("token").and_then(Json::as_str).unwrap_or("");
    if !tokens_match(offered, token) {
        // Deliberately vague: don't tell an unauthenticated peer whether
        // a token is required or merely wrong.
        return reject(stream, "bad token");
    }
    let Some(shard) = hello.get("shard").and_then(Json::as_u64) else {
        return reject(stream, "missing shard");
    };
    let ack = Json::Obj(vec![
        ("type".into(), Json::Str("net-ack".into())),
        ("net".into(), Json::U64(NET_HANDSHAKE_VERSION)),
    ]);
    let mut w = stream.try_clone()?;
    writeln!(w, "{ack}")?;
    w.flush()?;
    Ok(shard as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn matching_tokens_complete_the_handshake() {
        let (client, server) = pair();
        let t = std::thread::spawn(move || accept_handshake(&server, "s3cret"));
        client_handshake(&client, 7, "s3cret").unwrap();
        assert_eq!(t.join().unwrap().unwrap(), 7);
    }

    #[test]
    fn empty_tokens_on_both_sides_are_accepted() {
        let (client, server) = pair();
        let t = std::thread::spawn(move || accept_handshake(&server, ""));
        client_handshake(&client, 0, "").unwrap();
        assert_eq!(t.join().unwrap().unwrap(), 0);
    }

    #[test]
    fn token_mismatch_is_rejected_on_both_sides() {
        let (client, server) = pair();
        let t = std::thread::spawn(move || accept_handshake(&server, "right"));
        let err = client_handshake(&client, 0, "wrong").unwrap_err();
        assert!(err.to_string().contains("bad token"), "{err}");
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn non_protocol_peer_is_rejected() {
        let (client, server) = pair();
        let t = std::thread::spawn(move || accept_handshake(&server, ""));
        let mut w = client.try_clone().unwrap();
        writeln!(w, "GET / HTTP/1.1").unwrap();
        assert!(t.join().unwrap().is_err());
    }

    #[test]
    fn tokens_match_is_exact() {
        assert!(tokens_match("", ""));
        assert!(tokens_match("abc", "abc"));
        assert!(!tokens_match("abc", "abd"));
        assert!(!tokens_match("abc", "abcd"));
        assert!(!tokens_match("abcd", "abc"));
    }
}
