//! Shard links: one bidirectional, line-framed channel per shard.
//!
//! The coordinator owns a `Box<dyn ShardLink>` per shard slot and a
//! single mpsc receiver; every link forwards inbound lines as
//! [`LinkEvent`]s tagged with the shard index and the link's
//! *generation*. A TCP link bumps its generation on every (re)connect,
//! so events from a connection that was already torn down — a late
//! `Eof` from a reader thread that lost a race with `reconnect` — can
//! be recognized and ignored instead of killing a healthy replacement
//! connection.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::fault::{NetFaultKind, NetFaultPlan, DELAY_FAULT};
use crate::handshake::client_handshake;

/// An inbound event from one shard link, tagged with the link
/// generation that produced it (always 0 for non-TCP links).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkEvent {
    /// One protocol line (without the trailing newline).
    Line(u64, String),
    /// The link's read side ended — worker exit, connection cut, or
    /// local teardown. Sent exactly once per connection.
    Eof(u64),
}

/// A bidirectional, line-framed transport to one shard worker. The
/// trait ships opaque lines: framing is "one message per `\n`-terminated
/// line" and nothing here inspects message contents.
pub trait ShardLink: Send {
    /// Writes one protocol line (newline appended) and flushes.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the link is closed or the write fails.
    fn send_line(&mut self, line: &str) -> io::Result<()>;

    /// Tears the link down immediately (kill the subprocess / cut the
    /// socket). Idempotent; the reader thread will follow with its
    /// [`LinkEvent::Eof`].
    fn kill(&mut self);

    /// Closes only the coordinator→worker direction, letting the worker
    /// observe EOF and drain while its own sends still flow.
    fn shutdown_input(&mut self);

    /// Waits (until `deadline`) for the link's resources — subprocess,
    /// reader thread — to wind down, forcing teardown at the deadline.
    fn reap(&mut self, deadline: Instant);

    /// Re-establishes a torn-down link, returning the new generation.
    ///
    /// # Errors
    ///
    /// Returns the last dial error, or `Unsupported` for transports
    /// that cannot reconnect (a subprocess's pipes die with it).
    fn reconnect(&mut self) -> io::Result<u64>;

    /// Current link generation (see [`LinkEvent`]).
    fn generation(&self) -> u64;

    /// Whether the peer is on another host (and thus does not share the
    /// coordinator's artifact store).
    fn is_remote(&self) -> bool;

    /// Human-readable peer description for logs and stats.
    fn describe(&self) -> String;
}

// ---------------------------------------------------------------------
// Stdio subprocess link (the original grid transport).
// ---------------------------------------------------------------------

/// A local worker subprocess: protocol lines flow over its stdin/stdout
/// pipes. The caller configures the `Command` (argv, env); the link owns
/// the pipes and the stdout reader thread.
pub struct StdioLink {
    child: Child,
    stdin: Option<ChildStdin>,
    reader: Option<JoinHandle<()>>,
    desc: String,
}

impl StdioLink {
    /// Spawns `command` with piped stdin/stdout (stderr untouched) and
    /// starts a reader thread forwarding stdout lines to `tx` as events
    /// for `shard`.
    ///
    /// # Errors
    ///
    /// Returns the spawn error.
    pub fn spawn(
        mut command: Command,
        shard: usize,
        tx: &mpsc::Sender<(usize, LinkEvent)>,
    ) -> io::Result<StdioLink> {
        let desc = format!("{:?}", command.get_program());
        command.stdin(Stdio::piped()).stdout(Stdio::piped());
        let mut child = command.spawn()?;
        let stdin = child.stdin.take();
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("child stdout not captured"))?;
        let tx = tx.clone();
        let reader = std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                if tx.send((shard, LinkEvent::Line(0, line))).is_err() {
                    break;
                }
            }
            let _ = tx.send((shard, LinkEvent::Eof(0)));
        });
        Ok(StdioLink {
            child,
            stdin,
            reader: Some(reader),
            desc,
        })
    }
}

impl ShardLink for StdioLink {
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        let Some(stdin) = self.stdin.as_mut() else {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "stdin closed"));
        };
        stdin.write_all(line.as_bytes())?;
        stdin.write_all(b"\n")?;
        stdin.flush()
    }

    fn kill(&mut self) {
        self.stdin = None;
        let _ = self.child.kill();
    }

    fn shutdown_input(&mut self) {
        self.stdin = None;
    }

    fn reap(&mut self, deadline: Instant) {
        self.stdin = None;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) | Err(_) => break,
                Ok(None) => {
                    if Instant::now() >= deadline {
                        let _ = self.child.kill();
                        let _ = self.child.wait();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }

    fn reconnect(&mut self) -> io::Result<u64> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "a subprocess link cannot reconnect",
        ))
    }

    fn generation(&self) -> u64 {
        0
    }

    fn is_remote(&self) -> bool {
        false
    }

    fn describe(&self) -> String {
        format!("local subprocess {}", self.desc)
    }
}

// ---------------------------------------------------------------------
// TCP link to a remote worker daemon.
// ---------------------------------------------------------------------

/// How many dial attempts one [`ShardLink::reconnect`] call makes, with
/// doubling backoff starting at [`RECONNECT_BACKOFF_START`].
pub const RECONNECT_ATTEMPTS: u32 = 4;

/// First backoff step of a reconnect (doubles per attempt: 50/100/200/400 ms).
pub const RECONNECT_BACKOFF_START: Duration = Duration::from_millis(50);

/// A remote worker daemon reached over TCP. Each (re)connect performs
/// the shared-secret handshake before any protocol frame flows, bumps
/// the link generation, and starts a fresh reader thread. The inbound
/// frame counter that drives [`NetFaultPlan`] persists across
/// reconnects, so an injected fault fires exactly once per plan entry.
pub struct TcpLink {
    addr: String,
    shard: usize,
    token: String,
    faults: NetFaultPlan,
    tx: mpsc::Sender<(usize, LinkEvent)>,
    stream: Option<TcpStream>,
    reader: Option<JoinHandle<()>>,
    gen: u64,
    frames: Arc<AtomicU64>,
}

impl TcpLink {
    /// Dials `addr`, runs the handshake as `shard` with `token`, and
    /// starts forwarding inbound lines to `tx`.
    ///
    /// # Errors
    ///
    /// Returns the connect or handshake error (no retries on the first
    /// dial — the caller decides whether a cold host is fatal).
    pub fn connect(
        addr: &str,
        shard: usize,
        token: &str,
        faults: NetFaultPlan,
        tx: mpsc::Sender<(usize, LinkEvent)>,
    ) -> io::Result<TcpLink> {
        let mut link = TcpLink {
            addr: addr.to_string(),
            shard,
            token: token.to_string(),
            faults,
            tx,
            stream: None,
            reader: None,
            gen: 0,
            frames: Arc::new(AtomicU64::new(0)),
        };
        link.dial()?;
        Ok(link)
    }

    fn dial(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(&self.addr)?;
        let _ = stream.set_nodelay(true);
        client_handshake(&stream, self.shard, &self.token)?;
        self.gen += 1;
        let gen = self.gen;
        let shard = self.shard;
        let faults = self.faults.clone();
        let frames = Arc::clone(&self.frames);
        let tx = self.tx.clone();
        let reader_stream = stream.try_clone()?;
        self.reader = Some(std::thread::spawn(move || {
            read_loop(&reader_stream, shard, gen, &faults, &frames, &tx);
        }));
        self.stream = Some(stream);
        Ok(())
    }
}

fn read_loop(
    stream: &TcpStream,
    shard: usize,
    gen: u64,
    faults: &NetFaultPlan,
    frames: &AtomicU64,
    tx: &mpsc::Sender<(usize, LinkEvent)>,
) {
    let Ok(clone) = stream.try_clone() else {
        let _ = tx.send((shard, LinkEvent::Eof(gen)));
        return;
    };
    for line in BufReader::new(clone).lines() {
        let Ok(line) = line else { break };
        let frame = frames.fetch_add(1, Ordering::SeqCst);
        match faults.action(shard, frame) {
            Some(NetFaultKind::Drop) => {
                eprintln!(
                    "[prism-net] fault: dropping frame {frame} of shard {shard}, cutting link"
                );
                let _ = stream.shutdown(Shutdown::Both);
                break;
            }
            Some(NetFaultKind::Delay) => {
                eprintln!("[prism-net] fault: delaying frame {frame} of shard {shard}");
                std::thread::sleep(DELAY_FAULT);
                if tx.send((shard, LinkEvent::Line(gen, line))).is_err() {
                    break;
                }
            }
            Some(NetFaultKind::Disconnect) => {
                let _ = tx.send((shard, LinkEvent::Line(gen, line)));
                eprintln!("[prism-net] fault: disconnecting shard {shard} after frame {frame}");
                let _ = stream.shutdown(Shutdown::Both);
                break;
            }
            None => {
                if tx.send((shard, LinkEvent::Line(gen, line))).is_err() {
                    break;
                }
            }
        }
    }
    let _ = tx.send((shard, LinkEvent::Eof(gen)));
}

impl ShardLink for TcpLink {
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        let Some(stream) = self.stream.as_mut() else {
            return Err(io::Error::new(io::ErrorKind::NotConnected, "link closed"));
        };
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()
    }

    fn kill(&mut self) {
        if let Some(stream) = self.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn shutdown_input(&mut self) {
        if let Some(stream) = self.stream.as_ref() {
            let _ = stream.shutdown(Shutdown::Write);
        }
    }

    fn reap(&mut self, deadline: Instant) {
        let Some(reader) = self.reader.take() else {
            return;
        };
        while !reader.is_finished() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        if !reader.is_finished() {
            if let Some(stream) = self.stream.take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        let _ = reader.join();
    }

    fn reconnect(&mut self) -> io::Result<u64> {
        self.kill();
        // The old reader sends its Eof and exits once the socket is cut;
        // join it so at most one reader is ever live per link.
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        let mut backoff = RECONNECT_BACKOFF_START;
        let mut last = io::Error::other("no reconnect attempt made");
        for _ in 0..RECONNECT_ATTEMPTS {
            std::thread::sleep(backoff);
            match self.dial() {
                Ok(()) => return Ok(self.gen),
                Err(e) => {
                    last = e;
                    backoff *= 2;
                }
            }
        }
        Err(last)
    }

    fn generation(&self) -> u64 {
        self.gen
    }

    fn is_remote(&self) -> bool {
        true
    }

    fn describe(&self) -> String {
        format!("remote host {}", self.addr)
    }
}

// ---------------------------------------------------------------------
// Dead placeholder link.
// ---------------------------------------------------------------------

/// A permanently dead link: fills a shard slot when a spawn or connect
/// fails, keeping the shard == slot-index invariant without a live peer.
pub struct DeadLink {
    desc: String,
}

impl DeadLink {
    /// A dead link described as `desc` in logs.
    #[must_use]
    pub fn new(desc: &str) -> DeadLink {
        DeadLink {
            desc: desc.to_string(),
        }
    }
}

impl ShardLink for DeadLink {
    fn send_line(&mut self, _line: &str) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::BrokenPipe, "dead link"))
    }

    fn kill(&mut self) {}

    fn shutdown_input(&mut self) {}

    fn reap(&mut self, _deadline: Instant) {}

    fn reconnect(&mut self) -> io::Result<u64> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "dead link"))
    }

    fn generation(&self) -> u64 {
        0
    }

    fn is_remote(&self) -> bool {
        false
    }

    fn describe(&self) -> String {
        format!("dead slot ({})", self.desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::accept_handshake;
    use std::net::TcpListener;

    /// A one-connection echo daemon: handshake, greet, then echo lines.
    fn echo_daemon(token: &'static str) -> (String, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { break };
                let Ok(_shard) = accept_handshake(&stream, token) else {
                    continue;
                };
                let mut w = stream.try_clone().unwrap();
                if writeln!(w, "{{\"type\":\"greeting\"}}").is_err() {
                    continue;
                }
                for line in BufReader::new(stream).lines() {
                    let Ok(line) = line else { break };
                    if line == "quit" {
                        return;
                    }
                    // The peer may cut the link at any point (fault
                    // injection) — a failed echo just ends the session.
                    if writeln!(w, "{line}").is_err() {
                        break;
                    }
                }
            }
        });
        (addr, handle)
    }

    fn next_line(rx: &mpsc::Receiver<(usize, LinkEvent)>) -> (usize, LinkEvent) {
        rx.recv_timeout(Duration::from_secs(5)).unwrap()
    }

    #[test]
    fn tcp_link_round_trips_lines() {
        let (addr, daemon) = echo_daemon("tok");
        let (tx, rx) = mpsc::channel();
        let mut link = TcpLink::connect(&addr, 3, "tok", NetFaultPlan::default(), tx).unwrap();
        assert!(link.is_remote());
        assert_eq!(link.generation(), 1);
        assert_eq!(
            next_line(&rx),
            (3, LinkEvent::Line(1, "{\"type\":\"greeting\"}".into()))
        );
        link.send_line("hello").unwrap();
        assert_eq!(next_line(&rx), (3, LinkEvent::Line(1, "hello".into())));
        link.send_line("quit").unwrap();
        assert_eq!(next_line(&rx), (3, LinkEvent::Eof(1)));
        link.reap(Instant::now() + Duration::from_secs(2));
        daemon.join().unwrap();
    }

    #[test]
    fn tcp_link_reconnect_bumps_generation() {
        let (addr, daemon) = echo_daemon("");
        let (tx, rx) = mpsc::channel();
        let mut link = TcpLink::connect(&addr, 0, "", NetFaultPlan::default(), tx).unwrap();
        assert_eq!(
            next_line(&rx).1,
            LinkEvent::Line(1, "{\"type\":\"greeting\"}".into())
        );
        link.kill();
        assert_eq!(next_line(&rx).1, LinkEvent::Eof(1));
        let gen = link.reconnect().unwrap();
        assert_eq!(gen, 2);
        assert_eq!(
            next_line(&rx).1,
            LinkEvent::Line(2, "{\"type\":\"greeting\"}".into())
        );
        link.send_line("quit").unwrap();
        assert_eq!(next_line(&rx).1, LinkEvent::Eof(2));
        link.reap(Instant::now() + Duration::from_secs(2));
        daemon.join().unwrap();
    }

    #[test]
    fn disconnect_fault_cuts_after_the_nth_frame() {
        let (addr, _daemon) = echo_daemon("");
        let (tx, rx) = mpsc::channel();
        let mut link = TcpLink::connect(
            &addr,
            0,
            "",
            NetFaultPlan::parse("disconnect:0@1").unwrap(),
            tx,
        )
        .unwrap();
        // Frame 0: greeting. Frame 1: first echo — delivered, then cut.
        assert_eq!(
            next_line(&rx).1,
            LinkEvent::Line(1, "{\"type\":\"greeting\"}".into())
        );
        link.send_line("a").unwrap();
        // The cut fires once "a" echoes back, racing this send — either
        // outcome is fine, the frames below are what the fault contracts.
        let _ = link.send_line("b");
        assert_eq!(next_line(&rx).1, LinkEvent::Line(1, "a".into()));
        assert_eq!(next_line(&rx).1, LinkEvent::Eof(1));
        link.kill();
    }

    #[test]
    fn drop_fault_discards_the_frame() {
        let (addr, _daemon) = echo_daemon("");
        let (tx, rx) = mpsc::channel();
        let mut link =
            TcpLink::connect(&addr, 0, "", NetFaultPlan::parse("drop:0@0").unwrap(), tx).unwrap();
        // Frame 0 (the greeting) is dropped and the link cut: the only
        // event ever seen is Eof.
        assert_eq!(next_line(&rx).1, LinkEvent::Eof(1));
        link.kill();
    }

    #[test]
    fn wrong_token_fails_the_connect() {
        let (addr, _daemon) = echo_daemon("right");
        let (tx, _rx) = mpsc::channel();
        let err = match TcpLink::connect(&addr, 0, "wrong", NetFaultPlan::default(), tx) {
            Err(e) => e,
            Ok(_) => panic!("connect with a wrong token must fail"),
        };
        assert!(err.to_string().contains("rejected"), "{err}");
    }

    #[test]
    fn dead_link_rejects_everything() {
        let mut link = DeadLink::new("connect refused");
        assert!(link.send_line("x").is_err());
        assert!(link.reconnect().is_err());
        assert!(!link.is_remote());
        assert_eq!(link.generation(), 0);
        assert!(link.describe().contains("connect refused"));
        link.kill();
        link.reap(Instant::now());
    }
}
