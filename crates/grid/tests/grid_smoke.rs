//! End-to-end grid smoke tests (`harness = false`: this binary doubles as
//! the grid *worker* when the coordinator re-invokes it with
//! `PRISM_GRID_WORKER=1`, so it must own stdout — libtest's harness
//! chatter would corrupt the line-framed protocol).
//!
//! Scenarios:
//! 1. a 2-worker grid run produces a report byte-identical to a
//!    single-process sweep,
//! 2. an injected worker death mid-sweep loses no units,
//! 3. an injected shard-local quarantine is retried on the other shard
//!    and recovered,
//! 4. a hung (heartbeat-silent) worker is detected and its units
//!    reassigned,
//! 5. with every worker dead, the coordinator falls back to in-process
//!    evaluation,
//! 6. a `--resume` over a fully-journaled sweep assigns zero units (and
//!    spawns no workers at all),
//! 7. the same sweep over two localhost TCP daemons — under streaming
//!    evaluation and an injected mid-sweep disconnect — matches the
//!    single-process report, with the cut surfacing as `recovered`.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::Duration;

use prism_exocore::{all_bsa_subsets, DesignPoint};
use prism_grid::{run_grid, run_worker_if_env, serve_tcp, GridConfig, GridOutcome};
use prism_net::{parse_hosts, NetFaultPlan, NET_TOKEN_ENV};
use prism_pipeline::{run_fsck, sweep_key, Session, SweepJournal, SweepReport};
use prism_sim::TracerConfig;
use prism_udg::{CoreConfig, ExecBudget};
use prism_workloads::Workload;

const MAX_INSTS: u64 = 20_000;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prism-grid-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload_names() -> Vec<String> {
    prism_workloads::MICRO
        .iter()
        .take(3)
        .map(|w| w.name.to_string())
        .collect()
}

fn workload_refs() -> Vec<&'static Workload> {
    prism_workloads::MICRO.iter().take(3).collect()
}

fn small_grid() -> (Vec<CoreConfig>, Vec<Vec<prism_tdg::BsaKind>>) {
    let cores = vec![CoreConfig::io2(), CoreConfig::ooo2()];
    let subsets = all_bsa_subsets().into_iter().take(4).collect();
    (cores, subsets)
}

fn config(workers: usize, dir: &Path) -> GridConfig {
    let (cores, subsets) = small_grid();
    GridConfig {
        workers,
        hosts: Vec::new(),
        shard_retries: 1,
        workloads: workload_names(),
        cores,
        subsets,
        max_insts: MAX_INSTS,
        artifact_dir: dir.to_path_buf(),
        worker_cmd: None, // this very binary, re-entered via main()
        heartbeat_timeout: Duration::from_secs(10),
        window: 2,
        env: Vec::new(),
        env_remove: Vec::new(),
        net_faults: NetFaultPlan::default(),
        resume: false,
    }
}

fn expected_labels() -> Vec<String> {
    let (cores, subsets) = small_grid();
    let mut labels: Vec<String> = cores
        .iter()
        .flat_map(|c| {
            subsets
                .iter()
                .map(|s| DesignPoint::new(c.clone(), s.clone()).label())
        })
        .collect();
    labels.sort();
    labels
}

fn labels_of(report: &SweepReport) -> Vec<String> {
    report.results.iter().map(|r| r.label.clone()).collect()
}

fn run(config: &GridConfig) -> GridOutcome {
    run_grid(config).expect("grid run must start")
}

fn single_process_baseline(dir: &Path) -> SweepReport {
    let (cores, subsets) = small_grid();
    let session = Session::new()
        .with_tracer(TracerConfig {
            max_insts: MAX_INSTS,
            ..TracerConfig::default()
        })
        .with_store_dir(dir)
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None);
    session.evaluate_designs(&workload_refs(), &cores, &subsets)
}

fn scenario_equivalence() {
    let dir_single = scratch_dir("single");
    let dir_grid = scratch_dir("grid");
    let baseline = single_process_baseline(&dir_single);
    assert!(
        baseline.quarantined.is_empty(),
        "{:?}",
        baseline.quarantined
    );

    let outcome = run(&config(2, &dir_grid));
    assert_eq!(
        outcome.report, baseline,
        "grid report must be byte-identical to the single-process sweep"
    );
    assert_eq!(outcome.stats.workers_died, 0);
    assert_eq!(outcome.stats.local_fallback_units, 0);

    // A second grid run over the same store must serve everything from
    // cache and still match.
    let warm = run(&config(2, &dir_grid));
    assert_eq!(warm.report, baseline, "warm grid run must match");

    let _ = std::fs::remove_dir_all(&dir_single);
    let _ = std::fs::remove_dir_all(&dir_grid);
}

fn scenario_worker_death() {
    let dir = scratch_dir("death");
    let mut cfg = config(2, &dir);
    // Shard 0 crashes when it starts its second unit.
    cfg.env.push(("PRISM_GRID_FAULTS".into(), "die:0@1".into()));
    let outcome = run(&cfg);
    assert_eq!(
        labels_of(&outcome.report),
        expected_labels(),
        "no unit may be lost to a worker crash"
    );
    assert!(outcome.report.quarantined.is_empty());
    assert_eq!(outcome.stats.workers_died, 1, "{:?}", outcome.stats);
    assert!(
        outcome.stats.units_reassigned >= 1,
        "the dying shard's in-flight units must be reassigned: {:?}",
        outcome.stats
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn scenario_quarantine_retry() {
    let dir = scratch_dir("retry");
    let mut cfg = config(2, &dir);
    // Shard 0 quarantines its first unit without evaluating it; the
    // retry lands on shard 1 and succeeds.
    cfg.env
        .push(("PRISM_GRID_FAULTS".into(), "quarantine:0@0".into()));
    let outcome = run(&cfg);
    assert_eq!(labels_of(&outcome.report), expected_labels());
    assert!(
        outcome.report.quarantined.is_empty(),
        "retried unit must not stay quarantined: {:?}",
        outcome.report.quarantined
    );
    assert_eq!(
        outcome.report.recovered.len(),
        1,
        "{:?}",
        outcome.report.recovered
    );
    assert_eq!(outcome.stats.units_retried, 1, "{:?}", outcome.stats);
    let summary = outcome.report.failure_summary().expect("summary");
    assert!(summary.contains("recovered on retry"), "{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

fn scenario_hung_worker() {
    let dir = scratch_dir("hang");
    let mut cfg = config(2, &dir);
    cfg.heartbeat_timeout = Duration::from_secs(1);
    // Shard 1 goes silent (no heartbeats, no progress) on its first unit.
    cfg.env
        .push(("PRISM_GRID_FAULTS".into(), "hang:1@0".into()));
    let outcome = run(&cfg);
    assert_eq!(
        labels_of(&outcome.report),
        expected_labels(),
        "units of a hung worker must be reassigned"
    );
    assert!(outcome.report.quarantined.is_empty());
    assert_eq!(outcome.stats.workers_died, 1, "{:?}", outcome.stats);
    let _ = std::fs::remove_dir_all(&dir);
}

fn scenario_local_fallback() {
    let dir = scratch_dir("fallback");
    let mut cfg = config(1, &dir);
    // The only worker dies before completing anything.
    cfg.env.push(("PRISM_GRID_FAULTS".into(), "die:0@0".into()));
    let outcome = run(&cfg);
    assert_eq!(
        labels_of(&outcome.report),
        expected_labels(),
        "with no workers left, every unit must still evaluate locally"
    );
    assert!(outcome.report.quarantined.is_empty());
    assert_eq!(outcome.stats.workers_died, 1);
    assert_eq!(
        outcome.stats.local_fallback_units,
        expected_labels().len(),
        "{:?}",
        outcome.stats
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite of the net layer: a resumed coordinator whose journal
/// already settles every unit must assign (and spawn) nothing.
fn scenario_resume_assigns_nothing() {
    let dir = scratch_dir("resume");
    let baseline = single_process_baseline(&dir);
    assert!(baseline.quarantined.is_empty());

    // Journal every baseline result as done, exactly as a completed (but
    // quarantine-interrupted) grid run would have left it.
    let (cores, subsets) = small_grid();
    let tracer = TracerConfig {
        max_insts: MAX_INSTS,
        ..TracerConfig::default()
    };
    let wl_sizes: Vec<(String, u32)> = workload_refs()
        .iter()
        .map(|w| (w.name.to_string(), w.scaled_n()))
        .collect();
    let sweep = sweep_key(&wl_sizes, &tracer, &cores, &subsets);
    let (journal, _) = SweepJournal::open(&dir, &sweep, false).expect("journal");
    for result in &baseline.results {
        journal.append_done(&result.label, result).expect("append");
    }
    drop(journal);

    let mut cfg = config(2, &dir);
    cfg.resume = true;
    // Poison the worker path: if the resumed coordinator tried to spawn
    // (or assign to) anything, the run would visibly degrade.
    cfg.worker_cmd = Some("/nonexistent/prism-no-such-worker".into());
    let outcome = run(&cfg);
    assert_eq!(
        outcome.report, baseline,
        "resume must replay byte-identically"
    );
    assert_eq!(outcome.stats.resumed, expected_labels().len());
    assert_eq!(outcome.stats.workers_spawned, 0, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.units_reassigned, 0, "{:?}", outcome.stats);
    assert_eq!(outcome.stats.local_fallback_units, 0, "{:?}", outcome.stats);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole equivalence property: the sweep over two localhost TCP
/// daemons — with streaming evaluation on and a mid-sweep disconnect
/// injected — produces the same report as a single-process run, with the
/// disconnect surfacing as `recovered`, and leaves every store clean.
fn scenario_tcp_equivalence() {
    let token = "smoke-secret";
    std::env::set_var("PRISM_STREAM", "1");
    std::env::set_var(NET_TOKEN_ENV, token);
    let dir_single = scratch_dir("tcp-single");
    let dir_coord = scratch_dir("tcp-coord");
    let daemon_dirs = [scratch_dir("tcp-daemon0"), scratch_dir("tcp-daemon1")];
    let baseline = single_process_baseline(&dir_single);
    assert!(baseline.quarantined.is_empty());

    // Two in-process daemons on ephemeral ports, each with its own
    // artifact store (their listener threads outlive the scenario).
    let mut ports = Vec::new();
    for dir in &daemon_dirs {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        ports.push(listener.local_addr().expect("addr").port());
        let dir = dir.clone();
        std::thread::spawn(move || serve_tcp(listener, token.to_string(), dir, None));
    }

    let mut cfg = config(0, &dir_coord);
    cfg.hosts =
        parse_hosts(&format!("127.0.0.1:{},127.0.0.1:{}", ports[0], ports[1])).expect("host specs");
    // Cut shard 1's connection after its 3rd inbound frame: in-flight
    // units get synthetic quarantines, the link reconnects, and the
    // re-evaluated units surface as recovered.
    cfg.net_faults = NetFaultPlan::parse("disconnect:1@2").expect("fault spec");
    let outcome = run(&cfg);

    assert_eq!(
        outcome.report.results, baseline.results,
        "TCP grid results must be byte-identical to the single-process sweep"
    );
    assert!(
        outcome.report.quarantined.is_empty(),
        "{:?}",
        outcome.report.quarantined
    );
    assert!(
        !outcome.report.recovered.is_empty(),
        "the injected disconnect must surface as recovered units"
    );
    assert_eq!(outcome.stats.hosts.len(), 2, "{:?}", outcome.stats);
    assert!(
        outcome.stats.hosts[1].reconnects >= 1,
        "shard 1 must have reconnected: {:?}",
        outcome.stats.hosts
    );
    assert!(
        outcome
            .stats
            .hosts
            .iter()
            .map(|h| h.bytes_shipped)
            .sum::<u64>()
            > 0,
        "remote results must ship artifacts back: {:?}",
        outcome.stats.hosts
    );
    for dir in [&dir_coord, &daemon_dirs[0], &daemon_dirs[1]] {
        let report = run_fsck(dir).expect("fsck");
        assert!(report.is_clean(), "{dir:?}: {report:?}");
    }

    std::env::remove_var("PRISM_STREAM");
    std::env::remove_var(NET_TOKEN_ENV);
    let _ = std::fs::remove_dir_all(&dir_single);
    let _ = std::fs::remove_dir_all(&dir_coord);
    for dir in &daemon_dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn main() {
    // Worker mode first: the coordinator re-invokes this binary with
    // PRISM_GRID_WORKER=1, and nothing may touch stdout before this.
    run_worker_if_env();

    // Coordinator/test mode: insulate the scenarios (and the workers
    // they spawn, which inherit this environment) from ambient knobs
    // like the CI fault-injection matrix.
    for var in [
        "PRISM_FAULTS",
        "PRISM_GRID_FAULTS",
        "PRISM_WORKERS",
        "PRISM_JOBS",
        "PRISM_MAX_NODES",
        "PRISM_DIVERGENCE",
        "PRISM_ARTIFACT_DIR",
        "PRISM_REFRESH",
        "PRISM_CRASH",
        "PRISM_GRID_TIMEOUT_MS",
        "PRISM_NO_FSYNC",
        "PRISM_NET_FAULTS",
        "PRISM_NET_TOKEN",
        "PRISM_HOSTS",
        "PRISM_STREAM",
    ] {
        std::env::remove_var(var);
    }

    let scenarios: [(&str, fn()); 7] = [
        ("grid matches single-process sweep", scenario_equivalence),
        ("worker death loses no units", scenario_worker_death),
        (
            "quarantine retries on another shard",
            scenario_quarantine_retry,
        ),
        ("hung worker is detected and drained", scenario_hung_worker),
        (
            "local fallback with no workers left",
            scenario_local_fallback,
        ),
        (
            "resume assigns zero settled units",
            scenario_resume_assigns_nothing,
        ),
        (
            "TCP daemons match single-process sweep",
            scenario_tcp_equivalence,
        ),
    ];
    let mut failed = 0;
    for (name, scenario) in scenarios {
        eprintln!("--- grid_smoke: {name}");
        match std::panic::catch_unwind(scenario) {
            Ok(()) => eprintln!("ok  - {name}"),
            Err(_) => {
                eprintln!("FAIL- {name}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} grid smoke scenario(s) failed");
        std::process::exit(1);
    }
    eprintln!("all grid smoke scenarios passed");
}
