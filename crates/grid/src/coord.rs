//! The grid coordinator: partitions the design-point unit space across a
//! fleet of workers — local subprocesses and/or remote TCP daemons —
//! supervises them by heartbeat, retries quarantined units on a
//! different shard, reassigns the in-flight units of dead workers, and
//! merges every shard's [`SweepReport`] into one.
//!
//! Local workers are re-invocations of the current executable with
//! `PRISM_GRID_WORKER=1` (see [`crate::worker`]); they share one
//! content-addressed artifact store, whose write-then-rename protocol
//! with per-process temp names makes concurrent writers safe. Remote
//! workers (`prism worker --listen`, reached via
//! [`GridConfig::hosts`]) have their *own* store; the v2 protocol ships
//! result artifacts back by content hash, and anything not shipped is
//! simply recomputed from the journal on resume. Because every unit is
//! keyed identically in every process, a grid run and a single-process
//! run produce byte-identical merged reports (after
//! [`SweepReport::normalize`]) on a healthy fleet — wherever the shards
//! ran.
//!
//! A worker that dies or disconnects mid-unit leaves a synthetic
//! quarantine entry behind; when the reassigned unit later succeeds,
//! normalization promotes it to [`SweepReport::recovered`], so fleet
//! trouble is visible in the merged report without changing its results.

use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;
use std::process::Command;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use prism_exocore::{all_bsa_subsets, all_cores, DesignPoint};
use prism_net::{
    DeadLink, HostSpec, LinkEvent, NetFaultPlan, ShardLink, StdioLink, TcpLink, NET_TOKEN_ENV,
};
use prism_pipeline::{
    crash_point, sweep_key, ArtifactStore, ContentHash, PipelineError, Session, Stage,
    SweepJournal, SweepReport, GC_SAFETY_WINDOW, SITE_GRID_FRAME,
};
use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::CoreConfig;
use prism_workloads::Workload;

use crate::proto::{FromWorker, ToWorker, PROTO_VERSION};
use crate::worker::{SHARD_ENV, WORKER_ENV};
use crate::WORKERS_ENV;

/// Environment variable overriding the heartbeat timeout, in integer
/// milliseconds (e.g. `PRISM_GRID_TIMEOUT_MS=2000`). Useful on loaded CI
/// machines where a healthy worker can stall past the default 10 s.
pub const GRID_TIMEOUT_ENV: &str = "PRISM_GRID_TIMEOUT_MS";

/// How many times one remote link is redialed over a run before its
/// shard slot is given up for dead. Each attempt is itself a bounded
/// backoff dial sequence (see [`prism_net::RECONNECT_ATTEMPTS`]).
const LINK_RECONNECTS: u32 = 3;

/// Parses a heartbeat-timeout override (integer milliseconds, ≥ 1).
///
/// # Errors
///
/// Describes the malformed value; front-ends treat that as fatal
/// misconfiguration rather than silently falling back to the default.
pub fn parse_grid_timeout(raw: &str) -> Result<Duration, String> {
    let ms: u64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("{GRID_TIMEOUT_ENV} must be integer milliseconds, got `{raw}`"))?;
    if ms == 0 {
        return Err(format!("{GRID_TIMEOUT_ENV} must be at least 1 ms"));
    }
    Ok(Duration::from_millis(ms))
}

/// The heartbeat timeout from `PRISM_GRID_TIMEOUT_MS`, defaulting to 10 s
/// when unset or empty. Panics on a malformed value (matching the other
/// `PRISM_*` knobs: fail loudly rather than run with a surprise default).
fn grid_timeout_from_env() -> Duration {
    match std::env::var(GRID_TIMEOUT_ENV) {
        Ok(raw) if !raw.trim().is_empty() => {
            parse_grid_timeout(&raw).unwrap_or_else(|e| panic!("{e}"))
        }
        _ => Duration::from_secs(10),
    }
}

/// Configuration for one grid run.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Local worker processes to spawn (shards `0..workers`).
    pub workers: usize,
    /// Remote worker daemons to connect to; each occupies one shard slot
    /// after the local ones (shards `workers..workers + hosts.len()`).
    pub hosts: Vec<HostSpec>,
    /// How many times a quarantined unit is retried on a *different*
    /// shard before its quarantine becomes permanent.
    pub shard_retries: usize,
    /// Workload names, resolved against the registry in each worker.
    pub workloads: Vec<String>,
    /// Cores of the design grid (must be registry cores — IO2, OOO2,
    /// OOO4, OOO6 — since assignments name them over the wire).
    pub cores: Vec<CoreConfig>,
    /// BSA subsets of the design grid.
    pub subsets: Vec<Vec<BsaKind>>,
    /// Tracer instruction limit shared by every shard.
    pub max_insts: u64,
    /// Content-addressed artifact store shared by every *local* shard
    /// (remote daemons use their own).
    pub artifact_dir: PathBuf,
    /// Worker executable; defaults to the current executable.
    pub worker_cmd: Option<PathBuf>,
    /// A worker silent for this long is presumed dead and killed.
    pub heartbeat_timeout: Duration,
    /// Outstanding assignments per worker: 2 keeps the next unit's
    /// prepare phase overlapping the current unit's evaluate phase.
    pub window: usize,
    /// Extra environment for workers (test hook, e.g. grid faults).
    pub env: Vec<(String, String)>,
    /// Environment variables removed from workers (test hook).
    pub env_remove: Vec<String>,
    /// Injected network fault plan applied to remote links.
    pub net_faults: NetFaultPlan,
    /// Replay this sweep's journal and skip units it records as settled
    /// (the `--resume` flag). A fresh run truncates any prior journal.
    pub resume: bool,
}

impl GridConfig {
    /// The paper's full design space (every registered workload over
    /// 4 cores × 16 BSA subsets) on `workers` shards, with defaults
    /// matching a single-process [`Session`] run.
    #[must_use]
    pub fn full_space(workers: usize) -> Self {
        GridConfig {
            workers,
            hosts: Vec::new(),
            shard_retries: 1,
            workloads: prism_workloads::ALL
                .iter()
                .map(|w| w.name.to_string())
                .collect(),
            cores: all_cores(),
            subsets: all_bsa_subsets(),
            max_insts: TracerConfig::default().max_insts,
            artifact_dir: ArtifactStore::default_dir(),
            worker_cmd: None,
            heartbeat_timeout: grid_timeout_from_env(),
            window: 2,
            env: Vec::new(),
            env_remove: Vec::new(),
            net_faults: NetFaultPlan::from_env(),
            resume: false,
        }
    }
}

/// Per-remote-host counters (one entry per [`GridConfig::hosts`] slot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostStats {
    /// The host as given (`host:port`).
    pub addr: String,
    /// Units this host settled (result or quarantine).
    pub units: usize,
    /// In-flight units recovered from this host's deaths/disconnects.
    pub recoveries: usize,
    /// Successful link reconnects.
    pub reconnects: usize,
    /// Artifact bytes shipped over this link (both directions).
    pub bytes_shipped: u64,
    /// Trace walks this host performed (from its `Bye` counters).
    pub walks: u64,
    /// Walks this host skipped via the timing-reuse layer.
    pub walks_skipped: u64,
    /// In-memory shape-keyed timing memo hits on this host.
    pub shape_memo_hits: u64,
    /// Timing summaries this host loaded from its artifact store.
    pub timing_artifacts_loaded: u64,
}

/// Counters describing how a grid run went.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GridStats {
    /// Worker processes spawned (plus remote links established).
    pub workers_spawned: usize,
    /// Workers that died (crash, heartbeat timeout, protocol error).
    pub workers_died: usize,
    /// Design-point units in the sweep.
    pub units_total: usize,
    /// Quarantined units retried on a different shard.
    pub units_retried: usize,
    /// In-flight units of dead workers that were reassigned.
    pub units_reassigned: usize,
    /// Units evaluated in-process because no eligible worker remained.
    pub local_fallback_units: usize,
    /// Units settled from the sweep journal instead of being re-evaluated
    /// (`--resume`).
    pub resumed: usize,
    /// Valid journal records replayed (≥ `resumed`: a record may cover a
    /// unit superseded by a later one).
    pub replayed: usize,
    /// Bytes reclaimed by the opportunistic orphaned-tmp-file GC.
    pub gc_reclaimed_bytes: u64,
    /// Trace walks performed across every shard that reported counters
    /// (worker `Bye` frames plus the local fallback session).
    pub walks: u64,
    /// Walks skipped run-wide via the timing-reuse layer.
    pub walks_skipped: u64,
    /// Shape-keyed timing memo hits run-wide.
    pub shape_memo_hits: u64,
    /// Timing summaries loaded from artifact stores run-wide.
    pub timing_artifacts_loaded: u64,
    /// Per-remote-host counters, in [`GridConfig::hosts`] order.
    pub hosts: Vec<HostStats>,
}

impl GridStats {
    /// Renders the counters as a human-readable block (for `--stats`).
    #[must_use]
    pub fn render(&self) -> String {
        let mut text = format!(
            "-- grid stats --\n\
             workers : {} spawned, {} died\n\
             units   : {} total, {} retried, {} reassigned, {} local\n\
             journal : {} units resumed, {} records replayed\n\
             gc      : {} bytes reclaimed\n\
             walks   : {} performed, {} skipped ({} shape-memo hits, {} timing artifacts loaded)\n",
            self.workers_spawned,
            self.workers_died,
            self.units_total,
            self.units_retried,
            self.units_reassigned,
            self.local_fallback_units,
            self.resumed,
            self.replayed,
            self.gc_reclaimed_bytes,
            self.walks,
            self.walks_skipped,
            self.shape_memo_hits,
            self.timing_artifacts_loaded,
        );
        for host in &self.hosts {
            text.push_str(&format!(
                "host {} : {} units, {} recovered, {} reconnects, {} bytes shipped, \
                 {} walks, {} skipped ({} shape-memo, {} artifacts)\n",
                host.addr,
                host.units,
                host.recoveries,
                host.reconnects,
                host.bytes_shipped,
                host.walks,
                host.walks_skipped,
                host.shape_memo_hits,
                host.timing_artifacts_loaded,
            ));
        }
        text
    }
}

/// The merged outcome of a grid run.
#[derive(Debug, Clone)]
pub struct GridOutcome {
    /// Every shard's report merged (normalized: sorted, deduped, retried
    /// successes promoted to [`SweepReport::recovered`]).
    pub report: SweepReport,
    /// Run counters.
    pub stats: GridStats,
}

/// A grid run that could not start (bad config, unspawnable workers).
/// Unit-level failures never surface here — they quarantine instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError {
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "grid error: {}", self.message)
    }
}

impl std::error::Error for GridError {}

fn err(message: impl Into<String>) -> GridError {
    GridError {
        message: message.into(),
    }
}

/// One design-point unit of the sweep.
struct Unit {
    label: String,
    core_idx: usize,
    subset_idx: usize,
    core_name: String,
    bsa_codes: String,
    attempts: usize,
    failed_on: Vec<usize>,
    resolved: bool,
    /// Shard this unit was journaled as assigned to (advisory): a
    /// resumed coordinator prefers the recorded placement so a re-run
    /// repeats the prior plan instead of re-planning from scratch.
    planned: Option<usize>,
    /// Shard the last `assigned` journal record names, to avoid
    /// re-journaling an unchanged placement.
    assign_logged: Option<usize>,
}

/// Coordinator-side view of one worker (local subprocess or remote link).
struct WorkerState {
    link: Box<dyn ShardLink>,
    alive: bool,
    last_beat: Instant,
    inflight: Vec<usize>,
    /// Link generation current events must carry (see [`LinkEvent`]).
    gen: u64,
    /// Index into [`GridStats::hosts`] for remote shards.
    host: Option<usize>,
    /// Remaining reconnect attempts for this link.
    reconnects_left: u32,
}

/// The worker subprocess command for one local shard (the link layer
/// pipes its stdin/stdout; stderr stays inherited).
fn worker_command(cmd: &PathBuf, shard: usize, config: &GridConfig) -> Command {
    let mut builder = Command::new(cmd);
    builder
        .env(WORKER_ENV, "1")
        .env(SHARD_ENV, shard.to_string())
        .env("PRISM_ARTIFACT_DIR", &config.artifact_dir)
        // A worker must never recurse into coordinating its own fleet.
        .env_remove(WORKERS_ENV);
    for key in &config.env_remove {
        builder.env_remove(key);
    }
    for (key, value) in &config.env {
        builder.env(key, value);
    }
    builder
}

/// The Hello line opening (or re-opening) one shard's session.
fn hello_line(config: &GridConfig, shard: usize) -> String {
    ToWorker::Hello {
        proto: PROTO_VERSION,
        shard,
        workloads: config.workloads.clone(),
        max_insts: config.max_insts,
        artifact_dir: config.artifact_dir.display().to_string(),
    }
    .encode()
}

/// Marks a shard dead, reassigns its unresolved in-flight units (leaving
/// a synthetic quarantine entry each, so a later success surfaces as
/// `recovered`), and — for remote links with attempts left — tries to
/// reconnect and open a fresh session.
#[allow(clippy::too_many_arguments)]
fn mark_dead_and_reassign(
    shard: usize,
    reason: &str,
    hello: &str,
    workers: &mut [WorkerState],
    units: &[Unit],
    pending: &mut VecDeque<usize>,
    shard_reports: &mut [SweepReport],
    fetch_pending: &mut [usize],
    stats: &mut GridStats,
) {
    let w = &mut workers[shard];
    if !w.alive {
        return;
    }
    eprintln!("[prism-grid] shard {shard}: {reason}");
    w.alive = false;
    w.link.kill();
    stats.workers_died += 1;
    // Outstanding artifact fetches died with the session.
    fetch_pending[shard] = 0;
    for uid in std::mem::take(&mut w.inflight) {
        if units[uid].resolved {
            continue;
        }
        stats.units_reassigned += 1;
        if let Some(h) = w.host {
            stats.hosts[h].recoveries += 1;
        }
        let label = &units[uid].label;
        shard_reports[shard].quarantined.push((
            label.clone(),
            PipelineError::new(
                label,
                Stage::Evaluate,
                "worker died with unit in flight; reassigned",
            ),
        ));
        pending.push_back(uid);
    }
    if w.link.is_remote() && w.reconnects_left > 0 {
        w.reconnects_left -= 1;
        match w.link.reconnect() {
            Ok(gen) => {
                w.gen = gen;
                if w.link.send_line(hello).is_ok() {
                    w.alive = true;
                    w.last_beat = Instant::now();
                    if let Some(h) = w.host {
                        stats.hosts[h].reconnects += 1;
                    }
                    eprintln!(
                        "[prism-grid] shard {shard}: reconnected ({})",
                        w.link.describe()
                    );
                }
            }
            Err(e) => eprintln!("[prism-grid] shard {shard}: reconnect failed: {e}"),
        }
    }
}

/// Runs the sharded sweep: spawns local workers and connects remote
/// daemons, streams assignments with a small per-worker window (so
/// prepare overlaps evaluate), supervises by heartbeat, retries
/// quarantined units on a different shard, reassigns the in-flight units
/// of dead workers (reconnecting remote links), pulls missing result
/// artifacts from remote stores, falls back to in-process evaluation
/// when no eligible worker remains, and merges every shard's report.
///
/// # Errors
///
/// Returns a [`GridError`] only when the run cannot start (zero workers
/// and zero hosts configured, no worker executable); anything that fails
/// *during* the run quarantines units instead.
#[allow(clippy::too_many_lines)]
pub fn run_grid(config: &GridConfig) -> Result<GridOutcome, GridError> {
    if config.workers == 0 && config.hosts.is_empty() {
        return Err(err("at least one worker or host is required"));
    }
    let worker_cmd = if config.workers == 0 {
        None
    } else {
        match &config.worker_cmd {
            Some(cmd) => Some(cmd.clone()),
            None => Some(
                std::env::current_exe()
                    .map_err(|e| err(format!("cannot resolve current executable: {e}")))?,
            ),
        }
    };
    let token = std::env::var(NET_TOKEN_ENV).unwrap_or_default();

    // The unit space, in the same core-major order as `explore_grid`.
    let mut units: Vec<Unit> = Vec::with_capacity(config.cores.len() * config.subsets.len());
    for (core_idx, core) in config.cores.iter().enumerate() {
        for (subset_idx, subset) in config.subsets.iter().enumerate() {
            units.push(Unit {
                label: DesignPoint::new(core.clone(), subset.clone()).label(),
                core_idx,
                subset_idx,
                core_name: core.name.clone(),
                bsa_codes: subset.iter().map(|b| b.code()).collect(),
                attempts: 0,
                failed_on: Vec::new(),
                resolved: false,
                planned: None,
                assign_logged: None,
            });
        }
    }

    let (tx, rx) = mpsc::channel();
    let total_shards = config.workers + config.hosts.len();
    let mut workers: Vec<WorkerState> = Vec::with_capacity(total_shards);
    let mut stats = GridStats {
        units_total: units.len(),
        ..GridStats::default()
    };

    // Opportunistic repair: reclaim tmp files orphaned by killed runs
    // (never a live process's, never younger than the safety window).
    let store = ArtifactStore::new(&config.artifact_dir);
    let (_, gc_bytes) = store.gc_tmp_files(GC_SAFETY_WINDOW);
    stats.gc_reclaimed_bytes = gc_bytes;

    // Sweep journal: derived from the exact same inputs a single-process
    // `Session` sweep uses, so `prism explore` and `prism grid` over the
    // same space share one journal file. Units the journal records as
    // settled are resolved up front and never assigned to a worker.
    let tracer = TracerConfig {
        max_insts: config.max_insts,
        ..TracerConfig::default()
    };
    let wl_sizes: Vec<(String, u32)> = config
        .workloads
        .iter()
        .filter_map(|name| {
            prism_workloads::by_name(name)
                .or_else(|| prism_workloads::MICRO.iter().find(|m| m.name == name))
                .map(|w| (w.name.to_string(), w.scaled_n()))
        })
        .collect();
    let sweep = sweep_key(&wl_sizes, &tracer, &config.cores, &config.subsets);
    let mut replay_report = SweepReport::default();
    let journal = match SweepJournal::open(&config.artifact_dir, &sweep, config.resume) {
        Ok((journal, replay)) => {
            for unit in &mut units {
                if let Some(&shard) = replay.assigned.get(&unit.label) {
                    unit.planned = Some(shard as usize);
                }
                if let Some(result) = replay.done.get(&unit.label) {
                    replay_report.results.push(result.clone());
                } else if let Some(error) = replay.quarantined.get(&unit.label) {
                    replay_report
                        .quarantined
                        .push((unit.label.clone(), error.clone()));
                } else {
                    continue;
                }
                unit.resolved = true;
                stats.resumed += 1;
            }
            stats.replayed = replay.records as usize;
            if replay.dropped > 0 {
                eprintln!(
                    "[prism-grid] journal: dropped {} torn/corrupt trailing record(s)",
                    replay.dropped
                );
            }
            Some(journal)
        }
        Err(e) => {
            eprintln!("[prism-grid] journal unavailable ({e}); sweep will not be resumable");
            None
        }
    };

    // Local shards first (0..workers), then one slot per remote host; a
    // failed spawn or connect leaves a dead placeholder so shard ids keep
    // matching vector indices.
    for shard in 0..config.workers {
        let cmd = worker_cmd.as_ref().expect("workers > 0 resolves a command");
        match StdioLink::spawn(worker_command(cmd, shard, config), shard, &tx) {
            Ok(link) => {
                stats.workers_spawned += 1;
                workers.push(WorkerState {
                    link: Box::new(link),
                    alive: true,
                    last_beat: Instant::now(),
                    inflight: Vec::new(),
                    gen: 0,
                    host: None,
                    reconnects_left: 0,
                });
            }
            Err(e) => {
                eprintln!("[prism-grid] shard {shard}: spawn failed: {e}");
                workers.push(WorkerState {
                    link: Box::new(DeadLink::new(&format!("local shard {shard}"))),
                    alive: false,
                    last_beat: Instant::now(),
                    inflight: Vec::new(),
                    gen: 0,
                    host: None,
                    reconnects_left: 0,
                });
            }
        }
    }
    for (hidx, host) in config.hosts.iter().enumerate() {
        let shard = config.workers + hidx;
        stats.hosts.push(HostStats {
            addr: host.to_string(),
            ..HostStats::default()
        });
        match TcpLink::connect(
            &host.addr(),
            shard,
            &token,
            config.net_faults.clone(),
            tx.clone(),
        ) {
            Ok(link) => {
                stats.workers_spawned += 1;
                let gen = link.generation();
                workers.push(WorkerState {
                    link: Box::new(link),
                    alive: true,
                    last_beat: Instant::now(),
                    inflight: Vec::new(),
                    gen,
                    host: Some(hidx),
                    reconnects_left: LINK_RECONNECTS,
                });
            }
            Err(e) => {
                eprintln!("[prism-grid] shard {shard}: connect to {host} failed: {e}");
                workers.push(WorkerState {
                    link: Box::new(DeadLink::new(&format!("host {host}"))),
                    alive: false,
                    last_beat: Instant::now(),
                    inflight: Vec::new(),
                    gen: 0,
                    host: Some(hidx),
                    reconnects_left: 0,
                });
            }
        }
    }
    drop(tx);
    // Open every live session.
    for (shard, worker) in workers.iter_mut().enumerate() {
        if worker.alive {
            let hello = hello_line(config, shard);
            if let Err(e) = worker.link.send_line(&hello) {
                eprintln!("[prism-grid] shard {shard}: hello failed: {e}");
            }
        }
    }

    // Push-side artifact warming for remote shards: the design-point key
    // each unit will settle into, assuming every workload is healthy. A
    // mismatch (some workload quarantined) just makes the push useless —
    // correctness never depends on shipped artifacts.
    let key_session = if config.hosts.is_empty() {
        None
    } else {
        Some(
            Session::new()
                .with_tracer(tracer)
                .with_store_dir(&config.artifact_dir),
        )
    };
    let push_keys: Option<Vec<ContentHash>> = key_session.as_ref().map(|session| {
        wl_sizes
            .iter()
            .map(|(name, n)| session.workload_key(name, *n))
            .collect()
    });
    // Timing artifacts learned from settled units, grouped by core index:
    // cores that differ only in priced parameters share a timing shape
    // key, so a walk shipped back by one shard warms every later assign
    // of a shape-sharing core on any other shard. Per-shard sent-sets
    // keep the push one-shot per (artifact, shard).
    let mut learned_timing: HashMap<usize, Vec<ContentHash>> = HashMap::new();
    let mut timing_sent: Vec<HashSet<ContentHash>> =
        (0..workers.len()).map(|_| HashSet::new()).collect();

    let mut shard_reports: Vec<SweepReport> =
        (0..workers.len()).map(|_| SweepReport::default()).collect();
    let mut fetch_pending: Vec<usize> = vec![0; workers.len()];
    let mut pending: VecDeque<usize> = (0..units.len()).collect();
    let mut local_queue: Vec<usize> = Vec::new();
    let mut resolved = units.iter().filter(|u| u.resolved).count();

    while resolved + local_queue.len() < units.len() {
        // Dispatch: fill every live worker's window, preferring the
        // journaled placement on resume, routing retries away from
        // shards they already failed on; units with no eligible shard
        // left fall back to local evaluation.
        let mut still_pending = VecDeque::new();
        while let Some(uid) = pending.pop_front() {
            if units[uid].resolved {
                continue;
            }
            let eligible = |shard: usize, w: &WorkerState| {
                w.alive
                    && w.inflight.len() < config.window
                    && !units[uid].failed_on.contains(&shard)
            };
            let pick = units[uid]
                .planned
                .filter(|&s| s < workers.len() && eligible(s, &workers[s]))
                .or_else(|| {
                    workers
                        .iter()
                        .enumerate()
                        .filter(|&(shard, w)| eligible(shard, w))
                        .min_by_key(|(_, w)| w.inflight.len())
                        .map(|(shard, _)| shard)
                });
            match pick {
                Some(shard) => {
                    // Warm a remote shard's store with the artifact this
                    // unit would settle into, if we already have it.
                    if let (Some(session), Some(wkeys), Some(h)) =
                        (&key_session, &push_keys, workers[shard].host)
                    {
                        let akey = session.design_point_key(
                            wkeys,
                            &config.cores[units[uid].core_idx],
                            &config.subsets[units[uid].subset_idx],
                        );
                        if let Some(doc) = store.export(&akey) {
                            stats.hosts[h].bytes_shipped += doc.len() as u64;
                            let push = ToWorker::Artifact {
                                key: akey.hex(),
                                doc,
                            };
                            let _ = workers[shard].link.send_line(&push.encode());
                        }
                        // Ship any timing walks already learned for this
                        // unit's core, so the shard prices instead of
                        // re-walking. Missing or stale docs just mean the
                        // worker recomputes — never a correctness risk.
                        if let Some(keys) = learned_timing.get(&units[uid].core_idx) {
                            for tkey in keys {
                                if timing_sent[shard].contains(tkey) {
                                    continue;
                                }
                                if let Some(doc) = store.export(tkey) {
                                    stats.hosts[h].bytes_shipped += doc.len() as u64;
                                    let push = ToWorker::Artifact {
                                        key: tkey.hex(),
                                        doc,
                                    };
                                    let _ = workers[shard].link.send_line(&push.encode());
                                    timing_sent[shard].insert(*tkey);
                                }
                            }
                        }
                    }
                    let msg = ToWorker::Assign {
                        id: uid as u64,
                        core: units[uid].core_name.clone(),
                        bsas: units[uid].bsa_codes.clone(),
                    }
                    .encode();
                    if workers[shard].link.send_line(&msg).is_ok() {
                        workers[shard].inflight.push(uid);
                        if units[uid].assign_logged != Some(shard) {
                            units[uid].assign_logged = Some(shard);
                            if let Some(j) = &journal {
                                if let Err(e) = j.append_assigned(&units[uid].label, shard as u64) {
                                    eprintln!("[prism-grid] journal append failed: {e}");
                                }
                            }
                        }
                    } else {
                        // Write failure: the worker is dying; its Eof event
                        // will handle the cleanup. Try again next round.
                        still_pending.push_back(uid);
                    }
                }
                None => {
                    let possible = workers
                        .iter()
                        .enumerate()
                        .any(|(shard, w)| w.alive && !units[uid].failed_on.contains(&shard));
                    if possible {
                        still_pending.push_back(uid); // workers busy; wait
                    } else {
                        local_queue.push(uid);
                    }
                }
            }
        }
        pending = still_pending;
        if resolved + local_queue.len() >= units.len() {
            break;
        }

        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok((shard, LinkEvent::Line(gen, line))) => {
                if shard >= workers.len() || gen != workers[shard].gen {
                    continue; // stale connection generation
                }
                workers[shard].last_beat = Instant::now();
                let msg = match FromWorker::decode(&line) {
                    Ok(msg) => msg,
                    Err(e) => {
                        let hello = hello_line(config, shard);
                        mark_dead_and_reassign(
                            shard,
                            &format!("garbled output: {e}"),
                            &hello,
                            &mut workers,
                            &units,
                            &mut pending,
                            &mut shard_reports,
                            &mut fetch_pending,
                            &mut stats,
                        );
                        continue;
                    }
                };
                match msg {
                    FromWorker::HelloAck { .. } | FromWorker::Heartbeat { .. } => {}
                    FromWorker::Bye {
                        walks,
                        walks_skipped,
                        shape_memo_hits,
                        timing_artifacts_loaded,
                    } => {
                        fold_walk_stats(
                            &mut stats,
                            workers[shard].host,
                            walks,
                            walks_skipped,
                            shape_memo_hits,
                            timing_artifacts_loaded,
                        );
                    }
                    FromWorker::UnitResult {
                        id,
                        result,
                        artifacts,
                    } => {
                        // Kill point: the unit's artifact is durable (the
                        // worker stored it before reporting) but nothing is
                        // journaled yet — a resume must recompute cheaply
                        // from the store, not lose the unit.
                        crash_point(SITE_GRID_FRAME);
                        let uid = id as usize;
                        workers[shard].inflight.retain(|&u| u != uid);
                        if uid < units.len() && !units[uid].resolved {
                            units[uid].resolved = true;
                            resolved += 1;
                            if let Some(h) = workers[shard].host {
                                stats.hosts[h].units += 1;
                            }
                            if let Some(j) = &journal {
                                if let Err(e) = j.append_done(&units[uid].label, &result) {
                                    eprintln!("[prism-grid] journal append failed: {e}");
                                }
                            }
                        }
                        shard_reports[shard].results.push(result);
                        // Learn the unit's timing shape keys — every
                        // reported artifact beyond the design-point
                        // result — so later assigns of shape-sharing
                        // cores are warmed push-side.
                        if let (Some(session), Some(wkeys)) = (&key_session, &push_keys) {
                            if uid < units.len() {
                                let akey = session.design_point_key(
                                    wkeys,
                                    &config.cores[units[uid].core_idx],
                                    &config.subsets[units[uid].subset_idx],
                                );
                                let learned =
                                    learned_timing.entry(units[uid].core_idx).or_default();
                                for k in &artifacts {
                                    if let Some(hash) = ContentHash::from_hex(k) {
                                        if hash != akey && !learned.contains(&hash) {
                                            learned.push(hash);
                                        }
                                    }
                                }
                            }
                        }
                        // Pull any result artifacts a remote store has
                        // that ours is missing (pure cache warmth: resume
                        // and correctness never depend on the shipment).
                        if workers[shard].link.is_remote() {
                            let missing: Vec<String> = artifacts
                                .into_iter()
                                .filter(|k| {
                                    ContentHash::from_hex(k)
                                        .is_some_and(|hash| !store.contains(&hash))
                                })
                                .collect();
                            if !missing.is_empty() {
                                let n = missing.len();
                                let fetch = ToWorker::Fetch { keys: missing }.encode();
                                if workers[shard].link.send_line(&fetch).is_ok() {
                                    fetch_pending[shard] += n;
                                }
                            }
                        }
                    }
                    FromWorker::UnitQuarantine { id, key, error } => {
                        crash_point(SITE_GRID_FRAME);
                        if let Some(uid) = id.map(|id| id as usize) {
                            workers[shard].inflight.retain(|&u| u != uid);
                            if uid < units.len() && !units[uid].resolved {
                                units[uid].attempts += 1;
                                units[uid].failed_on.push(shard);
                                if units[uid].attempts <= config.shard_retries {
                                    stats.units_retried += 1;
                                    pending.push_back(uid);
                                } else {
                                    units[uid].resolved = true;
                                    resolved += 1;
                                    if let Some(h) = workers[shard].host {
                                        stats.hosts[h].units += 1;
                                    }
                                    // Only a *permanent* quarantine is
                                    // journaled: a retry may still succeed,
                                    // and a later `done` must win on replay.
                                    if let Some(j) = &journal {
                                        if let Err(e) =
                                            j.append_quarantined(&units[uid].label, &error)
                                        {
                                            eprintln!("[prism-grid] journal append failed: {e}");
                                        }
                                    }
                                }
                            }
                        }
                        shard_reports[shard].quarantined.push((key, error));
                    }
                    FromWorker::Artifact { key, doc } => {
                        fetch_pending[shard] = fetch_pending[shard].saturating_sub(1);
                        if let Some(h) = workers[shard].host {
                            stats.hosts[h].bytes_shipped += doc.len() as u64;
                        }
                        // Empty doc = "worker doesn't have it"; nothing to do.
                        if !doc.is_empty() {
                            match ContentHash::from_hex(&key) {
                                Some(hash) => {
                                    if let Err(e) = store.import(&hash, &doc) {
                                        eprintln!(
                                            "[prism-grid] shard {shard}: artifact import failed: {e}"
                                        );
                                    }
                                }
                                None => eprintln!(
                                    "[prism-grid] shard {shard}: artifact with bad key {key}"
                                ),
                            }
                        }
                    }
                    FromWorker::Fatal { message } => {
                        let hello = hello_line(config, shard);
                        mark_dead_and_reassign(
                            shard,
                            &format!("fatal: {message}"),
                            &hello,
                            &mut workers,
                            &units,
                            &mut pending,
                            &mut shard_reports,
                            &mut fetch_pending,
                            &mut stats,
                        );
                    }
                }
            }
            Ok((shard, LinkEvent::Eof(gen))) => {
                if shard < workers.len() && gen == workers[shard].gen && workers[shard].alive {
                    let hello = hello_line(config, shard);
                    mark_dead_and_reassign(
                        shard,
                        "link closed unexpectedly",
                        &hello,
                        &mut workers,
                        &units,
                        &mut pending,
                        &mut shard_reports,
                        &mut fetch_pending,
                        &mut stats,
                    );
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Every link's reader is gone: mark all workers dead.
                for shard in 0..workers.len() {
                    let hello = hello_line(config, shard);
                    mark_dead_and_reassign(
                        shard,
                        "event channel disconnected",
                        &hello,
                        &mut workers,
                        &units,
                        &mut pending,
                        &mut shard_reports,
                        &mut fetch_pending,
                        &mut stats,
                    );
                }
            }
        }

        // Heartbeat supervision: a silent worker is dead, and its
        // in-flight units must not be lost.
        for shard in 0..workers.len() {
            if workers[shard].alive && workers[shard].last_beat.elapsed() > config.heartbeat_timeout
            {
                let hello = hello_line(config, shard);
                mark_dead_and_reassign(
                    shard,
                    &format!("no heartbeat for {:?}", config.heartbeat_timeout),
                    &hello,
                    &mut workers,
                    &units,
                    &mut pending,
                    &mut shard_reports,
                    &mut fetch_pending,
                    &mut stats,
                );
            }
        }
    }

    // Grace drain: give outstanding artifact fetches a bounded window to
    // land before the links close (late unit frames still count too).
    let drain_deadline = Instant::now() + Duration::from_secs(2);
    while fetch_pending.iter().sum::<usize>() > 0 && Instant::now() < drain_deadline {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok((shard, LinkEvent::Line(gen, line)))
                if shard < workers.len() && gen == workers[shard].gen =>
            {
                if let Ok(msg) = FromWorker::decode(&line) {
                    absorb_late_frame(
                        shard,
                        msg,
                        &workers,
                        &store,
                        &mut shard_reports,
                        &mut fetch_pending,
                        &mut stats,
                    );
                }
            }
            Ok((shard, LinkEvent::Eof(gen))) => {
                if shard < workers.len() && gen == workers[shard].gen {
                    workers[shard].alive = false;
                    fetch_pending[shard] = 0;
                }
            }
            Ok(_) => {}
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }

    // Clean shutdown: ask politely, then reap (with a kill deadline).
    for w in workers.iter_mut().filter(|w| w.alive) {
        let _ = w.link.send_line(&ToWorker::Shutdown.encode());
        w.link.shutdown_input();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    for w in &mut workers {
        w.link.reap(deadline);
    }
    // Late events (results that raced the shutdown) still count.
    while let Ok((shard, event)) = rx.try_recv() {
        if let LinkEvent::Line(gen, line) = event {
            if shard < workers.len() && gen == workers[shard].gen {
                if let Ok(msg) = FromWorker::decode(&line) {
                    absorb_late_frame(
                        shard,
                        msg,
                        &workers,
                        &store,
                        &mut shard_reports,
                        &mut fetch_pending,
                        &mut stats,
                    );
                }
            }
        }
    }

    // Local fallback: evaluate in-process whatever no worker could take.
    if !local_queue.is_empty() {
        let mut local = SweepReport::default();
        let session = Session::new()
            .with_tracer(TracerConfig {
                max_insts: config.max_insts,
                ..TracerConfig::default()
            })
            .with_store_dir(&config.artifact_dir);
        let mut workload_refs: Vec<&Workload> = Vec::new();
        for name in &config.workloads {
            match prism_workloads::by_name(name)
                .or_else(|| prism_workloads::MICRO.iter().find(|m| m.name == name))
            {
                Some(w) => workload_refs.push(w),
                None => local.quarantined.push((
                    format!("workload:{name}"),
                    PipelineError::new(name, Stage::Build, "unknown workload"),
                )),
            }
        }
        for uid in local_queue {
            let unit = &units[uid];
            let core = config.cores[unit.core_idx].clone();
            let subset = config.subsets[unit.subset_idx].clone();
            let report = session.evaluate_designs(&workload_refs, &[core], &[subset]);
            if report.results.is_empty()
                && !report.quarantined.iter().any(|(k, _)| *k == unit.label)
            {
                local.quarantined.push((
                    unit.label.clone(),
                    PipelineError::new(
                        &unit.label,
                        Stage::Evaluate,
                        "no healthy workloads to evaluate",
                    ),
                ));
            }
            if let Some(j) = &journal {
                let outcome = if let Some(r) = report.results.iter().find(|r| r.label == unit.label)
                {
                    j.append_done(&unit.label, r)
                } else if let Some((_, e)) =
                    report.quarantined.iter().find(|(k, _)| *k == unit.label)
                {
                    j.append_quarantined(&unit.label, e)
                } else {
                    Ok(())
                };
                if let Err(e) = outcome {
                    eprintln!("[prism-grid] journal append failed: {e}");
                }
            }
            local.merge(report);
            stats.local_fallback_units += 1;
        }
        let local_stats = session.stats();
        fold_walk_stats(
            &mut stats,
            None,
            local_stats.trace_walks,
            local_stats.walks_skipped,
            local_stats.shape_memo_hits,
            local_stats.timing_artifacts_loaded,
        );
        shard_reports.push(local);
    }

    let mut merged = replay_report;
    for report in shard_reports {
        merged.merge(report);
    }
    merged.normalize();
    // A finished sweep with no permanent quarantines has nothing left to
    // resume; one *with* quarantines keeps its journal so a `--resume`
    // replays the identical errors instead of re-running known-bad units.
    if let Some(j) = journal {
        if merged.quarantined.is_empty() {
            if let Err(e) = j.remove() {
                eprintln!("[prism-grid] could not remove finished journal: {e}");
            }
        }
    }
    Ok(GridOutcome {
        report: merged,
        stats,
    })
}

/// Absorbs a frame arriving after the main loop settled every unit:
/// results and quarantines still count toward the merged report, and
/// artifact replies still land in the store.
fn absorb_late_frame(
    shard: usize,
    msg: FromWorker,
    workers: &[WorkerState],
    store: &ArtifactStore,
    shard_reports: &mut [SweepReport],
    fetch_pending: &mut [usize],
    stats: &mut GridStats,
) {
    match msg {
        FromWorker::UnitResult { result, .. } if shard < shard_reports.len() => {
            shard_reports[shard].results.push(result);
        }
        FromWorker::UnitQuarantine { key, error, .. } if shard < shard_reports.len() => {
            shard_reports[shard].quarantined.push((key, error));
        }
        FromWorker::Artifact { key, doc } => {
            fetch_pending[shard] = fetch_pending[shard].saturating_sub(1);
            if let Some(h) = workers[shard].host {
                stats.hosts[h].bytes_shipped += doc.len() as u64;
            }
            if !doc.is_empty() {
                if let Some(hash) = ContentHash::from_hex(&key) {
                    if let Err(e) = store.import(&hash, &doc) {
                        eprintln!("[prism-grid] shard {shard}: artifact import failed: {e}");
                    }
                }
            }
        }
        // The usual arrival path for Bye counters: workers acknowledge
        // the post-sweep Shutdown, so their frames land in this drain.
        FromWorker::Bye {
            walks,
            walks_skipped,
            shape_memo_hits,
            timing_artifacts_loaded,
        } => {
            fold_walk_stats(
                stats,
                workers[shard].host,
                walks,
                walks_skipped,
                shape_memo_hits,
                timing_artifacts_loaded,
            );
        }
        _ => {}
    }
}

/// Adds one session's timing-reuse counters to the run totals and, for a
/// remote shard, to its per-host breakdown.
fn fold_walk_stats(
    stats: &mut GridStats,
    host: Option<usize>,
    walks: u64,
    walks_skipped: u64,
    shape_memo_hits: u64,
    timing_artifacts_loaded: u64,
) {
    stats.walks += walks;
    stats.walks_skipped += walks_skipped;
    stats.shape_memo_hits += shape_memo_hits;
    stats.timing_artifacts_loaded += timing_artifacts_loaded;
    if let Some(h) = host {
        stats.hosts[h].walks += walks;
        stats.hosts[h].walks_skipped += walks_skipped;
        stats.hosts[h].shape_memo_hits += shape_memo_hits;
        stats.hosts[h].timing_artifacts_loaded += timing_artifacts_loaded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_timeout_parses_integer_milliseconds() {
        assert_eq!(parse_grid_timeout("2500"), Ok(Duration::from_millis(2500)));
        assert_eq!(parse_grid_timeout(" 1 "), Ok(Duration::from_millis(1)));
        assert_eq!(
            parse_grid_timeout("60000"),
            Ok(Duration::from_millis(60_000))
        );
    }

    #[test]
    fn grid_timeout_rejects_zero_and_garbage() {
        for bad in ["0", "-5", "1.5", "10s", "", "fast"] {
            let err = parse_grid_timeout(bad).unwrap_err();
            assert!(err.contains(GRID_TIMEOUT_ENV), "{bad:?}: {err}");
        }
    }

    #[test]
    fn grid_stats_render_names_every_counter() {
        let stats = GridStats {
            workers_spawned: 2,
            workers_died: 1,
            units_total: 64,
            units_retried: 3,
            units_reassigned: 4,
            local_fallback_units: 5,
            resumed: 6,
            replayed: 7,
            gc_reclaimed_bytes: 8,
            walks: 13,
            walks_skipped: 14,
            shape_memo_hits: 15,
            timing_artifacts_loaded: 16,
            hosts: vec![HostStats {
                addr: "10.0.0.9:7761".into(),
                units: 9,
                recoveries: 10,
                reconnects: 11,
                bytes_shipped: 12,
                walks: 17,
                walks_skipped: 18,
                shape_memo_hits: 19,
                timing_artifacts_loaded: 20,
            }],
        };
        let text = stats.render();
        assert!(text.contains("6 units resumed"), "{text}");
        assert!(text.contains("7 records replayed"), "{text}");
        assert!(text.contains("8 bytes reclaimed"), "{text}");
        assert!(
            text.contains(
                "13 performed, 14 skipped (15 shape-memo hits, 16 timing artifacts loaded)"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "host 10.0.0.9:7761 : 9 units, 10 recovered, 11 reconnects, 12 bytes shipped, \
                 17 walks, 18 skipped (19 shape-memo, 20 artifacts)"
            ),
            "{text}"
        );
    }
}
