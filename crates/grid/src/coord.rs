//! The grid coordinator: partitions the design-point unit space across a
//! fleet of worker subprocesses, supervises them by heartbeat, retries
//! quarantined units on a different shard, reassigns the in-flight units
//! of dead workers, and merges every shard's [`SweepReport`] into one.
//!
//! Workers are re-invocations of the current executable with
//! `PRISM_GRID_WORKER=1` (see [`crate::worker`]); they share one
//! content-addressed artifact store, whose write-then-rename protocol
//! with per-process temp names makes concurrent writers safe. Because
//! every unit is keyed identically in every process, a grid run and a
//! single-process run produce byte-identical merged reports (after
//! [`SweepReport::normalize`]) on a healthy fleet.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use prism_exocore::{all_bsa_subsets, all_cores, DesignPoint};
use prism_pipeline::{
    crash_point, sweep_key, ArtifactStore, PipelineError, Session, Stage, SweepJournal,
    SweepReport, GC_SAFETY_WINDOW, SITE_GRID_FRAME,
};
use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::CoreConfig;
use prism_workloads::Workload;

use crate::proto::{FromWorker, ToWorker, PROTO_VERSION};
use crate::worker::{SHARD_ENV, WORKER_ENV};
use crate::WORKERS_ENV;

/// Environment variable overriding the heartbeat timeout, in integer
/// milliseconds (e.g. `PRISM_GRID_TIMEOUT_MS=2000`). Useful on loaded CI
/// machines where a healthy worker can stall past the default 10 s.
pub const GRID_TIMEOUT_ENV: &str = "PRISM_GRID_TIMEOUT_MS";

/// Parses a heartbeat-timeout override (integer milliseconds, ≥ 1).
///
/// # Errors
///
/// Describes the malformed value; front-ends treat that as fatal
/// misconfiguration rather than silently falling back to the default.
pub fn parse_grid_timeout(raw: &str) -> Result<Duration, String> {
    let ms: u64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("{GRID_TIMEOUT_ENV} must be integer milliseconds, got `{raw}`"))?;
    if ms == 0 {
        return Err(format!("{GRID_TIMEOUT_ENV} must be at least 1 ms"));
    }
    Ok(Duration::from_millis(ms))
}

/// The heartbeat timeout from `PRISM_GRID_TIMEOUT_MS`, defaulting to 10 s
/// when unset or empty. Panics on a malformed value (matching the other
/// `PRISM_*` knobs: fail loudly rather than run with a surprise default).
fn grid_timeout_from_env() -> Duration {
    match std::env::var(GRID_TIMEOUT_ENV) {
        Ok(raw) if !raw.trim().is_empty() => {
            parse_grid_timeout(&raw).unwrap_or_else(|e| panic!("{e}"))
        }
        _ => Duration::from_secs(10),
    }
}

/// Configuration for one grid run.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Worker processes to spawn (shards).
    pub workers: usize,
    /// How many times a quarantined unit is retried on a *different*
    /// shard before its quarantine becomes permanent.
    pub shard_retries: usize,
    /// Workload names, resolved against the registry in each worker.
    pub workloads: Vec<String>,
    /// Cores of the design grid (must be registry cores — IO2, OOO2,
    /// OOO4, OOO6 — since assignments name them over the wire).
    pub cores: Vec<CoreConfig>,
    /// BSA subsets of the design grid.
    pub subsets: Vec<Vec<BsaKind>>,
    /// Tracer instruction limit shared by every shard.
    pub max_insts: u64,
    /// Content-addressed artifact store shared by every shard.
    pub artifact_dir: PathBuf,
    /// Worker executable; defaults to the current executable.
    pub worker_cmd: Option<PathBuf>,
    /// A worker silent for this long is presumed dead and killed.
    pub heartbeat_timeout: Duration,
    /// Outstanding assignments per worker: 2 keeps the next unit's
    /// prepare phase overlapping the current unit's evaluate phase.
    pub window: usize,
    /// Extra environment for workers (test hook, e.g. grid faults).
    pub env: Vec<(String, String)>,
    /// Environment variables removed from workers (test hook).
    pub env_remove: Vec<String>,
    /// Replay this sweep's journal and skip units it records as settled
    /// (the `--resume` flag). A fresh run truncates any prior journal.
    pub resume: bool,
}

impl GridConfig {
    /// The paper's full design space (every registered workload over
    /// 4 cores × 16 BSA subsets) on `workers` shards, with defaults
    /// matching a single-process [`Session`] run.
    #[must_use]
    pub fn full_space(workers: usize) -> Self {
        GridConfig {
            workers,
            shard_retries: 1,
            workloads: prism_workloads::ALL
                .iter()
                .map(|w| w.name.to_string())
                .collect(),
            cores: all_cores(),
            subsets: all_bsa_subsets(),
            max_insts: TracerConfig::default().max_insts,
            artifact_dir: ArtifactStore::default_dir(),
            worker_cmd: None,
            heartbeat_timeout: grid_timeout_from_env(),
            window: 2,
            env: Vec::new(),
            env_remove: Vec::new(),
            resume: false,
        }
    }
}

/// Counters describing how a grid run went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridStats {
    /// Worker processes spawned.
    pub workers_spawned: usize,
    /// Workers that died (crash, heartbeat timeout, protocol error).
    pub workers_died: usize,
    /// Design-point units in the sweep.
    pub units_total: usize,
    /// Quarantined units retried on a different shard.
    pub units_retried: usize,
    /// In-flight units of dead workers that were reassigned.
    pub units_reassigned: usize,
    /// Units evaluated in-process because no eligible worker remained.
    pub local_fallback_units: usize,
    /// Units settled from the sweep journal instead of being re-evaluated
    /// (`--resume`).
    pub resumed: usize,
    /// Valid journal records replayed (≥ `resumed`: a record may cover a
    /// unit superseded by a later one).
    pub replayed: usize,
    /// Bytes reclaimed by the opportunistic orphaned-tmp-file GC.
    pub gc_reclaimed_bytes: u64,
}

impl GridStats {
    /// Renders the counters as a human-readable block (for `--stats`).
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "-- grid stats --\n\
             workers : {} spawned, {} died\n\
             units   : {} total, {} retried, {} reassigned, {} local\n\
             journal : {} units resumed, {} records replayed\n\
             gc      : {} bytes reclaimed\n",
            self.workers_spawned,
            self.workers_died,
            self.units_total,
            self.units_retried,
            self.units_reassigned,
            self.local_fallback_units,
            self.resumed,
            self.replayed,
            self.gc_reclaimed_bytes,
        )
    }
}

/// The merged outcome of a grid run.
#[derive(Debug, Clone)]
pub struct GridOutcome {
    /// Every shard's report merged (normalized: sorted, deduped, retried
    /// successes promoted to [`SweepReport::recovered`]).
    pub report: SweepReport,
    /// Run counters.
    pub stats: GridStats,
}

/// A grid run that could not start (bad config, unspawnable workers).
/// Unit-level failures never surface here — they quarantine instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError {
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "grid error: {}", self.message)
    }
}

impl std::error::Error for GridError {}

fn err(message: impl Into<String>) -> GridError {
    GridError {
        message: message.into(),
    }
}

/// One design-point unit of the sweep.
struct Unit {
    label: String,
    core_idx: usize,
    subset_idx: usize,
    core_name: String,
    bsa_codes: String,
    attempts: usize,
    failed_on: Vec<usize>,
    resolved: bool,
}

/// Coordinator-side view of one worker process.
struct WorkerState {
    child: Child,
    stdin: Option<ChildStdin>,
    alive: bool,
    last_beat: Instant,
    inflight: Vec<usize>,
}

enum Event {
    Msg(usize, FromWorker),
    Garbled(usize, String),
    Eof(usize),
}

fn spawn_worker(
    cmd: &PathBuf,
    shard: usize,
    config: &GridConfig,
    tx: &mpsc::Sender<Event>,
) -> std::io::Result<(WorkerState, std::thread::JoinHandle<()>)> {
    let mut builder = Command::new(cmd);
    builder
        .env(WORKER_ENV, "1")
        .env(SHARD_ENV, shard.to_string())
        .env("PRISM_ARTIFACT_DIR", &config.artifact_dir)
        // A worker must never recurse into coordinating its own fleet.
        .env_remove(WORKERS_ENV)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for key in &config.env_remove {
        builder.env_remove(key);
    }
    for (key, value) in &config.env {
        builder.env(key, value);
    }
    let mut child = builder.spawn()?;
    let mut stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    let hello = ToWorker::Hello {
        proto: PROTO_VERSION,
        shard,
        workloads: config.workloads.clone(),
        max_insts: config.max_insts,
        artifact_dir: config.artifact_dir.display().to_string(),
    };
    writeln!(stdin, "{}", hello.encode())?;
    stdin.flush()?;
    let tx = tx.clone();
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            match FromWorker::decode(&line) {
                Ok(msg) => {
                    if tx.send(Event::Msg(shard, msg)).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Event::Garbled(shard, e));
                    return;
                }
            }
        }
        let _ = tx.send(Event::Eof(shard));
    });
    Ok((
        WorkerState {
            child,
            stdin: Some(stdin),
            alive: true,
            last_beat: Instant::now(),
            inflight: Vec::new(),
        },
        reader,
    ))
}

/// Runs the sharded sweep: spawns workers, streams assignments with a
/// small per-worker window (so prepare overlaps evaluate), supervises by
/// heartbeat, retries quarantined units on a different shard, reassigns
/// the in-flight units of dead workers, falls back to in-process
/// evaluation when no eligible worker remains, and merges every shard's
/// report.
///
/// # Errors
///
/// Returns a [`GridError`] only when the run cannot start (zero workers
/// configured, no worker executable); anything that fails *during* the
/// run quarantines units instead.
pub fn run_grid(config: &GridConfig) -> Result<GridOutcome, GridError> {
    if config.workers == 0 {
        return Err(err("at least one worker is required"));
    }
    let worker_cmd = match &config.worker_cmd {
        Some(cmd) => cmd.clone(),
        None => std::env::current_exe()
            .map_err(|e| err(format!("cannot resolve current executable: {e}")))?,
    };

    // The unit space, in the same core-major order as `explore_grid`.
    let mut units: Vec<Unit> = Vec::with_capacity(config.cores.len() * config.subsets.len());
    for (core_idx, core) in config.cores.iter().enumerate() {
        for (subset_idx, subset) in config.subsets.iter().enumerate() {
            units.push(Unit {
                label: DesignPoint::new(core.clone(), subset.clone()).label(),
                core_idx,
                subset_idx,
                core_name: core.name.clone(),
                bsa_codes: subset.iter().map(|b| b.code()).collect(),
                attempts: 0,
                failed_on: Vec::new(),
                resolved: false,
            });
        }
    }

    let (tx, rx) = mpsc::channel();
    let mut workers: Vec<WorkerState> = Vec::with_capacity(config.workers);
    let mut readers = Vec::with_capacity(config.workers);
    let mut stats = GridStats {
        units_total: units.len(),
        ..GridStats::default()
    };

    // Opportunistic repair: reclaim tmp files orphaned by killed runs
    // (never a live process's, never younger than the safety window).
    let (_, gc_bytes) = ArtifactStore::new(&config.artifact_dir).gc_tmp_files(GC_SAFETY_WINDOW);
    stats.gc_reclaimed_bytes = gc_bytes;

    // Sweep journal: derived from the exact same inputs a single-process
    // `Session` sweep uses, so `prism explore` and `prism grid` over the
    // same space share one journal file. Units the journal records as
    // settled are resolved up front and never assigned to a worker.
    let tracer = TracerConfig {
        max_insts: config.max_insts,
        ..TracerConfig::default()
    };
    let wl_sizes: Vec<(String, u32)> = config
        .workloads
        .iter()
        .filter_map(|name| {
            prism_workloads::by_name(name)
                .or_else(|| prism_workloads::MICRO.iter().find(|m| m.name == name))
                .map(|w| (w.name.to_string(), w.scaled_n()))
        })
        .collect();
    let sweep = sweep_key(&wl_sizes, &tracer, &config.cores, &config.subsets);
    let mut replay_report = SweepReport::default();
    let journal = match SweepJournal::open(&config.artifact_dir, &sweep, config.resume) {
        Ok((journal, replay)) => {
            for unit in &mut units {
                if let Some(result) = replay.done.get(&unit.label) {
                    replay_report.results.push(result.clone());
                } else if let Some(error) = replay.quarantined.get(&unit.label) {
                    replay_report
                        .quarantined
                        .push((unit.label.clone(), error.clone()));
                } else {
                    continue;
                }
                unit.resolved = true;
                stats.resumed += 1;
            }
            stats.replayed = replay.records as usize;
            if replay.dropped > 0 {
                eprintln!(
                    "[prism-grid] journal: dropped {} torn/corrupt trailing record(s)",
                    replay.dropped
                );
            }
            Some(journal)
        }
        Err(e) => {
            eprintln!("[prism-grid] journal unavailable ({e}); sweep will not be resumable");
            None
        }
    };
    for shard in 0..config.workers {
        match spawn_worker(&worker_cmd, shard, config, &tx) {
            Ok((state, reader)) => {
                workers.push(state);
                readers.push(reader);
                stats.workers_spawned += 1;
            }
            Err(e) => {
                eprintln!("[prism-grid] shard {shard}: spawn failed: {e}");
                // A placeholder dead slot keeps shard == index; its units
                // simply never get assigned here.
                match spawn_dead_placeholder(&mut workers) {
                    Ok(()) => {}
                    Err(e) => return Err(err(format!("cannot spawn workers: {e}"))),
                }
            }
        }
    }
    drop(tx);

    let mut shard_reports: Vec<SweepReport> =
        (0..workers.len()).map(|_| SweepReport::default()).collect();
    let mut pending: VecDeque<usize> = (0..units.len()).collect();
    let mut local_queue: Vec<usize> = Vec::new();
    let mut resolved = units.iter().filter(|u| u.resolved).count();

    let kill = |w: &mut WorkerState| {
        w.alive = false;
        w.stdin = None;
        let _ = w.child.kill();
    };

    while resolved + local_queue.len() < units.len() {
        // Dispatch: fill every live worker's window, routing retries away
        // from shards they already failed on; units with no eligible
        // shard left fall back to local evaluation.
        let mut still_pending = VecDeque::new();
        while let Some(uid) = pending.pop_front() {
            if units[uid].resolved {
                continue;
            }
            let pick = workers
                .iter()
                .enumerate()
                .filter(|(shard, w)| {
                    w.alive
                        && w.inflight.len() < config.window
                        && !units[uid].failed_on.contains(shard)
                })
                .min_by_key(|(_, w)| w.inflight.len())
                .map(|(shard, _)| shard);
            match pick {
                Some(shard) => {
                    let msg = ToWorker::Assign {
                        id: uid as u64,
                        core: units[uid].core_name.clone(),
                        bsas: units[uid].bsa_codes.clone(),
                    }
                    .encode();
                    let sent = workers[shard]
                        .stdin
                        .as_mut()
                        .is_some_and(|s| writeln!(s, "{msg}").and_then(|()| s.flush()).is_ok());
                    if sent {
                        workers[shard].inflight.push(uid);
                    } else {
                        // Write failure: the worker is dying; its Eof event
                        // will handle the cleanup. Try again next round.
                        still_pending.push_back(uid);
                    }
                }
                None => {
                    let possible = workers
                        .iter()
                        .enumerate()
                        .any(|(shard, w)| w.alive && !units[uid].failed_on.contains(&shard));
                    if possible {
                        still_pending.push_back(uid); // workers busy; wait
                    } else {
                        local_queue.push(uid);
                    }
                }
            }
        }
        pending = still_pending;
        if resolved + local_queue.len() >= units.len() {
            break;
        }

        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Event::Msg(shard, msg)) => {
                if shard >= workers.len() {
                    continue;
                }
                workers[shard].last_beat = Instant::now();
                match msg {
                    FromWorker::HelloAck { .. }
                    | FromWorker::Heartbeat { .. }
                    | FromWorker::Bye => {}
                    FromWorker::UnitResult { id, result } => {
                        // Kill point: the unit's artifact is durable (the
                        // worker stored it before reporting) but nothing is
                        // journaled yet — a resume must recompute cheaply
                        // from the store, not lose the unit.
                        crash_point(SITE_GRID_FRAME);
                        let uid = id as usize;
                        workers[shard].inflight.retain(|&u| u != uid);
                        if uid < units.len() && !units[uid].resolved {
                            units[uid].resolved = true;
                            resolved += 1;
                            if let Some(j) = &journal {
                                if let Err(e) = j.append_done(&units[uid].label, &result) {
                                    eprintln!("[prism-grid] journal append failed: {e}");
                                }
                            }
                        }
                        shard_reports[shard].results.push(result);
                    }
                    FromWorker::UnitQuarantine { id, key, error } => {
                        crash_point(SITE_GRID_FRAME);
                        if let Some(uid) = id.map(|id| id as usize) {
                            workers[shard].inflight.retain(|&u| u != uid);
                            if uid < units.len() && !units[uid].resolved {
                                units[uid].attempts += 1;
                                units[uid].failed_on.push(shard);
                                if units[uid].attempts <= config.shard_retries {
                                    stats.units_retried += 1;
                                    pending.push_back(uid);
                                } else {
                                    units[uid].resolved = true;
                                    resolved += 1;
                                    // Only a *permanent* quarantine is
                                    // journaled: a retry may still succeed,
                                    // and a later `done` must win on replay.
                                    if let Some(j) = &journal {
                                        if let Err(e) =
                                            j.append_quarantined(&units[uid].label, &error)
                                        {
                                            eprintln!("[prism-grid] journal append failed: {e}");
                                        }
                                    }
                                }
                            }
                        }
                        shard_reports[shard].quarantined.push((key, error));
                    }
                    FromWorker::Fatal { message } => {
                        eprintln!("[prism-grid] shard {shard}: fatal: {message}");
                        if workers[shard].alive {
                            kill(&mut workers[shard]);
                            stats.workers_died += 1;
                            reassign(&mut workers[shard], &units, &mut pending, &mut stats);
                        }
                    }
                }
            }
            Ok(Event::Garbled(shard, e)) => {
                eprintln!("[prism-grid] shard {shard}: garbled output: {e}");
                if shard < workers.len() && workers[shard].alive {
                    kill(&mut workers[shard]);
                    stats.workers_died += 1;
                    reassign(&mut workers[shard], &units, &mut pending, &mut stats);
                }
            }
            Ok(Event::Eof(shard)) => {
                if shard < workers.len() && workers[shard].alive {
                    eprintln!("[prism-grid] shard {shard}: exited unexpectedly");
                    kill(&mut workers[shard]);
                    stats.workers_died += 1;
                    reassign(&mut workers[shard], &units, &mut pending, &mut stats);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Every reader thread is gone: mark all workers dead.
                for w in workers.iter_mut().filter(|w| w.alive) {
                    kill(w);
                    stats.workers_died += 1;
                    reassign(w, &units, &mut pending, &mut stats);
                }
            }
        }

        // Heartbeat supervision: a silent worker is dead, and its
        // in-flight units must not be lost.
        for (shard, w) in workers.iter_mut().enumerate() {
            if w.alive && w.last_beat.elapsed() > config.heartbeat_timeout {
                eprintln!(
                    "[prism-grid] shard {shard}: no heartbeat for {:?}, killing",
                    config.heartbeat_timeout
                );
                kill(w);
                stats.workers_died += 1;
                reassign(w, &units, &mut pending, &mut stats);
            }
        }
    }

    // Clean shutdown: ask politely, then reap (with a kill deadline).
    for w in workers.iter_mut().filter(|w| w.alive) {
        if let Some(stdin) = w.stdin.as_mut() {
            let _ = writeln!(stdin, "{}", ToWorker::Shutdown.encode());
            let _ = stdin.flush();
        }
        w.stdin = None;
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    for w in &mut workers {
        loop {
            match w.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                _ => {
                    let _ = w.child.kill();
                    let _ = w.child.wait();
                    break;
                }
            }
        }
    }
    // Late events (results that raced the shutdown) still count.
    while let Ok(event) = rx.try_recv() {
        if let Event::Msg(shard, msg) = event {
            match msg {
                FromWorker::UnitResult { result, .. } if shard < shard_reports.len() => {
                    shard_reports[shard].results.push(result);
                }
                FromWorker::UnitQuarantine { key, error, .. } if shard < shard_reports.len() => {
                    shard_reports[shard].quarantined.push((key, error));
                }
                _ => {}
            }
        }
    }
    for reader in readers {
        let _ = reader.join();
    }

    // Local fallback: evaluate in-process whatever no worker could take.
    if !local_queue.is_empty() {
        let mut local = SweepReport::default();
        let session = Session::new()
            .with_tracer(TracerConfig {
                max_insts: config.max_insts,
                ..TracerConfig::default()
            })
            .with_store_dir(&config.artifact_dir);
        let mut workload_refs: Vec<&Workload> = Vec::new();
        for name in &config.workloads {
            match prism_workloads::by_name(name)
                .or_else(|| prism_workloads::MICRO.iter().find(|m| m.name == name))
            {
                Some(w) => workload_refs.push(w),
                None => local.quarantined.push((
                    format!("workload:{name}"),
                    PipelineError::new(name, Stage::Build, "unknown workload"),
                )),
            }
        }
        for uid in local_queue {
            let unit = &units[uid];
            let core = config.cores[unit.core_idx].clone();
            let subset = config.subsets[unit.subset_idx].clone();
            let report = session.evaluate_designs(&workload_refs, &[core], &[subset]);
            if report.results.is_empty()
                && !report.quarantined.iter().any(|(k, _)| *k == unit.label)
            {
                local.quarantined.push((
                    unit.label.clone(),
                    PipelineError::new(
                        &unit.label,
                        Stage::Evaluate,
                        "no healthy workloads to evaluate",
                    ),
                ));
            }
            if let Some(j) = &journal {
                let outcome = if let Some(r) = report.results.iter().find(|r| r.label == unit.label)
                {
                    j.append_done(&unit.label, r)
                } else if let Some((_, e)) =
                    report.quarantined.iter().find(|(k, _)| *k == unit.label)
                {
                    j.append_quarantined(&unit.label, e)
                } else {
                    Ok(())
                };
                if let Err(e) = outcome {
                    eprintln!("[prism-grid] journal append failed: {e}");
                }
            }
            local.merge(report);
            stats.local_fallback_units += 1;
        }
        shard_reports.push(local);
    }

    let mut merged = replay_report;
    for report in shard_reports {
        merged.merge(report);
    }
    merged.normalize();
    // A finished sweep with no permanent quarantines has nothing left to
    // resume; one *with* quarantines keeps its journal so a `--resume`
    // replays the identical errors instead of re-running known-bad units.
    if let Some(j) = journal {
        if merged.quarantined.is_empty() {
            if let Err(e) = j.remove() {
                eprintln!("[prism-grid] could not remove finished journal: {e}");
            }
        }
    }
    Ok(GridOutcome {
        report: merged,
        stats,
    })
}

/// Reassigns a dead worker's in-flight units back to the pending queue.
fn reassign(
    worker: &mut WorkerState,
    units: &[Unit],
    pending: &mut VecDeque<usize>,
    stats: &mut GridStats,
) {
    for uid in std::mem::take(&mut worker.inflight) {
        if !units[uid].resolved {
            stats.units_reassigned += 1;
            pending.push_back(uid);
        }
    }
}

/// Fills a shard slot whose spawn failed with an already-dead process, so
/// shard ids keep matching vector indices.
fn spawn_dead_placeholder(workers: &mut Vec<WorkerState>) -> std::io::Result<()> {
    // `true` exits immediately; if even that cannot spawn, give up.
    let mut child = Command::new("true")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()?;
    let _ = child.wait();
    workers.push(WorkerState {
        child,
        stdin: None,
        alive: false,
        last_beat: Instant::now(),
        inflight: Vec::new(),
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_timeout_parses_integer_milliseconds() {
        assert_eq!(parse_grid_timeout("2500"), Ok(Duration::from_millis(2500)));
        assert_eq!(parse_grid_timeout(" 1 "), Ok(Duration::from_millis(1)));
        assert_eq!(
            parse_grid_timeout("60000"),
            Ok(Duration::from_millis(60_000))
        );
    }

    #[test]
    fn grid_timeout_rejects_zero_and_garbage() {
        for bad in ["0", "-5", "1.5", "10s", "", "fast"] {
            let err = parse_grid_timeout(bad).unwrap_err();
            assert!(err.contains(GRID_TIMEOUT_ENV), "{bad:?}: {err}");
        }
    }

    #[test]
    fn grid_stats_render_names_every_counter() {
        let stats = GridStats {
            workers_spawned: 2,
            workers_died: 1,
            units_total: 64,
            units_retried: 3,
            units_reassigned: 4,
            local_fallback_units: 5,
            resumed: 6,
            replayed: 7,
            gc_reclaimed_bytes: 8,
        };
        let text = stats.render();
        assert!(text.contains("6 units resumed"), "{text}");
        assert!(text.contains("7 records replayed"), "{text}");
        assert!(text.contains("8 bytes reclaimed"), "{text}");
    }
}
