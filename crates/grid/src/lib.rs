//! # prism-grid
//!
//! Sharded multi-process execution of the design-space sweep: a
//! coordinator partitions the (core × BSA-subset) unit space across
//! worker subprocesses — re-invocations of the current executable in a
//! dedicated worker mode — and merges their [`prism_pipeline::SweepReport`]s.
//!
//! ```text
//!               ┌─ worker 0 (PRISM_GRID_WORKER=1, shard 0) ─┐
//! coordinator ──┼─ worker 1 (shard 1)                        ├─ shared
//!   run_grid    └─ worker N (shard N)                        ┘ artifact store
//! ```
//!
//! The coordinator and each worker speak newline-delimited JSON over the
//! worker's stdin/stdout (see [`proto`]): a versioned handshake, unit
//! assignments with a small per-worker window (so a worker *prepares*
//! the next unit while it *evaluates* the current one), heartbeats, one
//! result-or-quarantine per unit, and a clean shutdown. Failure policy:
//!
//! - a **quarantined unit** is retried once (configurable) on a
//!   *different* shard; if the retry succeeds the unit counts as
//!   recovered, not quarantined,
//! - a **dead worker** (crash, heartbeat silence, protocol corruption)
//!   has its in-flight units reassigned, never lost,
//! - when **no eligible worker** remains, units are evaluated in-process
//!   by the coordinator.
//!
//! All local shards share one content-addressed artifact store, so grid
//! runs and single-process runs warm the same cache and — on a healthy
//! fleet — produce byte-identical merged reports.
//!
//! The same protocol also runs over TCP (see [`prism_net`]): remote
//! daemons started with `prism worker --listen` occupy shard slots after
//! the local ones ([`GridConfig::hosts`]), authenticate with a shared
//! secret, ship result artifacts back by content hash, and reconnect
//! with bounded backoff when the link drops — in-flight units are
//! reassigned exactly like a local worker death.

#![warn(missing_docs)]

pub mod coord;
pub mod fault;
pub mod proto;
pub mod worker;

pub use coord::{
    parse_grid_timeout, run_grid, GridConfig, GridError, GridOutcome, GridStats, HostStats,
    GRID_TIMEOUT_ENV,
};
pub use fault::{GridFaultKind, GridFaultPlan, GRID_FAULTS_ENV};
pub use proto::{FromWorker, ToWorker, HEARTBEAT_INTERVAL, PROTO_VERSION};
pub use worker::{
    run_worker, run_worker_if_env, run_worker_io, serve_tcp, WorkerOptions, SHARD_ENV, WORKER_ENV,
};

/// Environment variable selecting the grid worker count for front-ends
/// ([`workers_from_env`]).
pub const WORKERS_ENV: &str = "PRISM_WORKERS";

/// The worker count requested via `PRISM_WORKERS`, when it asks for an
/// actual fleet (a value of 0 or 1 means "stay single-process").
#[must_use]
pub fn workers_from_env() -> Option<usize> {
    let n: usize = std::env::var(WORKERS_ENV).ok()?.trim().parse().ok()?;
    (n > 1).then_some(n)
}
