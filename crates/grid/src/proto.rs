//! The coordinator ↔ worker wire protocol: newline-delimited JSON over
//! the worker's stdin/stdout.
//!
//! One message per line, each a JSON object with a `"type"` field. The
//! [`prism_pipeline::Json`] writer escapes every control character (`\n`
//! included), so a serialized message can never span lines and the framing
//! survives arbitrary workload names and panic payloads. Floats use
//! shortest-round-trip formatting, so a [`DesignResult`] that crosses the
//! wire is bit-identical to one computed in-process — the property behind
//! the grid-vs-single-process equivalence guarantee.
//!
//! Handshake: the coordinator opens with [`ToWorker::Hello`] carrying the
//! protocol version; the worker answers [`FromWorker::HelloAck`] (or
//! [`FromWorker::Fatal`] on a version mismatch) and then heartbeats every
//! [`HEARTBEAT_INTERVAL`] until shutdown.
//!
//! v2 added artifact shipping for remote shards that do not share the
//! coordinator's store: [`FromWorker::UnitResult`] names the artifacts
//! backing the unit, the coordinator pulls missing ones with
//! [`ToWorker::Fetch`], and both directions ship validated envelopes in
//! `Artifact` frames keyed by hex `ContentHash`. Shipping is pure cache
//! warmth: the journal embeds full results, so resume and correctness
//! never depend on a shipped artifact arriving.

use std::time::Duration;

use prism_exocore::DesignResult;
use prism_pipeline::{
    decode_design_result, decode_pipeline_error, encode_design_result, encode_pipeline_error, Json,
    PipelineError,
};

/// Version of this wire protocol. The coordinator sends it in
/// [`ToWorker::Hello`]; a worker built from different sources refuses the
/// handshake instead of silently misinterpreting messages. v2 added the
/// artifact push/pull frames (`fetch`/`artifact`) and the `artifacts`
/// list on `result` — a v1 worker refuses a v2 Hello outright.
pub const PROTO_VERSION: u64 = 2;

/// How often a healthy worker emits [`FromWorker::Heartbeat`].
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(250);

/// Messages the coordinator sends to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Handshake: protocol version, shard id, and the sweep parameters
    /// shared by every unit (workload set, trace length, artifact store).
    Hello {
        /// Must equal [`PROTO_VERSION`].
        proto: u64,
        /// This worker's shard id (also in `PRISM_GRID_SHARD`).
        shard: usize,
        /// Workload names (resolved against the registry worker-side).
        workloads: Vec<String>,
        /// Tracer instruction limit (the stage-1 cache key input).
        max_insts: u64,
        /// Content-addressed artifact store shared by all shards.
        artifact_dir: String,
    },
    /// One unit of work: evaluate design point (`core`, `bsas`).
    Assign {
        /// Coordinator-side unit id, echoed back in the outcome.
        id: u64,
        /// Core name (`IO2`, `OOO2`, `OOO4`, `OOO6`).
        core: String,
        /// BSA subset as Fig. 12 code letters (e.g. `"SDN"`, `""`).
        bsas: String,
    },
    /// Pull request: ship back each named artifact (hex `ContentHash`)
    /// from the worker's store. The worker answers one
    /// [`FromWorker::Artifact`] per key — with an empty `doc` for keys it
    /// cannot export — so the coordinator can account for every request.
    Fetch {
        /// Hex content-hash keys to ship.
        keys: Vec<String>,
    },
    /// Push: a validated store envelope for `key`, seeding the worker's
    /// cache with an artifact the coordinator already has.
    Artifact {
        /// Hex content-hash key.
        key: String,
        /// The raw envelope text (empty = unavailable).
        doc: String,
    },
    /// Clean shutdown: finish in-flight units, say `Bye`, exit 0.
    Shutdown,
}

/// Messages a worker sends to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum FromWorker {
    /// Handshake accepted.
    HelloAck {
        /// The worker's shard id.
        shard: usize,
        /// The worker's protocol version.
        proto: u64,
    },
    /// Liveness signal, sent every [`HEARTBEAT_INTERVAL`].
    Heartbeat {
        /// The worker's shard id.
        shard: usize,
        /// Units currently queued or evaluating on this worker.
        inflight: u64,
    },
    /// A unit evaluated successfully.
    UnitResult {
        /// The assigned unit id.
        id: u64,
        /// The evaluated design point.
        result: DesignResult,
        /// Hex content-hash keys of the store artifacts backing this
        /// result, so a coordinator on another host can pull what its
        /// own store is missing. Empty from pre-v2 or local workers.
        artifacts: Vec<String>,
    },
    /// A unit (or a whole workload) was quarantined on this shard.
    UnitQuarantine {
        /// The assigned unit id; `None` for workload-level failures,
        /// which are not tied to one assignment.
        id: Option<u64>,
        /// Sweep unit key (design-point label or `workload:<name>`).
        key: String,
        /// The typed failure.
        error: PipelineError,
    },
    /// Answer to [`ToWorker::Fetch`]: one shipped store envelope.
    Artifact {
        /// Hex content-hash key.
        key: String,
        /// The raw envelope text (empty = the worker could not export
        /// this key; the coordinator just stops waiting for it).
        doc: String,
    },
    /// Clean shutdown acknowledgement (last message), carrying the
    /// session's timing-reuse counters so the coordinator can surface
    /// per-host walk savings in `--stats`.
    Bye {
        /// Trace walks this session actually performed.
        walks: u64,
        /// Walks skipped (shape-memo hits + timing artifacts loaded).
        walks_skipped: u64,
        /// In-memory shape-keyed timing memo hits.
        shape_memo_hits: u64,
        /// Timing summaries loaded from the artifact store.
        timing_artifacts_loaded: u64,
    },
    /// The worker cannot continue (handshake mismatch, bad assignment).
    Fatal {
        /// Human-readable cause.
        message: String,
    },
}

fn obj(kind: &str, mut fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![("type".to_string(), Json::Str(kind.to_string()))];
    all.append(&mut fields);
    Json::Obj(all)
}

impl ToWorker {
    /// Serializes to one protocol line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            ToWorker::Hello {
                proto,
                shard,
                workloads,
                max_insts,
                artifact_dir,
            } => obj(
                "hello",
                vec![
                    ("proto".into(), Json::U64(*proto)),
                    ("shard".into(), Json::U64(*shard as u64)),
                    (
                        "workloads".into(),
                        Json::Arr(workloads.iter().map(|w| Json::Str(w.clone())).collect()),
                    ),
                    ("max_insts".into(), Json::U64(*max_insts)),
                    ("artifact_dir".into(), Json::Str(artifact_dir.clone())),
                ],
            ),
            ToWorker::Assign { id, core, bsas } => obj(
                "assign",
                vec![
                    ("id".into(), Json::U64(*id)),
                    ("core".into(), Json::Str(core.clone())),
                    ("bsas".into(), Json::Str(bsas.clone())),
                ],
            ),
            ToWorker::Fetch { keys } => obj(
                "fetch",
                vec![(
                    "keys".into(),
                    Json::Arr(keys.iter().map(|k| Json::Str(k.clone())).collect()),
                )],
            ),
            ToWorker::Artifact { key, doc } => obj(
                "artifact",
                vec![
                    ("key".into(), Json::Str(key.clone())),
                    ("doc".into(), Json::Str(doc.clone())),
                ],
            ),
            ToWorker::Shutdown => obj("shutdown", vec![]),
        }
        .to_string()
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line.
    pub fn decode(line: &str) -> Result<Self, String> {
        let json = Json::parse(line)?;
        let kind = json.get("type").and_then(Json::as_str).unwrap_or_default();
        let shape = || format!("bad `{kind}` message: {line}");
        match kind {
            "hello" => (|| {
                Some(ToWorker::Hello {
                    proto: json.get("proto")?.as_u64()?,
                    shard: json.get("shard")?.as_u64()? as usize,
                    workloads: json
                        .get("workloads")?
                        .as_arr()?
                        .iter()
                        .map(|w| Some(w.as_str()?.to_string()))
                        .collect::<Option<_>>()?,
                    max_insts: json.get("max_insts")?.as_u64()?,
                    artifact_dir: json.get("artifact_dir")?.as_str()?.to_string(),
                })
            })()
            .ok_or_else(shape),
            "assign" => (|| {
                Some(ToWorker::Assign {
                    id: json.get("id")?.as_u64()?,
                    core: json.get("core")?.as_str()?.to_string(),
                    bsas: json.get("bsas")?.as_str()?.to_string(),
                })
            })()
            .ok_or_else(shape),
            "fetch" => (|| {
                Some(ToWorker::Fetch {
                    keys: json
                        .get("keys")?
                        .as_arr()?
                        .iter()
                        .map(|k| Some(k.as_str()?.to_string()))
                        .collect::<Option<_>>()?,
                })
            })()
            .ok_or_else(shape),
            "artifact" => (|| {
                Some(ToWorker::Artifact {
                    key: json.get("key")?.as_str()?.to_string(),
                    doc: json.get("doc")?.as_str()?.to_string(),
                })
            })()
            .ok_or_else(shape),
            "shutdown" => Ok(ToWorker::Shutdown),
            other => Err(format!("unknown coordinator message type `{other}`")),
        }
    }
}

impl FromWorker {
    /// Serializes to one protocol line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            FromWorker::HelloAck { shard, proto } => obj(
                "hello-ack",
                vec![
                    ("shard".into(), Json::U64(*shard as u64)),
                    ("proto".into(), Json::U64(*proto)),
                ],
            ),
            FromWorker::Heartbeat { shard, inflight } => obj(
                "heartbeat",
                vec![
                    ("shard".into(), Json::U64(*shard as u64)),
                    ("inflight".into(), Json::U64(*inflight)),
                ],
            ),
            FromWorker::UnitResult {
                id,
                result,
                artifacts,
            } => obj(
                "result",
                vec![
                    ("id".into(), Json::U64(*id)),
                    ("result".into(), encode_design_result(result)),
                    (
                        "artifacts".into(),
                        Json::Arr(artifacts.iter().map(|k| Json::Str(k.clone())).collect()),
                    ),
                ],
            ),
            FromWorker::UnitQuarantine { id, key, error } => obj(
                "quarantine",
                vec![
                    ("id".into(), id.map_or(Json::Null, Json::U64)),
                    ("key".into(), Json::Str(key.clone())),
                    ("error".into(), encode_pipeline_error(error)),
                ],
            ),
            FromWorker::Artifact { key, doc } => obj(
                "artifact",
                vec![
                    ("key".into(), Json::Str(key.clone())),
                    ("doc".into(), Json::Str(doc.clone())),
                ],
            ),
            FromWorker::Bye {
                walks,
                walks_skipped,
                shape_memo_hits,
                timing_artifacts_loaded,
            } => obj(
                "bye",
                vec![
                    ("walks".into(), Json::U64(*walks)),
                    ("walks_skipped".into(), Json::U64(*walks_skipped)),
                    ("shape_memo_hits".into(), Json::U64(*shape_memo_hits)),
                    (
                        "timing_artifacts_loaded".into(),
                        Json::U64(*timing_artifacts_loaded),
                    ),
                ],
            ),
            FromWorker::Fatal { message } => obj(
                "fatal",
                vec![("message".into(), Json::Str(message.clone()))],
            ),
        }
        .to_string()
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line.
    pub fn decode(line: &str) -> Result<Self, String> {
        let json = Json::parse(line)?;
        let kind = json.get("type").and_then(Json::as_str).unwrap_or_default();
        let shape = || format!("bad `{kind}` message: {line}");
        match kind {
            "hello-ack" => (|| {
                Some(FromWorker::HelloAck {
                    shard: json.get("shard")?.as_u64()? as usize,
                    proto: json.get("proto")?.as_u64()?,
                })
            })()
            .ok_or_else(shape),
            "heartbeat" => (|| {
                Some(FromWorker::Heartbeat {
                    shard: json.get("shard")?.as_u64()? as usize,
                    inflight: json.get("inflight")?.as_u64()?,
                })
            })()
            .ok_or_else(shape),
            "result" => (|| {
                // `artifacts` is optional on decode for v1 tolerance;
                // v2 encoders always write it.
                let artifacts = match json.get("artifacts") {
                    Some(arr) => arr
                        .as_arr()?
                        .iter()
                        .map(|k| Some(k.as_str()?.to_string()))
                        .collect::<Option<_>>()?,
                    None => Vec::new(),
                };
                Some(FromWorker::UnitResult {
                    id: json.get("id")?.as_u64()?,
                    result: decode_design_result(json.get("result")?)?,
                    artifacts,
                })
            })()
            .ok_or_else(shape),
            "quarantine" => (|| {
                let id = match json.get("id")? {
                    Json::Null => None,
                    v => Some(v.as_u64()?),
                };
                Some(FromWorker::UnitQuarantine {
                    id,
                    key: json.get("key")?.as_str()?.to_string(),
                    error: decode_pipeline_error(json.get("error")?)?,
                })
            })()
            .ok_or_else(shape),
            "artifact" => (|| {
                Some(FromWorker::Artifact {
                    key: json.get("key")?.as_str()?.to_string(),
                    doc: json.get("doc")?.as_str()?.to_string(),
                })
            })()
            .ok_or_else(shape),
            // Counters default to zero so a bare `bye` (pre-counter
            // workers) still decodes.
            "bye" => Ok(FromWorker::Bye {
                walks: json.get("walks").and_then(Json::as_u64).unwrap_or(0),
                walks_skipped: json
                    .get("walks_skipped")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                shape_memo_hits: json
                    .get("shape_memo_hits")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                timing_artifacts_loaded: json
                    .get("timing_artifacts_loaded")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            }),
            "fatal" => (|| {
                Some(FromWorker::Fatal {
                    message: json.get("message")?.as_str()?.to_string(),
                })
            })()
            .ok_or_else(shape),
            other => Err(format!("unknown worker message type `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_exocore::WorkloadMetrics;
    use prism_pipeline::Stage;

    #[test]
    fn coordinator_messages_roundtrip() {
        let msgs = [
            ToWorker::Hello {
                proto: PROTO_VERSION,
                shard: 3,
                workloads: vec!["fft".into(), "micro-fetch".into()],
                max_insts: 20_000,
                artifact_dir: "/tmp/prism artifacts".into(),
            },
            ToWorker::Assign {
                id: 17,
                core: "OOO2".into(),
                bsas: "SDN".into(),
            },
            ToWorker::Fetch {
                keys: vec!["ab".repeat(32), "cd".repeat(32)],
            },
            ToWorker::Artifact {
                key: "ef".repeat(32),
                doc: "{\"schema\":2,\"payload\":\"with \\\"quotes\\\" and \\n newline\"}".into(),
            },
            ToWorker::Shutdown,
        ];
        for m in msgs {
            let line = m.encode();
            assert!(!line.contains('\n'), "framing broken: {line}");
            assert_eq!(ToWorker::decode(&line).unwrap(), m);
        }
    }

    #[test]
    fn worker_messages_roundtrip() {
        let result = DesignResult {
            label: "OOO2-SDN".into(),
            core: "OOO2".into(),
            bsas: "SDN".into(),
            area_mm2: 7.25,
            per_workload: vec![WorkloadMetrics {
                workload: "stencil".into(),
                cycles: (1u64 << 53) + 3,
                energy: 1.0 / 3.0,
                unaccelerated: 0.125,
                unit_cycles: [10, 20, 30, 40, 50],
                unit_energy: [0.1, 0.2, 0.3, 0.4, 0.5],
            }],
        };
        let msgs = [
            FromWorker::HelloAck { shard: 1, proto: 2 },
            FromWorker::Heartbeat {
                shard: 1,
                inflight: 2,
            },
            FromWorker::UnitResult {
                id: 5,
                result,
                artifacts: vec!["12".repeat(32)],
            },
            FromWorker::Artifact {
                key: "34".repeat(32),
                doc: String::new(),
            },
            FromWorker::UnitQuarantine {
                id: Some(6),
                key: "OOO4-T".into(),
                error: PipelineError::panicked("OOO4-T", Stage::Evaluate, "boom\nwith newline"),
            },
            FromWorker::UnitQuarantine {
                id: None,
                key: "workload:fft".into(),
                error: PipelineError::new("fft", Stage::Trace, "truncated"),
            },
            FromWorker::Bye {
                walks: 3,
                walks_skipped: 61,
                shape_memo_hits: 40,
                timing_artifacts_loaded: 21,
            },
            FromWorker::Fatal {
                message: "version mismatch".into(),
            },
        ];
        for m in msgs {
            let line = m.encode();
            assert!(!line.contains('\n'), "framing broken: {line}");
            assert_eq!(FromWorker::decode(&line).unwrap(), m);
        }
    }

    #[test]
    fn garbled_lines_are_typed_errors() {
        for bad in [
            "",
            "{",
            "{\"type\":\"warp\"}",
            "{\"type\":\"assign\"}",
            "{\"type\":\"fetch\"}",
            "{\"type\":\"artifact\",\"key\":7}",
        ] {
            assert!(FromWorker::decode(bad).is_err(), "{bad:?}");
            assert!(ToWorker::decode(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn v1_result_without_artifacts_still_decodes() {
        // A v1 `result` frame has no `artifacts` field; tolerate it so a
        // coordinator can drain a worker mid-upgrade instead of treating
        // the frame as garbled (and killing the shard).
        let full = FromWorker::UnitResult {
            id: 3,
            result: DesignResult {
                label: "IO2-".into(),
                core: "IO2".into(),
                bsas: String::new(),
                area_mm2: 1.0,
                per_workload: vec![],
            },
            artifacts: vec![],
        }
        .encode();
        let stripped = full.replace(",\"artifacts\":[]", "");
        assert_ne!(full, stripped, "artifacts field must be present in v2");
        match FromWorker::decode(&stripped).unwrap() {
            FromWorker::UnitResult { id, artifacts, .. } => {
                assert_eq!(id, 3);
                assert!(artifacts.is_empty());
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
