//! The grid worker: one shard of the sweep, driven over a line link.
//!
//! A worker is not a separate binary — the coordinator re-invokes the
//! *current executable* with `PRISM_GRID_WORKER=1`, and the host binary's
//! `main` routes into [`run_worker_if_env`] before doing anything else
//! (in particular before printing to stdout, which belongs to the
//! protocol once the worker mode engages). The same evaluation loop also
//! serves TCP connections via [`serve_tcp`]: the transport differs, the
//! protocol does not — [`run_worker_io`] is generic over the byte streams.
//!
//! Inside the worker, three threads overlap work:
//!
//! - the **reader** (main thread) parses assignments from the input into a
//!   queue, and answers artifact fetch/push frames from its local store,
//! - the **prewarm** thread first pulls chunk 0 of each workload's trace
//!   stream (cheap, bounded), then prepares traces/IR and oracle tables
//!   for *queued* units while the evaluator is busy with earlier ones, so
//!   a unit's expensive prepare phase overlaps the previous unit's
//!   evaluate phase,
//! - the **evaluator** pops units in order and reports one
//!   result-or-quarantine per unit.
//!
//! A fourth **heartbeat** thread emits liveness beacons every
//! [`HEARTBEAT_INTERVAL`](crate::proto::HEARTBEAT_INTERVAL).

use std::collections::{BTreeSet, VecDeque};
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use prism_exocore::DesignPoint;
use prism_pipeline::{ArtifactStore, ContentHash, PipelineError, Session, Stage};
use prism_sim::TracerConfig;
use prism_tdg::BsaKind;
use prism_udg::CoreConfig;
use prism_workloads::Workload;

use crate::fault::{GridFaultKind, GridFaultPlan};
use crate::proto::{FromWorker, ToWorker, HEARTBEAT_INTERVAL, PROTO_VERSION};

/// Set (to any value) in a worker process's environment.
pub const WORKER_ENV: &str = "PRISM_GRID_WORKER";

/// The worker's shard id (decimal).
pub const SHARD_ENV: &str = "PRISM_GRID_SHARD";

/// Runs the worker protocol and exits the process when `PRISM_GRID_WORKER`
/// is set; returns immediately otherwise. Call this first in `main` of any
/// binary that may serve as a grid worker — before anything is written to
/// stdout, which carries the wire protocol in worker mode.
pub fn run_worker_if_env() {
    if std::env::var_os(WORKER_ENV).is_some() {
        std::process::exit(run_worker());
    }
}

/// How [`run_worker_io`] binds the protocol loop to its surroundings.
#[derive(Debug, Default)]
pub struct WorkerOptions {
    /// Shard id this link is supposed to carry; the Hello's shard must
    /// match or the worker refuses the session. `None` trusts the Hello.
    pub expected_shard: Option<usize>,
    /// Artifact store directory override. `None` uses the Hello's
    /// `artifact_dir` (the stdio case, where coordinator and worker share
    /// a filesystem); TCP daemons pass their own local store here and the
    /// Hello's path — meaningless on another host — is ignored.
    pub store_dir: Option<PathBuf>,
    /// LRU byte cap on the worker's store (`prism worker --store-cap` /
    /// `PRISM_STORE_CAP`); `None` leaves growth unbounded.
    pub store_cap: Option<u64>,
    /// Injected fault plan (`PRISM_GRID_FAULTS`).
    pub faults: GridFaultPlan,
}

/// Looks a workload up in the main registry, then the microbenchmarks.
fn find_workload(name: &str) -> Option<&'static Workload> {
    prism_workloads::by_name(name)
        .or_else(|| prism_workloads::MICRO.iter().find(|m| m.name == name))
}

fn parse_core(name: &str) -> Option<CoreConfig> {
    match name {
        "IO2" => Some(CoreConfig::io2()),
        "OOO2" => Some(CoreConfig::ooo2()),
        "OOO4" => Some(CoreConfig::ooo4()),
        "OOO6" => Some(CoreConfig::ooo6()),
        _ => None,
    }
}

fn parse_bsas(codes: &str) -> Option<Vec<BsaKind>> {
    codes
        .chars()
        .map(|c| BsaKind::ALL.iter().copied().find(|b| b.code() == c))
        .collect()
}

/// One assignment queued on the worker.
struct QueuedUnit {
    id: u64,
    core: String,
    bsas: String,
}

struct UnitQueue {
    pending: VecDeque<QueuedUnit>,
    /// Shutdown received (or input closed): drain and exit.
    closing: bool,
}

fn send<W: Write>(out: &Mutex<W>, msg: &FromWorker) {
    let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
    // A broken pipe means the coordinator is gone; the reader thread will
    // see EOF and wind the worker down, so a failed send is not fatal here.
    let _ = writeln!(out, "{}", msg.encode());
    let _ = out.flush();
}

/// Runs the worker protocol over this process's stdin/stdout until
/// shutdown, returning the process exit code. The shard id comes from
/// `PRISM_GRID_SHARD` (default 0).
#[must_use]
pub fn run_worker() -> i32 {
    let shard: usize = std::env::var(SHARD_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let opts = WorkerOptions {
        expected_shard: Some(shard),
        store_dir: None,
        store_cap: prism_pipeline::store_cap_from_env(),
        faults: GridFaultPlan::from_env().unwrap_or_default(),
    };
    let stdin = std::io::stdin();
    run_worker_io(stdin.lock(), std::io::stdout(), &opts)
}

/// Serves grid worker sessions over TCP forever: each accepted (and
/// token-authenticated) connection runs one full worker protocol session
/// on its own thread, against this daemon's local artifact store. A
/// coordinator that reconnects after a network fault simply starts a
/// fresh session; the store's memoized artifacts make the re-run cheap.
/// With `store_cap`, the daemon's store evicts least-recently-used
/// artifacts after every put so per-host disk growth stays bounded.
pub fn serve_tcp(
    listener: std::net::TcpListener,
    token: String,
    store_dir: PathBuf,
    store_cap: Option<u64>,
) -> ! {
    prism_net::serve(listener, token, move |stream, shard| {
        let opts = WorkerOptions {
            expected_shard: Some(shard),
            store_dir: Some(store_dir.clone()),
            store_cap,
            faults: GridFaultPlan::from_env().unwrap_or_default(),
        };
        let reader = match stream.try_clone() {
            Ok(clone) => std::io::BufReader::new(clone),
            Err(e) => {
                eprintln!("[prism-net] shard {shard}: clone failed: {e}");
                return;
            }
        };
        let code = run_worker_io(reader, stream, &opts);
        eprintln!("[prism-net] shard {shard}: worker session ended (exit {code})");
    })
}

/// Runs one worker protocol session over the given byte streams until
/// shutdown or EOF, returning what would be the process exit code. This
/// is the transport-agnostic core behind [`run_worker`] (stdin/stdout)
/// and [`serve_tcp`] (one TCP connection per call).
#[must_use]
pub fn run_worker_io<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    opts: &WorkerOptions,
) -> i32 {
    let out = Mutex::new(output);
    let mut lines = input.lines();

    // Handshake: the first line must be a compatible Hello.
    let first = match lines.next() {
        Some(Ok(line)) => line,
        _ => return 2,
    };
    let (shard, workload_names, max_insts, artifact_dir) = match ToWorker::decode(&first) {
        Ok(ToWorker::Hello {
            proto,
            shard: hello_shard,
            workloads,
            max_insts,
            artifact_dir,
        }) => {
            if proto != PROTO_VERSION {
                send(
                    &out,
                    &FromWorker::Fatal {
                        message: format!(
                            "protocol version mismatch: coordinator {proto}, worker {PROTO_VERSION}"
                        ),
                    },
                );
                return 2;
            }
            if let Some(expected) = opts.expected_shard {
                if hello_shard != expected {
                    send(
                        &out,
                        &FromWorker::Fatal {
                            message: format!(
                                "shard mismatch: hello says {hello_shard}, link says {expected}"
                            ),
                        },
                    );
                    return 2;
                }
            }
            (hello_shard, workloads, max_insts, artifact_dir)
        }
        _ => {
            send(
                &out,
                &FromWorker::Fatal {
                    message: format!("expected hello, got: {first}"),
                },
            );
            return 2;
        }
    };

    let store_dir = opts
        .store_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from(&artifact_dir));
    let session = Session::new()
        .with_tracer(TracerConfig {
            max_insts,
            ..TracerConfig::default()
        })
        .with_store_cap(opts.store_cap)
        .with_store_dir(&store_dir);
    // A second handle on the same store for artifact fetch/push frames:
    // the reader thread serves those concurrently with evaluation, and
    // the store's durability is file-level, not handle-level.
    let store = ArtifactStore::new(&store_dir).with_cap(opts.store_cap);

    // Resolve the workload set; unknown names quarantine as whole-workload
    // units (same key shape the pipeline uses for preparation failures).
    let mut workloads: Vec<&'static Workload> = Vec::with_capacity(workload_names.len());
    for name in &workload_names {
        match find_workload(name) {
            Some(w) => workloads.push(w),
            None => send(
                &out,
                &FromWorker::UnitQuarantine {
                    id: None,
                    key: format!("workload:{name}"),
                    error: PipelineError::new(name, Stage::Build, "unknown workload"),
                },
            ),
        }
    }
    send(
        &out,
        &FromWorker::HelloAck {
            shard,
            proto: PROTO_VERSION,
        },
    );

    let queue = Mutex::new(UnitQueue {
        pending: VecDeque::new(),
        closing: false,
    });
    let queue_cv = Condvar::new();
    let inflight = AtomicU64::new(0);
    // Set by an injected hang fault: the worker stalls *and* goes silent,
    // so the coordinator must catch it by heartbeat timeout.
    let hang = AtomicBool::new(false);
    // Set by the evaluator once everything is drained; stops the
    // heartbeat and prewarm threads so the scope can join.
    let finished = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Heartbeat thread.
        scope.spawn(|| {
            while !finished.load(Ordering::Relaxed) {
                if !hang.load(Ordering::Relaxed) {
                    send(
                        &out,
                        &FromWorker::Heartbeat {
                            shard,
                            inflight: inflight.load(Ordering::Relaxed),
                        },
                    );
                }
                std::thread::sleep(HEARTBEAT_INTERVAL);
            }
        });

        // Prewarm thread: prepare traces/IR and oracle tables for queued
        // units while the evaluator works on earlier ones. Failures are
        // ignored here — they resurface, typed, when the unit evaluates.
        scope.spawn(|| {
            let mut prepared = false;
            let mut warmed: BTreeSet<String> = BTreeSet::new();
            loop {
                let upcoming: Vec<String> = {
                    let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                    while q.pending.is_empty() && !q.closing {
                        q = queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                    if q.pending.is_empty() && q.closing {
                        return;
                    }
                    q.pending
                        .iter()
                        .map(|u| u.core.clone())
                        .filter(|c| !warmed.contains(c))
                        .collect()
                };
                if upcoming.is_empty() {
                    // Nothing new to warm; yield until the queue changes.
                    std::thread::sleep(HEARTBEAT_INTERVAL);
                    if finished.load(Ordering::Relaxed) {
                        return;
                    }
                    continue;
                }
                if !prepared {
                    // First touch: pull only chunk 0 of each workload's
                    // trace stream, overlapping the simulator's warm-up
                    // with other shards' evaluation without materializing
                    // any full trace. Full preparation happens (and is
                    // memoized) under the per-core warms below.
                    for w in &workloads {
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            let _ = session.prewarm_chunk0(w);
                        }));
                    }
                    prepared = true;
                }
                for core_name in upcoming {
                    if let Some(core) = parse_core(&core_name) {
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            let (data, _) = session.prepare_quarantined(&workloads);
                            for w in &data {
                                let _ = session.oracle_table(w, &core);
                            }
                        }));
                    }
                    warmed.insert(core_name);
                }
            }
        });

        // Evaluator thread: one result-or-quarantine per popped unit.
        scope.spawn(|| {
            let mut started: u64 = 0;
            let mut reported_workloads: BTreeSet<String> = BTreeSet::new();
            loop {
                let unit = {
                    let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if let Some(u) = q.pending.pop_front() {
                            break Some(u);
                        }
                        if q.closing {
                            break None;
                        }
                        q = queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                };
                let Some(unit) = unit else {
                    finished.store(true, Ordering::Relaxed);
                    queue_cv.notify_all();
                    return;
                };
                match opts.faults.action(shard, started) {
                    Some(GridFaultKind::Die) => {
                        eprintln!(
                            "[prism-grid] shard {shard}: injected death before unit {started}"
                        );
                        std::process::exit(101);
                    }
                    Some(GridFaultKind::Hang) => {
                        eprintln!(
                            "[prism-grid] shard {shard}: injected hang before unit {started}"
                        );
                        hang.store(true, Ordering::Relaxed);
                        loop {
                            std::thread::sleep(std::time::Duration::from_secs(3600));
                        }
                    }
                    Some(GridFaultKind::Quarantine) => {
                        started += 1;
                        let label = unit_label(&unit);
                        send(
                            &out,
                            &FromWorker::UnitQuarantine {
                                id: Some(unit.id),
                                key: label.clone(),
                                error: PipelineError::new(
                                    label,
                                    Stage::Evaluate,
                                    format!("injected grid fault: quarantined on shard {shard}"),
                                ),
                            },
                        );
                        inflight.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    None => {}
                }
                started += 1;
                evaluate_unit(&session, &workloads, &unit, &mut reported_workloads, &out);
                inflight.fetch_sub(1, Ordering::Relaxed);
            }
        });

        // Reader (this thread): feed the queue until shutdown, EOF, or an
        // I/O error (either way the coordinator is gone). Artifact frames
        // are served inline — store export/import is cheap I/O and must
        // not queue behind a long evaluation.
        'reader: while let Some(Ok(line)) = lines.next() {
            match ToWorker::decode(&line) {
                Ok(ToWorker::Assign { id, core, bsas }) => {
                    inflight.fetch_add(1, Ordering::Relaxed);
                    let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                    q.pending.push_back(QueuedUnit { id, core, bsas });
                    queue_cv.notify_all();
                }
                Ok(ToWorker::Fetch { keys }) => {
                    for key in keys {
                        // Empty doc = "don't have it" so the coordinator
                        // can account for every requested key.
                        let doc = ContentHash::from_hex(&key)
                            .and_then(|k| store.export(&k))
                            .unwrap_or_default();
                        send(&out, &FromWorker::Artifact { key, doc });
                    }
                }
                Ok(ToWorker::Artifact { key, doc }) => match ContentHash::from_hex(&key) {
                    Some(k) => {
                        if let Err(e) = store.import(&k, &doc) {
                            eprintln!("[prism-grid] shard {shard}: artifact import failed: {e}");
                        }
                    }
                    None => {
                        eprintln!("[prism-grid] shard {shard}: artifact push with bad key {key}");
                    }
                },
                Ok(ToWorker::Shutdown) => break 'reader,
                Ok(ToWorker::Hello { .. }) | Err(_) => {
                    send(
                        &out,
                        &FromWorker::Fatal {
                            message: format!("unexpected message: {line}"),
                        },
                    );
                }
            }
        }
        let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
        q.closing = true;
        queue_cv.notify_all();
    });

    let session_stats = session.stats();
    send(
        &out,
        &FromWorker::Bye {
            walks: session_stats.trace_walks,
            walks_skipped: session_stats.walks_skipped,
            shape_memo_hits: session_stats.shape_memo_hits,
            timing_artifacts_loaded: session_stats.timing_artifacts_loaded,
        },
    );
    0
}

/// The unit's sweep key (Fig. 12 label), derivable without evaluating.
fn unit_label(unit: &QueuedUnit) -> String {
    match (parse_core(&unit.core), parse_bsas(&unit.bsas)) {
        (Some(core), Some(bsas)) => DesignPoint::new(core, bsas).label(),
        _ => format!("{}-{}", unit.core, unit.bsas),
    }
}

/// Evaluates one unit and reports exactly one terminal message for it
/// (plus at most one workload-level quarantine per workload per worker).
fn evaluate_unit<W: Write>(
    session: &Session,
    workloads: &[&Workload],
    unit: &QueuedUnit,
    reported_workloads: &mut BTreeSet<String>,
    out: &Mutex<W>,
) {
    let label = unit_label(unit);
    let (Some(core), Some(bsas)) = (parse_core(&unit.core), parse_bsas(&unit.bsas)) else {
        send(
            out,
            &FromWorker::UnitQuarantine {
                id: Some(unit.id),
                key: label.clone(),
                error: PipelineError::new(
                    label,
                    Stage::Evaluate,
                    format!(
                        "unparseable assignment: core `{}` bsas `{}`",
                        unit.core, unit.bsas
                    ),
                ),
            },
        );
        return;
    };
    let report = session.evaluate_designs(
        workloads,
        std::slice::from_ref(&core),
        std::slice::from_ref(&bsas),
    );
    // Name the store artifact this unit settled into, so a remote
    // coordinator knows what to pull. Preparation is memoized, so
    // recomputing the healthy workload keys here is cheap.
    let artifacts = {
        let (data, _) = session.prepare_quarantined(workloads);
        let wkeys: Vec<ContentHash> = data.iter().map(|p| p.key).collect();
        let mut keys = vec![session.design_point_key(&wkeys, &core, &bsas)];
        // Timing artifacts settled by this unit's walks ride along, so
        // the coordinator can pull them and reuse the walks on cores
        // that share a timing shape with this one.
        keys.extend(session.timing_shape_keys(&data, &core, &bsas));
        keys.iter().map(ContentHash::hex).collect::<Vec<_>>()
    };
    let mut resolved = false;
    for result in report.results {
        send(
            out,
            &FromWorker::UnitResult {
                id: unit.id,
                result,
                artifacts: artifacts.clone(),
            },
        );
        resolved = true;
    }
    for (key, error) in report.quarantined {
        if key == label {
            send(
                out,
                &FromWorker::UnitQuarantine {
                    id: Some(unit.id),
                    key,
                    error,
                },
            );
            resolved = true;
        } else if reported_workloads.insert(key.clone()) {
            // Workload-level failure: not tied to this assignment, and
            // re-derived identically by every unit — report it once.
            send(
                out,
                &FromWorker::UnitQuarantine {
                    id: None,
                    key,
                    error,
                },
            );
        }
    }
    if !resolved {
        send(
            out,
            &FromWorker::UnitQuarantine {
                id: Some(unit.id),
                key: label.clone(),
                error: PipelineError::new(
                    label,
                    Stage::Evaluate,
                    "no healthy workloads to evaluate",
                ),
            },
        );
    }
}
