//! Deterministic worker-level fault injection for grid chaos tests.
//!
//! `PRISM_FAULTS` (see [`prism_pipeline::FaultPlan`]) injects *stage*
//! faults and is inherited by every worker, so it cannot model a single
//! worker crashing. `PRISM_GRID_FAULTS` targets one shard:
//!
//! ```text
//! PRISM_GRID_FAULTS=die:0@1,hang:2@0,quarantine:1@3
//! ```
//!
//! Each spec is `kind:<shard>@<after>` — the fault fires on shard
//! `<shard>` when it starts its `<after>`-th unit (0-based count of units
//! it has begun evaluating):
//!
//! - `die` — exit the worker process immediately (no result, no `Bye`),
//!   modeling a crash with units in flight.
//! - `hang` — stop heartbeating and stall the unit forever, modeling a
//!   wedged worker the coordinator must detect by heartbeat timeout.
//! - `quarantine` — report the unit as quarantined (typed, injected
//!   error) without evaluating it, modeling a shard-local failure that a
//!   retry on a different shard recovers from.

use std::fmt;

/// What an injected grid fault does to the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridFaultKind {
    /// Exit the process immediately.
    Die,
    /// Stop heartbeating and stall forever.
    Hang,
    /// Quarantine the unit without evaluating it.
    Quarantine,
}

impl fmt::Display for GridFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GridFaultKind::Die => "die",
            GridFaultKind::Hang => "hang",
            GridFaultKind::Quarantine => "quarantine",
        })
    }
}

/// Environment variable holding the grid fault spec.
pub const GRID_FAULTS_ENV: &str = "PRISM_GRID_FAULTS";

/// A parsed `PRISM_GRID_FAULTS` plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GridFaultPlan {
    faults: Vec<(GridFaultKind, usize, u64)>,
}

impl GridFaultPlan {
    /// Parses a comma-separated list of `kind:<shard>@<after>` specs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed spec; an empty or
    /// all-whitespace value is an error (unset the variable instead).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("bad grid fault `{part}`: expected kind:<shard>@<after>"))?;
            let kind = match kind {
                "die" => GridFaultKind::Die,
                "hang" => GridFaultKind::Hang,
                "quarantine" => GridFaultKind::Quarantine,
                other => {
                    return Err(format!(
                        "bad grid fault `{part}`: unknown kind `{other}` \
                         (expected die, hang, or quarantine)"
                    ))
                }
            };
            let (shard, after) = rest
                .split_once('@')
                .ok_or_else(|| format!("bad grid fault `{part}`: missing @<after>"))?;
            let shard = shard
                .parse::<usize>()
                .map_err(|e| format!("bad grid fault `{part}`: shard: {e}"))?;
            let after = after
                .parse::<u64>()
                .map_err(|e| format!("bad grid fault `{part}`: after: {e}"))?;
            faults.push((kind, shard, after));
        }
        if faults.is_empty() {
            return Err(format!(
                "empty grid fault spec `{spec}` (name at least one fault, or unset {GRID_FAULTS_ENV})"
            ));
        }
        Ok(GridFaultPlan { faults })
    }

    /// Reads the plan from `PRISM_GRID_FAULTS`; `None` when unset.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec — a typo must not silently disable the
    /// chaos test.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var(GRID_FAULTS_ENV).ok()?;
        Some(Self::parse(&spec).unwrap_or_else(|e| panic!("{GRID_FAULTS_ENV}: {e}")))
    }

    /// The fault (if any) that fires when `shard` starts its `started`-th
    /// unit.
    #[must_use]
    pub fn action(&self, shard: usize, started: u64) -> Option<GridFaultKind> {
        self.faults
            .iter()
            .find(|&&(_, s, after)| s == shard && after == started)
            .map(|&(kind, _, _)| kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_fault_specs() {
        let plan = GridFaultPlan::parse("die:0@1, hang:2@0 ,quarantine:1@3").unwrap();
        assert_eq!(plan.action(0, 1), Some(GridFaultKind::Die));
        assert_eq!(plan.action(2, 0), Some(GridFaultKind::Hang));
        assert_eq!(plan.action(1, 3), Some(GridFaultKind::Quarantine));
        assert_eq!(plan.action(0, 0), None);
        assert_eq!(plan.action(3, 1), None);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "  ,  ",
            "die",
            "die:0",
            "die:x@1",
            "die:0@x",
            "explode:0@1",
            "die:0@1,hang",
        ] {
            assert!(GridFaultPlan::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
