//! Per-loop path profiling (Ball–Larus style \[4\]): which control paths do
//! iterations of an inner loop take, and how often? Used by the Trace-P
//! analyzer to find hot traces and loop-back probabilities, and by SIMD
//! if-conversion to cost masking.

use std::collections::HashMap;

use prism_sim::Trace;

use crate::{BlockId, Cfg, LoopForest, LoopId};

/// Maximum distinct paths tracked per loop; rarer paths lump into the rest.
const MAX_PATHS: usize = 64;

/// Path statistics for one innermost loop.
#[derive(Debug, Clone, Default)]
pub struct PathProfile {
    /// Distinct block-sequences taken by iterations, with counts,
    /// descending by count.
    pub paths: Vec<(Vec<BlockId>, u64)>,
    /// Total iterations observed.
    pub iterations: u64,
    /// Iterations that continued to another iteration (took the back edge).
    pub back_edges: u64,
}

impl PathProfile {
    /// The most frequent path, if any iterations ran.
    #[must_use]
    pub fn hot_path(&self) -> Option<&(Vec<BlockId>, u64)> {
        self.paths.first()
    }

    /// Fraction of iterations following the hot path.
    #[must_use]
    pub fn hot_path_fraction(&self) -> f64 {
        match (self.hot_path(), self.iterations) {
            (Some((_, c)), n) if n > 0 => *c as f64 / n as f64,
            _ => 0.0,
        }
    }

    /// Probability an iteration is followed by another (the paper's
    /// "loop back probability", Trace-P requires ≥ 80%).
    #[must_use]
    pub fn loop_back_probability(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.back_edges as f64 / self.iterations as f64
        }
    }

    /// Expected dynamic block count per iteration.
    #[must_use]
    pub fn avg_blocks_per_iter(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        let weighted: u64 = self.paths.iter().map(|(p, c)| p.len() as u64 * c).sum();
        weighted as f64 / self.iterations as f64
    }
}

/// Profiles the paths of every innermost loop in one pass over the trace.
#[must_use]
pub fn profile_paths(
    cfg: &Cfg,
    forest: &LoopForest,
    trace: &Trace,
) -> HashMap<LoopId, PathProfile> {
    let mut profiles: HashMap<LoopId, PathProfile> = HashMap::new();
    let mut raw: HashMap<LoopId, HashMap<Vec<BlockId>, u64>> = HashMap::new();
    for l in forest.innermost() {
        profiles.insert(l.id, PathProfile::default());
        raw.insert(l.id, HashMap::new());
    }

    // Current innermost-loop context: (loop id, current iteration's path).
    let mut active: Option<(LoopId, Vec<BlockId>)> = None;

    let flush = |active: &mut Option<(LoopId, Vec<BlockId>)>,
                 raw: &mut HashMap<LoopId, HashMap<Vec<BlockId>, u64>>,
                 profiles: &mut HashMap<LoopId, PathProfile>,
                 continued: bool| {
        if let Some((lid, path)) = active.take() {
            let prof = profiles.get_mut(&lid).expect("profiled loop");
            prof.iterations += 1;
            if continued {
                prof.back_edges += 1;
            }
            let paths = raw.get_mut(&lid).expect("profiled loop");
            if paths.len() < MAX_PATHS || paths.contains_key(&path) {
                *paths.entry(path).or_insert(0) += 1;
            }
        }
    };

    for d in &trace.insts {
        let b = cfg.block_of[d.sid as usize];
        if d.sid != cfg.blocks[b as usize].start {
            continue; // only block entries matter for paths
        }
        let in_loop =
            forest.loop_of_block[b as usize].filter(|&l| forest.loops[l as usize].is_innermost());
        match (&mut active, in_loop) {
            (Some((lid, path)), Some(l)) if *lid == l => {
                if forest.loops[l as usize].header == b {
                    // Back edge: one iteration ends, the next begins.
                    flush(&mut active, &mut raw, &mut profiles, true);
                    active = Some((l, vec![b]));
                } else {
                    path.push(b);
                }
            }
            (_, Some(l)) => {
                // Entered a (different) innermost loop.
                flush(&mut active, &mut raw, &mut profiles, false);
                active = Some((l, vec![b]));
            }
            (Some(_), None) => {
                flush(&mut active, &mut raw, &mut profiles, false);
            }
            (None, None) => {}
        }
    }
    flush(&mut active, &mut raw, &mut profiles, false);

    for (lid, paths) in raw {
        let prof = profiles.get_mut(&lid).expect("profiled loop");
        let mut v: Vec<(Vec<BlockId>, u64)> = paths.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        prof.paths = v;
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dominators;
    use prism_isa::{ProgramBuilder, Reg};

    /// Loop whose body branches on i % 4 == 0 (path T every 4th iter).
    fn branchy_loop(n: i64) -> Trace {
        let (i, r, t) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new("branchy");
        b.init_reg(i, n);
        let head = b.bind_new_label();
        let skip = b.label();
        b.andi(t, i, 3);
        b.bne_label(t, Reg::ZERO, skip);
        b.addi(r, r, 100); // rare path
        b.bind(skip);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        prism_sim::trace(&b.build().unwrap()).unwrap()
    }

    fn profile(t: &Trace) -> (Cfg, LoopForest, HashMap<LoopId, PathProfile>) {
        let cfg = Cfg::build(t);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom, t);
        let p = profile_paths(&cfg, &forest, t);
        (cfg, forest, p)
    }

    #[test]
    fn two_paths_with_expected_frequencies() {
        let t = branchy_loop(40);
        let (_c, f, p) = profile(&t);
        let inner = f.innermost().next().unwrap();
        let prof = &p[&inner.id];
        assert_eq!(prof.iterations, 40);
        assert_eq!(prof.paths.len(), 2);
        // Hot path: the skip path (3 of every 4 iterations).
        assert_eq!(prof.paths[0].1, 30);
        assert_eq!(prof.paths[1].1, 10);
        assert!((prof.hot_path_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn loop_back_probability_counts_exits() {
        let t = branchy_loop(40);
        let (_c, f, p) = profile(&t);
        let inner = f.innermost().next().unwrap();
        let prof = &p[&inner.id];
        // 40 iterations, 39 back edges, 1 exit.
        assert_eq!(prof.back_edges, 39);
        assert!((prof.loop_back_probability() - 39.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn straight_loop_single_path() {
        let (i,) = (Reg::int(1),);
        let mut b = ProgramBuilder::new("s");
        b.init_reg(i, 10);
        let head = b.bind_new_label();
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let (_c, f, p) = profile(&t);
        let prof = &p[&f.innermost().next().unwrap().id];
        assert_eq!(prof.paths.len(), 1);
        assert_eq!(prof.iterations, 10);
        assert!((prof.avg_blocks_per_iter() - 1.0).abs() < 1e-9);
    }
}
