//! Register dataflow classification for inner loops: induction variables,
//! reductions, and genuine cross-iteration dependences.
//!
//! The SIMD analyzer excludes "loops with inter-iteration data dependences
//! which are not reductions or inductions" (paper §3.2); this module makes
//! that call.

use std::collections::HashMap;

use prism_isa::{Opcode, Program, Reg};

use crate::{Cfg, Loop};

/// Classification of a register that is live across the loop back edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CarriedClass {
    /// `r = r + imm` once per iteration (vectorizable by widening).
    Induction {
        /// Per-iteration step.
        step: i64,
    },
    /// `r = r ⊕ x` accumulation, `r` otherwise unused (vectorizable by
    /// partial sums + final horizontal reduce).
    Reduction {
        /// The combining operation.
        op: Opcode,
    },
    /// Any other cross-iteration flow: not vectorizable.
    CrossIteration,
}

/// Register dataflow summary of one innermost loop.
#[derive(Debug, Clone, Default)]
pub struct LoopRegInfo {
    /// Classification of each register carried across the back edge.
    pub carried: HashMap<Reg, CarriedClass>,
    /// Registers read in the loop but never written there (live-ins).
    pub invariants: Vec<Reg>,
}

impl LoopRegInfo {
    /// Whether every carried register is an induction or reduction (the
    /// SIMD data-dependence legality condition).
    #[must_use]
    pub fn vectorizable_dataflow(&self) -> bool {
        self.carried
            .values()
            .all(|c| !matches!(c, CarriedClass::CrossIteration))
    }

    /// The carried registers classified as cross-iteration.
    pub fn cross_iteration_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.carried
            .iter()
            .filter(|(_, c)| matches!(c, CarriedClass::CrossIteration))
            .map(|(r, _)| *r)
    }
}

/// Statically classifies the carried registers of an innermost loop.
///
/// A register is *carried* if some instruction in the loop reads it before
/// any instruction of the same iteration (in static body order) writes it,
/// and some instruction in the loop writes it. Writers are then pattern
/// matched for induction/reduction shapes.
#[must_use]
pub fn classify_loop_registers(program: &Program, cfg: &Cfg, l: &Loop) -> LoopRegInfo {
    // Collect the loop body's instructions in static order.
    let body: Vec<prism_isa::StaticId> = l
        .blocks
        .iter()
        .flat_map(|&b| cfg.blocks[b as usize].inst_ids())
        .collect();

    // First-def position and def list per register; first-use position.
    let mut first_def: HashMap<Reg, usize> = HashMap::new();
    let mut defs: HashMap<Reg, Vec<prism_isa::StaticId>> = HashMap::new();
    let mut first_use: HashMap<Reg, usize> = HashMap::new();
    let mut use_count: HashMap<Reg, u32> = HashMap::new();
    for (pos, &sid) in body.iter().enumerate() {
        let inst = program.inst(sid);
        for r in inst.sources() {
            first_use.entry(r).or_insert(pos);
            *use_count.entry(r).or_insert(0) += 1;
        }
        if let Some(d) = inst.dest() {
            first_def.entry(d).or_insert(pos);
            defs.entry(d).or_default().push(sid);
        }
    }

    let mut info = LoopRegInfo::default();
    for (&r, &use_pos) in &first_use {
        match first_def.get(&r) {
            None => info.invariants.push(r),
            Some(&def_pos) => {
                // Used before (or at a position requiring) the defining
                // write of the same iteration ⇒ value flows across
                // iterations. (Conservative: header-ordered body.)
                if use_pos <= def_pos {
                    let class = classify_writer(program, r, &defs[&r], use_count[&r]);
                    info.carried.insert(r, class);
                }
            }
        }
    }
    info.invariants.sort_unstable();
    info
}

fn classify_writer(
    program: &Program,
    r: Reg,
    defs: &[prism_isa::StaticId],
    uses: u32,
) -> CarriedClass {
    if defs.len() != 1 {
        return CarriedClass::CrossIteration;
    }
    let inst = program.inst(defs[0]);
    // Induction: r = r + imm.
    if inst.op == Opcode::AddI && inst.src1 == Some(r) {
        return CarriedClass::Induction { step: inst.imm };
    }
    // Reduction: r = r ⊕ x (or x ⊕ r), where r's only in-loop use is the
    // accumulation itself.
    let assoc = matches!(
        inst.op,
        Opcode::Add
            | Opcode::FAdd
            | Opcode::FMul
            | Opcode::Mul
            | Opcode::FMin
            | Opcode::FMax
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
    );
    if assoc && (inst.src1 == Some(r)) != (inst.src2 == Some(r)) && uses == 1 {
        return CarriedClass::Reduction { op: inst.op };
    }
    CarriedClass::CrossIteration
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dominators, LoopForest};
    use prism_isa::ProgramBuilder;

    fn loop_info(build: impl FnOnce(&mut ProgramBuilder)) -> LoopRegInfo {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let cfg = Cfg::build(&t);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom, &t);
        let inner = forest.innermost().next().expect("a loop");
        classify_loop_registers(&t.program, &cfg, inner)
    }

    #[test]
    fn induction_and_reduction_recognized() {
        // sum += a[i]; classic vectorizable reduction loop.
        let info = loop_info(|b| {
            let (p, i, sum, x) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
            b.init_reg(p, 0x1000);
            b.init_reg(i, 10);
            let head = b.bind_new_label();
            b.ld(x, p, 0);
            b.add(sum, sum, x);
            b.addi(p, p, 8);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert_eq!(
            info.carried[&Reg::int(1)],
            CarriedClass::Induction { step: 8 }
        );
        assert_eq!(
            info.carried[&Reg::int(2)],
            CarriedClass::Induction { step: -1 }
        );
        assert_eq!(
            info.carried[&Reg::int(3)],
            CarriedClass::Reduction { op: Opcode::Add }
        );
        assert!(info.vectorizable_dataflow());
    }

    #[test]
    fn genuine_recurrence_is_cross_iteration() {
        // x = x*x + 1 each iteration: not an induction or reduction.
        let info = loop_info(|b| {
            let (x, i) = (Reg::int(1), Reg::int(2));
            b.init_reg(x, 2);
            b.init_reg(i, 5);
            let head = b.bind_new_label();
            b.mul(x, x, x);
            b.addi(x, x, 1);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert_eq!(info.carried[&Reg::int(1)], CarriedClass::CrossIteration);
        assert!(!info.vectorizable_dataflow());
        assert_eq!(
            info.cross_iteration_regs().collect::<Vec<_>>(),
            vec![Reg::int(1)]
        );
    }

    #[test]
    fn accumulator_used_elsewhere_not_a_reduction() {
        // sum += x, but sum also feeds a store each iteration: its value is
        // consumed per-iteration, so partial-sum vectorization is illegal.
        let info = loop_info(|b| {
            let (p, i, sum, x) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
            b.init_reg(p, 0x1000);
            b.init_reg(i, 10);
            let head = b.bind_new_label();
            b.ld(x, p, 0);
            b.add(sum, sum, x);
            b.st(sum, p, 0x100); // prefix-sum style use
            b.addi(p, p, 8);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert_eq!(info.carried[&Reg::int(3)], CarriedClass::CrossIteration);
    }

    #[test]
    fn loop_invariants_listed() {
        let info = loop_info(|b| {
            let (base, i, x) = (Reg::int(1), Reg::int(2), Reg::int(4));
            b.init_reg(base, 0x1000);
            b.init_reg(i, 4);
            let head = b.bind_new_label();
            b.add(x, base, i); // base never written in loop
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert!(info.invariants.contains(&Reg::int(1)));
        assert!(!info.carried.contains_key(&Reg::int(1)));
        // x is written before any use: purely iteration-local.
        assert!(!info.carried.contains_key(&Reg::int(4)));
    }

    #[test]
    fn fp_reduction_recognized() {
        let info = loop_info(|b| {
            let (p, i) = (Reg::int(1), Reg::int(2));
            let (acc, x) = (Reg::fp(0), Reg::fp(1));
            b.init_reg(p, 0x1000);
            b.init_reg(i, 8);
            let head = b.bind_new_label();
            b.fld(x, p, 0);
            b.fmul(acc, acc, x);
            b.addi(p, p, 8);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert_eq!(
            info.carried[&Reg::fp(0)],
            CarriedClass::Reduction { op: Opcode::FMul }
        );
    }
}
