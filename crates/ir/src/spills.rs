//! Register-spill identification (paper §2.7): "the TDG includes a
//! best-effort approach to identify loads and stores associated with
//! register spills, which can potentially be bypassed in accelerator
//! transformations."
//!
//! Heuristic: inside a loop body, a store to `[base + off]` paired with a
//! later load from the same `[base + off]`, where `base` is never
//! redefined inside the loop and the stored register is redefined between
//! the two (the reason the value went to memory), is a spill/fill pair.
//! Dataflow accelerators with private operand storage (NS-DF, Trace-P) can
//! keep such values in the fabric and skip the memory round-trip.

use std::collections::HashMap;

use prism_isa::{Program, Reg, StaticId};

use crate::{Cfg, Loop};

/// A spill/fill pair found in a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillPair {
    /// The spilling store.
    pub store: StaticId,
    /// The refilling load.
    pub load: StaticId,
    /// The frame-like base register.
    pub base: Reg,
    /// Offset from the base.
    pub offset: i64,
}

/// Finds spill/fill pairs in a loop body.
#[must_use]
pub fn find_spills(program: &Program, cfg: &Cfg, l: &Loop) -> Vec<SpillPair> {
    let body: Vec<StaticId> = l
        .blocks
        .iter()
        .flat_map(|&b| cfg.blocks[b as usize].inst_ids())
        .collect();

    // Base registers redefined inside the loop cannot anchor a frame slot.
    let mut redefined: HashMap<Reg, bool> = HashMap::new();
    for &sid in &body {
        if let Some(d) = program.inst(sid).dest() {
            redefined.insert(d, true);
        }
    }

    let mut pairs = Vec::new();
    for (i, &st_sid) in body.iter().enumerate() {
        let st = program.inst(st_sid);
        if !st.op.is_store() {
            continue;
        }
        let Some(base) = st.src1 else { continue };
        let Some(data) = st.src2 else { continue };
        if redefined.get(&base).copied().unwrap_or(false) {
            continue; // moving base: a streaming store, not a frame slot
        }
        // Look for the matching reload, requiring the spilled register to
        // be clobbered in between (otherwise the store is a plain output).
        let mut clobbered = false;
        for &ld_sid in &body[i + 1..] {
            let inst = program.inst(ld_sid);
            if inst.dest() == Some(data) && !inst.op.is_load() {
                clobbered = true;
            }
            if inst.op.is_load() && inst.src1 == Some(base) && inst.imm == st.imm && clobbered {
                pairs.push(SpillPair {
                    store: st_sid,
                    load: ld_sid,
                    base,
                    offset: st.imm,
                });
                break;
            }
            if inst.op.is_store() && inst.src1 == Some(base) && inst.imm == st.imm {
                break; // slot overwritten first
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dominators, LoopForest};
    use prism_isa::ProgramBuilder;

    fn loop_spills(build: impl FnOnce(&mut ProgramBuilder)) -> Vec<SpillPair> {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let cfg = Cfg::build(&t);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom, &t);
        let l = forest.innermost().next().expect("a loop");
        find_spills(&t.program, &cfg, l)
    }

    #[test]
    fn classic_spill_fill_detected() {
        let pairs = loop_spills(|b| {
            let (sp, i, x, y) = (Reg::int(29), Reg::int(1), Reg::int(2), Reg::int(3));
            b.init_reg(sp, 0x8000);
            b.init_reg(i, 16);
            let head = b.bind_new_label();
            b.st(x, sp, -8); // spill x
            b.add(x, i, i); //  clobber x (why it was spilled)
            b.add(y, y, x);
            b.ld(x, sp, -8); // fill x
            b.add(y, y, x);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].offset, -8);
        assert_eq!(pairs[0].base, Reg::int(29));
    }

    #[test]
    fn streaming_store_not_a_spill() {
        // base advances every iteration: a data store, not a frame slot.
        let pairs = loop_spills(|b| {
            let (p, i, x) = (Reg::int(1), Reg::int(2), Reg::int(3));
            b.init_reg(p, 0x8000);
            b.init_reg(i, 16);
            let head = b.bind_new_label();
            b.st(x, p, 0);
            b.ld(x, p, 0);
            b.addi(p, p, 8);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert!(pairs.is_empty());
    }

    #[test]
    fn store_without_clobber_not_a_spill() {
        // The stored register is never redefined before the reload: the
        // round-trip is not a spill (the value was still live).
        let pairs = loop_spills(|b| {
            let (sp, i, x) = (Reg::int(29), Reg::int(1), Reg::int(2));
            b.init_reg(sp, 0x8000);
            b.init_reg(i, 16);
            let head = b.bind_new_label();
            b.st(x, sp, -16);
            b.ld(x, sp, -16);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        assert!(pairs.is_empty());
    }

    #[test]
    fn overwritten_slot_breaks_the_pair() {
        let pairs = loop_spills(|b| {
            let (sp, i, x, y) = (Reg::int(29), Reg::int(1), Reg::int(2), Reg::int(3));
            b.init_reg(sp, 0x8000);
            b.init_reg(i, 16);
            let head = b.bind_new_label();
            b.st(x, sp, -8);
            b.add(x, i, i);
            b.st(y, sp, -8); // slot reused for y before x's reload
            b.ld(x, sp, -8);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        // x's pair is broken by the overwrite; y's store has no clobber of
        // y before the load, so no pair either.
        assert!(pairs.is_empty());
    }
}
