//! Natural-loop detection and the loop forest, with dynamic statistics
//! from the trace (the loop-nest structure of paper §2.3, reconstructed
//! "using straightforward or known techniques").

use std::collections::HashSet;

use prism_sim::Trace;

use crate::{BlockId, Cfg, Dominators};

/// Index of a loop within a [`LoopForest`].
pub type LoopId = u32;

/// A natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop id.
    pub id: LoopId,
    /// Header block.
    pub header: BlockId,
    /// All blocks in the loop body (including the header).
    pub blocks: Vec<BlockId>,
    /// Blocks whose back edges target the header.
    pub latches: Vec<BlockId>,
    /// Enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth (1 = outermost).
    pub depth: u32,
    // -- dynamic statistics --------------------------------------------
    /// Times the loop was entered from outside.
    pub entries: u64,
    /// Total iterations executed (header executions).
    pub iterations: u64,
    /// Dynamic instructions retired inside the loop (incl. inner loops).
    pub dyn_insts: u64,
}

impl Loop {
    /// Whether this loop contains no nested loops.
    #[must_use]
    pub fn is_innermost(&self) -> bool {
        self.children.is_empty()
    }

    /// Average trip count per entry (0 if never entered).
    #[must_use]
    pub fn avg_trip_count(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.iterations as f64 / self.entries as f64
        }
    }

    /// Number of static instructions in the loop body.
    #[must_use]
    pub fn static_size(&self, cfg: &Cfg) -> u32 {
        self.blocks
            .iter()
            .map(|&b| cfg.blocks[b as usize].len())
            .sum()
    }

    /// Whether the loop body contains call or return instructions (NS-DF
    /// requires fully-inlinable nests).
    #[must_use]
    pub fn has_calls(&self, cfg: &Cfg, program: &prism_isa::Program) -> bool {
        self.blocks.iter().any(|&b| {
            cfg.blocks[b as usize].inst_ids().any(|i| {
                matches!(
                    program.inst(i).op,
                    prism_isa::Opcode::Call | prism_isa::Opcode::Ret
                )
            })
        })
    }
}

/// All natural loops of a program, with nesting structure.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// Loops, ordered outermost-first within a nest.
    pub loops: Vec<Loop>,
    /// Innermost loop containing each block, if any.
    pub loop_of_block: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Finds natural loops from back edges (`latch → header` where the
    /// header dominates the latch) and annotates them with dynamic counts
    /// from `trace`.
    #[must_use]
    pub fn build(cfg: &Cfg, dom: &Dominators, trace: &Trace) -> Self {
        let mut forest = LoopForest::from_cfg(cfg, dom);
        forest.annotate(cfg, trace);
        forest
    }

    /// Static loop structure only.
    #[must_use]
    pub fn from_cfg(cfg: &Cfg, dom: &Dominators) -> Self {
        // Collect back edges per header.
        let mut headers: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for b in &cfg.blocks {
            for &s in &b.succs {
                if dom.dominates(s, b.id) {
                    match headers.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b.id),
                        None => headers.push((s, vec![b.id])),
                    }
                }
            }
        }

        // Natural loop body: backwards reachability from latches to header.
        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in headers {
            let mut body: HashSet<BlockId> = HashSet::new();
            body.insert(header);
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(b) = stack.pop() {
                if body.insert(b) {
                    for &p in &cfg.blocks[b as usize].preds {
                        stack.push(p);
                    }
                }
            }
            let mut blocks: Vec<BlockId> = body.into_iter().collect();
            blocks.sort_unstable();
            loops.push(Loop {
                id: 0,
                header,
                blocks,
                latches,
                parent: None,
                children: Vec::new(),
                depth: 0,
                entries: 0,
                iterations: 0,
                dyn_insts: 0,
            });
        }

        // Sort loops by body size descending so parents precede children,
        // then assign nesting by containment.
        loops.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
        for (i, l) in loops.iter_mut().enumerate() {
            l.id = i as LoopId;
        }
        let n = loops.len();
        for child in 0..n {
            // The smallest strict superset is the parent.
            let mut parent: Option<usize> = None;
            for cand in 0..n {
                if cand == child {
                    continue;
                }
                let (c_blocks, p_blocks) = (&loops[child].blocks, &loops[cand].blocks);
                if p_blocks.len() > c_blocks.len()
                    && c_blocks.iter().all(|b| p_blocks.binary_search(b).is_ok())
                    && parent.is_none_or(|p| loops[p].blocks.len() > p_blocks.len())
                {
                    parent = Some(cand);
                }
            }
            if let Some(p) = parent {
                loops[child].parent = Some(p as LoopId);
                let child_id = loops[child].id;
                loops[p].children.push(child_id);
            }
        }
        // Depths.
        for i in 0..n {
            let mut d = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p as usize].parent;
            }
            loops[i].depth = d;
        }

        // Innermost loop per block: order largest → smallest so the
        // smallest (innermost) containing loop wins.
        let mut loop_of_block: Vec<Option<LoopId>> = vec![None; cfg.len()];
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(loops[i].blocks.len()));
        for &i in &order {
            for &b in &loops[i].blocks {
                loop_of_block[b as usize] = Some(loops[i].id);
            }
        }

        LoopForest {
            loops,
            loop_of_block,
        }
    }

    fn annotate(&mut self, cfg: &Cfg, trace: &Trace) {
        let mut prev_block: Option<BlockId> = None;
        for d in &trace.insts {
            let b = cfg.block_of[d.sid as usize];
            let at_start = d.sid == cfg.blocks[b as usize].start;
            // Attribute the instruction to every enclosing loop.
            let mut cur = self.loop_of_block[b as usize];
            while let Some(l) = cur {
                self.loops[l as usize].dyn_insts += 1;
                cur = self.loops[l as usize].parent;
            }
            if at_start {
                // Header execution = one iteration; entry if the previous
                // block was outside the loop.
                if let Some(l) = self.loop_of_block[b as usize] {
                    let mut lid = Some(l);
                    while let Some(id) = lid {
                        let lp = &self.loops[id as usize];
                        if lp.header == b {
                            let from_outside = prev_block.is_none_or(|p| !lp.blocks.contains(&p));
                            self.loops[id as usize].iterations += 1;
                            if from_outside {
                                self.loops[id as usize].entries += 1;
                            }
                        }
                        lid = self.loops[id as usize].parent;
                    }
                }
            }
            prev_block = Some(b);
        }
    }

    /// Number of loops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the program has no loops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Iterates over innermost loops.
    pub fn innermost(&self) -> impl Iterator<Item = &Loop> {
        self.loops.iter().filter(|l| l.is_innermost())
    }

    /// The innermost loop containing static instruction `sid`, if any.
    #[must_use]
    pub fn loop_of_inst(&self, cfg: &Cfg, sid: prism_isa::StaticId) -> Option<&Loop> {
        self.loop_of_block[cfg.block_of[sid as usize] as usize].map(|l| &self.loops[l as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    fn nested_loops_trace(outer: i64, inner: i64) -> Trace {
        let (i, j, acc) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new("nest");
        b.init_reg(i, outer);
        let oh = b.bind_new_label();
        b.li(j, inner);
        let ih = b.bind_new_label();
        b.add(acc, acc, j);
        b.addi(j, j, -1);
        b.bne_label(j, Reg::ZERO, ih);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, oh);
        b.halt();
        prism_sim::trace(&b.build().unwrap()).unwrap()
    }

    fn forest_of(trace: &Trace) -> (Cfg, LoopForest) {
        let cfg = Cfg::build(trace);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom, trace);
        (cfg, forest)
    }

    #[test]
    fn two_nested_loops_found() {
        let t = nested_loops_trace(4, 10);
        let (_cfg, f) = forest_of(&t);
        assert_eq!(f.len(), 2);
        let inner = f.innermost().next().unwrap();
        let outer = f.loops.iter().find(|l| !l.is_innermost()).unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.children, vec![inner.id]);
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
    }

    #[test]
    fn iteration_and_entry_counts() {
        let t = nested_loops_trace(4, 10);
        let (_cfg, f) = forest_of(&t);
        let inner = f.innermost().next().unwrap();
        let outer = f.loops.iter().find(|l| !l.is_innermost()).unwrap();
        assert_eq!(outer.entries, 1);
        assert_eq!(outer.iterations, 4);
        assert_eq!(inner.entries, 4);
        assert_eq!(inner.iterations, 40);
        assert!((inner.avg_trip_count() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dyn_insts_attributed_to_all_enclosing_loops() {
        let t = nested_loops_trace(2, 3);
        let (_cfg, f) = forest_of(&t);
        let outer = f.loops.iter().find(|l| !l.is_innermost()).unwrap();
        let inner = f.innermost().next().unwrap();
        assert!(outer.dyn_insts > inner.dyn_insts);
        // Inner: 3 insts × 3 iters × 2 entries = 18.
        assert_eq!(inner.dyn_insts, 18);
    }

    #[test]
    fn loopless_program_has_empty_forest() {
        let mut b = ProgramBuilder::new("line");
        b.li(Reg::int(1), 1);
        b.halt();
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let (_cfg, f) = forest_of(&t);
        assert!(f.is_empty());
    }

    #[test]
    fn static_size_counts_body_insts() {
        let t = nested_loops_trace(2, 2);
        let (cfg, f) = forest_of(&t);
        let inner = f.innermost().next().unwrap();
        assert_eq!(inner.static_size(&cfg), 3);
        assert!(!inner.has_calls(&cfg, &t.program));
    }

    #[test]
    fn loop_of_inst_resolves_innermost() {
        let t = nested_loops_trace(2, 2);
        let (cfg, f) = forest_of(&t);
        // Instruction 1 (add acc) is in the inner loop.
        let l = f.loop_of_inst(&cfg, 1).unwrap();
        assert!(l.is_innermost());
        // Instruction 0 (li j) is only in the outer loop.
        let l = f.loop_of_inst(&cfg, 0).unwrap();
        assert!(!l.is_innermost());
    }
}
