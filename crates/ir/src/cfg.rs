//! Control-flow graph reconstruction from the binary, with dynamic edge
//! counts from the trace — the "Program IR" half of the TDG (paper §2.2:
//! "we augment the program IR with the CFG from binary analysis").

use std::collections::{BTreeSet, HashMap};

use prism_isa::{Program, StaticId};
use prism_sim::Trace;

/// Index of a basic block within a [`Cfg`].
pub type BlockId = u32;

/// A maximal straight-line sequence of static instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Block id (position in [`Cfg::blocks`]).
    pub id: BlockId,
    /// First static instruction.
    pub start: StaticId,
    /// Last static instruction (inclusive).
    pub end: StaticId,
    /// Successor blocks (static, from binary analysis).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
    /// Dynamic executions observed in the trace.
    pub exec_count: u64,
}

impl BasicBlock {
    /// Number of static instructions in the block.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.end - self.start + 1
    }

    /// Whether the block contains no instructions (never true for blocks
    /// produced by [`Cfg::build`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end < self.start
    }

    /// Iterates over the static instruction ids in the block.
    pub fn inst_ids(&self) -> impl Iterator<Item = StaticId> {
        self.start..=self.end
    }
}

/// The control-flow graph of a program, annotated with dynamic execution
/// counts.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in address order.
    pub blocks: Vec<BasicBlock>,
    /// Map from static instruction to containing block.
    pub block_of: Vec<BlockId>,
    /// Dynamic traversal counts of CFG edges.
    pub edge_counts: HashMap<(BlockId, BlockId), u64>,
}

impl Cfg {
    /// Reconstructs the CFG of `trace.program` and annotates it with the
    /// trace's dynamic block/edge counts.
    #[must_use]
    pub fn build(trace: &Trace) -> Self {
        let program = &trace.program;
        let mut cfg = Cfg::from_program(program);

        // Dynamic counts: count block entries and edge traversals.
        let mut prev_block: Option<BlockId> = None;
        for d in &trace.insts {
            let b = cfg.block_of[d.sid as usize];
            let is_block_start = d.sid == cfg.blocks[b as usize].start;
            if is_block_start {
                cfg.blocks[b as usize].exec_count += 1;
                if let Some(p) = prev_block {
                    *cfg.edge_counts.entry((p, b)).or_insert(0) += 1;
                }
            }
            prev_block = Some(b);
        }
        cfg
    }

    /// Reconstructs the static CFG only (no dynamic counts).
    #[must_use]
    pub fn from_program(program: &Program) -> Self {
        let n = program.len() as StaticId;
        // Leaders: entry, branch targets, and fall-throughs after control.
        let mut leaders: BTreeSet<StaticId> = BTreeSet::new();
        leaders.insert(0);
        for (i, inst) in program.insts.iter().enumerate() {
            let i = i as StaticId;
            if let Some(t) = inst.target() {
                leaders.insert(t);
                if i + 1 < n {
                    leaders.insert(i + 1);
                }
            } else if inst.op.is_control() && i + 1 < n {
                // ret / halt end a block too.
                leaders.insert(i + 1);
            }
        }

        let starts: Vec<StaticId> = leaders.into_iter().collect();
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(starts.len());
        let mut block_of = vec![0 as BlockId; n as usize];
        for (bi, &start) in starts.iter().enumerate() {
            let end = starts.get(bi + 1).map_or(n - 1, |next| next - 1);
            for i in start..=end {
                block_of[i as usize] = bi as BlockId;
            }
            blocks.push(BasicBlock {
                id: bi as BlockId,
                start,
                end,
                succs: Vec::new(),
                preds: Vec::new(),
                exec_count: 0,
            });
        }

        // Static successor edges.
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); blocks.len()];
        for b in &blocks {
            let last = program.inst(b.end);
            let add = |targets: &mut Vec<BlockId>, t: StaticId| {
                let tb = block_of[t as usize];
                if !targets.contains(&tb) {
                    targets.push(tb);
                }
            };
            if let Some(t) = last.target() {
                add(&mut succs[b.id as usize], t);
            }
            let falls_through = !matches!(
                last.op,
                prism_isa::Opcode::Jmp | prism_isa::Opcode::Halt | prism_isa::Opcode::Ret
            ) && !matches!(last.op, prism_isa::Opcode::Call);
            // Calls "fall through" to the return point as far as the local
            // CFG is concerned (the callee is a separate region).
            let falls_through = falls_through || last.op == prism_isa::Opcode::Call;
            if falls_through && b.end + 1 < n {
                add(&mut succs[b.id as usize], b.end + 1);
            }
        }
        for (bi, ss) in succs.into_iter().enumerate() {
            for s in &ss {
                blocks[*s as usize].preds.push(bi as BlockId);
            }
            blocks[bi].succs = ss;
        }

        Cfg {
            blocks,
            block_of,
            edge_counts: HashMap::new(),
        }
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The block containing static instruction `sid`.
    #[must_use]
    pub fn block_containing(&self, sid: StaticId) -> &BasicBlock {
        &self.blocks[self.block_of[sid as usize] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    /// if (r1 != 0) r2 = 1 else r2 = 2; then a loop.
    fn diamond_and_loop() -> prism_sim::Trace {
        let (r1, r2, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new("diamond");
        b.init_reg(r1, 1);
        b.init_reg(i, 5);
        let else_l = b.label();
        let join = b.label();
        b.beq_label(r1, Reg::ZERO, else_l); // B0: 0
        b.li(r2, 1); //                        B1: 1
        b.jmp_label(join); //                      2
        b.bind(else_l);
        b.li(r2, 2); //                        B2: 3
        b.bind(join);
        let head = b.bind_new_label(); //      B3: 4..5
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt(); //                           B4: 6
        prism_sim::trace(&b.build().unwrap()).unwrap()
    }

    #[test]
    fn blocks_partition_the_program() {
        let t = diamond_and_loop();
        let cfg = Cfg::build(&t);
        // Every instruction belongs to exactly one block; blocks tile.
        let mut covered = 0;
        for b in &cfg.blocks {
            covered += b.len();
            for i in b.inst_ids() {
                assert_eq!(cfg.block_of[i as usize], b.id);
            }
        }
        assert_eq!(covered as usize, t.program.len());
    }

    #[test]
    fn diamond_shape_recovered() {
        let t = diamond_and_loop();
        let cfg = Cfg::build(&t);
        let b0 = cfg.block_containing(0);
        assert_eq!(
            b0.succs.len(),
            2,
            "conditional entry block has two successors"
        );
        // The join/loop block has multiple preds (then, else, and itself).
        let loop_block = cfg.block_containing(4);
        assert!(loop_block.preds.len() >= 2);
        assert!(loop_block.succs.contains(&loop_block.id), "self loop edge");
    }

    #[test]
    fn dynamic_counts_follow_taken_path() {
        let t = diamond_and_loop();
        let cfg = Cfg::build(&t);
        // r1 = 1 ⇒ the not-taken (then) path runs, else-block never.
        let then_block = cfg.block_containing(1);
        let else_block = cfg.block_containing(3);
        assert_eq!(then_block.exec_count, 1);
        assert_eq!(else_block.exec_count, 0);
        let loop_block = cfg.block_containing(4);
        assert_eq!(loop_block.exec_count, 5);
        // Back edge traversed 4 times.
        assert_eq!(
            cfg.edge_counts
                .get(&(loop_block.id, loop_block.id))
                .copied(),
            Some(4)
        );
    }

    #[test]
    fn straightline_program_single_block_until_halt() {
        let mut b = ProgramBuilder::new("line");
        b.li(Reg::int(1), 1);
        b.li(Reg::int(2), 2);
        b.add(Reg::int(3), Reg::int(1), Reg::int(2));
        b.halt();
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let cfg = Cfg::build(&t);
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.blocks[0].len(), 4);
    }

    #[test]
    fn call_splits_blocks() {
        let lr = Reg::int(31);
        let mut b = ProgramBuilder::new("call");
        let f = b.label();
        b.call_label(lr, f);
        b.halt();
        b.bind(f);
        b.ret(lr);
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let cfg = Cfg::build(&t);
        assert!(cfg.len() >= 3);
    }
}
