//! Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::{BlockId, Cfg};

/// Immediate-dominator tree over a [`Cfg`].
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of `b`; entry's idom is itself.
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Computes dominators with block 0 as the entry.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.len();
        // Reverse postorder of the CFG.
        let mut visited = vec![false; n];
        let mut postorder: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = &cfg.blocks[b as usize].succs;
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s as usize] {
                    visited[s as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in postorder.iter().rev().enumerate() {
            rpo_index[b as usize] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(0);
        let intersect =
            |idom: &[Option<BlockId>], rpo: &[usize], mut a: BlockId, mut b: BlockId| {
                while a != b {
                    while rpo[a as usize] > rpo[b as usize] {
                        a = idom[a as usize].expect("processed");
                    }
                    while rpo[b as usize] > rpo[a as usize] {
                        b = idom[b as usize].expect("processed");
                    }
                }
                a
            };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in postorder.iter().rev() {
                if b == 0 {
                    continue;
                }
                let preds = &cfg.blocks[b as usize].preds;
                let mut new_idom: Option<BlockId> = None;
                for &p in preds {
                    if idom[p as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b as usize] != new_idom {
                    idom[b as usize] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// Immediate dominator of `b` (`None` if `b` is unreachable; the entry
    /// dominates itself).
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b as usize]
    }

    /// Whether `a` dominates `b` (reflexive).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b as usize].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = match self.idom[cur as usize] {
                Some(d) => d,
                None => return false,
            };
            if next == cur {
                return false; // reached the entry
            }
            cur = next;
        }
    }

    /// Whether `b` is reachable from the entry.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b as usize].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    fn cfg_of(build: impl FnOnce(&mut ProgramBuilder)) -> Cfg {
        let mut b = ProgramBuilder::new("t");
        build(&mut b);
        Cfg::from_program(&b.build().unwrap())
    }

    #[test]
    fn diamond_dominators() {
        // B0 → {B1, B2} → B3(halt)
        let cfg = cfg_of(|b| {
            let else_l = b.label();
            let join = b.label();
            b.beq_label(Reg::int(1), Reg::ZERO, else_l);
            b.li(Reg::int(2), 1);
            b.jmp_label(join);
            b.bind(else_l);
            b.li(Reg::int(2), 2);
            b.bind(join);
            b.halt();
        });
        let dom = Dominators::compute(&cfg);
        let entry = 0;
        let join = cfg.block_containing(cfg.blocks.last().unwrap().start).id;
        assert!(dom.dominates(entry, join));
        // Neither branch arm dominates the join.
        assert_eq!(dom.idom(join), Some(entry));
        for b in 1..cfg.len() as BlockId {
            assert!(
                dom.dominates(entry, b),
                "entry dominates everything reachable"
            );
        }
    }

    #[test]
    fn loop_header_dominates_body() {
        let cfg = cfg_of(|b| {
            let (i, x) = (Reg::int(1), Reg::int(2));
            let head = b.bind_new_label();
            let skip = b.label();
            b.beq_label(x, Reg::ZERO, skip);
            b.addi(x, x, 1);
            b.bind(skip);
            b.addi(i, i, -1);
            b.bne_label(i, Reg::ZERO, head);
            b.halt();
        });
        let dom = Dominators::compute(&cfg);
        let header = 0;
        // All loop blocks are dominated by the header.
        for b in 0..cfg.len() as BlockId {
            if cfg.blocks[b as usize].succs.contains(&header) {
                assert!(
                    dom.dominates(header, b),
                    "back-edge source dominated by header"
                );
            }
        }
    }

    #[test]
    fn unreachable_block_flagged() {
        let cfg = cfg_of(|b| {
            let end = b.label();
            b.jmp_label(end);
            b.li(Reg::int(1), 9); // dead
            b.bind(end);
            b.halt();
        });
        let dom = Dominators::compute(&cfg);
        let dead = cfg.block_containing(1).id;
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(0, dead));
    }

    #[test]
    fn reflexive_domination() {
        let cfg = cfg_of(|b| {
            b.li(Reg::int(1), 1);
            b.halt();
        });
        let dom = Dominators::compute(&cfg);
        assert!(dom.dominates(0, 0));
    }
}
