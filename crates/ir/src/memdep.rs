//! Memory-access analysis for inner loops: per-op stride detection and
//! dynamic loop-carried dependence detection.
//!
//! The paper's SIMD analyzer: "memory-dependences between loop iterations
//! can be detected by tracking per-iteration memory addresses in
//! consecutive iterations" (§3.2), and §2.7 notes this dynamic approach is
//! optimistic — so is this one.

use std::collections::HashMap;

use prism_isa::StaticId;
use prism_sim::Trace;

use crate::{Cfg, LoopForest, LoopId};

/// Classification of one static memory op's address stream across the
/// iterations of its loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Same address every iteration.
    Constant,
    /// Affine: address advances by a fixed stride per iteration.
    Strided {
        /// Per-iteration address delta in bytes.
        stride: i64,
    },
    /// No consistent stride (indexed/pointer-chasing access).
    Irregular,
}

impl AccessPattern {
    /// Whether consecutive iterations touch adjacent elements (contiguous
    /// vector access, |stride| == access width).
    #[must_use]
    pub fn is_contiguous(&self, width: u8) -> bool {
        matches!(self, AccessPattern::Strided { stride } if stride.unsigned_abs() == u64::from(width))
    }
}

/// Memory behavior of one innermost loop.
#[derive(Debug, Clone, Default)]
pub struct LoopMemInfo {
    /// Pattern per static memory instruction in the loop.
    pub patterns: HashMap<StaticId, AccessPattern>,
    /// Whether a load in one iteration read an address stored by an
    /// *earlier* iteration (true loop-carried dependence).
    pub loop_carried_dep: bool,
    /// Whether two different iterations stored to the same address
    /// (output dependence; a memory-reduction pattern).
    pub loop_carried_output_dep: bool,
    /// Dynamic loads / stores observed inside the loop.
    pub loads: u64,
    /// Dynamic stores observed inside the loop.
    pub stores: u64,
}

impl LoopMemInfo {
    /// Whether the loop is free of cross-iteration memory dependences
    /// (the SIMD legality condition).
    #[must_use]
    pub fn vectorizable_memory(&self) -> bool {
        !self.loop_carried_dep && !self.loop_carried_output_dep
    }

    /// The pattern for a static op, defaulting to irregular if unseen.
    #[must_use]
    pub fn pattern(&self, sid: StaticId) -> AccessPattern {
        self.patterns
            .get(&sid)
            .copied()
            .unwrap_or(AccessPattern::Irregular)
    }
}

#[derive(Debug, Default)]
struct PerOpState {
    last_addr: Option<u64>,
    stride: Option<i64>,
    consistent: bool,
    seen: u64,
}

#[derive(Debug, Default)]
struct PerLoopState {
    ops: HashMap<StaticId, PerOpState>,
    /// addr(8B word) → iteration of the last store.
    stores: HashMap<u64, u64>,
    iter: u64,
    info: LoopMemInfo,
}

/// Analyzes memory behavior of all innermost loops in one trace pass.
#[must_use]
pub fn analyze_memory(
    cfg: &Cfg,
    forest: &LoopForest,
    trace: &Trace,
) -> HashMap<LoopId, LoopMemInfo> {
    let mut states: HashMap<LoopId, PerLoopState> = forest
        .innermost()
        .map(|l| (l.id, PerLoopState::default()))
        .collect();
    let mut active: Option<LoopId> = None;

    for d in &trace.insts {
        let b = cfg.block_of[d.sid as usize];
        let in_loop =
            forest.loop_of_block[b as usize].filter(|&l| forest.loops[l as usize].is_innermost());

        // Maintain the loop context and iteration counter.
        if d.sid == cfg.blocks[b as usize].start {
            match (active, in_loop) {
                (Some(cur), Some(l)) if cur == l => {
                    if forest.loops[l as usize].header == b {
                        let st = states.get_mut(&l).expect("tracked");
                        st.iter += 1;
                    }
                }
                (_, Some(l)) => {
                    // (Re-)entered a loop: reset per-invocation state.
                    let st = states.get_mut(&l).expect("tracked");
                    st.stores.clear();
                    st.iter = 0;
                    for op in st.ops.values_mut() {
                        op.last_addr = None;
                    }
                    active = Some(l);
                }
                (Some(_), None) => active = None,
                (None, None) => {}
            }
        }

        let Some(l) = active else { continue };
        let Some(m) = &d.mem else { continue };
        let st = states.get_mut(&l).expect("tracked");

        // Stride detection per static op.
        let op = st.ops.entry(d.sid).or_default();
        if let Some(last) = op.last_addr {
            let delta = m.addr as i64 - last as i64;
            match op.stride {
                None => {
                    op.stride = Some(delta);
                    op.consistent = true;
                }
                Some(s) if s == delta => {}
                Some(_) => op.consistent = false,
            }
        }
        op.last_addr = Some(m.addr);
        op.seen += 1;

        // Loop-carried dependence detection at word granularity.
        let first = m.addr >> 3;
        let last = (m.addr + u64::from(m.width.max(1)) - 1) >> 3;
        if m.is_store {
            st.info.stores += 1;
            for w in first..=last {
                if let Some(prev_iter) = st.stores.insert(w, st.iter) {
                    if prev_iter != st.iter {
                        st.info.loop_carried_output_dep = true;
                    }
                }
            }
        } else {
            st.info.loads += 1;
            for w in first..=last {
                if let Some(&store_iter) = st.stores.get(&w) {
                    if store_iter != st.iter {
                        st.info.loop_carried_dep = true;
                    }
                }
            }
        }
    }

    states
        .into_iter()
        .map(|(lid, mut st)| {
            for (sid, op) in st.ops {
                let pattern = match (op.stride, op.consistent) {
                    (Some(0), true) => AccessPattern::Constant,
                    (Some(s), true) => AccessPattern::Strided { stride: s },
                    (None, _) => AccessPattern::Constant, // seen once
                    _ => AccessPattern::Irregular,
                };
                st.info.patterns.insert(sid, pattern);
            }
            (lid, st.info)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dominators;
    use prism_isa::{ProgramBuilder, Reg};

    fn analyze(t: &Trace) -> (LoopForest, HashMap<LoopId, LoopMemInfo>) {
        let cfg = Cfg::build(t);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::build(&cfg, &dom, t);
        let mem = analyze_memory(&cfg, &forest, t);
        (forest, mem)
    }

    #[test]
    fn streaming_loop_is_strided_and_independent() {
        // b[i] = a[i] + 1
        let (pa, pb, i, x) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let mut b = ProgramBuilder::new("stream");
        b.init_reg(pa, 0x1000);
        b.init_reg(pb, 0x8000);
        b.init_reg(i, 20);
        let head = b.bind_new_label();
        b.ld(x, pa, 0);
        b.addi(x, x, 1);
        b.st(x, pb, 0);
        b.addi(pa, pa, 8);
        b.addi(pb, pb, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let (f, mem) = analyze(&t);
        let info = &mem[&f.innermost().next().unwrap().id];
        assert!(info.vectorizable_memory());
        assert_eq!(info.pattern(0), AccessPattern::Strided { stride: 8 });
        assert!(info.pattern(0).is_contiguous(8));
        assert_eq!(info.pattern(2), AccessPattern::Strided { stride: 8 });
        assert_eq!(info.loads, 20);
        assert_eq!(info.stores, 20);
    }

    #[test]
    fn recurrence_detected_as_loop_carried() {
        // a[i] = a[i-1] + 1 : load reads the previous iteration's store.
        let (p, i, x) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new("recur");
        b.init_reg(p, 0x1000);
        b.init_reg(i, 20);
        let head = b.bind_new_label();
        b.ld(x, p, -8);
        b.addi(x, x, 1);
        b.st(x, p, 0);
        b.addi(p, p, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let (f, mem) = analyze(&t);
        let info = &mem[&f.innermost().next().unwrap().id];
        assert!(info.loop_carried_dep);
        assert!(!info.vectorizable_memory());
    }

    #[test]
    fn histogram_store_is_output_dep() {
        // hist[x % 4] += 1 with x cycling: same slots stored repeatedly.
        let (ph, i, idx, v) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let mut b = ProgramBuilder::new("hist");
        b.init_reg(ph, 0x1000);
        b.init_reg(i, 16);
        let head = b.bind_new_label();
        b.andi(idx, i, 3);
        b.shli(idx, idx, 3);
        b.add(idx, idx, ph);
        b.ld(v, idx, 0);
        b.addi(v, v, 1);
        b.st(v, idx, 0);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let (f, mem) = analyze(&t);
        let info = &mem[&f.innermost().next().unwrap().id];
        assert!(info.loop_carried_output_dep);
        assert!(info.loop_carried_dep); // loads also read prior iterations' stores
    }

    #[test]
    fn constant_address_pattern() {
        let (p, i, x) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let mut b = ProgramBuilder::new("const");
        b.init_reg(p, 0x1000);
        b.init_reg(i, 10);
        let head = b.bind_new_label();
        b.ld(x, p, 0); // same address each iteration
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        let t = prism_sim::trace(&b.build().unwrap()).unwrap();
        let (f, mem) = analyze(&t);
        let info = &mem[&f.innermost().next().unwrap().id];
        assert_eq!(info.pattern(0), AccessPattern::Constant);
    }
}
