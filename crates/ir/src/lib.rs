//! # prism-ir
//!
//! Program-IR reconstruction for the Prism TDG framework — the compiler
//! side of the TDG from *Analyzing Behavior Specialized Acceleration*
//! (ASPLOS 2016, §2).
//!
//! The TDG pairs the µDG with "a Program IR (typically a standard DFG +
//! CFG) which has a one-to-one mapping with µDG nodes", reconstructed from
//! the binary and the trace. This crate builds that IR:
//!
//! * [`Cfg`] — basic blocks and control edges with dynamic counts,
//! * [`Dominators`] — immediate-dominator tree,
//! * [`LoopForest`] — natural loops, nesting, trip counts,
//! * [`profile_paths`] — Ball–Larus-style per-loop path profiles,
//! * [`analyze_memory`] — per-op strides and loop-carried memory
//!   dependences (dynamic, optimistic — the paper's §2.7 caveat),
//! * [`classify_loop_registers`] — induction/reduction/cross-iteration
//!   classification of back-edge-carried registers.
//!
//! [`ProgramIr::analyze`] runs the whole stack and is what the TDG
//! analyzers in `prism-tdg` consume.
//!
//! # Examples
//!
//! ```
//! use prism_isa::{ProgramBuilder, Reg};
//! use prism_ir::ProgramIr;
//!
//! let (p, i, sum, x) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
//! let mut b = ProgramBuilder::new("sum");
//! b.init_reg(p, 0x1000);
//! b.init_reg(i, 32);
//! let head = b.bind_new_label();
//! b.ld(x, p, 0);
//! b.add(sum, sum, x);
//! b.addi(p, p, 8);
//! b.addi(i, i, -1);
//! b.bne_label(i, Reg::ZERO, head);
//! b.halt();
//! let trace = prism_sim::trace(&b.build()?)?;
//! let ir = ProgramIr::analyze(&trace);
//! assert_eq!(ir.loops.len(), 1);
//! let l = ir.loops.innermost().next().unwrap();
//! assert!(ir.mem[&l.id].vectorizable_memory());
//! assert!(ir.regs[&l.id].vectorizable_dataflow());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod cfg;
mod dom;
mod loops;
mod memdep;
mod paths;
mod regdep;
mod spills;

use std::collections::HashMap;

pub use cfg::{BasicBlock, BlockId, Cfg};
pub use dom::Dominators;
pub use loops::{Loop, LoopForest, LoopId};
pub use memdep::{analyze_memory, AccessPattern, LoopMemInfo};
pub use paths::{profile_paths, PathProfile};
pub use regdep::{classify_loop_registers, CarriedClass, LoopRegInfo};
pub use spills::{find_spills, SpillPair};

/// The complete reconstructed IR of a traced execution.
#[derive(Debug, Clone)]
pub struct ProgramIr {
    /// The analyzed program (owned copy, so analyzer passes can read
    /// opcodes without holding the trace).
    pub program: prism_isa::Program,
    /// Control-flow graph with dynamic counts.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: Dominators,
    /// Natural loops with dynamic statistics.
    pub loops: LoopForest,
    /// Path profile per innermost loop.
    pub paths: HashMap<LoopId, PathProfile>,
    /// Memory behavior per innermost loop.
    pub mem: HashMap<LoopId, LoopMemInfo>,
    /// Register dataflow classification per innermost loop.
    pub regs: HashMap<LoopId, LoopRegInfo>,
}

impl ProgramIr {
    /// Runs the full analysis stack over a trace.
    ///
    /// This is the one consumer in the streaming architecture that
    /// genuinely needs a *materialized* [`prism_sim::Trace`]: Ball–Larus
    /// path profiling and the loop analyses make multiple random-access
    /// passes over the full dynamic stream. Chunked producers
    /// ([`prism_sim::TraceSource`]) should `materialize()` (or accumulate
    /// chunks) before calling this.
    #[must_use]
    pub fn analyze(trace: &prism_sim::Trace) -> Self {
        let cfg = Cfg::build(trace);
        let dom = Dominators::compute(&cfg);
        let loops = LoopForest::build(&cfg, &dom, trace);
        let paths = profile_paths(&cfg, &loops, trace);
        let mem = analyze_memory(&cfg, &loops, trace);
        let regs = loops
            .innermost()
            .map(|l| (l.id, classify_loop_registers(&trace.program, &cfg, l)))
            .collect();
        ProgramIr {
            program: trace.program.clone(),
            cfg,
            dom,
            loops,
            paths,
            mem,
            regs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    #[test]
    fn full_stack_on_nested_branchy_program() {
        let (i, j, t, acc) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let mut b = ProgramBuilder::new("nest");
        b.init_reg(i, 6);
        let oh = b.bind_new_label();
        b.li(j, 8);
        let ih = b.bind_new_label();
        let skip = b.label();
        b.andi(t, j, 1);
        b.beq_label(t, Reg::ZERO, skip);
        b.addi(acc, acc, 3);
        b.bind(skip);
        b.addi(j, j, -1);
        b.bne_label(j, Reg::ZERO, ih);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, oh);
        b.halt();
        let trace = prism_sim::trace(&b.build().unwrap()).unwrap();
        let ir = ProgramIr::analyze(&trace);

        assert_eq!(ir.loops.len(), 2);
        let inner = ir.loops.innermost().next().unwrap();
        assert_eq!(inner.iterations, 48);
        let prof = &ir.paths[&inner.id];
        assert_eq!(prof.paths.len(), 2);
        assert!((prof.hot_path_fraction() - 0.5).abs() < 1e-9);
        // Both analyses present for the inner loop only.
        assert!(ir.regs.contains_key(&inner.id));
        let outer_id = ir
            .loops
            .loops
            .iter()
            .find(|l| !l.is_innermost())
            .unwrap()
            .id;
        assert!(!ir.regs.contains_key(&outer_id));
    }
}
