//! Set-associative cache and the two-level hierarchy of the paper's
//! methodology (§4): 2-way 32 KiB L1I, 2-way 64 KiB L1D (4-cycle), 8-way
//! 2 MiB unified L2 (22-cycle hit).

/// Geometry and hit latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// The paper's L1 instruction cache: 2-way 32 KiB, 4-cycle.
    #[must_use]
    pub fn l1i() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 4,
        }
    }

    /// The paper's L1 data cache: 2-way 64 KiB, 4-cycle.
    #[must_use]
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 4,
        }
    }

    /// The paper's unified L2: 8-way 2 MiB, 22-cycle hit.
    #[must_use]
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 2 * 1024 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency: 22,
        }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> u64 {
        self.size_bytes / u64::from(self.ways) / u64::from(self.line_bytes)
    }
}

/// An LRU set-associative cache over line tags (no data storage).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets × ways` tags; `u64::MAX` = invalid. Lower index = more recent.
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.ways > 0 && config.sets() > 0,
            "degenerate cache geometry"
        );
        Cache {
            config,
            tags: vec![u64::MAX; (config.sets() * u64::from(config.ways)) as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// This cache's configuration.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// (hits, misses) observed so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Accesses `addr`; returns `true` on hit. Allocates on miss
    /// (write-allocate for stores as well).
    pub fn access(&mut self, addr: u64) -> bool {
        let hit = self.touch(addr);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Installs `addr`'s line without counting demand statistics
    /// (prefetch path).
    pub fn prefetch(&mut self, addr: u64) {
        let _ = self.touch(addr);
    }

    fn touch(&mut self, addr: u64) -> bool {
        let line = addr / u64::from(self.config.line_bytes);
        let set = (line % self.config.sets()) as usize;
        let ways = self.config.ways as usize;
        let base = set * ways;
        let slots = &mut self.tags[base..base + ways];
        if let Some(pos) = slots.iter().position(|&t| t == line) {
            // Move to MRU position.
            slots[..=pos].rotate_right(1);
            true
        } else {
            slots.rotate_right(1);
            slots[0] = line;
            false
        }
    }
}

/// Per-access outcome of a hierarchy lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// Hit in the first-level cache.
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed everything; served from DRAM.
    Dram,
}

/// Per-pc stride-prefetcher entry.
#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// A per-pc stride prefetcher, as present in every modern core (and in the
/// gem5 configurations such studies use). On a confident stride it pulls
/// the next `degree` lines into the hierarchy, so streaming loads hit after
/// warmup while irregular accesses still pay full miss latency.
#[derive(Debug, Clone)]
struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: u32,
}

impl StridePrefetcher {
    fn new(entries: usize, degree: u32) -> Self {
        StridePrefetcher {
            table: vec![StrideEntry::default(); entries],
            degree,
        }
    }

    /// Observes an access; returns prefetch addresses to install.
    fn observe(&mut self, pc: u32, addr: u64, line_bytes: u32) -> Vec<u64> {
        let degree = i64::from(self.degree);
        let idx = (pc as usize) % self.table.len();
        let e = &mut self.table[idx];
        let stride = addr as i64 - e.last_addr as i64;
        if e.last_addr != 0 && stride == e.stride && stride != 0 {
            e.confidence = (e.confidence + 1).min(3);
        } else if e.last_addr != 0 {
            e.confidence = e.confidence.saturating_sub(1);
            if e.confidence == 0 {
                e.stride = stride;
            }
        } else {
            e.stride = stride;
        }
        e.last_addr = addr;
        if e.confidence >= 2 && e.stride != 0 {
            // Step a whole line per prefetch for small strides, or the
            // stride itself when it already skips lines.
            let step = if e.stride.unsigned_abs() >= u64::from(line_bytes) {
                e.stride
            } else {
                i64::from(line_bytes) * e.stride.signum()
            };
            (1..=degree)
                .map(|k| addr.wrapping_add_signed(step * k))
                .collect()
        } else {
            Vec::new()
        }
    }
}

/// Two-level data hierarchy with a flat DRAM latency behind it and a
/// per-pc stride prefetcher in front.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1: Cache,
    l2: Cache,
    dram_latency: u32,
    prefetcher: Option<StridePrefetcher>,
}

/// Default DRAM access latency in cycles.
pub const DEFAULT_DRAM_LATENCY: u32 = 120;

impl MemoryHierarchy {
    /// Creates the paper's default data-side hierarchy (with prefetcher).
    #[must_use]
    pub fn data_default() -> Self {
        MemoryHierarchy::new(CacheConfig::l1d(), CacheConfig::l2(), DEFAULT_DRAM_LATENCY)
    }

    /// Creates a hierarchy from explicit level configurations, with a
    /// degree-4 stride prefetcher.
    #[must_use]
    pub fn new(l1: CacheConfig, l2: CacheConfig, dram_latency: u32) -> Self {
        MemoryHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            dram_latency,
            prefetcher: Some(StridePrefetcher::new(256, 4)),
        }
    }

    /// Creates a hierarchy without a prefetcher (for cache-behavior tests).
    #[must_use]
    pub fn without_prefetcher(l1: CacheConfig, l2: CacheConfig, dram_latency: u32) -> Self {
        MemoryHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            dram_latency,
            prefetcher: None,
        }
    }

    /// Performs a demand access from static instruction `pc` and returns
    /// `(latency_cycles, level)`.
    pub fn access(&mut self, addr: u64, pc: u32) -> (u32, MemLevel) {
        let result = if self.l1.access(addr) {
            (self.l1.config().hit_latency, MemLevel::L1)
        } else if self.l2.access(addr) {
            (
                self.l1.config().hit_latency + self.l2.config().hit_latency,
                MemLevel::L2,
            )
        } else {
            (
                self.l1.config().hit_latency + self.l2.config().hit_latency + self.dram_latency,
                MemLevel::Dram,
            )
        };
        let line = self.l1.config().line_bytes;
        if let Some(pf) = &mut self.prefetcher {
            for pf_addr in pf.observe(pc, addr, line) {
                // Prefetches install lines without affecting demand stats.
                self.l1.prefetch(pf_addr);
                self.l2.prefetch(pf_addr);
            }
        }
        result
    }

    /// (L1 stats, L2 stats) as (hits, misses) pairs — demand accesses only.
    #[must_use]
    pub fn stats(&self) -> ((u64, u64), (u64, u64)) {
        (self.l1.stats(), self.l2.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::l1d().sets(), 512);
        assert_eq!(CacheConfig::l1i().sets(), 256);
        assert_eq!(CacheConfig::l2().sets(), 4096);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1038)); // same 64B line
        assert!(!c.access(0x1040)); // next line
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn lru_eviction_within_set() {
        // Tiny direct test: 2 ways, 1 set.
        let cfg = CacheConfig {
            size_bytes: 128,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        let mut c = Cache::new(cfg);
        assert!(!c.access(0)); // A miss
        assert!(!c.access(64)); // B miss
        assert!(c.access(0)); // A hit → A is MRU
        assert!(!c.access(128)); // C evicts B (LRU)
        assert!(c.access(0)); // A still resident
        assert!(!c.access(64)); // B was evicted
    }

    #[test]
    fn hierarchy_latencies_stack() {
        let mut h = MemoryHierarchy::data_default();
        let (lat, lvl) = h.access(0x8000, 0);
        assert_eq!(lvl, MemLevel::Dram);
        assert_eq!(lat, 4 + 22 + DEFAULT_DRAM_LATENCY);
        let (lat, lvl) = h.access(0x8000, 0);
        assert_eq!(lvl, MemLevel::L1);
        assert_eq!(lat, 4);
    }

    #[test]
    fn l2_serves_l1_victims() {
        // Thrash two lines mapping to the same L1 set but fitting in L2.
        let l1 = CacheConfig {
            size_bytes: 128,
            ways: 1,
            line_bytes: 64,
            hit_latency: 4,
        };
        let l2 = CacheConfig {
            size_bytes: 4096,
            ways: 8,
            line_bytes: 64,
            hit_latency: 22,
        };
        let mut h = MemoryHierarchy::without_prefetcher(l1, l2, 100);
        h.access(0, 0); // cold
        h.access(128, 0); // evicts 0 from L1 (same set), cold in L2
        let (lat, lvl) = h.access(0, 0);
        assert_eq!(lvl, MemLevel::L2);
        assert_eq!(lat, 26);
    }

    #[test]
    fn stride_prefetcher_covers_streaming_loads() {
        let mut h = MemoryHierarchy::data_default();
        // Simulate a streaming load (same pc, 8B stride). After warmup the
        // prefetcher should turn line-crossing misses into hits.
        let mut dram = 0;
        for i in 0..512u64 {
            let (_, lvl) = h.access(0x10_0000 + i * 8, 7);
            if lvl == MemLevel::Dram {
                dram += 1;
            }
        }
        // 512 loads cover 64 lines; without prefetching that is 64 misses.
        assert!(dram < 8, "prefetcher ineffective: {dram} DRAM accesses");
    }

    #[test]
    fn irregular_accesses_not_prefetched() {
        let mut h = MemoryHierarchy::data_default();
        // Pseudo-random pointer chase over a 16 MiB footprint.
        let mut x: u64 = 12345;
        let mut dram = 0;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = 0x100_0000 + (x % (16 * 1024 * 1024));
            let (_, lvl) = h.access(addr, 9);
            if lvl == MemLevel::Dram {
                dram += 1;
            }
        }
        assert!(dram > 150, "random accesses should mostly miss: {dram}");
    }
}
