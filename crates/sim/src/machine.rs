//! Architectural state and the functional step executor.

use std::fmt;

use prism_isa::{Inst, Opcode, Program, Reg, StaticId, NUM_REGS};

use crate::Memory;

/// Outcome of executing one instruction functionally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEffect {
    /// The executed static instruction.
    pub sid: StaticId,
    /// The next program counter.
    pub next_pc: StaticId,
    /// Memory access performed, if any.
    pub mem: Option<MemEffect>,
    /// Control outcome, for any control-transfer instruction.
    pub control: Option<ControlEffect>,
    /// Whether this instruction halts the machine.
    pub halted: bool,
}

/// A memory access performed by a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEffect {
    /// Effective byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u8,
    /// `true` for stores.
    pub is_store: bool,
}

/// Control-transfer outcome of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlEffect {
    /// Whether a conditional branch was taken (always `true` for
    /// unconditional transfers).
    pub taken: bool,
    /// The resolved target (== `next_pc` when taken).
    pub target: StaticId,
    /// `true` for `ret` (indirect target, predicted via a return stack).
    pub is_return: bool,
    /// `true` for `call`.
    pub is_call: bool,
}

/// Errors the functional executor can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter ran past the end of the program.
    PcOutOfRange(StaticId),
    /// An instruction used an opcode the executor cannot run (transform-only
    /// ops never execute functionally).
    Unexecutable(StaticId, Opcode),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::PcOutOfRange(pc) => write!(f, "pc {pc} out of range"),
            ExecError::Unexecutable(pc, op) => {
                write!(f, "instruction {pc}: opcode {op} is not executable")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Architectural machine state: registers, pc, and memory.
///
/// The machine executes the authored subset of the ISA functionally; it
/// knows nothing about timing — caches and predictors observe its
/// [`StepEffect`]s from the outside.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [i64; NUM_REGS as usize],
    pc: StaticId,
    /// Data memory.
    pub mem: Memory,
    halted: bool,
}

impl Machine {
    /// Creates a machine initialized from `program`'s register and data
    /// initializers, with the pc at instruction 0.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut m = Machine {
            regs: [0; NUM_REGS as usize],
            pc: 0,
            mem: Memory::new(),
            halted: false,
        };
        for &(reg, val) in &program.reg_init {
            m.set_reg(reg, val);
        }
        for seg in &program.data {
            m.mem.write_bytes(seg.addr, &seg.bytes);
        }
        m
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> StaticId {
        self.pc
    }

    /// Whether a `halt` has executed.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Reads an integer or FP register as raw bits.
    #[must_use]
    pub fn reg(&self, r: Reg) -> i64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Reads an FP register as `f64`.
    #[must_use]
    pub fn freg(&self, r: Reg) -> f64 {
        f64::from_bits(self.reg(r) as u64)
    }

    /// Writes a register (writes to `r0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: i64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Writes an FP register from an `f64`.
    pub fn set_freg(&mut self, r: Reg, value: f64) {
        self.set_reg(r, value.to_bits() as i64);
    }

    fn s1(&self, inst: &Inst) -> i64 {
        inst.src1.map_or(0, |r| self.reg(r))
    }

    fn s2(&self, inst: &Inst) -> i64 {
        inst.src2.map_or(0, |r| self.reg(r))
    }

    fn f1(&self, inst: &Inst) -> f64 {
        inst.src1.map_or(0.0, |r| self.freg(r))
    }

    fn f2(&self, inst: &Inst) -> f64 {
        inst.src2.map_or(0.0, |r| self.freg(r))
    }

    /// Executes one instruction and advances the pc.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the pc is out of range or the opcode is not
    /// functionally executable.
    pub fn step(&mut self, program: &Program) -> Result<StepEffect, ExecError> {
        if self.halted {
            return Err(ExecError::PcOutOfRange(self.pc));
        }
        let sid = self.pc;
        let inst = *program
            .insts
            .get(sid as usize)
            .ok_or(ExecError::PcOutOfRange(sid))?;
        let fallthrough = sid + 1;
        let mut next_pc = fallthrough;
        let mut mem = None;
        let mut control = None;
        let mut halted = false;

        use Opcode::*;
        match inst.op {
            Add => self.wd(&inst, self.s1(&inst).wrapping_add(self.s2(&inst))),
            Sub => self.wd(&inst, self.s1(&inst).wrapping_sub(self.s2(&inst))),
            And => self.wd(&inst, self.s1(&inst) & self.s2(&inst)),
            Or => self.wd(&inst, self.s1(&inst) | self.s2(&inst)),
            Xor => self.wd(&inst, self.s1(&inst) ^ self.s2(&inst)),
            Shl => self.wd(
                &inst,
                self.s1(&inst).wrapping_shl(self.s2(&inst) as u32 & 63),
            ),
            Shr => self.wd(
                &inst,
                ((self.s1(&inst) as u64) >> (self.s2(&inst) as u32 & 63)) as i64,
            ),
            Sra => self.wd(&inst, self.s1(&inst) >> (self.s2(&inst) as u32 & 63)),
            Slt => self.wd(&inst, i64::from(self.s1(&inst) < self.s2(&inst))),
            AddI => self.wd(&inst, self.s1(&inst).wrapping_add(inst.imm)),
            AndI => self.wd(&inst, self.s1(&inst) & inst.imm),
            OrI => self.wd(&inst, self.s1(&inst) | inst.imm),
            XorI => self.wd(&inst, self.s1(&inst) ^ inst.imm),
            ShlI => self.wd(&inst, self.s1(&inst).wrapping_shl(inst.imm as u32 & 63)),
            ShrI => self.wd(
                &inst,
                ((self.s1(&inst) as u64) >> (inst.imm as u32 & 63)) as i64,
            ),
            SraI => self.wd(&inst, self.s1(&inst) >> (inst.imm as u32 & 63)),
            SltI => self.wd(&inst, i64::from(self.s1(&inst) < inst.imm)),
            Li => self.wd(&inst, inst.imm),
            Mov => self.wd(&inst, self.s1(&inst)),
            Mul => self.wd(&inst, self.s1(&inst).wrapping_mul(self.s2(&inst))),
            Div => {
                let d = self.s2(&inst);
                self.wd(
                    &inst,
                    if d == 0 {
                        -1
                    } else {
                        self.s1(&inst).wrapping_div(d)
                    },
                );
            }
            Rem => {
                let d = self.s2(&inst);
                self.wd(
                    &inst,
                    if d == 0 {
                        self.s1(&inst)
                    } else {
                        self.s1(&inst).wrapping_rem(d)
                    },
                );
            }
            FAdd => self.wf(&inst, self.f1(&inst) + self.f2(&inst)),
            FSub => self.wf(&inst, self.f1(&inst) - self.f2(&inst)),
            FMul => self.wf(&inst, self.f1(&inst) * self.f2(&inst)),
            FDiv => self.wf(&inst, self.f1(&inst) / self.f2(&inst)),
            FSqrt => self.wf(&inst, self.f1(&inst).sqrt()),
            FMin => self.wf(&inst, self.f1(&inst).min(self.f2(&inst))),
            FMax => self.wf(&inst, self.f1(&inst).max(self.f2(&inst))),
            FNeg => self.wf(&inst, -self.f1(&inst)),
            FAbs => self.wf(&inst, self.f1(&inst).abs()),
            FLt => self.wd(&inst, i64::from(self.f1(&inst) < self.f2(&inst))),
            FLe => self.wd(&inst, i64::from(self.f1(&inst) <= self.f2(&inst))),
            FEq => self.wd(&inst, i64::from(self.f1(&inst) == self.f2(&inst))),
            CvtIF => self.wf(&inst, self.s1(&inst) as f64),
            CvtFI => self.wd(&inst, self.f1(&inst) as i64),
            FMov => self.wf(&inst, self.f1(&inst)),
            FLi => self.wd(&inst, inst.imm),
            Ld => {
                let addr = (self.s1(&inst) as u64).wrapping_add(inst.imm as u64);
                let raw = self.mem.read_uint(addr, inst.width);
                // Sign-extend sub-word loads.
                let shift = 64 - 8 * u32::from(inst.width);
                let val = ((raw << shift) as i64) >> shift;
                self.wd(&inst, val);
                mem = Some(MemEffect {
                    addr,
                    width: inst.width,
                    is_store: false,
                });
            }
            FLd => {
                let addr = (self.s1(&inst) as u64).wrapping_add(inst.imm as u64);
                let bits = self.mem.read_uint(addr, inst.width);
                let v = if inst.width == 4 {
                    f64::from(f32::from_bits(bits as u32))
                } else {
                    f64::from_bits(bits)
                };
                self.wf(&inst, v);
                mem = Some(MemEffect {
                    addr,
                    width: inst.width,
                    is_store: false,
                });
            }
            St => {
                let addr = (self.s1(&inst) as u64).wrapping_add(inst.imm as u64);
                self.mem.write_uint(addr, self.s2(&inst) as u64, inst.width);
                mem = Some(MemEffect {
                    addr,
                    width: inst.width,
                    is_store: true,
                });
            }
            FSt => {
                let addr = (self.s1(&inst) as u64).wrapping_add(inst.imm as u64);
                let v = self.f2(&inst);
                if inst.width == 4 {
                    self.mem
                        .write_uint(addr, u64::from((v as f32).to_bits()), 4);
                } else {
                    self.mem.write_u64(addr, v.to_bits());
                }
                mem = Some(MemEffect {
                    addr,
                    width: inst.width,
                    is_store: true,
                });
            }
            Beq | Bne | Blt | Bge => {
                let (a, b) = (self.s1(&inst), self.s2(&inst));
                let taken = match inst.op {
                    Beq => a == b,
                    Bne => a != b,
                    Blt => a < b,
                    _ => a >= b,
                };
                let target = inst.imm as StaticId;
                if taken {
                    next_pc = target;
                }
                control = Some(ControlEffect {
                    taken,
                    target: if taken { target } else { fallthrough },
                    is_return: false,
                    is_call: false,
                });
            }
            Jmp => {
                next_pc = inst.imm as StaticId;
                control = Some(ControlEffect {
                    taken: true,
                    target: next_pc,
                    is_return: false,
                    is_call: false,
                });
            }
            Call => {
                self.wd(&inst, i64::from(fallthrough));
                next_pc = inst.imm as StaticId;
                control = Some(ControlEffect {
                    taken: true,
                    target: next_pc,
                    is_return: false,
                    is_call: true,
                });
            }
            Ret => {
                next_pc = self.s1(&inst) as StaticId;
                control = Some(ControlEffect {
                    taken: true,
                    target: next_pc,
                    is_return: true,
                    is_call: false,
                });
            }
            Halt => {
                halted = true;
                next_pc = sid;
            }
            Nop => {}
            op => return Err(ExecError::Unexecutable(sid, op)),
        }

        self.pc = next_pc;
        self.halted = halted;
        Ok(StepEffect {
            sid,
            next_pc,
            mem,
            control,
            halted,
        })
    }

    fn wd(&mut self, inst: &Inst, value: i64) {
        if let Some(d) = inst.dst {
            self.set_reg(d, value);
        }
    }

    fn wf(&mut self, inst: &Inst, value: f64) {
        if let Some(d) = inst.dst {
            self.set_freg(d, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::ProgramBuilder;

    fn run(program: &Program) -> Machine {
        let mut m = Machine::new(program);
        let mut steps = 0;
        while !m.is_halted() {
            m.step(program).expect("exec error");
            steps += 1;
            assert!(steps < 1_000_000, "runaway program");
        }
        m
    }

    #[test]
    fn arithmetic_loop_sums_array() {
        let (ptr, n, sum, x) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let mut b = ProgramBuilder::new("sum");
        b.init_reg(ptr, 0x1000);
        b.init_reg(n, 4);
        b.init_words(0x1000, &[10, 20, 30, 40]);
        let head = b.bind_new_label();
        b.ld(x, ptr, 0);
        b.add(sum, sum, x);
        b.addi(ptr, ptr, 8);
        b.addi(n, n, -1);
        b.bne_label(n, Reg::ZERO, head);
        b.halt();
        let p = b.build().unwrap();
        let m = run(&p);
        assert_eq!(m.reg(sum), 100);
    }

    #[test]
    fn fp_dot_product() {
        let (pa, pb, i) = (Reg::int(1), Reg::int(2), Reg::int(3));
        let (fa, fb, facc, fprod) = (Reg::fp(0), Reg::fp(1), Reg::fp(2), Reg::fp(3));
        let mut b = ProgramBuilder::new("dot");
        b.init_reg(pa, 0x1000);
        b.init_reg(pb, 0x2000);
        b.init_reg(i, 3);
        b.init_f64s(0x1000, &[1.0, 2.0, 3.0]);
        b.init_f64s(0x2000, &[4.0, 5.0, 6.0]);
        let head = b.bind_new_label();
        b.fld(fa, pa, 0);
        b.fld(fb, pb, 0);
        b.fmul(fprod, fa, fb);
        b.fadd(facc, facc, fprod);
        b.addi(pa, pa, 8);
        b.addi(pb, pb, 8);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        let p = b.build().unwrap();
        let m = run(&p);
        assert_eq!(m.freg(facc), 32.0);
    }

    #[test]
    fn call_and_ret() {
        let lr = Reg::int(31);
        let r1 = Reg::int(1);
        let mut b = ProgramBuilder::new("call");
        let func = b.label();
        b.call_label(lr, func);
        b.halt();
        b.bind(func);
        b.li(r1, 99);
        b.ret(lr);
        let p = b.build().unwrap();
        let m = run(&p);
        assert_eq!(m.reg(r1), 99);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let r1 = Reg::int(1);
        let mut b = ProgramBuilder::new("div0");
        b.li(r1, 7);
        b.div(r1, r1, Reg::ZERO);
        b.halt();
        let p = b.build().unwrap();
        let m = run(&p);
        assert_eq!(m.reg(r1), -1);
    }

    #[test]
    fn subword_load_sign_extends() {
        let (r1, r2) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new("sub");
        b.init_reg(r1, 0x1000);
        b.init_data(0x1000, vec![0xFF]);
        b.ld_w(r2, r1, 0, 1);
        b.halt();
        let p = b.build().unwrap();
        let m = run(&p);
        assert_eq!(m.reg(r2), -1);
    }

    #[test]
    fn f32_memory_round_trip() {
        let (r1,) = (Reg::int(1),);
        let (f1, f2) = (Reg::fp(1), Reg::fp(2));
        let mut b = ProgramBuilder::new("f32");
        b.init_reg(r1, 0x3000);
        b.fli(f1, 2.5);
        b.emit(prism_isa::Inst::store(Opcode::FSt, f1, r1, 0, 4));
        b.emit(prism_isa::Inst::load(Opcode::FLd, f2, r1, 0, 4));
        b.halt();
        let p = b.build().unwrap();
        let m = run(&p);
        assert_eq!(m.freg(f2), 2.5);
    }

    #[test]
    fn step_effects_report_control() {
        let mut b = ProgramBuilder::new("ctl");
        let t = b.label();
        b.beq_label(Reg::ZERO, Reg::ZERO, t); // always taken
        b.nop();
        b.bind(t);
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        let e = m.step(&p).unwrap();
        let c = e.control.unwrap();
        assert!(c.taken);
        assert_eq!(c.target, 2);
        assert_eq!(e.next_pc, 2);
    }

    #[test]
    fn transform_only_opcode_unexecutable() {
        use prism_isa::Inst;
        let p = Program::from_insts(
            "bad",
            vec![Inst::rrr(Opcode::VOp, Reg::fp(1), Reg::fp(2), Reg::fp(3))],
        );
        let mut m = Machine::new(&p);
        assert!(matches!(
            m.step(&p),
            Err(ExecError::Unexecutable(0, Opcode::VOp))
        ));
    }

    #[test]
    fn halted_machine_refuses_to_step() {
        let mut b = ProgramBuilder::new("h");
        b.halt();
        let p = b.build().unwrap();
        let mut m = Machine::new(&p);
        m.step(&p).unwrap();
        assert!(m.is_halted());
        assert!(m.step(&p).is_err());
    }
}
