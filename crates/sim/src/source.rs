//! Streaming trace production: fixed-size chunks instead of one
//! monolithic `Vec<DynInst>`.
//!
//! The paper's scalability argument for the TDG is that node times are
//! finalized at insertion, so the graph only ever needs a *window* of
//! state. The same applies one level down: the functional simulator does
//! not need to materialize a whole trace before the µDG can start
//! consuming it. A [`TraceSource`] yields [`TraceChunk`]s — bounded
//! blocks of retired [`DynInst`]s plus running [`TraceStats`] — produced
//! lazily by [`SimSource`] (the simulator loop) or replayed from an
//! existing trace by [`MaterializedSource`].
//!
//! Chunk size is controlled by the `PRISM_CHUNK` environment variable
//! (default [`DEFAULT_CHUNK_INSTS`] = 64 Ki instructions). Consumers that
//! genuinely need random access (Ball-Larus path profiling in `prism-ir`,
//! Trace-P region replay) use [`TraceSource::materialize`] to collect the
//! stream into a [`Trace`].

use std::sync::atomic::{AtomicU64, Ordering};

use prism_isa::Program;

use crate::{
    BranchPredictor, BranchRecord, DynInst, Machine, MemRecord, MemoryHierarchy, Trace, TraceError,
    TraceStats, TracerConfig,
};

/// Environment variable selecting the chunk size in instructions.
pub const CHUNK_ENV: &str = "PRISM_CHUNK";

/// Default chunk size: 64 Ki retired instructions per chunk.
pub const DEFAULT_CHUNK_INSTS: usize = 64 * 1024;

/// High-water mark of chunk payload bytes produced by any source in this
/// process (for the `--stats` `peak_chunk_bytes` counter).
static PEAK_CHUNK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_chunk_bytes(insts: usize) {
    let bytes = (insts * std::mem::size_of::<DynInst>()) as u64;
    PEAK_CHUNK_BYTES.fetch_max(bytes, Ordering::Relaxed);
}

/// Largest single chunk (in bytes of `DynInst` payload) produced by any
/// [`TraceSource`] in this process so far.
#[must_use]
pub fn peak_chunk_bytes() -> u64 {
    PEAK_CHUNK_BYTES.load(Ordering::Relaxed)
}

/// Resets the [`peak_chunk_bytes`] high-water mark (for tests).
pub fn reset_peak_chunk_bytes() {
    PEAK_CHUNK_BYTES.store(0, Ordering::Relaxed);
}

/// Chunk size in instructions: `PRISM_CHUNK` or [`DEFAULT_CHUNK_INSTS`].
///
/// Values that fail to parse (or are zero) fall back to the default.
#[must_use]
pub fn chunk_size_from_env() -> usize {
    std::env::var(CHUNK_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CHUNK_INSTS)
}

/// One bounded block of the retired instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceChunk {
    /// 0-based chunk index within the stream.
    pub index: u64,
    /// `seq` of the first instruction in this chunk.
    pub first_seq: u64,
    /// The retired instructions of this chunk.
    pub insts: Vec<DynInst>,
    /// Running statistics over the stream *through* this chunk.
    pub stats: TraceStats,
    /// `true` when no further chunk follows.
    pub last: bool,
}

/// A producer of [`TraceChunk`]s.
///
/// Implementations yield chunks in stream order; `next_chunk` returns
/// `Ok(None)` once the stream is exhausted.
pub trait TraceSource {
    /// The program the stream was recorded from.
    fn program(&self) -> &Program;

    /// Produces the next chunk, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if producing the chunk faults (lazy
    /// simulation only; replay sources are infallible).
    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, TraceError>;

    /// Collects the whole stream into a [`Trace`] — the random-access
    /// adapter for consumers like Ball-Larus path profiling that need the
    /// full instruction vector.
    ///
    /// # Errors
    ///
    /// Propagates the first [`TraceError`] from `next_chunk`.
    fn materialize(mut self) -> Result<Trace, TraceError>
    where
        Self: Sized,
    {
        let program = self.program().clone();
        let mut insts = Vec::new();
        let mut stats = TraceStats::default();
        while let Some(chunk) = self.next_chunk()? {
            insts.extend_from_slice(&chunk.insts);
            stats = chunk.stats;
        }
        Ok(Trace {
            program,
            insts,
            stats,
        })
    }
}

/// Lazy trace production: the functional simulator loop, yielding one
/// chunk per call instead of a monolithic trace.
///
/// Holds the machine, cache hierarchy, and branch predictor across calls,
/// so a chunk costs exactly the simulation of its own instructions.
#[derive(Debug)]
pub struct SimSource<'p> {
    program: &'p Program,
    config: TracerConfig,
    chunk_size: usize,
    machine: Machine,
    dcache: MemoryHierarchy,
    predictor: BranchPredictor,
    stats: TraceStats,
    executed: u64,
    next_index: u64,
    done: bool,
}

impl<'p> SimSource<'p> {
    /// Validates `program` and prepares a lazy source with the
    /// environment-selected chunk size.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidProgram`] if validation fails.
    pub fn new(program: &'p Program, config: &TracerConfig) -> Result<Self, TraceError> {
        program.validate()?;
        Ok(SimSource {
            program,
            config: *config,
            chunk_size: chunk_size_from_env(),
            machine: Machine::new(program),
            dcache: MemoryHierarchy::new(config.l1d, config.l2, config.dram_latency),
            predictor: BranchPredictor::new(config.branch),
            stats: TraceStats::default(),
            executed: 0,
            next_index: 0,
            done: false,
        })
    }

    /// Overrides the chunk size (tests and embedders; the CLI path uses
    /// `PRISM_CHUNK`).
    #[must_use]
    pub fn with_chunk_size(mut self, insts: usize) -> Self {
        self.chunk_size = insts.max(1);
        self
    }

    /// Instructions recorded so far across all produced chunks.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.stats.insts
    }
}

impl TraceSource for SimSource<'_> {
    fn program(&self) -> &Program {
        self.program
    }

    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, TraceError> {
        if self.done {
            return Ok(None);
        }
        let first_seq = self.stats.insts;
        let index = self.next_index;
        let mut insts = Vec::new();

        while !self.machine.is_halted()
            && self.stats.insts < self.config.max_insts
            && insts.len() < self.chunk_size
        {
            let effect = self.machine.step(self.program)?;
            let recording = self.executed >= self.config.fast_forward;
            self.executed += 1;

            let mem = effect.mem.map(|m| {
                let (latency, level) = self.dcache.access(m.addr, effect.sid);
                MemRecord {
                    addr: m.addr,
                    width: m.width,
                    is_store: m.is_store,
                    latency,
                    level,
                }
            });

            let branch = effect.control.map(|c| {
                let inst = self.program.inst(effect.sid);
                let mispredicted = if inst.op.is_cond_branch() {
                    self.predictor.conditional(effect.sid, c.taken)
                } else if c.is_call {
                    self.predictor.call(effect.sid + 1);
                    false
                } else if c.is_return {
                    self.predictor.ret(c.target)
                } else {
                    false // direct jmp / halt
                };
                BranchRecord {
                    taken: c.taken,
                    target: c.target,
                    mispredicted,
                }
            });

            if recording {
                if let Some(m) = &mem {
                    if m.is_store {
                        self.stats.stores += 1;
                    } else {
                        self.stats.loads += 1;
                    }
                    match m.level {
                        crate::MemLevel::L1 => self.stats.l1_hits += 1,
                        crate::MemLevel::L2 => self.stats.l2_hits += 1,
                        crate::MemLevel::Dram => self.stats.dram_accesses += 1,
                    }
                }
                if let Some(b) = &branch {
                    if self.program.inst(effect.sid).op.is_cond_branch() {
                        self.stats.cond_branches += 1;
                    }
                    if b.mispredicted {
                        self.stats.mispredicts += 1;
                    }
                }
                insts.push(DynInst {
                    seq: self.stats.insts,
                    sid: effect.sid,
                    mem,
                    branch,
                });
                self.stats.insts += 1;
                if self.stats.insts >= self.config.max_insts {
                    break;
                }
            }
            if effect.halted {
                break;
            }
        }

        let last = self.machine.is_halted() || self.stats.insts >= self.config.max_insts;
        if last {
            self.done = true;
        }
        if insts.is_empty() && index > 0 {
            // The stream ended exactly on the previous chunk boundary.
            return Ok(None);
        }
        self.next_index += 1;
        note_chunk_bytes(insts.len());
        Ok(Some(TraceChunk {
            index,
            first_seq,
            insts,
            stats: self.stats,
            last,
        }))
    }
}

/// Replays an already-materialized [`Trace`] as a chunk stream — the
/// adapter that lets every streaming consumer also accept random-access
/// traces.
#[derive(Debug)]
pub struct MaterializedSource<'t> {
    trace: &'t Trace,
    chunk_size: usize,
    pos: usize,
    next_index: u64,
    stats: TraceStats,
}

impl<'t> MaterializedSource<'t> {
    /// Wraps `trace` with the environment-selected chunk size.
    #[must_use]
    pub fn new(trace: &'t Trace) -> Self {
        MaterializedSource {
            trace,
            chunk_size: chunk_size_from_env(),
            pos: 0,
            next_index: 0,
            stats: TraceStats::default(),
        }
    }

    /// Overrides the chunk size.
    #[must_use]
    pub fn with_chunk_size(mut self, insts: usize) -> Self {
        self.chunk_size = insts.max(1);
        self
    }
}

impl TraceSource for MaterializedSource<'_> {
    fn program(&self) -> &Program {
        &self.trace.program
    }

    fn next_chunk(&mut self) -> Result<Option<TraceChunk>, TraceError> {
        if self.pos >= self.trace.insts.len() {
            if self.next_index == 0 && self.trace.insts.is_empty() {
                // An empty trace still yields one (empty, last) chunk so
                // chunk-wise consumers observe its (default) stats.
                self.next_index = 1;
                return Ok(Some(TraceChunk {
                    index: 0,
                    first_seq: 0,
                    insts: Vec::new(),
                    stats: self.trace.stats,
                    last: true,
                }));
            }
            return Ok(None);
        }
        let end = (self.pos + self.chunk_size).min(self.trace.insts.len());
        let slice = &self.trace.insts[self.pos..end];
        for d in slice {
            accumulate(&mut self.stats, d, &self.trace.program);
        }
        let chunk = TraceChunk {
            index: self.next_index,
            first_seq: slice[0].seq,
            insts: slice.to_vec(),
            stats: self.stats,
            last: end == self.trace.insts.len(),
        };
        self.pos = end;
        self.next_index += 1;
        note_chunk_bytes(chunk.insts.len());
        Ok(Some(chunk))
    }
}

/// Folds one retired instruction into running statistics (the inverse of
/// how the tracer accumulated them, so replayed chunks carry the same
/// running stats as lazily-produced ones).
fn accumulate(stats: &mut TraceStats, d: &DynInst, program: &Program) {
    if let Some(m) = &d.mem {
        if m.is_store {
            stats.stores += 1;
        } else {
            stats.loads += 1;
        }
        match m.level {
            crate::MemLevel::L1 => stats.l1_hits += 1,
            crate::MemLevel::L2 => stats.l2_hits += 1,
            crate::MemLevel::Dram => stats.dram_accesses += 1,
        }
    }
    if let Some(b) = &d.branch {
        if program.inst(d.sid).op.is_cond_branch() {
            stats.cond_branches += 1;
        }
        if b.mispredicted {
            stats.mispredicts += 1;
        }
    }
    stats.insts += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    fn counting_loop(n: i64) -> Program {
        let (i, acc) = (Reg::int(1), Reg::int(2));
        let mut b = ProgramBuilder::new("count");
        b.init_reg(i, n);
        let head = b.bind_new_label();
        b.add(acc, acc, i);
        b.addi(i, i, -1);
        b.bne_label(i, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn chunked_stream_equals_monolithic_trace() {
        let p = counting_loop(100);
        let whole = crate::trace(&p).unwrap();
        let mut src = SimSource::new(&p, &TracerConfig::default())
            .unwrap()
            .with_chunk_size(37);
        let mut insts = Vec::new();
        let mut chunks = 0;
        let mut stats = TraceStats::default();
        while let Some(c) = src.next_chunk().unwrap() {
            assert_eq!(c.index, chunks);
            assert_eq!(c.first_seq, insts.len() as u64);
            assert!(c.insts.len() <= 37);
            insts.extend_from_slice(&c.insts);
            stats = c.stats;
            chunks += 1;
        }
        assert_eq!(insts, whole.insts);
        assert_eq!(stats, whole.stats);
        assert_eq!(chunks, (whole.len() as u64).div_ceil(37));
    }

    #[test]
    fn materialized_source_replays_identically() {
        let p = counting_loop(64);
        let whole = crate::trace(&p).unwrap();
        let mut replay = MaterializedSource::new(&whole).with_chunk_size(50);
        let mut sim = SimSource::new(&p, &TracerConfig::default())
            .unwrap()
            .with_chunk_size(50);
        loop {
            let (a, b) = (replay.next_chunk().unwrap(), sim.next_chunk().unwrap());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn materialize_adapter_roundtrips() {
        let p = counting_loop(33);
        let whole = crate::trace(&p).unwrap();
        let back = MaterializedSource::new(&whole)
            .with_chunk_size(7)
            .materialize()
            .unwrap();
        assert_eq!(back.insts, whole.insts);
        assert_eq!(back.stats, whole.stats);
    }

    #[test]
    fn last_flag_marks_the_final_chunk() {
        let p = counting_loop(10); // 31 recorded insts + halt
        let mut src = SimSource::new(&p, &TracerConfig::default())
            .unwrap()
            .with_chunk_size(16);
        let mut flags = Vec::new();
        while let Some(c) = src.next_chunk().unwrap() {
            flags.push(c.last);
        }
        assert!(flags.ends_with(&[true]));
        assert!(flags.iter().filter(|&&l| l).count() == 1);
    }

    #[test]
    fn peak_chunk_bytes_tracks_high_water_mark() {
        reset_peak_chunk_bytes();
        let p = counting_loop(100);
        let mut src = SimSource::new(&p, &TracerConfig::default())
            .unwrap()
            .with_chunk_size(64);
        while src.next_chunk().unwrap().is_some() {}
        assert_eq!(
            peak_chunk_bytes(),
            64 * std::mem::size_of::<DynInst>() as u64
        );
    }

    #[test]
    fn max_insts_bounds_the_stream() {
        let p = counting_loop(1000);
        let cfg = TracerConfig {
            max_insts: 100,
            ..TracerConfig::default()
        };
        let t = SimSource::new(&p, &cfg)
            .unwrap()
            .with_chunk_size(30)
            .materialize()
            .unwrap();
        assert_eq!(t.stats.insts, 100);
    }
}
