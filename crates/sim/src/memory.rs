//! Sparse, paged byte-addressable memory.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse memory image backed by 4 KiB pages allocated on first touch.
///
/// Reads of untouched memory return zero bytes, which keeps workload setup
/// simple (arrays default to zero) and mirrors a zero-filled heap.
///
/// # Examples
///
/// ```
/// use prism_sim::Memory;
///
/// let mut mem = Memory::new();
/// mem.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(mem.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(mem.read_u64(0x9_0000), 0); // untouched ⇒ zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory image.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of resident (touched) pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `width` bytes (little-endian) as an unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics if `width > 8`.
    #[must_use]
    pub fn read_uint(&self, addr: u64, width: u8) -> u64 {
        assert!(width <= 8, "read wider than 8 bytes");
        let mut v: u64 = 0;
        for i in 0..u64::from(width) {
            v |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        v
    }

    /// Writes the low `width` bytes of `value` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `width > 8`.
    pub fn write_uint(&mut self, addr: u64, value: u64, width: u8) {
        assert!(width <= 8, "write wider than 8 bytes");
        for i in 0..u64::from(width) {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 64-bit little-endian word.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read_uint(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_uint(addr, value, 8);
    }

    /// Reads an `f64`.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64`.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Memory::new();
        m.write_u64(0x1234, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u64(0x1234), 0x0102_0304_0506_0708);
        // Little-endian byte order.
        assert_eq!(m.read_u8(0x1234), 0x08);
        assert_eq!(m.read_u8(0x123B), 0x01);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1FFC; // straddles the 0x1000/0x2000 page boundary
        m.write_u64(addr, 0xAABB_CCDD_EEFF_1122);
        assert_eq!(m.read_u64(addr), 0xAABB_CCDD_EEFF_1122);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn partial_width_access() {
        let mut m = Memory::new();
        m.write_uint(0x100, 0xFFFF_FFFF_FFFF_FFFF, 4);
        assert_eq!(m.read_uint(0x100, 4), 0xFFFF_FFFF);
        assert_eq!(m.read_uint(0x104, 4), 0);
        m.write_uint(0x200, 0x1234, 2);
        assert_eq!(m.read_uint(0x200, 2), 0x1234);
        assert_eq!(m.read_uint(0x200, 1), 0x34);
    }

    #[test]
    fn f64_round_trip() {
        let mut m = Memory::new();
        m.write_f64(0x300, -1234.5678);
        assert_eq!(m.read_f64(0x300), -1234.5678);
    }

    #[test]
    fn write_bytes_bulk() {
        let mut m = Memory::new();
        m.write_bytes(0x400, &[1, 2, 3, 4]);
        assert_eq!(m.read_uint(0x400, 4), 0x0403_0201);
    }
}
