//! The trace generator: drives the functional machine through the cache and
//! branch-predictor models to produce a [`Trace`] — the role gem5 plays in
//! the paper's Figure 2.

use prism_isa::Program;

use crate::{
    BranchPredictorConfig, CacheConfig, ExecError, Trace, TraceSource, DEFAULT_DRAM_LATENCY,
};

/// Configuration for trace generation.
#[derive(Debug, Clone, Copy)]
pub struct TracerConfig {
    /// Retire at most this many instructions after fast-forward.
    pub max_insts: u64,
    /// Execute (and warm caches/predictors through) this many instructions
    /// before recording, mirroring the paper's fast-forward methodology.
    pub fast_forward: u64,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// DRAM latency behind the L2, in cycles.
    pub dram_latency: u32,
    /// Branch predictor sizing.
    pub branch: BranchPredictorConfig,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            max_insts: 2_000_000,
            fast_forward: 0,
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            dram_latency: DEFAULT_DRAM_LATENCY,
            branch: BranchPredictorConfig::default(),
        }
    }
}

/// Errors from trace generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The program failed validation before execution.
    InvalidProgram(prism_isa::ValidateProgramError),
    /// The functional executor faulted mid-run.
    Exec(ExecError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            TraceError::Exec(e) => write!(f, "execution fault: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<ExecError> for TraceError {
    fn from(e: ExecError) -> Self {
        TraceError::Exec(e)
    }
}

impl From<prism_isa::ValidateProgramError> for TraceError {
    fn from(e: prism_isa::ValidateProgramError) -> Self {
        TraceError::InvalidProgram(e)
    }
}

/// Traces `program` with the default configuration.
///
/// # Errors
///
/// See [`trace_with`].
pub fn trace(program: &Program) -> Result<Trace, TraceError> {
    trace_with(program, &TracerConfig::default())
}

/// Traces `program`, recording up to `config.max_insts` retired
/// instructions after `config.fast_forward`.
///
/// Caches and the branch predictor observe *all* executed instructions
/// (including the fast-forward prefix) so recorded latencies reflect warm
/// state, as in the paper's methodology.
///
/// # Errors
///
/// Returns [`TraceError::InvalidProgram`] if validation fails, or
/// [`TraceError::Exec`] if execution faults (e.g. a runaway pc).
pub fn trace_with(program: &Program, config: &TracerConfig) -> Result<Trace, TraceError> {
    crate::SimSource::new(program, config)?.materialize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{ProgramBuilder, Reg};

    /// A loop over `n` array elements; returns (program, n).
    fn array_sum(n: i64) -> Program {
        let (ptr, cnt, sum, x) = (Reg::int(1), Reg::int(2), Reg::int(3), Reg::int(4));
        let mut b = ProgramBuilder::new("sum");
        b.init_reg(ptr, 0x1000);
        b.init_reg(cnt, n);
        let head = b.bind_new_label();
        b.ld(x, ptr, 0);
        b.add(sum, sum, x);
        b.addi(ptr, ptr, 8);
        b.addi(cnt, cnt, -1);
        b.bne_label(cnt, Reg::ZERO, head);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn records_expected_instruction_count() {
        let p = array_sum(10);
        let t = trace(&p).unwrap();
        // 5 insts per iteration × 10 + halt.
        assert_eq!(t.stats.insts, 51);
        assert_eq!(t.stats.loads, 10);
        assert_eq!(t.stats.cond_branches, 10);
        assert_eq!(t.len(), 51);
    }

    #[test]
    fn sequence_numbers_are_dense() {
        let p = array_sum(5);
        let t = trace(&p).unwrap();
        for (i, d) in t.insts.iter().enumerate() {
            assert_eq!(d.seq, i as u64);
        }
    }

    #[test]
    fn memory_latencies_show_locality() {
        let p = array_sum(64);
        let t = trace(&p).unwrap();
        // 64 sequential 8B loads touch 8 cache lines; the stride prefetcher
        // covers all but the first few cold misses.
        assert!(
            t.stats.dram_accesses <= 3,
            "dram = {}",
            t.stats.dram_accesses
        );
        assert!(t.stats.l1_hits >= 56, "l1 hits = {}", t.stats.l1_hits);
    }

    #[test]
    fn loop_branch_prediction_warms_up() {
        let p = array_sum(200);
        let t = trace(&p).unwrap();
        // A monotone loop branch mispredicts at most a handful of times
        // (warmup + final not-taken).
        assert!(
            t.stats.mispredicts <= 4,
            "mispredicts = {}",
            t.stats.mispredicts
        );
    }

    #[test]
    fn max_insts_truncates() {
        let p = array_sum(1000);
        let cfg = TracerConfig {
            max_insts: 100,
            ..TracerConfig::default()
        };
        let t = trace_with(&p, &cfg).unwrap();
        assert_eq!(t.stats.insts, 100);
    }

    #[test]
    fn fast_forward_skips_prefix() {
        let p = array_sum(100);
        let cfg = TracerConfig {
            fast_forward: 250,
            ..TracerConfig::default()
        };
        let t = trace_with(&p, &cfg).unwrap();
        // 501 total dynamic insts; 250 skipped.
        assert_eq!(t.stats.insts, 251);
        // Caches were warmed during fast-forward, so the recorded suffix
        // sees fewer cold misses than a cold run of the same length.
        assert!(t.stats.dram_accesses < 8);
    }

    #[test]
    fn invalid_program_rejected() {
        let p = Program::from_insts("empty", vec![]);
        assert!(matches!(trace(&p), Err(TraceError::InvalidProgram(_))));
    }
}
