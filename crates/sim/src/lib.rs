//! # prism-sim
//!
//! Functional simulation substrate for the Prism TDG framework — the role
//! gem5 plays in *Analyzing Behavior Specialized Acceleration* (ASPLOS
//! 2016), Figure 2.
//!
//! The TDG approach needs a *dynamic event stream*, not a cycle-accurate
//! simulator: the retired instruction sequence with data/memory
//! dependences, per-access observed memory latency, and per-branch
//! mispredict flags. This crate produces exactly that:
//!
//! * [`Machine`] — architectural state + functional step executor,
//! * [`Cache`]/[`MemoryHierarchy`] — the paper's L1/L2 hierarchy (Table 4),
//! * [`BranchPredictor`] — gshare + return-address stack,
//! * [`trace`]/[`trace_with`] — the driver producing a [`Trace`] of
//!   [`DynInst`] records,
//! * [`RegDepTracker`] — streaming register-dataflow reconstruction shared
//!   by every downstream consumer.
//!
//! # Examples
//!
//! ```
//! use prism_isa::{ProgramBuilder, Reg};
//!
//! let (i, acc) = (Reg::int(1), Reg::int(2));
//! let mut b = ProgramBuilder::new("count");
//! b.init_reg(i, 100);
//! let head = b.bind_new_label();
//! b.add(acc, acc, i);
//! b.addi(i, i, -1);
//! b.bne_label(i, Reg::ZERO, head);
//! b.halt();
//! let program = b.build()?;
//!
//! let trace = prism_sim::trace(&program)?;
//! assert_eq!(trace.stats.insts, 301);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod branch;
mod cache;
mod machine;
mod memory;
mod source;
mod trace;
mod tracer;

pub use branch::{BranchPredictor, BranchPredictorConfig};
pub use cache::{Cache, CacheConfig, MemLevel, MemoryHierarchy, DEFAULT_DRAM_LATENCY};
pub use machine::{ControlEffect, ExecError, Machine, MemEffect, StepEffect};
pub use memory::Memory;
pub use source::{
    chunk_size_from_env, peak_chunk_bytes, reset_peak_chunk_bytes, MaterializedSource, SimSource,
    TraceChunk, TraceSource, CHUNK_ENV, DEFAULT_CHUNK_INSTS,
};
pub use trace::{BranchRecord, DynInst, MemRecord, RegDepTracker, Trace, TraceStats};
pub use tracer::{trace, trace_with, TraceError, TracerConfig};
