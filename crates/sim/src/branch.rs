//! Branch prediction models: gshare for conditional branches and a return
//! address stack for `ret`, mirroring what the paper's gem5 configuration
//! would provide to the µDG (a per-branch mispredict flag).

use prism_isa::StaticId;

/// Configuration for the [`BranchPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPredictorConfig {
    /// log2 of the pattern-history-table size.
    pub pht_bits: u32,
    /// Global-history length in branches.
    pub history_bits: u32,
    /// Return-address-stack depth.
    pub ras_depth: usize,
}

impl Default for BranchPredictorConfig {
    fn default() -> Self {
        BranchPredictorConfig {
            pht_bits: 12,
            history_bits: 12,
            ras_depth: 16,
        }
    }
}

/// A tournament conditional-branch predictor (bimodal + gshare + chooser)
/// plus a return-address stack — the structure of gem5's default predictor,
/// which is what the paper's trace generation would have provided.
///
/// Direct jumps and calls are always predicted correctly (their targets are
/// static); `ret` predicts through the RAS and mispredicts on overflow.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchPredictorConfig,
    /// gshare 2-bit saturating counters.
    gshare: Vec<u8>,
    /// Per-pc bimodal 2-bit saturating counters.
    bimodal: Vec<u8>,
    /// 2-bit chooser: ≥2 selects gshare, <2 selects bimodal.
    chooser: Vec<u8>,
    history: u64,
    ras: Vec<StaticId>,
    predictions: u64,
    mispredicts: u64,
}

fn bump(counter: &mut u8, up: bool) {
    *counter = if up {
        (*counter + 1).min(3)
    } else {
        counter.saturating_sub(1)
    };
}

impl BranchPredictor {
    /// Creates a predictor with the given configuration.
    #[must_use]
    pub fn new(config: BranchPredictorConfig) -> Self {
        let entries = 1usize << config.pht_bits;
        BranchPredictor {
            config,
            gshare: vec![1; entries],  // weakly not-taken
            bimodal: vec![2; entries], // weakly taken (loop branches dominate)
            chooser: vec![1; entries], // weakly favor bimodal
            history: 0,
            ras: Vec::with_capacity(config.ras_depth),
            predictions: 0,
            mispredicts: 0,
        }
    }

    /// Creates a predictor with default sizing (12-bit tables, 16-deep RAS).
    #[must_use]
    pub fn default_config() -> Self {
        BranchPredictor::new(BranchPredictorConfig::default())
    }

    fn gshare_index(&self, pc: StaticId) -> usize {
        let mask = (1u64 << self.config.pht_bits) - 1;
        ((u64::from(pc) ^ (self.history & ((1 << self.config.history_bits) - 1))) & mask) as usize
    }

    fn pc_index(&self, pc: StaticId) -> usize {
        (u64::from(pc) & ((1u64 << self.config.pht_bits) - 1)) as usize
    }

    /// Predicts and updates on a conditional branch; returns `true` if the
    /// prediction was wrong.
    pub fn conditional(&mut self, pc: StaticId, taken: bool) -> bool {
        self.predictions += 1;
        let gi = self.gshare_index(pc);
        let pi = self.pc_index(pc);

        let g_pred = self.gshare[gi] >= 2;
        let b_pred = self.bimodal[pi] >= 2;
        let use_gshare = self.chooser[pi] >= 2;
        let predicted_taken = if use_gshare { g_pred } else { b_pred };

        // Train both components; move the chooser toward whichever was right
        // when they disagreed.
        bump(&mut self.gshare[gi], taken);
        bump(&mut self.bimodal[pi], taken);
        if g_pred != b_pred {
            bump(&mut self.chooser[pi], g_pred == taken);
        }
        self.history = (self.history << 1) | u64::from(taken);

        let wrong = predicted_taken != taken;
        if wrong {
            self.mispredicts += 1;
        }
        wrong
    }

    /// Records a call (pushes the return address).
    pub fn call(&mut self, return_pc: StaticId) {
        if self.ras.len() == self.config.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(return_pc);
    }

    /// Predicts a return; returns `true` on mispredict.
    pub fn ret(&mut self, actual_target: StaticId) -> bool {
        self.predictions += 1;
        let predicted = self.ras.pop();
        let wrong = predicted != Some(actual_target);
        if wrong {
            self.mispredicts += 1;
        }
        wrong
    }

    /// (predictions, mispredicts) observed so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.mispredicts)
    }

    /// Observed mispredict rate in `[0, 1]`; zero if nothing was predicted.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_an_always_taken_branch() {
        let mut p = BranchPredictor::default_config();
        let mut wrong = 0;
        for _ in 0..100 {
            if p.conditional(10, true) {
                wrong += 1;
            }
        }
        // Warms up in a couple of iterations, then perfect.
        assert!(
            wrong <= 2,
            "mispredicted {wrong} times on a monotone branch"
        );
    }

    #[test]
    fn learns_a_loop_exit_pattern_poorly() {
        // T T T N repeating: the gshare with history learns this pattern.
        let mut p = BranchPredictor::default_config();
        let mut wrong = 0;
        for i in 0..400 {
            let taken = i % 4 != 3;
            if p.conditional(10, taken) {
                wrong += 1;
            }
        }
        // Far better than the 25% a static predictor would get.
        assert!(
            wrong < 40,
            "gshare failed to learn periodic pattern ({wrong}/400)"
        );
    }

    #[test]
    fn random_branch_mispredicts_often() {
        // A pseudo-random sequence should hover near 50% mispredicts.
        let mut p = BranchPredictor::default_config();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let mut wrong = 0;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if p.conditional(10, x & 1 == 1) {
                wrong += 1;
            }
        }
        assert!(
            wrong > 300,
            "suspiciously good on random data: {wrong}/1000"
        );
    }

    #[test]
    fn ras_predicts_matched_calls() {
        let mut p = BranchPredictor::default_config();
        p.call(101);
        p.call(202);
        assert!(!p.ret(202));
        assert!(!p.ret(101));
        // Unbalanced return mispredicts.
        assert!(p.ret(999));
        assert_eq!(p.stats(), (3, 1));
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut p = BranchPredictor::new(BranchPredictorConfig {
            ras_depth: 2,
            ..BranchPredictorConfig::default()
        });
        p.call(1);
        p.call(2);
        p.call(3); // drops 1
        assert!(!p.ret(3));
        assert!(!p.ret(2));
        assert!(p.ret(1)); // lost to overflow
    }

    #[test]
    fn mispredict_rate_bounds() {
        let mut p = BranchPredictor::default_config();
        assert_eq!(p.mispredict_rate(), 0.0);
        p.conditional(1, true);
        let r = p.mispredict_rate();
        assert!((0.0..=1.0).contains(&r));
    }
}
