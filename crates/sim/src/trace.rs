//! Dynamic traces: the event stream the TDG is constructed from.
//!
//! A [`Trace`] is the moral equivalent of the paper's gem5 output: the
//! retired dynamic instruction stream annotated with the microarchitectural
//! information the µDG embeds — observed memory latencies and levels,
//! branch outcomes and mispredict flags.

use prism_isa::{Inst, Program, StaticId, NUM_REGS};

use crate::MemLevel;

/// Memory event attached to a dynamic load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRecord {
    /// Effective byte address.
    pub addr: u64,
    /// Access width in bytes.
    pub width: u8,
    /// `true` for stores.
    pub is_store: bool,
    /// Observed access latency in cycles (hit or miss path).
    pub latency: u32,
    /// Which level served the access.
    pub level: MemLevel,
}

/// Control event attached to a dynamic control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchRecord {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Resolved next pc.
    pub target: StaticId,
    /// Whether the modeled predictor got it wrong.
    pub mispredicted: bool,
}

/// One retired dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Position in the recorded stream (0-based).
    pub seq: u64,
    /// The static instruction executed.
    pub sid: StaticId,
    /// Memory event, for loads/stores.
    pub mem: Option<MemRecord>,
    /// Control event, for branches/jumps/calls/returns.
    pub branch: Option<BranchRecord>,
}

/// Aggregate statistics over a recorded trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStats {
    /// Retired instructions recorded.
    pub insts: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Conditional branches.
    pub cond_branches: u64,
    /// Mispredicted control transfers.
    pub mispredicts: u64,
    /// Accesses served by L1 / L2 / DRAM.
    pub l1_hits: u64,
    /// Accesses that missed L1 but hit L2.
    pub l2_hits: u64,
    /// Accesses served by DRAM.
    pub dram_accesses: u64,
}

/// A recorded execution: the program plus its dynamic event stream.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The executed program.
    pub program: Program,
    /// Retired instruction stream (post fast-forward window).
    pub insts: Vec<DynInst>,
    /// Aggregate statistics.
    pub stats: TraceStats,
}

impl Trace {
    /// Number of recorded dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Static instruction of a dynamic record.
    #[must_use]
    pub fn static_inst(&self, d: &DynInst) -> &Inst {
        self.program.inst(d.sid)
    }
}

/// Streaming register-dependence tracker.
///
/// Maps each dynamic instruction's source registers to the `seq` of the
/// producing dynamic instruction, by tracking the last writer of every
/// architectural register. Shared by the µDG constructor, the IR builder
/// and the TDG transforms so they agree on dataflow.
///
/// # Examples
///
/// ```
/// use prism_sim::RegDepTracker;
/// use prism_isa::{Inst, Opcode, Reg};
///
/// let mut t = RegDepTracker::new();
/// let i0 = Inst::ri(Opcode::Li, Reg::int(1), 5);
/// let i1 = Inst::rrr(Opcode::Add, Reg::int(2), Reg::int(1), Reg::int(1));
/// assert!(t.sources(&i0).is_empty());
/// t.retire(&i0, 0);
/// assert_eq!(t.sources(&i1), vec![0, 0]);
/// ```
#[derive(Debug, Clone)]
pub struct RegDepTracker {
    last_writer: [Option<u64>; NUM_REGS as usize],
}

impl Default for RegDepTracker {
    fn default() -> Self {
        RegDepTracker {
            last_writer: [None; NUM_REGS as usize],
        }
    }
}

impl RegDepTracker {
    /// Creates a tracker with no known producers.
    #[must_use]
    pub fn new() -> Self {
        RegDepTracker::default()
    }

    /// Producer `seq`s for each source register of `inst` that has a known
    /// producer (program inputs have none).
    #[must_use]
    pub fn sources(&self, inst: &Inst) -> Vec<u64> {
        inst.sources()
            .filter_map(|r| self.last_writer[r.index()])
            .collect()
    }

    /// Producer of a specific register, if any.
    #[must_use]
    pub fn writer_of(&self, reg: prism_isa::Reg) -> Option<u64> {
        self.last_writer[reg.index()]
    }

    /// Every current last-writer `seq`, across all registers.
    ///
    /// This is the live register-dependence frontier: any `seq` not in it
    /// (and not referenced elsewhere) can never be named as a register
    /// producer again, so windowed consumers may retire its state.
    pub fn writers(&self) -> impl Iterator<Item = u64> + '_ {
        self.last_writer.iter().filter_map(|w| *w)
    }

    /// Records that `inst` retired as dynamic instruction `seq`.
    pub fn retire(&mut self, inst: &Inst, seq: u64) {
        if let Some(d) = inst.dest() {
            self.last_writer[d.index()] = Some(seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_isa::{Opcode, Reg};

    #[test]
    fn tracker_follows_last_writer() {
        let mut t = RegDepTracker::new();
        let w1 = Inst::ri(Opcode::Li, Reg::int(1), 1);
        let w2 = Inst::ri(Opcode::Li, Reg::int(1), 2);
        let r = Inst::rr(Opcode::Mov, Reg::int(2), Reg::int(1));
        t.retire(&w1, 10);
        assert_eq!(t.sources(&r), vec![10]);
        t.retire(&w2, 11);
        assert_eq!(t.sources(&r), vec![11]);
    }

    #[test]
    fn zero_register_never_tracked() {
        let mut t = RegDepTracker::new();
        let w = Inst::ri(Opcode::Li, Reg::ZERO, 7);
        t.retire(&w, 3);
        let r = Inst::rrr(Opcode::Add, Reg::int(1), Reg::ZERO, Reg::ZERO);
        assert!(t.sources(&r).is_empty());
    }

    #[test]
    fn store_reads_both_base_and_data() {
        let mut t = RegDepTracker::new();
        t.retire(&Inst::ri(Opcode::Li, Reg::int(1), 0x1000), 0);
        t.retire(&Inst::ri(Opcode::Li, Reg::int(2), 42), 1);
        let st = Inst::store(Opcode::St, Reg::int(2), Reg::int(1), 0, 8);
        let mut deps = t.sources(&st);
        deps.sort_unstable();
        assert_eq!(deps, vec![0, 1]);
    }
}
