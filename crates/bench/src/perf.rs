//! The measured performance baseline behind `prism bench`: a small,
//! dependency-free microbench suite covering every hot layer of the
//! framework — functional-simulator trace throughput, µDG model
//! throughput, transform (IR + plan analysis) throughput, and end-to-end
//! design-space exploration wall time with and without the trace-walk
//! timing memo.
//!
//! Results serialize to `BENCH_<rev>.json` (hand-rolled JSON; the build
//! environment has no serde) so CI can compare a fresh run against the
//! checked-in baseline and fail on regressions. Throughput metrics are
//! normalized across machines by a fixed integer-hash calibration loop:
//! comparing run B against baseline A scales B's numbers by
//! `A.calibration_mops / B.calibration_mops` before applying the
//! threshold.
//!
//! See `DESIGN.md` §10 for how to read the output.

use std::time::Instant;

use prism_exocore::{all_bsa_subsets, all_cores};
use prism_pipeline::{Json, Session};
use prism_udg::{simulate_trace, CoreConfig, ExecBudget};
use prism_workloads::Workload;

/// Options for one perf run.
#[derive(Debug, Clone, Copy)]
pub struct PerfOptions {
    /// Quick mode: microbench metrics only (identical workloads/sizes to
    /// the full run, fewer iterations) plus the MICRO-registry explore;
    /// skips the full-registry explore. CI's `bench-smoke` uses this.
    pub quick: bool,
    /// Iterations per microbench metric (quick mode caps this at 3).
    pub iters: u32,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            quick: false,
            iters: 10,
        }
    }
}

/// One perf run: revision, mode, machine calibration, and named metrics.
///
/// Metric naming carries the comparison direction: names ending in
/// `_wall_s` are lower-is-better; everything else (throughputs,
/// speedups) is higher-is-better.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Source revision the run was built from (`git rev-parse --short`),
    /// or `"dev"` outside a git checkout.
    pub rev: String,
    /// Whether this was a quick run.
    pub quick: bool,
    /// Calibration-loop throughput in Mops — a machine-speed proxy used
    /// to normalize metrics across hosts.
    pub calibration_mops: f64,
    /// `(name, value)` pairs, in measurement order.
    pub metrics: Vec<(String, f64)>,
}

impl PerfReport {
    /// The value of a named metric.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Serializes the report as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": 1,\n");
        out.push_str(&format!("  \"rev\": \"{}\",\n", escape(&self.rev)));
        out.push_str(&format!("  \"quick\": {},\n", self.quick));
        out.push_str(&format!(
            "  \"calibration_mops\": {},\n",
            fmt_f64(self.calibration_mops)
        ));
        out.push_str("  \"metrics\": {\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            out.push_str(&format!(
                "    \"{}\": {}{comma}\n",
                escape(name),
                fmt_f64(*value)
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a report produced by [`PerfReport::to_json`] (tolerant of
    /// field order and unknown fields; `None` on malformed input).
    #[must_use]
    pub fn from_json(text: &str) -> Option<PerfReport> {
        let doc = Json::parse(text).ok()?;
        let mut metrics = Vec::new();
        if let Some(Json::Obj(fields)) = doc.get("metrics") {
            for (name, value) in fields {
                metrics.push((name.clone(), num(value)?));
            }
        }
        Some(PerfReport {
            rev: doc.get("rev")?.as_str()?.to_string(),
            quick: doc.get("quick")?.as_bool()?,
            calibration_mops: num(doc.get("calibration_mops")?)?,
            metrics,
        })
    }
}

/// A JSON number as `f64`, whichever numeric variant it parsed into.
fn num(v: &Json) -> Option<f64> {
    match v {
        Json::F64(f) => Some(*f),
        Json::U64(u) => Some(*u as f64),
        Json::I64(i) => Some(*i as f64),
        _ => None,
    }
}

/// Metrics of `new` that regressed more than `threshold` (fractional,
/// e.g. `0.40`) against `baseline`, after normalizing `new` by the
/// calibration ratio. Only metrics present in both reports are compared,
/// so a quick run checked against a full baseline compares exactly the
/// shared microbench set. `_speedup` metrics are informational and never
/// gated: they are dimensionless ratios of two gated wall metrics, so
/// gating them would double-count their noise (and machine speed cancels
/// out of a ratio, making calibration normalization meaningless there).
#[must_use]
pub fn regressions(baseline: &PerfReport, new: &PerfReport, threshold: f64) -> Vec<String> {
    let ratio = if baseline.calibration_mops > 0.0 && new.calibration_mops > 0.0 {
        new.calibration_mops / baseline.calibration_mops
    } else {
        1.0
    };
    let mut out = Vec::new();
    for (name, old) in &baseline.metrics {
        let Some(raw) = new.metric(name) else {
            continue;
        };
        if name.ends_with("_speedup") {
            continue;
        }
        if name.ends_with("_wall_s") {
            // Lower is better; a faster machine shrinks wall time.
            let norm = raw * ratio;
            if norm > old * (1.0 + threshold) {
                out.push(format!(
                    "{name}: {norm:.3} (normalized) vs baseline {old:.3} \
                     (+{:.0}% > {:.0}% threshold)",
                    (norm / old - 1.0) * 100.0,
                    threshold * 100.0
                ));
            }
        } else {
            let norm = raw / ratio;
            if norm < old * (1.0 - threshold) {
                out.push(format!(
                    "{name}: {norm:.0} (normalized) vs baseline {old:.0} \
                     (-{:.0}% > {:.0}% threshold)",
                    (1.0 - norm / old) * 100.0,
                    threshold * 100.0
                ));
            }
        }
    }
    out
}

/// The source revision (`git rev-parse --short HEAD`), or `"dev"`.
#[must_use]
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "dev".to_string())
}

/// Runs the perf suite and returns the report (prints one line per metric
/// to stderr as it goes, so long runs show progress).
#[must_use]
pub fn run(opts: &PerfOptions) -> PerfReport {
    let iters = if opts.quick {
        opts.iters.min(3)
    } else {
        opts.iters
    }
    .max(1);
    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut record = |name: &str, value: f64| {
        eprintln!("[prism-bench] {name} = {value:.3}");
        metrics.push((name.to_string(), value));
    };

    // First calibration sample; a second is taken after the metric
    // section and the *slower* of the two is kept, so a contention
    // window that opens mid-run (and slows the metrics) is reflected in
    // the normalization factor instead of being misread as a regression.
    let calib_pre = calibrate();
    eprintln!("[prism-bench] calibration (pre) = {calib_pre:.1} Mops");

    // Microbench layer: identical workload and size in both modes, so a
    // quick CI run is comparable against a full checked-in baseline.
    let w = prism_workloads::by_name("stencil").expect("stencil registered");
    let program = (w.build)(800);
    let trace = prism_sim::trace(&program).expect("stencil traces");
    let n = trace.len() as f64;

    record(
        "sim_trace_insts_per_sec",
        n / bench_secs(iters, || prism_sim::trace(&program).unwrap()),
    );
    let ooo4 = CoreConfig::ooo4();
    record(
        "udg_insts_per_sec",
        n / bench_secs(iters, || simulate_trace(&trace, &ooo4)),
    );
    record(
        "transform_insts_per_sec",
        n / bench_secs(iters, || {
            prism_exocore::WorkloadData::from_trace(trace.clone())
        }),
    );

    // End-to-end exploration over the MICRO registry, composed vs direct
    // (best of three — these sweeps are short enough that a single
    // scheduler hiccup on a shared host can swallow the CI gate).
    let micro: Vec<&Workload> = prism_workloads::MICRO.iter().collect();
    let best_of3 = |composition: bool| {
        (0..3)
            .map(|_| explore_secs(&micro, composition))
            .fold(f64::INFINITY, f64::min)
    };
    let composed = best_of3(true);
    let direct = best_of3(false);
    let warm = explore_warm_secs(&micro);
    record("explore_micro_wall_s", composed);
    record("explore_micro_direct_wall_s", direct);
    record("explore_micro_speedup", direct / composed.max(1e-9));
    record("explore_micro_warm_wall_s", warm);
    record("explore_micro_warm_speedup", composed / warm.max(1e-9));

    // Full-registry exploration (the paper's 49 workloads × 64 points).
    if !opts.quick {
        let all: Vec<&Workload> = prism_workloads::ALL.iter().collect();
        let composed = explore_secs(&all, true);
        let direct = explore_secs(&all, false);
        let warm = explore_warm_secs(&all);
        record("explore_wall_s", composed);
        record("explore_direct_wall_s", direct);
        record("explore_speedup", direct / composed.max(1e-9));
        record("explore_warm_wall_s", warm);
        record("explore_warm_speedup", composed / warm.max(1e-9));
    }

    let calibration_mops = calib_pre.min(calibrate());
    eprintln!("[prism-bench] calibration = {calibration_mops:.1} Mops");

    PerfReport {
        rev: git_rev(),
        quick: opts.quick,
        calibration_mops,
        metrics,
    }
}

/// Best-of wall seconds of `f`: at least `iters` runs (after one
/// warm-up) and at least half a second of sampling, keeping the fastest
/// run. The minimum is far more robust to scheduler noise on shared
/// hosts than the mean — outliers only ever slow a run down.
fn bench_secs<T>(iters: u32, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    let mut done = 0u32;
    let sampling = Instant::now();
    while done < iters || sampling.elapsed().as_secs_f64() < 0.5 {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
        done += 1;
        if done >= 10_000 {
            break;
        }
    }
    best.max(1e-9)
}

/// Fresh-store, single-threaded, end-to-end exploration wall seconds over
/// `workloads` × the full 64-point grid, with the trace-walk timing memo
/// on (`composition`) or off. The session is insulated from ambient env
/// knobs so results are comparable across hosts and CI configurations.
fn explore_secs(workloads: &[&Workload], composition: bool) -> f64 {
    let dir = std::env::temp_dir().join(format!(
        "prism-bench-{}-{}-{}",
        std::process::id(),
        workloads.len(),
        composition
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let session = Session::new()
        .with_store_dir(&dir)
        .with_jobs(1)
        .with_faults(None)
        .with_budget(ExecBudget::unlimited())
        .with_divergence_guard(None)
        .with_streaming(false)
        .with_timing_cache(true)
        .with_store_cap(None)
        .with_composition(composition);
    let start = Instant::now();
    let report = session.evaluate_designs(workloads, &all_cores(), &all_bsa_subsets());
    let secs = start.elapsed().as_secs_f64();
    assert!(
        report.quarantined.is_empty(),
        "bench sweep quarantined points: {:?}",
        report
            .quarantined
            .iter()
            .map(|(l, _)| l.as_str())
            .collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
    secs.max(1e-9)
}

/// Warm-store exploration wall seconds: one cold composed run populates
/// a fresh store, then fresh single-threaded sessions over the same
/// store repeat the sweep (best of three) — the design-result +
/// timing-artifact warm path a repeated `prism explore` or a `--resume`
/// takes, with zero trace walks.
fn explore_warm_secs(workloads: &[&Workload]) -> f64 {
    let dir = std::env::temp_dir().join(format!(
        "prism-bench-warm-{}-{}",
        std::process::id(),
        workloads.len(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let session_at = || {
        Session::new()
            .with_store_dir(&dir)
            .with_jobs(1)
            .with_faults(None)
            .with_budget(ExecBudget::unlimited())
            .with_divergence_guard(None)
            .with_streaming(false)
            .with_timing_cache(true)
            .with_store_cap(None)
            .with_composition(true)
    };
    let cold = session_at().evaluate_designs(workloads, &all_cores(), &all_bsa_subsets());
    assert!(
        cold.quarantined.is_empty(),
        "bench warm-up sweep quarantined points: {:?}",
        cold.quarantined
            .iter()
            .map(|(l, _)| l.as_str())
            .collect::<Vec<_>>()
    );
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let session = session_at();
        let start = Instant::now();
        std::hint::black_box(session.evaluate_designs(workloads, &all_cores(), &all_bsa_subsets()));
        best = best.min(start.elapsed().as_secs_f64());
    }
    let _ = std::fs::remove_dir_all(&dir);
    best.max(1e-9)
}

/// A fixed integer-hash spin loop measuring this machine's scalar
/// throughput in Mops (best of three samples, for the same
/// noise-robustness as [`bench_secs`]). Deterministic work, no
/// allocation — the ratio of two hosts' calibrations approximates their
/// single-thread speed ratio.
#[must_use]
pub fn calibrate() -> f64 {
    const OPS: u64 = 100_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let start = Instant::now();
        for i in 0..OPS {
            x ^= i;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
        }
        std::hint::black_box(x);
        best = best.min(start.elapsed().as_secs_f64());
    }
    OPS as f64 / best / 1e6
}

/// Formats an `f64` so it round-trips through [`Parser::number`]
/// (always includes a decimal point or exponent).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Escapes a string for JSON embedding (quotes and backslashes; our
/// emitted strings contain nothing else special).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        PerfReport {
            rev: "abc1234".into(),
            quick: true,
            calibration_mops: 1000.0,
            metrics: vec![
                ("udg_insts_per_sec".into(), 2_000_000.0),
                ("explore_micro_wall_s".into(), 1.5),
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let r = sample();
        let parsed = PerfReport::from_json(&r.to_json()).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn regressions_respect_direction_and_threshold() {
        let base = sample();
        let mut new = sample();
        // Within threshold: no findings.
        assert!(regressions(&base, &new, 0.25).is_empty());
        // Throughput drop beyond 25% regresses.
        new.metrics[0].1 = 1_000_000.0;
        assert_eq!(regressions(&base, &new, 0.25).len(), 1);
        // Wall-time growth beyond 25% regresses too.
        new.metrics[0].1 = 2_000_000.0;
        new.metrics[1].1 = 3.0;
        assert_eq!(regressions(&base, &new, 0.25).len(), 1);
    }

    #[test]
    fn speedup_metrics_are_informational_not_gated() {
        let mut base = sample();
        base.metrics.push(("explore_micro_speedup".into(), 3.0));
        let mut new = base.clone();
        new.metrics[1].1 = 3.0; // wall regression: still gated…
        new.metrics[2].1 = 1.0; // …but the derived ratio never is.
        let regs = regressions(&base, &new, 0.25);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].starts_with("explore_micro_wall_s"));
    }

    #[test]
    fn calibration_normalizes_across_machines() {
        let base = sample();
        let mut new = sample();
        // A machine half as fast: calibration and every metric halve
        // (wall time doubles) — no regression after normalization.
        new.calibration_mops = 500.0;
        new.metrics[0].1 = 1_000_000.0;
        new.metrics[1].1 = 3.0;
        assert!(regressions(&base, &new, 0.25).is_empty());
    }

    #[test]
    fn unknown_fields_and_missing_metrics_are_tolerated() {
        let text = r#"{ "schema": 1, "extra": "x", "rev": "r1",
                        "quick": false, "calibration_mops": 10.0,
                        "metrics": { "only_here": 5.0 } }"#;
        let base = PerfReport::from_json(text).expect("parses");
        assert_eq!(base.metric("only_here"), Some(5.0));
        // Comparing against a report lacking the metric finds nothing.
        assert!(regressions(&base, &sample(), 0.25).is_empty());
    }
}
