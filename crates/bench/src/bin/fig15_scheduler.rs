//! Figure 15: Oracle vs Amdahl-tree scheduler on the Mediabench suite with
//! an OOO2 full ExoCore — execution time and energy relative to the OOO2
//! core alone, for both schedulers.

use prism_bench::{run_or_exit, session};
use prism_exocore::{amdahl_schedule, geomean, oracle_schedule};
use prism_tdg::{run_exocore, BsaKind};
use prism_udg::{simulate_trace, CoreConfig};

fn main() {
    println!("=== Fig. 15: Oracle vs Amdahl-tree scheduler (Mediabench, OOO2 ExoCore) ===\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "oracle T", "amdahl T", "oracle E", "amdahl E"
    );
    println!(
        "{:<12} {:^21} {:^21}",
        "", "(rel. exec. time)", "(rel. energy)"
    );

    let core = CoreConfig::ooo2();
    let mut perf_ratio = Vec::new(); // amdahl perf / oracle perf
    let mut energy_ratio = Vec::new(); // baseline energy / amdahl energy

    for w in prism_workloads::by_suite(prism_workloads::Suite::Mediabench) {
        let data = run_or_exit(session().prepare(w));
        let base = simulate_trace(&data.trace, &core);
        let oracle = oracle_schedule(&data, &core, &BsaKind::ALL);
        let amdahl = amdahl_schedule(&data, &core, &BsaKind::ALL);
        let run_o = run_exocore(
            &data.trace,
            &data.ir,
            &core,
            &data.plans,
            &oracle,
            &BsaKind::ALL,
        );
        let run_a = run_exocore(
            &data.trace,
            &data.ir,
            &core,
            &data.plans,
            &amdahl,
            &BsaKind::ALL,
        );
        let bt = base.cycles as f64;
        let be = base.energy.total();
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            w.name,
            run_o.cycles as f64 / bt,
            run_a.cycles as f64 / bt,
            run_o.energy.total() / be,
            run_a.energy.total() / be,
        );
        perf_ratio.push(run_o.cycles as f64 / run_a.cycles.max(1) as f64);
        energy_ratio.push(be / run_a.energy.total());
    }

    let p = geomean(perf_ratio.into_iter());
    let e = geomean(energy_ratio.into_iter());
    println!(
        "\nAmdahl-tree scheduler: {:.2}x the Oracle's performance (paper: 0.89x), \
         {e:.2}x energy efficiency over the plain core (paper: 1.21x)",
        p
    );
}
