//! Figure 14: ExoCore dynamic switching behavior — the windowed speedup of
//! a full OOO2 ExoCore over the OOO2 core, with the dominant unit per
//! window, for the paper's two timeline benchmarks (djpeg and h264ref
//! analogues).

use prism_bench::{run_or_exit, session};
use prism_exocore::{oracle_schedule, switching_timeline};
use prism_tdg::BsaKind;
use prism_udg::CoreConfig;

fn main() {
    println!("=== Fig. 14: ExoCore dynamic switching (full OOO2 ExoCore vs OOO2) ===\n");
    for name in ["djpeg-1", "464.h264ref"] {
        let w = prism_workloads::by_name(name).expect(name);
        let data = run_or_exit(session().prepare(w));
        let core = CoreConfig::ooo2();
        let assignment = oracle_schedule(&data, &core, &BsaKind::ALL);
        let window = (data.trace.len() as u64 / 40).max(200);
        let points = switching_timeline(&data, &core, &assignment, &BsaKind::ALL, window);

        println!("-- {name} (window = {window} instructions) --");
        println!(
            "{:>10} {:>9} {:>9} {:>7}  unit / sparkline",
            "inst", "base cy", "exo cy", "spdup"
        );
        for p in &points {
            let bar_len = (p.speedup * 8.0).round().clamp(1.0, 60.0) as usize;
            println!(
                "{:>10} {:>9} {:>9} {:>6.2}x  {:<8} {}",
                p.end_seq,
                p.base_cycles,
                p.exo_cycles,
                p.speedup,
                p.dominant_unit.to_string(),
                "#".repeat(bar_len)
            );
        }
        let units: std::collections::HashSet<_> = points.iter().map(|p| p.dominant_unit).collect();
        println!(
            "distinct units used: {} ({})\n",
            units.len(),
            units
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
